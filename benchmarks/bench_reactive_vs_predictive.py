"""Ablation: reactive (SoftStage) vs predictive (EdgeBuffer-style) staging.

The paper's central §III-B argument: predictive staging matches
reactive only while the mobility predictor is right; as accuracy
degrades (AP churn, load balancing, route changes), mis-staged chunks
cost cross-network fetches while SoftStage, which never predicts,
stays put.  We sweep predictor accuracy and compare download times.

A reproduction finding worth noting: on an XIA testbed the *penalty*
for a wrong prediction is softened by exactly the mechanism SoftStage
itself relies on — chunks staged into the wrong edge network remain
fetchable cross-network via the core.  So predictive staging here
degrades gracefully rather than catastrophically; the assertions below
only require reactive to stay within a modest factor of a predictor at
every accuracy, with zero prediction machinery.
"""

from benchmarks.conftest import bench_profile, run_once
from repro.experiments.params import MicrobenchParams
from repro.experiments.report import render_table
from repro.experiments.scenario import TestbedScenario
from repro.util import MB


def run_predictive(accuracy: float, params, seed: int, num_edges: int = 3):
    scenario = TestbedScenario(params=params, seed=seed, num_edges=num_edges)
    content = scenario.publish_default_content()
    client = scenario.make_predictive_client(accuracy=accuracy)
    process = scenario.sim.process(client.download(content))
    result = scenario.sim.run(until=process)
    return result, client


def run_reactive(params, seed: int, num_edges: int = 3):
    scenario = TestbedScenario(params=params, seed=seed, num_edges=num_edges)
    content = scenario.publish_default_content()
    client = scenario.make_softstage_client()
    process = scenario.sim.process(client.download(content))
    return scenario.sim.run(until=process)


def test_reactive_vs_predictive(benchmark):
    profile = bench_profile()
    params = MicrobenchParams(file_size=min(profile.file_size, 32 * MB))
    seed = 0

    def harness():
        rows = []
        reactive = run_reactive(params, seed)
        rows.append(("reactive (SoftStage)", reactive.duration,
                     reactive.chunks_from_edge, "-"))
        for accuracy in (1.0, 0.7, 0.4):
            result, client = run_predictive(accuracy, params, seed)
            rows.append((
                f"predictive acc={accuracy:.0%}", result.duration,
                result.chunks_from_edge, client.wrong_network_fetches,
            ))
        return rows

    rows = run_once(benchmark, harness)
    print()
    print(render_table(
        "Reactive vs predictive staging (download time)",
        ("policy", "time (s)", "edge hits", "wrong-net fetches"),
        rows,
    ))

    times = {row[0]: row[1] for row in rows}
    reactive_time = times["reactive (SoftStage)"]
    # Reactive stays within a modest factor of a *perfect* predictor
    # and of every degraded one — with no prediction machinery at all.
    for accuracy in ("100%", "70%", "40%"):
        assert reactive_time < times[f"predictive acc={accuracy}"] * 1.5, (
            accuracy, reactive_time, times,
        )
