"""Metric-sketch cost: fold throughput, merge cost, recording overhead.

The fleet story (see DESIGN.md §14) only works if sketches are cheap
in two places:

- **workers** fold every gauge sample and wide event into
  fixed-memory sketches while the simulation runs — the fold must be
  fast enough to leave on (budget: within 15% of an uninstrumented
  run, measured on a small full-stack download);
- **the parent** merges one serialized sketch set per run — merging
  must be far cheaper than the runs themselves (thousands of merges
  per second).

Quantile answers come from bounded centroids, so accuracy is also
spot-checked here: after folding 200k values the p50/p99 must land
within 2% rank error of the exact order statistics.
"""

from __future__ import annotations

from time import perf_counter

from repro.experiments.params import MicrobenchParams
from repro.experiments.runner import run_download
from repro.obs.sketch import (
    QuantileSketch,
    load_sketches,
    merge_sketch_sets,
    serialize_sketches,
)
from repro.util import MB

#: Deterministic pseudo-random stream (LCG): no ``random`` state, no
#: seed plumbing, identical on every host.
def _values(n: int, state: int = 12345):
    for _ in range(n):
        state = (state * 1103515245 + 12345) % (1 << 31)
        yield state / float(1 << 31)


def test_quantile_fold_throughput_and_accuracy(benchmark):
    n = 200_000
    values = list(_values(n))

    def fold():
        sketch = QuantileSketch()
        for value in values:
            sketch.add(value)
        return sketch

    sketch = benchmark(fold)
    exact = sorted(values)
    for q in (0.5, 0.99):
        estimate = sketch.quantile(q)
        rank = sum(1 for v in exact if v <= estimate) / n
        assert abs(rank - q) <= 0.02, f"p{q:g} rank error {rank - q:+.3f}"


def test_merge_cost_is_negligible_next_to_runs(benchmark):
    shards = []
    for shard in range(64):
        sketch = QuantileSketch()
        for value in _values(4096, state=shard + 1):
            sketch.add(value)
        shards.append(serialize_sketches({"wide.fetch_latency": sketch}))

    def merge_all():
        merged: dict = {}
        for shard in shards:
            merge_sketch_sets(merged, load_sketches(shard))
        return merged

    merged = benchmark(merge_all)
    assert merged["wide.fetch_latency"].count == 64 * 4096


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        started = perf_counter()
        fn()
        best = min(best, perf_counter() - started)
    return best


def test_sketch_recording_overhead_within_budget(benchmark):
    params = MicrobenchParams(file_size=2 * MB)

    def run(sketches):
        return run_download(
            "softstage", params=params, seed=0, segment_scale=8,
            sketches=sketches,
        )

    run(False)  # warm imports/caches outside the timed region
    plain = _best_of(lambda: run(False))
    sketched = _best_of(lambda: run(True))
    overhead = sketched / plain - 1.0

    def report():
        return plain, sketched

    benchmark.pedantic(report, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(f"download plain     : {plain:.3f} s")
    print(f"download +sketches : {sketched:.3f} s  "
          f"(overhead {overhead:+.1%})")
    assert overhead <= 0.15, f"sketch overhead {overhead:.1%} exceeds 15%"
