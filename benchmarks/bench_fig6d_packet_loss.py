"""Fig. 6(d): performance gain vs wireless packet loss (22/27/37%).

Paper: gain grows 1.37x -> 1.77x with loss — losses that escape
link-layer retransmission are recovered from a closer location.
"""

from benchmarks.conftest import run_once, strict_shapes
from repro.experiments.microbench import sweep_packet_loss


def test_fig6d_packet_loss(benchmark, profile):
    series = run_once(benchmark, lambda: sweep_packet_loss(profile))
    print()
    print(series.render())

    for row in series.rows:
        assert row.gain > 1.0, (row.label, row.gain)
    if strict_shapes(profile):
        # More loss never helps Xftp: its time grows with loss.
        xftp_times = [row.xftp_time for row in series.rows]
        assert xftp_times[-1] > xftp_times[0]
