"""§IV-D: default (RSS-greedy) vs content-aware handoff.

Paper: content-aware handoff cuts download time by 21.7% in the
overlapping-coverage scenario (12 s encounters, 3 s overlap).
"""

from benchmarks.conftest import bench_profile, run_once
from repro.experiments.handoff import PAPER_SAVING, run_comparison
from repro.experiments.report import render_table
from repro.util import MB


def test_handoff_policy(benchmark):
    profile = bench_profile()
    comparison = run_once(
        benchmark,
        lambda: run_comparison(
            # Needs enough chunks that several handoffs occur.
            file_size=max(profile.file_size, 48 * MB),
            seeds=profile.seeds,
            segment_scale=profile.segment_scale,
        ),
    )
    print()
    print(render_table(
        "§IV-D: handoff policy (download time, seconds)",
        ("policy", "time (s)", "handoffs"),
        [
            ("default (RSS-greedy)", comparison.default_time,
             comparison.default_handoffs),
            ("content-aware", comparison.content_aware_time,
             comparison.content_aware_handoffs),
        ],
    ))
    print(f"measured saving: {comparison.saving:.1%}   paper: {PAPER_SAVING:.1%}")

    # Content-aware handoff is strictly better, by a material margin.
    assert comparison.content_aware_time < comparison.default_time
    assert comparison.saving > 0.05
