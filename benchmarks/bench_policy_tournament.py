"""Policy tournament: every staging policy over the Fig. 6 sweep.

Runs Xftp (the no-staging reference), the end-to-end single-stream
baseline, and all four registered staging policies — ``reactive``
(Eq. 1), ``predictive`` (EdgeBuffer-style), ``rich`` (in-order
prefetch window) and ``mobility`` (handoff-aware placement) — over the
same Fig. 6 parameter points, then ranks the competitors by mean gain
(Xftp time / competitor time, the paper's headline metric).

The run list fans over the parallel sweep engine
(:mod:`repro.experiments.parallel`), so ``--jobs N`` scales it across
cores with byte-identical results.

Runs two ways:

- ``pytest benchmarks/bench_policy_tournament.py`` — a tiny tournament
  under pytest-benchmark asserting the paper-shape ordering;
- ``PYTHONPATH=src python -m benchmarks.bench_policy_tournament`` — the
  standalone driver: measures, appends to
  ``BENCH_policy_tournament.json`` via :mod:`repro.perf`, with
  ``--registry`` deposits one run-registry record per competitor
  (``tournament-<name>``), and with ``--check`` fails when reactive
  Eq. 1 loses to the end-to-end baseline.

Each panel uses a trimmed three-point grid (the panel endpoints plus
one midpoint) rather than the full Fig. 6 grid — enough to rank
policies without a full bench run; the full grids stay with
``python -m repro sweep``.
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys

from repro.experiments.params import MicrobenchParams
from repro.experiments.parallel import SweepTask, run_tasks
from repro.experiments.report import render_table
from repro.util import MB, mbps, ms

#: The staging policies competing (registry names, see repro.core.policy).
POLICY_NAMES = ("reactive", "predictive", "rich", "mobility")

#: Non-policy competitors: the paper's end-to-end single-stream baseline.
BASELINE_SYSTEMS = ("endtoend",)


def panel_points(panel: str) -> list[tuple[str, MicrobenchParams]]:
    """Three (label, params) points for one Fig. 6 panel.

    Panels b..f pin 1 MB chunks (instead of the Table III 2 MB
    default) so a small tournament file still holds enough chunks for
    staging depth to matter; panel a sweeps the chunk size itself.
    """
    base = MicrobenchParams().with_(chunk_size=MB)
    if panel == "a":
        return [(f"{s} MB", base.with_(chunk_size=int(s * MB)))
                for s in (0.25, 1.25, 10)]
    if panel == "b":
        return [(f"{s:g} s", base.with_(encounter_time=float(s)))
                for s in (3, 4, 12)]
    if panel == "c":
        return [(f"{s:g} s", base.with_(disconnection_time=float(s)))
                for s in (8, 32, 100)]
    if panel == "d":
        return [(f"{int(loss * 100)}%", base.with_(packet_loss=loss))
                for loss in (0.22, 0.27, 0.37)]
    if panel == "e":
        return [(f"{bw} Mbps", base.with_(internet_bandwidth=mbps(bw)))
                for bw in (60, 30, 15)]
    if panel == "f":
        return [(f"{latency} ms", base.with_(internet_latency=ms(latency)))
                for latency in (5, 20, 100)]
    raise ValueError(f"unknown panel {panel!r}")


def measure(panels: str = "bc", file_mb: float = 8.0, seeds: int = 1,
            scale: int = 1, jobs: int = 1) -> dict:
    """Run the tournament; one result dict per competitor.

    Returns ``{"competitors": {name: {...}}, "ranking": [names],
    "runs": N, ...}`` where each competitor carries its per-point mean
    times and gains plus the overall mean gain used for ranking.
    """
    file_size = int(file_mb * MB)
    seed_list = tuple(range(seeds))
    competitors = list(BASELINE_SYSTEMS) + list(POLICY_NAMES)

    tasks: list[SweepTask] = []
    keys: list[tuple[str, str]] = []  # (point key, competitor) per task
    for panel in panels:
        for label, params in panel_points(panel):
            point = f"{panel}/{label.replace(' ', '')}"
            point_params = params.with_(file_size=file_size)
            for seed in seed_list:
                tasks.append(SweepTask("xftp", point_params, seed, scale))
                keys.append((point, "xftp"))
                for system in BASELINE_SYSTEMS:
                    tasks.append(SweepTask(system, point_params, seed, scale))
                    keys.append((point, system))
                for policy in POLICY_NAMES:
                    tasks.append(SweepTask("softstage", point_params, seed,
                                           scale, policy=policy))
                    keys.append((point, policy))

    summaries = run_tasks(tasks, jobs=jobs)

    # point -> competitor -> [times over seeds]
    times: dict[str, dict[str, list[float]]] = {}
    for (point, competitor), summary in zip(keys, summaries):
        times.setdefault(point, {}).setdefault(competitor, []).append(
            summary.download_time
        )

    results: dict[str, dict] = {}
    for competitor in competitors:
        point_gains, point_times = {}, {}
        for point, by_competitor in times.items():
            xftp_time = statistics.mean(by_competitor["xftp"])
            comp_time = statistics.mean(by_competitor[competitor])
            point_times[point] = comp_time
            point_gains[point] = xftp_time / comp_time
        results[competitor] = {
            "mean_gain": statistics.mean(point_gains.values()),
            "mean_time": statistics.mean(point_times.values()),
            "point_gains": point_gains,
            "point_times": point_times,
        }
    ranking = sorted(results, key=lambda c: -results[c]["mean_gain"])
    return {
        "competitors": results,
        "ranking": ranking,
        "runs": len(tasks),
        "panels": panels,
        "file_mb": file_mb,
        "seeds": seeds,
        "scale": scale,
    }


def render(outcome: dict) -> str:
    results = outcome["competitors"]
    points = sorted(next(iter(results.values()))["point_gains"])
    rows = []
    for rank, name in enumerate(outcome["ranking"], start=1):
        entry = results[name]
        per_point = "  ".join(
            f"{point}={entry['point_gains'][point]:.2f}x" for point in points
        )
        rows.append((rank, name, f"{entry['mean_gain']:.2f}x",
                     f"{entry['mean_time']:.1f}", per_point))
    return render_table(
        f"Policy tournament (panels {outcome['panels']}, "
        f"{outcome['file_mb']:g} MB, {outcome['seeds']} seed(s); "
        f"gain = Xftp time / competitor time)",
        ("rank", "competitor", "mean gain", "mean time (s)", "per point"),
        rows,
    )


# -- pytest entry point ------------------------------------------------------


def test_policy_tournament(benchmark):
    from benchmarks.conftest import run_once

    outcome = run_once(
        benchmark,
        lambda: measure(panels="b", file_mb=8.0, seeds=1, scale=1,
                        jobs=max(int(os.environ.get("REPRO_BENCH_JOBS", "2")),
                                 2)),
    )
    print()
    print(render(outcome))
    results = outcome["competitors"]
    # Every competitor finished every point.
    for name, entry in results.items():
        assert all(t > 0 for t in entry["point_times"].values()), name
    # The paper's claim: reactive Eq. 1 staging beats the end-to-end
    # single-stream baseline.
    assert (results["reactive"]["mean_gain"]
            >= results["endtoend"]["mean_gain"]), outcome["ranking"]


# -- standalone driver (CI tournament smoke) ---------------------------------


def main(argv=None) -> int:
    from repro import perf

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--panels", default="bc",
                        help="Fig. 6 panels to sweep (string of a..f)")
    parser.add_argument("--file-mb", type=float, default=8.0)
    parser.add_argument("--seeds", type=int, default=1)
    parser.add_argument("--scale", type=int, default=1,
                        help="transport segment scale (coarser than 1 "
                             "distorts staging timing; keep 1 for ranking)")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--label", default="")
    parser.add_argument("--no-record", action="store_true",
                        help="measure and print only")
    parser.add_argument("--registry", action="store_true",
                        help="append one run-registry record per competitor "
                             "(tournament-<name>)")
    parser.add_argument("--registry-dir", metavar="DIR",
                        help="registry directory (default .repro_runs, or "
                             "REPRO_RUNS_DIR)")
    parser.add_argument("--check", action="store_true",
                        help="fail when reactive Eq. 1 loses to the "
                             "end-to-end baseline")
    args = parser.parse_args(argv)

    for panel in args.panels:
        panel_points(panel)  # validate before running anything
    outcome = measure(args.panels, args.file_mb, args.seeds, args.scale,
                      args.jobs)
    print(render(outcome))

    if not args.no_record:
        metrics = {"runs": outcome["runs"]}
        for name, entry in outcome["competitors"].items():
            metrics[f"gain_{name}"] = entry["mean_gain"]
            metrics[f"time_{name}"] = entry["mean_time"]
        perf.record("policy_tournament", metrics, label=args.label)
        print(f"\nrecorded to {perf.bench_path('policy_tournament')}")

    if args.registry:
        from repro.obs.registry import RunRegistry

        registry = RunRegistry(args.registry_dir)
        meta = {"panels": args.panels, "file_mb": args.file_mb,
                "seeds": args.seeds, "scale": args.scale}
        for name, entry in outcome["competitors"].items():
            metrics = {"gain": entry["mean_gain"],
                       "mean_time": entry["mean_time"]}
            for point, value in entry["point_gains"].items():
                metrics[f"gain.{point.replace('/', '_')}"] = value
            record = registry.append(
                f"tournament-{name}", "tournament", metrics, meta=meta,
                policy=name if name in POLICY_NAMES else "",
            )
            print(f"registry: {record.rec_id}")

    if args.check:
        results = outcome["competitors"]
        if (results["reactive"]["mean_gain"]
                < results["endtoend"]["mean_gain"]):
            print("\nTOURNAMENT REGRESSION: reactive Eq. 1 "
                  f"({results['reactive']['mean_gain']:.2f}x) lost to the "
                  f"end-to-end baseline "
                  f"({results['endtoend']['mean_gain']:.2f}x)",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
