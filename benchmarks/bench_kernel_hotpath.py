"""Kernel hot-path microbench: events/sec and heap pushes per packet.

Pumps a fixed number of packets through the two packet paths the whole
evaluation stands on — a wired point-to-point link and a half-duplex
wireless link — and measures the event-loop throughput (kernel steps
per wall second), the heap pushes per delivered packet, and the
wall-clock of one small fig5-style ``run_download``.

Runs two ways:

- ``pytest benchmarks/bench_kernel_hotpath.py`` — under
  pytest-benchmark, with the shared warm-up/median policy from
  ``conftest.run_once``;
- ``PYTHONPATH=src python -m benchmarks.bench_kernel_hotpath`` — the
  standalone driver CI uses: repeats the measurement, takes medians,
  appends them to ``BENCH_kernel.json`` via :mod:`repro.perf`, and
  with ``--check`` fails on a regression against the recorded
  baseline (events/sec: same-machine entries only, 30% tolerance;
  pushes/packet: machine-independent, 5% tolerance).
"""

from __future__ import annotations

import argparse
import statistics
import sys
from time import perf_counter

from repro.net import Host, Link, Network, WirelessLink
from repro.sim import Simulator
from repro.util import mbps, ms
from repro.xia import DagAddress, HID
from repro.xia.packet import Packet, PacketType

PACKET_BYTES = 1500
DEFAULT_PACKETS = 20_000


class _Sink(Host):
    """Counts DATA packets; no processing cost, no closures."""

    def __init__(self, sim, name):
        super().__init__(sim, name, HID(name))
        self.count = 0
        self.register_handler(PacketType.DATA, self._on_data)

    def _on_data(self, packet, port):
        self.count += 1


def _build(link_kind: str, packets: int):
    sim = Simulator()
    queue = float((packets + 1) * PACKET_BYTES)  # flood without tail drops
    if link_kind == "wireless":
        link = WirelessLink(sim, "w", mac_rate_bps=mbps(300), delay=ms(1),
                            queue_bytes=queue)
    else:
        link = Link(sim, "l", bandwidth_bps=mbps(1000), delay=ms(1),
                    queue_bytes=queue)
    net = Network(sim)
    a = net.add_device(_Sink(sim, "a"))
    b = net.add_device(_Sink(sim, "b"))
    net.connect(a, b, link)
    return sim, a, b


def pump(link_kind: str, packets: int = DEFAULT_PACKETS) -> dict:
    """Flood ``packets`` frames through one link; return kernel numbers.

    The whole batch is enqueued up front (the queue is sized to take
    it), so the measured loop is purely the kernel + link pipeline:
    serialize, (wireless: contend for the medium), propagate, deliver.
    No processes, no timeouts, no transport — the two inner-loop event
    types (``tx-done``, ``arrival``) dominate exactly as they do in a
    full download's profile.
    """
    sim, a, b = _build(link_kind, packets)
    dst = DagAddress.host(b.hid)
    src = DagAddress.host(a.hid)
    for seq in range(packets):
        a.send(Packet(PacketType.DATA, dst=dst, src=src,
                      size_bytes=PACKET_BYTES, seq=seq, payload={}))
    started = perf_counter()
    sim.run()
    wall = perf_counter() - started
    delivered = b.count
    steps = getattr(sim, "steps_processed", None)
    if steps is None:
        # Pre-pool kernels: every push is eventually popped once the
        # queue drains, so pushes == steps at quiescence.
        steps = sim.heap_pushes
    return {
        "kind": link_kind,
        "packets": packets,
        "delivered": delivered,
        "wall_s": wall,
        "steps": steps,
        "heap_pushes": sim.heap_pushes,
        "events_per_sec": steps / wall if wall > 0 else 0.0,
        "pushes_per_packet": sim.heap_pushes / delivered if delivered else 0.0,
        "pool_reuses": getattr(sim, "pool_reuses", 0),
        "pool_allocs": getattr(sim, "pool_allocs", 0),
    }


def fig5_download_wall(file_mb: float = 4.0) -> float:
    """Wall-clock seconds of one small fig5-style full-stack download."""
    from repro.experiments.params import MicrobenchParams
    from repro.experiments.runner import run_download
    from repro.util import MB

    params = MicrobenchParams(file_size=int(file_mb * MB))
    started = perf_counter()
    run_download("softstage", params=params, seed=0)
    return perf_counter() - started


def measure(packets: int = DEFAULT_PACKETS, rounds: int = 3,
            download_mb: float = 4.0) -> dict:
    """Warm up once, repeat ``rounds`` times, return median metrics."""
    pump("wired", max(packets // 10, 100))  # shared warm-up
    wired = [pump("wired", packets) for _ in range(rounds)]
    wireless = [pump("wireless", packets) for _ in range(rounds)]

    def med(samples, key):
        return statistics.median(s[key] for s in samples)

    return {
        "packets": packets,
        "rounds": rounds,
        "wired.events_per_sec": med(wired, "events_per_sec"),
        "wired.pushes_per_packet": med(wired, "pushes_per_packet"),
        "wireless.events_per_sec": med(wireless, "events_per_sec"),
        "wireless.pushes_per_packet": med(wireless, "pushes_per_packet"),
        "wireless.pool_reuses": med(wireless, "pool_reuses"),
        "download_wall_s": fig5_download_wall(download_mb),
    }


# -- pytest entry points -----------------------------------------------------


def test_kernel_hotpath_wired(benchmark):
    from benchmarks.conftest import run_once

    result = run_once(benchmark, lambda: pump("wired", 5_000),
                      warmup_rounds=1)
    assert result["delivered"] == 5_000
    print()
    print(f"wired: {result['events_per_sec']:,.0f} events/s, "
          f"{result['pushes_per_packet']:.2f} pushes/packet")


def test_kernel_hotpath_wireless(benchmark):
    from benchmarks.conftest import run_once

    result = run_once(benchmark, lambda: pump("wireless", 5_000),
                      warmup_rounds=1)
    assert result["delivered"] == 5_000
    print()
    print(f"wireless: {result['events_per_sec']:,.0f} events/s, "
          f"{result['pushes_per_packet']:.2f} pushes/packet")


# -- standalone driver (CI perf smoke) ---------------------------------------


def main(argv=None) -> int:
    from repro import perf

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--packets", type=int, default=DEFAULT_PACKETS)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--download-mb", type=float, default=4.0)
    parser.add_argument("--label", default="")
    parser.add_argument("--no-record", action="store_true",
                        help="measure and print only")
    parser.add_argument("--check", action="store_true",
                        help="fail on regression vs the recorded baseline")
    args = parser.parse_args(argv)

    metrics = measure(args.packets, args.rounds, args.download_mb)
    for key in sorted(metrics):
        value = metrics[key]
        print(f"{key:>28} = {value:,.2f}" if isinstance(value, float)
              else f"{key:>28} = {value}")

    failures = []
    if args.check:
        # Deterministic metric: any machine's entries count.
        for key in ("wired.pushes_per_packet", "wireless.pushes_per_packet"):
            ok, base = perf.check_regression(
                "kernel", key, metrics[key], allowed_drop=0.05,
                same_machine=False, higher_is_better=False,
            )
            if not ok:
                failures.append(f"{key}: {metrics[key]:.3f} vs baseline {base:.3f}")
        # Wall-clock metric: same-machine entries only, 30% tolerance.
        for key in ("wired.events_per_sec", "wireless.events_per_sec"):
            ok, base = perf.check_regression(
                "kernel", key, metrics[key], allowed_drop=0.30,
                same_machine=True, higher_is_better=True,
            )
            if not ok:
                failures.append(
                    f"{key}: {metrics[key]:,.0f} is >30% below baseline {base:,.0f}"
                )

    if not args.no_record:
        perf.record("kernel", metrics, label=args.label)
        print(f"\nrecorded to {perf.bench_path('kernel')}")

    if failures:
        print("\nPERF REGRESSION:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
