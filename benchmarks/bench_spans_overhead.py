"""Span-collection overhead on the Fig. 5 benchmark.

The span layer must be cheap enough to leave on during experiments:
running fig5 with a live ``SpanBuilder`` attached has to stay within
10% of the uninstrumented wall-clock.  With nothing attached the bus
is inert (``bus.active`` is False) and every emit site skips event
construction entirely, so the uninstrumented run is the true baseline.
"""

from time import perf_counter

from repro.experiments.xia_benchmark import run_all


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        started = perf_counter()
        fn()
        best = min(best, perf_counter() - started)
    return best


def test_fig5_span_overhead_within_ten_percent(benchmark):
    # Warm up caches / imports outside the timed region.
    run_all(seed=1)

    plain = _best_of(lambda: run_all(seed=1))
    spanned = _best_of(lambda: run_all(seed=1, spans=True))
    overhead = spanned / plain - 1.0

    def report():
        return plain, spanned

    benchmark.pedantic(report, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(f"fig5 plain    : {plain:.3f} s")
    print(f"fig5 +spans   : {spanned:.3f} s  (overhead {overhead:+.1%})")
    assert overhead <= 0.10, f"span overhead {overhead:.1%} exceeds 10%"
