"""XIA data-plane microbench: packets/sec through a multi-hop staging path.

Floods DATA packets both ways through the evaluation's forwarding
chain — ``client == edge router == core router == origin router ==
server``, the edge carrying an XCache exactly like a staging edge
network — so every packet pays the full per-hop cost of the XIA data
plane: DAG candidate walk, visited-set update, principal dispatch and
forwarding-table lookup.  The kernel and link layer were taken to
their event floor in the previous round (``bench_kernel_hotpath``);
what this bench moves is the cost *inside* ``XIARouter.handle_packet``.

A second measurement runs one small full-stack SoftStage download with
the kernel profiler installed and reports its wall-clock plus the
forwarding-decision-cache hit rate (0 on pre-fast-path builds).

Runs two ways:

- ``pytest benchmarks/bench_dataplane.py`` — under pytest-benchmark
  with the shared warm-up/median policy from ``conftest.run_once``;
- ``PYTHONPATH=src python -m benchmarks.bench_dataplane`` — the
  standalone driver CI uses: repeats the measurement, takes medians,
  appends them to ``BENCH_dataplane.json`` via :mod:`repro.perf`, and
  with ``--check`` fails on a regression against the recorded
  baseline (packets/sec: same-machine entries only, 30% tolerance;
  steps/packet: machine-independent, 5% tolerance).
"""

from __future__ import annotations

import argparse
import statistics
import sys
from time import perf_counter

from repro.net import Host, Link, Network
from repro.net.link import Port
from repro.sim import Simulator
from repro.util import mbps, ms
from repro.xia import CID, DagAddress, HID, NID
from repro.xia.packet import Packet, PacketType
from repro.xia.router import XIARouter

PACKET_BYTES = 1500
DEFAULT_PACKETS = 10_000  # per direction


class _Sink(Host):
    """Counts DATA packets; no processing cost, no closures."""

    def __init__(self, sim, name):
        super().__init__(sim, name, HID(name))
        self.count = 0
        self.register_handler(PacketType.DATA, self._on_data)

    def _on_data(self, packet, port):
        self.count += 1


class _EdgeStore:
    """A content store holding *other* chunks: every CID candidate at
    the edge pays the store lookup and misses, as during staging."""

    def has(self, cid):
        return False

    def peek(self, cid):
        return None


def _build():
    """client == edge == core == origin == server, all wired."""
    sim = Simulator()
    net = Network(sim)
    client = net.add_device(_Sink(sim, "client"))
    server = net.add_device(_Sink(sim, "server"))
    routers = {}
    for name in ("edge", "core", "origin"):
        router = net.add_device(
            XIARouter(sim, name, HID(name), NID(f"{name}-net"))
        )
        net.register_network(router.nid, router)
        routers[name] = router

    def wire(a, b, label):
        queue = float(4 * DEFAULT_PACKETS * PACKET_BYTES)
        net.connect(a, b, Link(sim, label, bandwidth_bps=mbps(10_000),
                               delay=ms(1), queue_bytes=queue))

    wire(client, routers["edge"], "client-edge")
    wire(routers["edge"], routers["core"], "edge-core")
    wire(routers["core"], routers["origin"], "core-origin")
    wire(routers["origin"], server, "origin-server")
    net.build_static_routes()
    # The staging edge runs an XCache: CID candidates are checked
    # against the store on the way through (and miss).
    routers["edge"].content_store = _EdgeStore()
    routers["edge"].cid_request_handler = lambda packet, port: None
    return sim, net, client, server, routers


def pump(packets: int = DEFAULT_PACKETS) -> dict:
    """Flood ``packets`` DATA frames each way along the chain.

    Upstream packets carry the staging shape ``CID | NID : HID``
    (origin fallback), downstream packets the host shape ``NID : HID``
    — the two DAGs every SoftStage transfer routes on.  Delivery
    requires three full ``handle_packet`` walks per packet.
    """
    sim, net, client, server, routers = _build()
    cid = CID(b"dataplane-bench-chunk")
    up_dst = DagAddress.content(cid, routers["origin"].nid, server.hid)
    up_src = DagAddress.host(client.hid, routers["edge"].nid)
    down_dst = DagAddress.host(client.hid, routers["edge"].nid)
    down_src = DagAddress.host(server.hid, routers["origin"].nid)
    for seq in range(packets):
        client.send(Packet(PacketType.DATA, dst=up_dst, src=up_src,
                           size_bytes=PACKET_BYTES, seq=seq, payload={}))
        server.send(Packet(PacketType.DATA, dst=down_dst, src=down_src,
                           size_bytes=PACKET_BYTES, seq=seq, payload={}))
    started = perf_counter()
    sim.run()
    wall = perf_counter() - started
    delivered = client.count + server.count
    forwarded = sum(r.forwarded_packets for r in routers.values())
    steps = getattr(sim, "steps_processed", None) or sim.heap_pushes
    hits = getattr(sim, "fwd_cache_hits", 0)
    misses = getattr(sim, "fwd_cache_misses", 0)
    return {
        "packets": packets,
        "delivered": delivered,
        "forwarded": forwarded,
        "wall_s": wall,
        "steps": steps,
        "packets_per_sec": delivered / wall if wall > 0 else 0.0,
        "steps_per_packet": steps / delivered if delivered else 0.0,
        "fwd_cache_hits": hits,
        "fwd_cache_misses": misses,
        "fwd_cache_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
    }


def staging_download(file_mb: float = 4.0) -> dict:
    """One profiled full-stack SoftStage download (multi-hop staging)."""
    from repro.experiments.params import MicrobenchParams
    from repro.experiments.runner import run_download
    from repro.util import MB

    params = MicrobenchParams(file_size=int(file_mb * MB))
    started = perf_counter()
    result = run_download("softstage", params=params, seed=0, profile=True)
    wall = perf_counter() - started
    report = result.profile.report()
    return {
        "download_wall_s": wall,
        "download_time_s": result.download_time,
        "fwd_cache_hit_rate": float(report.get("fwd_cache_hit_rate", 0.0)),
        "packet_pool_reuse_rate": float(
            report.get("packet_pool_reuse_rate", 0.0)
        ),
    }


def measure(packets: int = DEFAULT_PACKETS, rounds: int = 3,
            download_mb: float = 4.0) -> dict:
    """Warm up once, repeat ``rounds`` times, return median metrics."""
    pump(max(packets // 10, 100))  # warm-up
    samples = [pump(packets) for _ in range(rounds)]

    def med(key):
        return statistics.median(s[key] for s in samples)

    download = staging_download(download_mb)
    return {
        "packets": packets,
        "rounds": rounds,
        "pump.packets_per_sec": med("packets_per_sec"),
        "pump.steps_per_packet": med("steps_per_packet"),
        "pump.fwd_cache_hit_rate": med("fwd_cache_hit_rate"),
        "download_wall_s": download["download_wall_s"],
        "download.fwd_cache_hit_rate": download["fwd_cache_hit_rate"],
        "download.packet_pool_reuse_rate": download["packet_pool_reuse_rate"],
    }


# -- pytest entry points -----------------------------------------------------


def test_dataplane_pump(benchmark):
    from benchmarks.conftest import run_once

    result = run_once(benchmark, lambda: pump(5_000), warmup_rounds=1)
    assert result["delivered"] == 10_000
    print()
    print(f"dataplane: {result['packets_per_sec']:,.0f} packets/s, "
          f"{result['steps_per_packet']:.2f} steps/packet, "
          f"cache hit rate {result['fwd_cache_hit_rate']:.1%}")


# -- standalone driver (CI perf smoke) ---------------------------------------


def main(argv=None) -> int:
    from repro import perf

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--packets", type=int, default=DEFAULT_PACKETS)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--download-mb", type=float, default=4.0)
    parser.add_argument("--label", default="")
    parser.add_argument("--no-record", action="store_true",
                        help="measure and print only")
    parser.add_argument("--check", action="store_true",
                        help="fail on regression vs the recorded baseline")
    parser.add_argument("--registry", action="store_true",
                        help="also append the medians to the run registry "
                             "(.repro_runs, or REPRO_RUNS_DIR)")
    args = parser.parse_args(argv)

    metrics = measure(args.packets, args.rounds, args.download_mb)
    for key in sorted(metrics):
        value = metrics[key]
        print(f"{key:>32} = {value:,.2f}" if isinstance(value, float)
              else f"{key:>32} = {value}")

    failures = []
    if args.check:
        # Deterministic metric: any machine's entries count.
        ok, base = perf.check_regression(
            "dataplane", "pump.steps_per_packet",
            metrics["pump.steps_per_packet"], allowed_drop=0.05,
            same_machine=False, higher_is_better=False,
        )
        if not ok:
            failures.append(
                f"pump.steps_per_packet: {metrics['pump.steps_per_packet']:.3f}"
                f" vs baseline {base:.3f}"
            )
        # Wall-clock metric: same-machine entries only, 30% tolerance.
        ok, base = perf.check_regression(
            "dataplane", "pump.packets_per_sec",
            metrics["pump.packets_per_sec"], allowed_drop=0.30,
            same_machine=True, higher_is_better=True,
        )
        if not ok:
            failures.append(
                f"pump.packets_per_sec: {metrics['pump.packets_per_sec']:,.0f}"
                f" is >30% below baseline {base:,.0f}"
            )

    if not args.no_record:
        perf.record("dataplane", metrics, label=args.label)
        print(f"\nrecorded to {perf.bench_path('dataplane')}")

    if args.registry:
        from repro.obs.registry import RunRegistry

        record = RunRegistry().append(
            "bench-dataplane", "bench", metrics,
            meta={"label": args.label} if args.label else None,
        )
        print(f"registry: {record.rec_id} appended to {RunRegistry().path}")

    if failures:
        print("\nPERF REGRESSION:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
