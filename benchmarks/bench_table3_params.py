"""Table III: parameter settings.

Prints the parameter registry and validates that the experiment
defaults match the paper's defaults exactly.
"""

from benchmarks.conftest import run_once
from repro.experiments.params import (
    CHUNK_SIZE_LADDER,
    MicrobenchParams,
    PARAMETER_TABLE,
)
from repro.experiments.report import render_table
from repro.util import MB, mbps, ms


def test_table3_parameters(benchmark):
    rows = run_once(
        benchmark,
        lambda: [
            (row.name, str(row.default), row.note,
             ", ".join(str(c) for c in row.candidates))
            for row in PARAMETER_TABLE
        ],
    )
    print()
    print(render_table(
        "Table III: parameter settings",
        ("parameter", "default", "note", "candidates"),
        rows,
    ))

    defaults = MicrobenchParams()
    assert defaults.chunk_size == 2 * MB
    assert defaults.encounter_time == 12.0
    assert defaults.disconnection_time == 8.0
    assert defaults.packet_loss == 0.27
    assert defaults.internet_bandwidth == mbps(60)
    assert defaults.internet_latency == ms(20)
    assert defaults.file_size == 64 * MB

    # The Fig. 6(a) chunk ladder matches the YouTube-clip framing.
    assert CHUNK_SIZE_LADDER["1080p"] == 2 * MB
    assert CHUNK_SIZE_LADDER["2160p"] == 10 * MB
    assert len(PARAMETER_TABLE) == 6
