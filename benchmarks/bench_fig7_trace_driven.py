"""Fig. 7: trace-driven mobile experiments.

Two synthesized Beijing wardriving traces (Fig. 7(a) patterns); the
paper's Fig. 7(b): SoftStage completes ~2x the content objects of Xftp
within the same drive.
"""

import os

from benchmarks.conftest import run_once
from repro.experiments.report import render_table
from repro.experiments.tracedriven import PAPER_OBJECT_RATIO, run_all


def test_fig7_trace_driven(benchmark):
    quick = bool(os.environ.get("REPRO_BENCH_QUICK"))
    duration = 150.0 if quick else 300.0
    seeds = (0,) if quick else (0, 1)
    scale = 2  # trace runs move a lot of data; coarse segments

    results = run_once(
        benchmark,
        lambda: run_all(seeds=seeds, duration=duration, segment_scale=scale),
    )
    print()
    print(render_table(
        "Fig. 7(b): content objects downloaded within the trace",
        ("trace", "coverage", "Xftp chunks", "SoftStage chunks",
         "ratio", "paper"),
        [
            (r.trace_name, f"{r.coverage_fraction:.0%}", r.xftp_chunks,
             r.softstage_chunks, r.object_ratio, PAPER_OBJECT_RATIO)
            for r in results
        ],
    ))

    for result in results:
        # SoftStage downloads substantially more on both traces
        # (paper: "almost twice").
        assert result.object_ratio > 1.4, (
            result.trace_name, result.object_ratio,
        )
