"""Ablation: analytic flow model vs packet-level transport.

The :class:`~repro.transport.flowmodel.FlowModel` predicts transfer
durations in closed form; this bench checks it against the
packet-level transport on clean paths (where the Mathis assumptions
hold), and checks the segment-scaling knob's invariance on a loss-free
path.
"""

from benchmarks.conftest import run_once
from repro.experiments.report import render_table
from repro.experiments.xia_benchmark import _build_segment
from repro.transport import FlowModel, PathCharacteristics, XIA_STREAM
from repro.transport.xstream import XstreamClient
from repro.util import MB, mbps


def packet_level_time(size_bytes: int, seed: int = 1) -> float:
    sim, publisher, endpoint = _build_segment("wired", XIA_STREAM, seed)
    content = publisher.publish_synthetic("blob", size_bytes, size_bytes)
    client = XstreamClient(sim, endpoint, XIA_STREAM)
    process = sim.process(client.download(content.addresses[0]))
    result = sim.run(until=process)
    return result.duration


def analytic_time(size_bytes: int) -> float:
    model = FlowModel(XIA_STREAM)
    # The wired bench segment: 100 Mbps access, ~0.5 ms RTT with
    # processing, no loss.
    path = PathCharacteristics(bottleneck_bps=mbps(100), rtt=0.0012)
    return model.transfer_time(size_bytes, path, include_request=True)


def test_flow_model_agrees_with_packet_level(benchmark):
    sizes = (1 * MB, 4 * MB, 10 * MB)

    def harness():
        return [
            (size, packet_level_time(size), analytic_time(size))
            for size in sizes
        ]

    rows = run_once(benchmark, harness)
    print()
    print(render_table(
        "Flow model vs packet level (wired, loss-free)",
        ("bytes", "packet-level (s)", "analytic (s)"),
        rows,
    ))
    for size, measured, predicted in rows:
        # Within 25% on clean paths.
        assert abs(measured - predicted) / measured < 0.25, (
            size, measured, predicted,
        )


def test_segment_scaling_invariance(benchmark):
    """Coarse segments preserve loss-free transfer times (~within 10%)."""

    def harness():
        results = []
        for scale in (1, 2, 4):
            config = XIA_STREAM.scaled(scale)
            sim, publisher, endpoint = _build_segment("wired", config, seed=1)
            content = publisher.publish_synthetic("blob", 8 * MB, 8 * MB)
            client = XstreamClient(sim, endpoint, config)
            process = sim.process(client.download(content.addresses[0]))
            result = sim.run(until=process)
            results.append((scale, result.duration))
        return results

    rows = run_once(benchmark, harness)
    print()
    print(render_table(
        "Segment-scale invariance (8 MB wired, loss-free)",
        ("scale", "duration (s)"),
        rows,
    ))
    baseline = rows[0][1]
    for scale, duration in rows[1:]:
        assert abs(duration - baseline) / baseline < 0.10, (scale, duration)
