"""Shared bench configuration.

Profiles (select via environment):

- default          — 32 MB downloads, seeds (0, 1), exact segments.
                     The paper uses 64 MB; halving keeps the full
                     suite under an hour without changing any trend
                     (gains are time ratios).
- REPRO_BENCH_QUICK=1 — 16 MB, one seed, coarse segments (~minutes).
- REPRO_BENCH_PAPER=1 — the paper's full 64 MB, three seeds.

Every bench prints the regenerated table with the paper's value
alongside, and asserts the *shape* (who wins, trend direction), never
absolute numbers.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.microbench import BenchProfile
from repro.util import MB


def bench_profile() -> BenchProfile:
    # REPRO_BENCH_JOBS=n fans sweep runs over n worker processes;
    # results are byte-identical to sequential (see
    # repro.experiments.parallel), so it composes with any profile.
    jobs = max(int(os.environ.get("REPRO_BENCH_JOBS", "1")), 1)
    if os.environ.get("REPRO_BENCH_QUICK"):
        return BenchProfile(
            file_size=16 * MB, seeds=(0,), segment_scale=2, jobs=jobs
        )
    if os.environ.get("REPRO_BENCH_PAPER"):
        return BenchProfile(
            file_size=64 * MB, seeds=(0, 1, 2), segment_scale=1, jobs=jobs
        )
    return BenchProfile(file_size=32 * MB, seeds=(0, 1), segment_scale=1, jobs=jobs)


@pytest.fixture(scope="session")
def profile() -> BenchProfile:
    return bench_profile()


def run_once(benchmark, fn, rounds=None, warmup_rounds=None):
    """Run a harness under pytest-benchmark timing.

    Historically one shot (rounds=1, no warm-up) — right for the long
    table-regenerating harnesses, too noisy for kernel microbenches.
    Callers (or the environment) can opt into a shared warm-up and
    median-of-N repeats:

    - ``REPRO_BENCH_ROUNDS=n`` — repeat n times; pytest-benchmark
      reports the median alongside min/max;
    - ``REPRO_BENCH_WARMUP=n`` — n untimed warm-up rounds first
      (fills allocator pools, imports, and branch caches).

    Explicit arguments win over the environment.
    """
    if rounds is None:
        rounds = int(os.environ.get("REPRO_BENCH_ROUNDS", "1"))
    if warmup_rounds is None:
        warmup_rounds = int(os.environ.get("REPRO_BENCH_WARMUP", "0"))
    return benchmark.pedantic(
        fn, rounds=max(rounds, 1), iterations=1,
        warmup_rounds=max(warmup_rounds, 0),
    )


def strict_shapes(profile: BenchProfile) -> bool:
    """Whether trend-direction assertions should be enforced.

    The quick smoke profile (small file, coarse segments, one seed)
    verifies that everything *runs* and SoftStage wins; the full
    profiles additionally assert the paper's trend directions, which
    need the real download length and exact segments to show.
    """
    return profile.segment_scale == 1 and profile.file_size >= 32 * MB
