"""Fig. 6(b): performance gain vs encounter time (3/4/12 s).

Paper: 1.55x at 3 s rising to 1.77x at 12 s — longer encounters mean
fewer active-session migrations, so more airtime turns into content.
"""

from benchmarks.conftest import run_once, strict_shapes
from repro.experiments.microbench import sweep_encounter_time


def test_fig6b_encounter_time(benchmark, profile):
    series = run_once(benchmark, lambda: sweep_encounter_time(profile))
    print()
    print(series.render())

    for row in series.rows:
        assert row.gain > 1.0, (row.label, row.gain)
    if strict_shapes(profile):
        # Gain rises with encounter time (3 s -> 12 s).
        assert series.rows[-1].gain > series.rows[0].gain
