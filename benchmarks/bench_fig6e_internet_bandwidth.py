"""Fig. 6(e): performance gain vs Internet bottleneck bandwidth.

Paper: the headline panel — gain explodes from 1.77x at 60 Mbps to
9.94x at 15 Mbps, because the loss-shaped bottleneck devastates the
long-RTT end-to-end flow while SoftStage's short staging flow keeps
the edge fed (especially through disconnections).
"""

from benchmarks.conftest import run_once, strict_shapes
from repro.experiments.microbench import sweep_internet_bandwidth


def test_fig6e_internet_bandwidth(benchmark, profile):
    series = run_once(benchmark, lambda: sweep_internet_bandwidth(profile))
    print()
    print(series.render())

    for row in series.rows:
        assert row.gain > 1.0, (row.label, row.gain)
    if strict_shapes(profile):
        gains = [row.gain for row in series.rows]  # 60, 30, 15 Mbps
        # Gain rises monotonically as the Internet slows down...
        assert gains[0] < gains[1] < gains[2], gains
        # ...and the slow-Internet end is a multiple of the fast end.
        assert gains[2] > 2.0 * gains[0], gains
