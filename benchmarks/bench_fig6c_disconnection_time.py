"""Fig. 6(c): performance gain vs disconnection time (8/32/100 s).

Paper: roughly flat ~1.7x — the VNF finishes staging well within even
the shortest gap, so longer gaps do not change the gain.
"""

from benchmarks.conftest import run_once, strict_shapes
from repro.experiments.microbench import sweep_disconnection_time


def test_fig6c_disconnection_time(benchmark, profile):
    series = run_once(benchmark, lambda: sweep_disconnection_time(profile))
    print()
    print(series.render())

    for row in series.rows:
        assert row.gain > 1.0, (row.label, row.gain)
    if strict_shapes(profile):
        # Flat-ish: max/min gain within a 1.6x band (the paper's panel
        # is visually flat; seeds add noise).
        gains = [row.gain for row in series.rows]
        assert max(gains) / min(gains) < 1.6, gains
