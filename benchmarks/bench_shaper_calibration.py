"""Calibration check: the loss-based Internet bandwidth shaper.

Regenerates a few points of the drop-rate -> wired-throughput curve
that :data:`repro.net.emulation.XIA_WIRED_LOSS_TABLE` hardcodes, and
verifies the table's interpolation still matches this build of the
transport (the paper calibrated its NIC drop rates against its
prototype the same way).
"""

from benchmarks.conftest import run_once
from repro.experiments.report import render_table
from repro.experiments.xia_benchmark import _build_segment
from repro.net.emulation import loss_rate_for_wired_target
from repro.net.loss import BernoulliLoss
from repro.sim import RandomStreams
from repro.transport import XIA_STREAM
from repro.transport.xstream import XstreamClient
from repro.util import MB, mbps


def wired_throughput_at(drop_rate: float, seed: int) -> float:
    sim, publisher, endpoint = _build_segment("wired", XIA_STREAM, seed)
    if drop_rate > 0:
        rng = RandomStreams(seed).stream("shaper-check")
        # Inject loss at the client-side NIC, like the paper's setup.
        link = endpoint.host.ports[0].link
        link.forward.loss = BernoulliLoss(drop_rate, rng)
        link.backward.loss = BernoulliLoss(drop_rate, rng)
    content = publisher.publish_synthetic("blob", 10 * MB, 10 * MB)
    client = XstreamClient(sim, endpoint, XIA_STREAM)
    process = sim.process(client.download(content.addresses[0]))
    return sim.run(until=process).throughput_bps


def test_shaper_calibration(benchmark):
    targets = (mbps(30), mbps(15))

    def harness():
        rows = []
        for target in targets:
            rate = loss_rate_for_wired_target(target)
            measured = sum(
                wired_throughput_at(rate, seed) for seed in (0, 1, 2)
            ) / 3
            rows.append((target / 1e6, rate, measured / 1e6))
        return rows

    rows = run_once(benchmark, harness)
    print()
    print(render_table(
        "Loss-shaper calibration (wired reference flow)",
        ("target (Mbps)", "drop rate", "measured (Mbps)"),
        rows,
    ))
    for target_mbps, rate, measured_mbps in rows:
        # The cliff region is steep and seed-sensitive; the shaper only
        # needs to land the reference flow in the right regime.
        assert 0.3 * target_mbps < measured_mbps < 2.5 * target_mbps, (
            target_mbps, measured_mbps,
        )
