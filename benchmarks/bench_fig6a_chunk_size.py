"""Fig. 6(a): performance gain vs chunk size (0.25 - 10 MB).

Paper: SoftStage consistently beats Xftp; gain 1.59x at the smallest
chunks rising to 1.96x at 10 MB (per-chunk control-plane overhead
weighs more with smaller chunks).
"""

from benchmarks.conftest import run_once, strict_shapes
from repro.experiments.microbench import sweep_chunk_size


def test_fig6a_chunk_size(benchmark, profile):
    series = run_once(benchmark, lambda: sweep_chunk_size(profile))
    print()
    print(series.render())

    # SoftStage wins at every chunk size.
    for row in series.rows:
        assert row.gain > 1.0, (row.label, row.gain)
    if strict_shapes(profile):
        # The small-chunk end is diluted by per-chunk overheads: the
        # best observed gain is past the smallest chunk size (paper:
        # gain grows from 0.25 MB upward).
        best = max(series.rows, key=lambda r: r.gain)
        assert best is not series.rows[0]
