"""Fig. 6(f): performance gain vs Internet latency (5-100 ms).

Paper: gain grows 1.38x -> 2.3x as the RTT to the origin grows — a
slower-feeling Internet makes staging to a closer location pay more.
"""

from benchmarks.conftest import run_once, strict_shapes
from repro.experiments.microbench import sweep_internet_latency


def test_fig6f_internet_latency(benchmark, profile):
    series = run_once(benchmark, lambda: sweep_internet_latency(profile))
    print()
    print(series.render())

    # From 20 ms upward SoftStage clearly wins.
    for row in series.rows[2:]:
        assert row.gain > 1.0, (row.label, row.gain)
    if strict_shapes(profile):
        # Gain rises with Internet latency over the sweep.
        gains = [row.gain for row in series.rows]
        assert gains[-1] > gains[0], gains
