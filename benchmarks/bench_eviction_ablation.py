"""Ablation: cache-eviction policies under staged-content pressure.

§V leaves "content cache management policy" to future work; this bench
quantifies how the standard policies behave when an edge XCache is too
small for the working set: staged (pinned) chunks must survive while
opportunistically cached ones churn.
"""

from benchmarks.conftest import run_once
from repro.experiments.report import render_table
from repro.xcache import Chunk, ContentStore, make_eviction_policy


def exercise_policy(policy_name: str, capacity_chunks: int = 64) -> dict:
    """A Zipf-ish re-reference workload over a bounded store."""
    import random

    rng = random.Random(17)
    chunk_bytes = 1_000_000
    store = ContentStore(
        capacity_bytes=capacity_chunks * chunk_bytes,
        eviction=make_eviction_policy(
            policy_name, **({"ttl": 30.0} if policy_name == "ttl" else {})
        ),
        clock=lambda: clock[0],
    )
    clock = [0.0]
    catalog = [Chunk.synthetic("lib", i, chunk_bytes) for i in range(256)]
    # Pin a staged window that must never be evicted.
    for chunk in catalog[:8]:
        store.put(chunk, pin=True)

    for step in range(4000):
        clock[0] = step * 0.05
        # Zipf-ish: 80% of accesses to 20% of the catalog.
        if rng.random() < 0.8:
            index = rng.randrange(len(catalog) // 5)
        else:
            index = rng.randrange(len(catalog))
        chunk = catalog[index]
        from repro.errors import CacheMiss

        try:
            store.get(chunk.cid)
        except CacheMiss:
            store.put(chunk)
    pinned_ok = all(store.has(c.cid) for c in catalog[:8])
    return {
        "policy": policy_name,
        "hit_ratio": store.hit_ratio,
        "evictions": store.evictions,
        "pinned_survived": pinned_ok,
    }


def test_eviction_ablation(benchmark):
    policies = ("lru", "lfu", "fifo", "random", "ttl")
    results = run_once(
        benchmark, lambda: [exercise_policy(name) for name in policies]
    )
    print()
    print(render_table(
        "Cache eviction ablation (Zipf re-reference, 64-chunk store)",
        ("policy", "hit ratio", "evictions", "pinned survived"),
        [(r["policy"], r["hit_ratio"], r["evictions"], r["pinned_survived"])
         for r in results],
    ))

    by_name = {r["policy"]: r for r in results}
    # Staged (pinned) chunks survive under every policy.
    assert all(r["pinned_survived"] for r in results)
    # Recency/frequency-aware policies beat FIFO on a Zipf workload.
    assert by_name["lru"]["hit_ratio"] > by_name["fifo"]["hit_ratio"]
    assert by_name["lfu"]["hit_ratio"] > by_name["fifo"]["hit_ratio"]
