"""Parallel sweep bench: wall-clock speedup with byte-identical results.

Runs one fig6-style sweep panel twice — sequentially and fanned over a
worker pool (``repro.experiments.parallel``) — asserts the two
:class:`~repro.experiments.report.GainSeries` render byte-identically,
and reports the wall-clock speedup.

Runs two ways:

- ``pytest benchmarks/bench_parallel_sweep.py`` — under
  pytest-benchmark with the shared ``conftest.run_once`` policy;
- ``PYTHONPATH=src python -m benchmarks.bench_parallel_sweep`` — the
  standalone driver: measures, appends to ``BENCH_sweep.json`` via
  :mod:`repro.perf`, and with ``--check`` fails on lost parity or a
  same-machine speedup regression.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace
from time import perf_counter

from repro.experiments import microbench
from repro.experiments.microbench import BenchProfile
from repro.util import MB

PANELS = {
    "a": microbench.sweep_chunk_size,
    "b": microbench.sweep_encounter_time,
    "c": microbench.sweep_disconnection_time,
    "d": microbench.sweep_packet_loss,
    "e": microbench.sweep_internet_bandwidth,
    "f": microbench.sweep_internet_latency,
}


def _mini_profile(file_mb: float = 4.0, seeds: int = 2,
                  scale: int = 4) -> BenchProfile:
    """A small-but-real profile: enough work for parallelism to show."""
    return BenchProfile(
        file_size=int(file_mb * MB),
        seeds=tuple(range(seeds)),
        segment_scale=scale,
    )


def measure(panel: str = "f", jobs: int = 4,
            profile: BenchProfile | None = None) -> dict:
    """Run ``panel`` sequentially then with ``jobs`` workers."""
    sweep = PANELS[panel]
    profile = profile or _mini_profile()

    started = perf_counter()
    sequential = sweep(replace(profile, jobs=1))
    wall_sequential = perf_counter() - started

    started = perf_counter()
    parallel = sweep(replace(profile, jobs=jobs))
    wall_parallel = perf_counter() - started

    identical = (sequential == parallel
                 and sequential.render() == parallel.render())
    return {
        "panel": panel,
        "jobs": jobs,
        "runs": len(sequential.rows) * len(profile.seeds) * 2,
        "wall_sequential_s": wall_sequential,
        "wall_parallel_s": wall_parallel,
        "speedup": (wall_sequential / wall_parallel
                    if wall_parallel > 0 else 0.0),
        "byte_identical": identical,
    }


# -- pytest entry point ------------------------------------------------------


def test_parallel_sweep_speedup(benchmark):
    from benchmarks.conftest import run_once

    jobs = max(int(os.environ.get("REPRO_BENCH_JOBS", "2")), 2)
    profile = _mini_profile(file_mb=2.0, seeds=2, scale=8)
    result = run_once(benchmark, lambda: measure("f", jobs, profile))
    assert result["byte_identical"], "parallel sweep diverged from sequential"
    print()
    print(f"{result['runs']} runs, {result['jobs']} workers: "
          f"{result['speedup']:.2f}x speedup, byte-identical")


# -- standalone driver (CI perf smoke) ---------------------------------------


def main(argv=None) -> int:
    from repro import perf

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--panel", choices=sorted(PANELS), default="f")
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--file-mb", type=float, default=4.0)
    parser.add_argument("--seeds", type=int, default=2)
    parser.add_argument("--scale", type=int, default=4)
    parser.add_argument("--label", default="")
    parser.add_argument("--no-record", action="store_true",
                        help="measure and print only")
    parser.add_argument("--check", action="store_true",
                        help="fail on lost parity or a speedup regression")
    args = parser.parse_args(argv)

    metrics = measure(
        args.panel, args.jobs,
        _mini_profile(args.file_mb, args.seeds, args.scale),
    )
    for key in sorted(metrics):
        value = metrics[key]
        print(f"{key:>20} = {value:,.2f}" if isinstance(value, float)
              else f"{key:>20} = {value}")

    failures = []
    if not metrics["byte_identical"]:
        failures.append("parallel sweep results diverged from sequential")
    if args.check:
        ok, base = perf.check_regression(
            "sweep", "speedup", metrics["speedup"], allowed_drop=0.30,
            same_machine=True, higher_is_better=True,
        )
        if not ok:
            failures.append(
                f"speedup {metrics['speedup']:.2f}x is >30% below "
                f"baseline {base:.2f}x"
            )

    if not args.no_record:
        metrics = dict(metrics)
        metrics["byte_identical"] = bool(metrics["byte_identical"])
        perf.record("sweep", metrics, label=args.label)
        print(f"\nrecorded to {perf.bench_path('sweep')}")

    if failures:
        print("\nPERF REGRESSION:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
