"""Fig. 5: XIA substrate benchmark (also the calibration check).

Paper: wired TCP 95 / Xstream 66 / XChunkP 56 Mbps;
       802.11n TCP 28 / Xstream 22 / XChunkP 19 Mbps.
"""

from benchmarks.conftest import run_once
from repro.experiments.report import render_table
from repro.experiments.xia_benchmark import run_all


def test_fig5_xia_benchmark(benchmark):
    points = run_once(benchmark, run_all)

    rows = [
        (p.segment, p.protocol, p.throughput_bps / 1e6, p.paper_mbps)
        for p in points
    ]
    print()
    print(render_table(
        "Fig. 5: 10 MB transfer throughput",
        ("segment", "protocol", "measured (Mbps)", "paper (Mbps)"),
        rows,
    ))

    by_key = {(p.segment, p.protocol): p.throughput_bps / 1e6 for p in points}
    # Ordering within each segment: TCP > Xstream > XChunkP.
    for segment in ("wired", "wireless"):
        assert (
            by_key[(segment, "linux-tcp")]
            > by_key[(segment, "xstream")]
            > by_key[(segment, "xchunkp")]
        )
    # Wired beats wireless for every protocol.
    for protocol in ("linux-tcp", "xstream", "xchunkp"):
        assert by_key[("wired", protocol)] > by_key[("wireless", protocol)]
    # Calibration: within 20% of every paper bar.
    for point in points:
        measured = point.throughput_bps / 1e6
        assert abs(measured - point.paper_mbps) / point.paper_mbps < 0.20, (
            point.segment, point.protocol, measured, point.paper_mbps,
        )
