#!/usr/bin/env python3
"""Vehicular video streaming over SoftStage (§V extension).

A VoD player with buffer-based rate adaptation drives through
intermittent coverage.  We play the same video twice — once fetching
every segment from the origin (baseline) and once through SoftStage —
and compare startup delay, rebuffering and the quality rungs achieved.

Run:  python examples/vehicular_video_streaming.py [--duration 60]
"""

from __future__ import annotations

import argparse

from repro.apps.video import BufferBasedPlayer, VideoLadder, publish_video
from repro.experiments.params import MicrobenchParams
from repro.experiments.scenario import TestbedScenario


def play_with_softstage(duration: float, seed: int):
    scenario = TestbedScenario(params=MicrobenchParams(), seed=seed)
    ladder = VideoLadder()
    renditions = publish_video(
        scenario.server.publisher, "roadmovie", duration, ladder
    )
    client = scenario.make_softstage_client()
    for rung in range(ladder.rungs):
        client.manager.register_content(renditions[rung])
    client.manager.start()
    player = BufferBasedPlayer(
        scenario.sim, renditions,
        client.manager.chunk_manager.xfetch_chunk_star, ladder=ladder,
    )
    process = scenario.sim.process(player.play())
    return scenario.sim.run(until=process)


def play_with_origin_fetch(duration: float, seed: int):
    scenario = TestbedScenario(params=MicrobenchParams(), seed=seed)
    ladder = VideoLadder()
    renditions = publish_video(
        scenario.server.publisher, "roadmovie", duration, ladder
    )
    client = scenario.make_xftp_client()

    address_of = {}
    for rendition in renditions.values():
        for chunk, address in zip(rendition.chunks, rendition.addresses):
            address_of[chunk.cid] = address

    def fetch(cid):
        return client.fetcher.fetch(address_of[cid])

    player = BufferBasedPlayer(scenario.sim, renditions, fetch, ladder=ladder)
    process = scenario.sim.process(player.play())
    return scenario.sim.run(until=process)


def describe(label: str, stats) -> None:
    print(f"  {label:10s}: {stats.segments_played} segments, "
          f"startup {stats.startup_delay:5.2f}s, "
          f"{stats.rebuffer_events} rebuffer events "
          f"({stats.rebuffer_seconds:5.1f}s), "
          f"mean quality rung {stats.mean_rung:.2f}, "
          f"{stats.quality_switches} switches")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=60.0,
                        help="video length in seconds")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(f"Streaming a {args.duration:g}s video through vehicular coverage...")
    baseline = play_with_origin_fetch(args.duration, args.seed)
    describe("origin", baseline)
    softstage = play_with_softstage(args.duration, args.seed)
    describe("SoftStage", softstage)

    fewer = baseline.rebuffer_seconds - softstage.rebuffer_seconds
    print(f"\n  SoftStage removes {fewer:.1f}s of rebuffering on this drive.")


if __name__ == "__main__":
    main()
