#!/usr/bin/env python3
"""Extending SoftStage: plugging in a custom staging policy.

The Staging Coordinator is an ordinary object — subclass it to change
*when* and *how much* is staged while reusing the rest of the system
(profile, tracker, VNF, handoff).  This example compares the paper's
Eq. 1 reactive policy against two custom ones:

- ``FixedDepthCoordinator``: always keep exactly N chunks staged
  (what a naive implementation would do);
- ``WholeFileCoordinator``: stage everything immediately (the
  "blindly excessive" extreme the paper warns about — fine for one
  client, wasteful at scale).

Run:  python examples/custom_staging_policy.py [--file-mb 16]
"""

from __future__ import annotations

import argparse

from repro.core.coordinator import StagingCoordinator
from repro.experiments.params import MicrobenchParams
from repro.experiments.scenario import TestbedScenario
from repro.util import MB


class FixedDepthCoordinator(StagingCoordinator):
    """Keep a constant number of chunks staged ahead."""

    def __init__(self, *args, depth: int = 4, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.depth = depth

    def target_signalled(self) -> int:
        return self.depth


class WholeFileCoordinator(StagingCoordinator):
    """Stage the entire remaining file at once."""

    def target_signalled(self) -> int:
        return len(self.profile)


def run_with_coordinator(coordinator_factory, file_mb: float, chunk_mb: float, seed: int):
    params = MicrobenchParams(file_size=int(file_mb * MB),
                              chunk_size=int(chunk_mb * MB))
    scenario = TestbedScenario(params=params, seed=seed)
    content = scenario.publish_default_content()
    client = scenario.make_softstage_client()
    manager = client.manager
    if coordinator_factory is not None:
        manager.coordinator.stop()
        manager.coordinator = coordinator_factory(
            scenario.sim, manager.profile, manager.tracker,
            manager.sensor, manager.config,
        )
    process = scenario.sim.process(client.download(content))
    result = scenario.sim.run(until=process)
    signals = manager.tracker.signals_sent
    staged = sum(edge.vnf.chunks_staged for edge in scenario.edges)
    return result.duration, signals, staged, result.chunks_from_edge


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--file-mb", type=float, default=24.0)
    parser.add_argument("--chunk-mb", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    policies = [
        ("reactive Eq.1 (paper)", None),
        ("fixed depth 4", lambda *a: FixedDepthCoordinator(*a, depth=4)),
        ("whole file", lambda *a: WholeFileCoordinator(*a)),
    ]
    print(f"{'policy':>22} | {'time (s)':>8} | {'signals':>7} | "
          f"{'VNF fetches':>11} | {'edge hits':>9}")
    for label, factory in policies:
        duration, signals, staged, edge = run_with_coordinator(
            factory, args.file_mb, args.chunk_mb, args.seed
        )
        print(f"{label:>22} | {duration:8.1f} | {signals:7d} | "
              f"{staged:11d} | {edge:9d}")
    print("\nNote how 'whole file' buys little time but multiplies the "
          "network/cache resources consumed — the economics behind the "
          "paper's Just-in-Time policy.")


if __name__ == "__main__":
    main()
