#!/usr/bin/env python3
"""Extending SoftStage: plugging in a custom staging policy.

Staging decisions live behind the :class:`repro.core.policy.
StagingPolicy` protocol: a policy reads a :class:`StagingObservation`
(a pure snapshot of the staging pipeline, connectivity and the Table I
latency estimators) and returns :class:`StagingAction` requests, which
the Staging Coordinator executes against the tracker and the edge
VNFs.  Implementing a competitor is a small class — no forking of the
coordinator, profile, tracker or handoff machinery.

This example compares the paper's Eq. 1 reactive policy against two
deliberately naive ones:

- ``FixedDepthPolicy``: always keep exactly N chunks signalled ahead
  (what a first implementation would do);
- ``WholeFilePolicy``: signal everything immediately (the "blindly
  excessive" extreme the paper warns about — fine for one client,
  wasteful at scale).

Run:  python examples/custom_staging_policy.py [--file-mb 16]
"""

from __future__ import annotations

import argparse

from repro.core.policy import StagingAction, StagingObservation, StagingPolicy
from repro.experiments.params import MicrobenchParams
from repro.experiments.scenario import TestbedScenario
from repro.util import MB


class FixedDepthPolicy(StagingPolicy):
    """Keep a constant number of chunks signalled ahead."""

    name = "fixed-depth"

    def __init__(self, depth: int = 4) -> None:
        self.depth = depth

    def decide(self, obs: StagingObservation) -> list[StagingAction]:
        actions = []
        if obs.stale_cids:
            actions.append(StagingAction.resignal(obs.stale_cids))
        deficit = self.depth - obs.outstanding
        if deficit > 0:
            actions.append(StagingAction.stage(deficit, label="fixed-depth"))
        return actions

    def prestage_count(self, obs: StagingObservation) -> int:
        return self.depth


class WholeFilePolicy(StagingPolicy):
    """Signal the entire remaining file at once."""

    name = "whole-file"

    def decide(self, obs: StagingObservation) -> list[StagingAction]:
        actions = []
        if obs.stale_cids:
            actions.append(StagingAction.resignal(obs.stale_cids))
        deficit = obs.remaining_chunks - obs.outstanding
        if deficit > 0:
            actions.append(StagingAction.stage(deficit, label="whole-file"))
        return actions


def run_with_policy(policy, file_mb: float, chunk_mb: float, seed: int):
    params = MicrobenchParams(file_size=int(file_mb * MB),
                              chunk_size=int(chunk_mb * MB))
    scenario = TestbedScenario(params=params, seed=seed)
    content = scenario.publish_default_content()
    client = scenario.make_softstage_client(staging_policy=policy)
    manager = client.manager
    process = scenario.sim.process(client.download(content))
    result = scenario.sim.run(until=process)
    signals = manager.tracker.signals_sent
    staged = sum(edge.vnf.chunks_staged for edge in scenario.edges)
    return result.duration, signals, staged, result.chunks_from_edge


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--file-mb", type=float, default=24.0)
    parser.add_argument("--chunk-mb", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    policies = [
        ("reactive Eq.1 (paper)", None),  # the coordinator's default
        ("fixed depth 4", FixedDepthPolicy(depth=4)),
        ("whole file", WholeFilePolicy()),
    ]
    print(f"{'policy':>22} | {'time (s)':>8} | {'signals':>7} | "
          f"{'VNF fetches':>11} | {'edge hits':>9}")
    for label, policy in policies:
        duration, signals, staged, edge = run_with_policy(
            policy, args.file_mb, args.chunk_mb, args.seed
        )
        print(f"{label:>22} | {duration:8.1f} | {signals:7d} | "
              f"{staged:11d} | {edge:9d}")
    print("\nNote how 'whole file' buys little time but multiplies the "
          "network/cache resources consumed — the economics behind the "
          "paper's Just-in-Time policy.")


if __name__ == "__main__":
    main()
