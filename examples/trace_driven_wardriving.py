#!/usr/bin/env python3
"""Trace-driven experiment on synthesized wardriving traces (Fig. 7).

Synthesizes the two Beijing-wardriving connectivity patterns, saves
them to disk in the trace format, reloads them, and measures how many
content objects Xftp and SoftStage complete within each drive.

Run:  python examples/trace_driven_wardriving.py [--duration 180]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro.experiments.tracedriven import run_trace, synthesize_traces
from repro.mobility.traces import ConnectivityTrace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=180.0,
                        help="trace length in seconds")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--scale", type=int, default=2,
                        help="transport segment scale (1 = exact)")
    args = parser.parse_args()

    traces = synthesize_traces(seed=args.seed, duration=args.duration)
    trace_dir = Path(tempfile.mkdtemp(prefix="softstage-traces-"))

    for name, trace in traces.items():
        path = trace_dir / f"{name}.trace"
        trace.save(path)
        reloaded = ConnectivityTrace.load(path)
        encounters = reloaded.encounter_durations()
        print(f"{name}: {reloaded.coverage_fraction:.0%} coverage, "
              f"{len(encounters)} encounters "
              f"(mean {sum(encounters) / len(encounters):.1f}s) "
              f"-> saved to {path}")

        result = run_trace(
            name, reloaded, seeds=(args.seed,), segment_scale=args.scale
        )
        print(f"  Xftp      : {result.xftp_chunks:5.0f} chunks "
              f"({result.xftp_bytes / 1e6:6.1f} MB)")
        print(f"  SoftStage : {result.softstage_chunks:5.0f} chunks "
              f"({result.softstage_bytes / 1e6:6.1f} MB)")
        print(f"  ratio     : {result.object_ratio:.2f}x "
              f"(paper: ~2x)\n")


if __name__ == "__main__":
    main()
