#!/usr/bin/env python3
"""Quickstart: SoftStage vs Xftp on the paper's testbed.

Builds the evaluation topology (origin server, loss-shaped Internet
segment, two edge networks with XCache + Staging VNF, a mobile client
alternating between them), downloads the same file with the Xftp
baseline and with SoftStage, and prints the paper's headline metric —
the download-time gain.

Run:  python examples/quickstart.py [--file-mb 16] [--seed 0]
"""

from __future__ import annotations

import argparse

from repro.experiments.params import MicrobenchParams
from repro.experiments.runner import run_download
from repro.util import MB


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--file-mb", type=float, default=32.0,
                        help="download size in MB (paper: 64; staging needs a\n                        multi-cycle download to amortize)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    params = MicrobenchParams(file_size=int(args.file_mb * MB))
    print(f"Downloading {args.file_mb:g} MB over intermittent coverage "
          f"({params.encounter_time:g}s on / {params.disconnection_time:g}s off, "
          f"{params.packet_loss:.0%} wireless loss) ...")

    xftp = run_download("xftp", params=params, seed=args.seed)
    print(f"  Xftp      : {xftp.download_time:7.1f} s "
          f"({xftp.download.throughput_bps / 1e6:5.2f} Mbps), "
          f"{xftp.download.handoffs} rejoins")

    softstage = run_download("softstage", params=params, seed=args.seed)
    download = softstage.download
    print(f"  SoftStage : {softstage.download_time:7.1f} s "
          f"({download.throughput_bps / 1e6:5.2f} Mbps), "
          f"{download.chunks_from_edge}/{download.chunks_completed} chunks "
          f"served from edge caches, {download.staging_signals} staging signals")

    gain = xftp.download_time / softstage.download_time
    print(f"\n  SoftStage gain: {gain:.2f}x "
          f"(paper reports ~1.77x at these defaults)")


if __name__ == "__main__":
    main()
