#!/usr/bin/env python3
"""Chunk-aware vs RSS-greedy handoff in overlapping coverage (§IV-D).

Two networks whose coverage overlaps by 3 seconds: the default policy
switches mid-chunk the moment the new AP sounds louder (forcing an
active session migration); the content-aware policy finishes the
current chunk first and pre-stages into the target network through the
current one.

Run:  python examples/handoff_policies.py [--file-mb 32]
"""

from __future__ import annotations

import argparse

from repro.experiments.handoff import PAPER_SAVING, run_comparison
from repro.util import MB


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--file-mb", type=float, default=32.0)
    parser.add_argument("--seeds", type=int, default=1)
    parser.add_argument("--scale", type=int, default=2,
                        help="transport segment scale (1 = exact)")
    args = parser.parse_args()

    print(f"Downloading {args.file_mb:g} MB across overlapping networks "
          f"(12s encounters, 3s overlap)...")
    comparison = run_comparison(
        file_size=int(args.file_mb * MB),
        seeds=tuple(range(args.seeds)),
        segment_scale=args.scale,
    )
    print(f"  default (RSS-greedy) : {comparison.default_time:6.1f} s "
          f"({comparison.default_handoffs:.0f} handoffs)")
    print(f"  content-aware        : {comparison.content_aware_time:6.1f} s "
          f"({comparison.content_aware_handoffs:.0f} handoffs)")
    print(f"\n  download-time saving: {comparison.saving:.1%} "
          f"(paper: {PAPER_SAVING:.1%})")


if __name__ == "__main__":
    main()
