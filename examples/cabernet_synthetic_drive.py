#!/usr/bin/env python3
"""A synthetic Cabernet drive: connectivity sampled from the published
urban-vehicular statistics (median 4 s / mean 10 s encounters, median
32 s / mean 126 s gaps — paper §II-A), then Xftp vs SoftStage on it.

This is the harshest regime in the paper's motivation: sparse, short,
heavy-tailed encounters, where staging through gaps matters most.

Run:  python examples/cabernet_synthetic_drive.py [--duration 600]
"""

from __future__ import annotations

import argparse
import random

from repro.experiments.params import MicrobenchParams
from repro.experiments.runner import run_download
from repro.mobility.cabernet import CabernetTraceGenerator
from repro.metrics import summarize
from repro.util import MB, ms


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=600.0)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--scale", type=int, default=2,
                        help="transport segment scale (1 = exact)")
    args = parser.parse_args()

    # Clamp the gap tail: the full Cabernet distribution includes long
    # highway stretches with no APs at all (mean gap 126 s); for a demo
    # of *urban* blocks we cap gaps at 45 s, as the paper's own
    # densification argument does.
    generator = CabernetTraceGenerator(random.Random(args.seed), max_gap=45.0)
    trace = generator.generate(args.duration, start_connected=True)
    encounters = summarize(trace.encounter_durations())
    gaps = summarize(trace.gap_durations())
    print(f"Synthetic Cabernet drive: {trace.coverage_fraction:.0%} coverage")
    print(f"  encounters: n={encounters.count} median={encounters.p50:.1f}s "
          f"mean={encounters.mean:.1f}s   (paper: median 4s, mean 10s)")
    print(f"  gaps      : n={gaps.count} median={gaps.p50:.1f}s "
          f"mean={gaps.mean:.1f}s   (paper: median 32s, mean 126s)")

    params = MicrobenchParams(file_size=512 * MB, internet_latency=ms(50))
    coverage = trace.to_coverage(["ap-A", "ap-B"])
    xftp = run_download("xftp", params=params, seed=args.seed,
                        coverage=coverage, deadline=trace.duration,
                        segment_scale=args.scale)
    coverage = trace.to_coverage(["ap-A", "ap-B"])
    softstage = run_download("softstage", params=params, seed=args.seed,
                             coverage=coverage, deadline=trace.duration,
                             segment_scale=args.scale)

    xc = xftp.download.chunks_completed
    sc = softstage.download.chunks_completed
    print(f"\n  Xftp      : {xc} chunks ({xftp.download.bytes_received / 1e6:.0f} MB)")
    print(f"  SoftStage : {sc} chunks "
          f"({softstage.download.bytes_received / 1e6:.0f} MB, "
          f"{softstage.download.chunks_from_edge} from edge)")
    if xc:
        print(f"  ratio     : {sc / xc:.2f}x")


if __name__ == "__main__":
    main()
