"""End-to-end SoftStage integration tests on the full testbed.

These exercise the whole pipeline: scanning, association, staging
signals, VNF prefetching, edge fetches, disconnections, cross-network
fetches and fallback — the behaviours of Fig. 1's five phases.
"""

import pytest

from repro.core.handoff import RssGreedyPolicy
from repro.core.states import StagingState
from repro.experiments.params import MicrobenchParams
from repro.experiments.scenario import TestbedScenario
from repro.mobility.coverage import Coverage, CoverageWindow, alternating_coverage
from repro.util import MB


def small_params(**overrides):
    defaults = dict(file_size=6 * MB, chunk_size=1 * MB, packet_loss=0.1)
    defaults.update(overrides)
    return MicrobenchParams(**defaults)


def run_softstage(scenario, deadline=None, policy=None):
    content = scenario.publish_default_content()
    client = scenario.make_softstage_client(handoff_policy=policy)
    process = scenario.sim.process(client.download(content, deadline=deadline))
    result = scenario.sim.run(until=process)
    return result, client


def test_download_completes_and_uses_edge():
    scenario = TestbedScenario(params=small_params(), seed=1)
    result, client = run_softstage(scenario)
    assert result.completed
    assert result.bytes_received == 6 * MB
    # Staging kicked in: most chunks came from edge caches (phase 2).
    assert result.chunks_from_edge >= result.chunks_total // 2
    assert result.staging_signals >= 1


def test_vnf_staged_chunks_live_in_edge_stores():
    scenario = TestbedScenario(params=small_params(), seed=1)
    result, _ = run_softstage(scenario)
    staged_total = sum(edge.vnf.chunks_staged for edge in scenario.edges)
    assert staged_total >= result.chunks_from_edge


def test_profile_estimates_populated():
    scenario = TestbedScenario(params=small_params(), seed=1)
    _, client = run_softstage(scenario)
    profile = client.manager.profile
    assert profile.staging_latency.samples > 0
    assert profile.edge_fetch_latency.samples > 0
    assert profile.rtt_to_edge.value > 0
    # Edge fetches are faster than origin fetches on this testbed.
    if profile.origin_fetch_latency.samples:
        assert profile.edge_fetch_latency.value < profile.origin_fetch_latency.value


def test_survives_disconnections():
    params = small_params(
        file_size=16 * MB, encounter_time=6.0, disconnection_time=5.0
    )
    scenario = TestbedScenario(params=params, seed=2)
    result, _ = run_softstage(scenario)
    assert result.completed
    assert result.handoffs >= 2  # rejoined at least twice


def test_without_vnf_falls_back_to_origin():
    """Fault tolerance (Table II): no VNF anywhere -> all chunks from
    the origin, staging never marked READY, download still completes."""
    scenario = TestbedScenario(params=small_params(), seed=1, with_vnf=False)
    result, client = run_softstage(scenario)
    assert result.completed
    assert result.chunks_from_edge == 0
    assert result.chunks_from_origin == result.chunks_total
    profile = client.manager.profile
    for record in profile.records():
        assert record.staging_state in (StagingState.DONE, StagingState.BLANK)
    assert result.staging_signals == 0


def test_cross_network_fetch_from_previous_edge():
    """Phase 3 of Fig. 1: after moving to network B, chunks staged in A
    are still fetched from A (via the core), not from the origin."""
    params = small_params(file_size=10 * MB, encounter_time=8.0,
                          disconnection_time=2.0)
    scenario = TestbedScenario(params=params, seed=3)
    result, client = run_softstage(scenario)
    assert result.completed
    nids = {
        outcome.served_by_nid
        for outcome in result.outcomes
        if outcome.served_by_nid is not None
    }
    edge_nids = {edge.router.nid for edge in scenario.edges}
    served_from_edges = nids & edge_nids
    # Chunks came from at least one edge; with an 8s/2s pattern the
    # client moved while staged chunks remained behind, so at least one
    # fetch crossed networks (served from an edge we were not in, or
    # from two different edges over the run).
    assert served_from_edges
    cross = [
        outcome for outcome in result.outcomes
        if outcome.served_by_nid in edge_nids
    ]
    assert cross


def test_single_network_no_mobility():
    coverage = Coverage([CoverageWindow("ap-A", 0.0, 10_000.0)])
    scenario = TestbedScenario(
        params=small_params(), seed=1, coverage=coverage
    )
    result, _ = run_softstage(scenario)
    assert result.completed
    assert result.handoffs == 1  # the initial join only


def test_deadline_stops_early():
    scenario = TestbedScenario(params=small_params(file_size=64 * MB), seed=1)
    result, _ = run_softstage(scenario, deadline=10.0)
    assert not result.completed
    assert 0 < result.chunks_completed < result.chunks_total
    assert result.duration <= 11.0


def test_rss_greedy_policy_also_works_end_to_end():
    scenario = TestbedScenario(params=small_params(), seed=1)
    result, _ = run_softstage(scenario, policy=RssGreedyPolicy())
    assert result.completed


def test_edge_faster_than_origin_overall():
    """The headline comparison on a mid-size file."""
    params = MicrobenchParams(file_size=16 * MB)
    xftp_scenario = TestbedScenario(params=params, seed=0)
    content = xftp_scenario.publish_default_content()
    xftp = xftp_scenario.make_xftp_client()
    xftp_result = xftp_scenario.sim.run(
        until=xftp_scenario.sim.process(xftp.download(content))
    )

    ss_scenario = TestbedScenario(params=params, seed=0)
    ss_result, _ = run_softstage(ss_scenario)

    assert ss_result.completed and xftp_result.completed
    assert ss_result.duration < xftp_result.duration
