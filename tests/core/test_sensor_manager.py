"""Tests for the Network Sensor and Staging Manager wiring."""

import pytest

from repro.experiments.params import MicrobenchParams
from repro.experiments.scenario import TestbedScenario
from repro.mobility.coverage import alternating_coverage
from repro.util import MB


def make_scenario(with_vnf=True, coverage=None):
    params = MicrobenchParams(file_size=2 * MB, chunk_size=1 * MB,
                              packet_loss=0.05)
    return TestbedScenario(
        params=params, seed=6, with_vnf=with_vnf, coverage=coverage
    )


def test_sensor_tracks_current_vnf():
    scenario = make_scenario()
    client = scenario.make_softstage_client()
    sensor = client.manager.sensor
    assert sensor.current_vnf_address() is None  # offline
    scenario.sim.run(until=1.0)
    address = sensor.current_vnf_address()
    assert address is not None
    assert address.intent == scenario.edges[0].vnf.sid


def test_sensor_reports_no_vnf_when_absent():
    scenario = make_scenario(with_vnf=False)
    client = scenario.make_softstage_client()
    scenario.sim.run(until=1.0)
    assert scenario.controller.is_associated
    assert client.manager.sensor.current_vnf_address() is None


def test_sensor_observes_gaps_and_encounters():
    coverage = alternating_coverage(
        ["ap-A", "ap-B"], encounter_time=4.0, disconnection_time=3.0,
        total_time=60.0,
    )
    scenario = make_scenario(coverage=coverage)
    client = scenario.make_softstage_client()
    sensor = client.manager.sensor
    scenario.sim.run(until=20.0)
    # Two full cycles: gap and encounter EWMAs have samples near truth.
    assert sensor.gap_duration.samples >= 2
    assert sensor.gap_duration.value == pytest.approx(3.0, abs=0.8)
    assert sensor.encounter_duration.value == pytest.approx(4.0, abs=0.8)
    assert sensor.expected_gap(default=99.0) == pytest.approx(3.0, abs=0.8)


def test_sensor_expected_gap_default_before_observations():
    scenario = make_scenario()
    client = scenario.make_softstage_client()
    assert client.manager.sensor.expected_gap(default=16.0) == 16.0


def test_manager_wires_modules_onto_shared_profile():
    scenario = make_scenario()
    client = scenario.make_softstage_client()
    manager = client.manager
    assert manager.tracker.profile is manager.profile
    assert manager.coordinator.profile is manager.profile
    assert manager.chunk_manager.profile is manager.profile
    assert manager.chunk_manager.handoff_manager is manager.handoff_manager
    assert manager.handoff_manager.prestage is not None


def test_manager_register_content_populates_profile():
    scenario = make_scenario()
    content = scenario.publish_default_content()
    client = scenario.make_softstage_client()
    client.manager.register_content(content)
    assert len(client.manager.profile) == len(content.chunks)


def test_visible_networks_and_strongest():
    scenario = make_scenario()
    client = scenario.make_softstage_client()
    scenario.sim.run(until=1.0)
    sensor = client.manager.sensor
    visible = sensor.visible_networks()
    assert len(visible) == 1
    assert sensor.strongest_visible().name == "ap-A"
