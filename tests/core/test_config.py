"""Validation tests for configuration objects."""

import pytest

from repro.core.client import DownloadResult
from repro.core.config import SoftStageConfig
from repro.errors import ConfigurationError
from repro.transport.config import TransportConfig, XIA_CHUNK, XIA_STREAM


def test_softstage_defaults_valid():
    config = SoftStageConfig()
    assert config.coordinator_poll_interval > 0
    assert config.max_stage_ahead >= 1


@pytest.mark.parametrize("field,value", [
    ("coordinator_poll_interval", 0.0),
    ("initial_stage_count", 0),
    ("max_stage_ahead", 0),
    ("staging_signal_timeout", 0.0),
    ("initial_gap_estimate", -1.0),
    ("default_staging_latency", 0.0),
])
def test_softstage_config_rejects_bad_values(field, value):
    with pytest.raises(ConfigurationError):
        SoftStageConfig(**{field: value})


def test_transport_config_validation():
    with pytest.raises(ConfigurationError):
        TransportConfig(name="x", mss_bytes=0)
    with pytest.raises(ConfigurationError):
        TransportConfig(name="x", ack_every=0)
    with pytest.raises(ConfigurationError):
        TransportConfig(name="x", initial_cwnd=0.5)
    with pytest.raises(ConfigurationError):
        TransportConfig(name="x", min_rto=0.5, max_rto=0.1)


def test_transport_with_copies():
    varied = XIA_STREAM.with_(mss_bytes=500)
    assert varied.mss_bytes == 500
    assert XIA_STREAM.mss_bytes == 1290  # original untouched
    assert varied.header_bytes == XIA_STREAM.header_bytes


def test_transport_scaled_preserves_ratios():
    scaled = XIA_CHUNK.scaled(4)
    assert scaled.mss_bytes == XIA_CHUNK.mss_bytes * 4
    assert scaled.segment_bytes == XIA_CHUNK.segment_bytes * 4
    # Efficiency and CPU throughput cap preserved.
    assert scaled.mss_bytes / scaled.segment_bytes == pytest.approx(
        XIA_CHUNK.mss_bytes / XIA_CHUNK.segment_bytes
    )
    assert scaled.mss_bytes / scaled.per_packet_cost == pytest.approx(
        XIA_CHUNK.mss_bytes / XIA_CHUNK.per_packet_cost
    )


def test_transport_scaled_validation_and_identity():
    assert XIA_CHUNK.scaled(1) is XIA_CHUNK
    with pytest.raises(ConfigurationError):
        XIA_CHUNK.scaled(0)
    with pytest.raises(ConfigurationError):
        XIA_CHUNK.scaled(1.5)


def test_presets_are_distinct():
    assert XIA_CHUNK.verify_rate != float("inf")
    assert XIA_STREAM.verify_rate == float("inf")
    assert XIA_CHUNK.per_chunk_overhead > 0


def test_download_result_properties():
    result = DownloadResult(
        content_name="x", bytes_received=8_000_000, duration=4.0,
        chunks_completed=4, chunks_total=8, chunks_from_edge=3,
        chunks_from_origin=1, fallbacks=0, handoffs=2, staging_signals=5,
    )
    assert result.throughput_bps == pytest.approx(16e6)
    assert not result.completed
    assert result.edge_fraction == pytest.approx(0.75)
    done = DownloadResult(
        content_name="x", bytes_received=1, duration=0.0,
        chunks_completed=0, chunks_total=0, chunks_from_edge=0,
        chunks_from_origin=0, fallbacks=0, handoffs=0, staging_signals=0,
    )
    assert done.throughput_bps == 0.0
    assert done.edge_fraction == 0.0
