"""Tests for handoff policies and the Handoff Manager (no network)."""

from types import SimpleNamespace

import pytest

from repro.core.handoff import ChunkAwarePolicy, HandoffManager, RssGreedyPolicy
from repro.core.config import SoftStageConfig
from repro.sim import Simulator


def visible(name: str, rss: float):
    """A minimal stand-in for a VisibleNetwork scan entry."""
    ap = SimpleNamespace(name=name, nid=None, vnf_sid=None, cache_hid=None)
    return SimpleNamespace(name=name, rss=rss, ap=ap)


def association(name: str):
    return SimpleNamespace(ap=SimpleNamespace(name=name), since=0.0)


# ---------------------------------------------------------------------------
# Policy target selection
# ---------------------------------------------------------------------------


def test_greedy_picks_strongest_when_offline():
    policy = RssGreedyPolicy()
    target = policy.select_target(
        [visible("B", -60), visible("A", -70)], None, hysteresis_db=3.0
    )
    assert target.name == "B"


def test_greedy_stays_when_current_is_strongest():
    policy = RssGreedyPolicy()
    scan = [visible("A", -55), visible("B", -70)]
    assert policy.select_target(scan, association("A"), 3.0) is None


def test_greedy_respects_hysteresis():
    policy = RssGreedyPolicy()
    scan = [visible("B", -58), visible("A", -60)]
    # Only 2 dB louder: below the 3 dB hysteresis.
    assert policy.select_target(scan, association("A"), 3.0) is None
    scan = [visible("B", -55), visible("A", -60)]
    assert policy.select_target(scan, association("A"), 3.0).name == "B"


def test_greedy_switches_when_current_not_audible():
    policy = RssGreedyPolicy()
    scan = [visible("B", -80)]
    assert policy.select_target(scan, association("A"), 3.0).name == "B"


def test_greedy_no_networks_no_target():
    assert RssGreedyPolicy().select_target([], association("A"), 3.0) is None
    assert RssGreedyPolicy().select_target([], None, 3.0) is None


def test_chunk_aware_is_content_aware_flagged():
    assert not RssGreedyPolicy.content_aware
    assert ChunkAwarePolicy.content_aware


# ---------------------------------------------------------------------------
# HandoffManager with a fake controller/scanner
# ---------------------------------------------------------------------------


class FakeController:
    def __init__(self, sim):
        self.sim = sim
        self.current = None
        self.joined = []

    def associate(self, name):
        self.joined.append(name)
        self.current = association(name)
        yield self.sim.timeout(0.0)
        return self.current


class FakeScanner:
    def __init__(self):
        self.listeners = []

    def subscribe(self, listener):
        self.listeners.append(listener)

    def push(self, scan):
        for listener in self.listeners:
            listener(scan)


def make_manager(policy, prestage=None):
    sim = Simulator()
    controller = FakeController(sim)
    scanner = FakeScanner()
    manager = HandoffManager(
        sim, controller, scanner, policy=policy,
        config=SoftStageConfig(), prestage=prestage,
    )
    return sim, controller, scanner, manager


def test_offline_join_on_first_beacon():
    sim, controller, scanner, manager = make_manager(RssGreedyPolicy())
    scanner.push([visible("A", -60)])
    sim.run()
    assert controller.joined == ["A"]
    assert manager.handoffs == 1


def test_greedy_switches_immediately_even_mid_fetch():
    sim, controller, scanner, manager = make_manager(RssGreedyPolicy())
    scanner.push([visible("A", -60)])
    sim.run()
    manager.fetch_active = True
    scanner.push([visible("B", -50), visible("A", -60)])
    sim.run()
    assert controller.joined == ["A", "B"]


def test_chunk_aware_defers_until_boundary():
    prestaged = []
    sim, controller, scanner, manager = make_manager(
        ChunkAwarePolicy(), prestage=prestaged.append
    )
    scanner.push([visible("A", -60)])
    sim.run()
    manager.fetch_active = True
    scanner.push([visible("B", -50), visible("A", -60)])
    sim.run()
    # Not switched yet, but the target was pre-staged.
    assert controller.joined == ["A"]
    assert manager.pending_target.name == "B"
    assert [v.name for v in prestaged] == ["B"]
    # Chunk completes: the deferred handoff executes.
    manager.fetch_active = False
    manager.on_chunk_boundary()
    sim.run()
    assert controller.joined == ["A", "B"]
    assert manager.pending_target is None


def test_chunk_aware_executes_immediately_when_idle():
    sim, controller, scanner, manager = make_manager(ChunkAwarePolicy())
    scanner.push([visible("A", -60)])
    sim.run()
    manager.fetch_active = False
    scanner.push([visible("B", -50), visible("A", -60)])
    sim.run()
    assert controller.joined == ["A", "B"]


def test_pending_target_abandoned_when_it_fades():
    sim, controller, scanner, manager = make_manager(ChunkAwarePolicy())
    scanner.push([visible("A", -60)])
    sim.run()
    manager.fetch_active = True
    scanner.push([visible("B", -50), visible("A", -60)])
    assert manager.pending_target is not None
    # B disappears before the chunk completes.
    scanner.push([visible("A", -60)])
    assert manager.pending_target is None
    manager.on_chunk_boundary()
    sim.run()
    assert controller.joined == ["A"]


def test_prestage_fires_once_per_target():
    prestaged = []
    sim, controller, scanner, manager = make_manager(
        ChunkAwarePolicy(), prestage=prestaged.append
    )
    scanner.push([visible("A", -60)])
    sim.run()
    manager.fetch_active = True
    for _ in range(4):
        scanner.push([visible("B", -50), visible("A", -60)])
    assert len(prestaged) == 1
