"""Failure-injection tests: the fault-tolerance paths of Table II.

What happens when the edge misbehaves: staged chunks vanish from the
cache, the VNF cannot reach the origin, staging confirmations are lost.
"""

import pytest

from repro.core.states import StagingState
from repro.experiments.params import MicrobenchParams
from repro.experiments.scenario import TestbedScenario
from repro.mobility.coverage import Coverage, CoverageWindow
from repro.transport.config import XIA_CHUNK
from repro.util import MB


def always_on_scenario(**overrides):
    params = MicrobenchParams(
        file_size=3 * MB, chunk_size=1 * MB, packet_loss=0.05, **overrides
    )
    coverage = Coverage([CoverageWindow("ap-A", 0.0, 100_000.0)])
    # Short retry budget so fallback happens quickly in tests.
    return TestbedScenario(
        params=params, seed=8, coverage=coverage,
        transport_config=XIA_CHUNK.with_(
            request_timeout=0.3, request_retries=4
        ),
    )


def test_stale_staged_copy_falls_back_to_origin():
    """A chunk marked READY whose edge copy vanished: the fetch times
    out against the edge and XfetchChunk* falls back to the raw DAG."""
    scenario = always_on_scenario()
    content = scenario.publish_default_content()
    client = scenario.make_softstage_client()
    manager = client.manager
    manager.register_content(content)
    scenario.sim.run(until=1.0)

    edge = scenario.edges[0]
    record = manager.profile.get(content.chunks[0].cid)
    # Forge a READY record pointing at the edge... without the chunk.
    record.mark_staged(
        record.raw_dag.replace_fallback(edge.router.nid, edge.router.hid),
        edge.router.nid, edge.router.hid,
        staging_latency=0.5, fetch_rtt=0.01,
    )
    assert not edge.store.has(record.cid)

    fetch = scenario.sim.process(
        manager.chunk_manager.xfetch_chunk_star(record.cid)
    )
    outcome = scenario.sim.run(until=fetch)
    assert outcome.bytes_received == content.chunks[0].size_bytes
    assert outcome.served_by_hid == scenario.server_host.hid
    assert manager.chunk_manager.fallbacks == 1
    assert record.staging_state is StagingState.DONE


def test_vnf_stage_failure_counted_and_survivable():
    """The VNF cannot fetch an unpublished chunk; it records the
    failure and the client's own fetch path still works for real
    content."""
    scenario = always_on_scenario()
    content = scenario.publish_default_content()
    client = scenario.make_softstage_client()
    manager = client.manager
    manager.register_content(content)
    scenario.sim.run(until=1.0)

    from repro.xcache import Chunk
    from repro.xia.dag import DagAddress

    edge = scenario.edges[0]
    ghost = Chunk.synthetic("ghost", 0, 1000)
    ghost_dag = DagAddress.content(
        ghost.cid, scenario.origin_router.nid, scenario.server_host.hid
    )
    edge.vnf._handle_one(
        ghost.cid, ghost_dag,
        DagAddress.host(scenario.client_host.hid, edge.router.nid),
    )
    scenario.sim.run(until=scenario.sim.now + 10.0)
    assert edge.vnf.stage_failures == 1
    assert not edge.store.has(ghost.cid)


def test_lost_confirmations_are_resignalled():
    """STAGE_RESPONSEs can die on the air; the coordinator re-signals
    stale PENDING entries and the VNF answers from its store."""
    scenario = always_on_scenario()
    content = scenario.publish_default_content()
    client = scenario.make_softstage_client()
    manager = client.manager
    manager.register_content(content)
    scenario.sim.run(until=1.0)

    edge = scenario.edges[0]
    records = manager.profile.next_to_stage(1)
    manager.tracker.signal(records, manager.sensor.current_vnf_address())
    scenario.sim.run(until=scenario.sim.now + 8.0)
    assert records[0].staging_state is StagingState.READY

    # Now simulate a lost confirmation: force back to PENDING, stale.
    records[0].staging_state = StagingState.PENDING
    records[0].staging_requested_at = scenario.sim.now - 100.0
    manager.coordinator.tick()
    scenario.sim.run(until=scenario.sim.now + 3.0)
    assert records[0].staging_state is StagingState.READY
    assert manager.tracker.signals_sent >= 2


def test_edge_cache_pressure_never_evicts_pinned_staged_chunks():
    """Staged chunks are pinned until served; cache churn cannot evict
    them (the continuity guarantee staging relies on)."""
    scenario = always_on_scenario()
    content = scenario.publish_default_content()
    client = scenario.make_softstage_client()
    manager = client.manager
    manager.register_content(content)
    scenario.sim.run(until=1.0)

    edge = scenario.edges[0]
    records = manager.profile.next_to_stage(2)
    manager.tracker.signal(records, manager.sensor.current_vnf_address())
    scenario.sim.run(until=scenario.sim.now + 8.0)
    for record in records:
        assert edge.store.is_pinned(record.cid)

    # Churn the cache hard.
    from repro.xcache import Chunk

    for index in range(2000):
        edge.store.put(Chunk.synthetic("churn", index, 900_000))
    for record in records:
        assert edge.store.has(record.cid)
