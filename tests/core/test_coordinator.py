"""Tests for the Staging Coordinator (Eq. 1) without a network.

The tracker and sensor are replaced by minimal doubles so the
algorithm's arithmetic and signalling decisions can be checked in
isolation.
"""

import math

import pytest

from repro.core import ChunkProfile, SoftStageConfig, StagingCoordinator
from repro.core.states import StagingState
from repro.sim import Simulator
from repro.xcache import Chunk
from repro.xia import DagAddress, HID, NID, SID


NID_S, HID_S = NID("origin"), HID("server")
VNF_DAG = DagAddress.service(SID("vnf"), NID("edge-a"), HID("cache-a"))


class FakeTracker:
    def __init__(self):
        self.calls = []

    def signal(self, records, vnf, label=""):
        self.calls.append((list(records), vnf, label))
        for record in records:
            record.staging_state = StagingState.PENDING
            record.staging_requested_at = 0.0
        return len(records)


class FakeSensor:
    def __init__(self, vnf=VNF_DAG, gap=None):
        self.vnf = vnf
        self.gap = gap

    def current_vnf_address(self):
        return self.vnf

    def expected_gap(self, default):
        return self.gap if self.gap is not None else default


def build(num_chunks=40, config=None, sensor=None):
    sim = Simulator()
    profile = ChunkProfile()
    for i in range(num_chunks):
        chunk = Chunk.synthetic("content", i, 1000)
        profile.register(chunk.cid, i, 1000,
                         DagAddress.content(chunk.cid, NID_S, HID_S))
    tracker = FakeTracker()
    coordinator = StagingCoordinator(
        sim, profile, tracker, sensor or FakeSensor(),
        config or SoftStageConfig(),
    )
    return sim, profile, tracker, coordinator


def test_eq1_threshold_from_estimates():
    _, profile, _, coordinator = build()
    profile.rtt_to_edge.observe(0.02)
    profile.staging_latency.observe(1.0)
    profile.edge_fetch_latency.observe(0.5)
    # (0.02 + 1.0) / 0.5
    assert coordinator.eq1_threshold() == pytest.approx(2.04)


def test_eq1_threshold_uses_defaults_when_empty():
    config = SoftStageConfig(
        default_rtt=0.05, default_staging_latency=2.0, default_fetch_latency=1.0
    )
    _, _, _, coordinator = build(config=config)
    assert coordinator.eq1_threshold() == pytest.approx(2.05)


def test_slow_internet_raises_threshold():
    """The paper's 'aggressively stage more when the Internet is slow'."""
    _, profile, _, coordinator = build()
    profile.rtt_to_edge.observe(0.02)
    profile.edge_fetch_latency.observe(0.5)
    profile.staging_latency.observe(0.5)
    fast = coordinator.eq1_threshold()
    profile.staging_latency._value = 4.0  # Internet got 8x slower
    slow = coordinator.eq1_threshold()
    assert slow > 4 * fast


def test_gap_allowance_scales_with_observed_gap():
    _, profile, _, c_small = build(sensor=FakeSensor(gap=8.0))
    profile.staging_latency.observe(1.0)
    assert c_small.gap_allowance() == 8

    _, profile2, _, c_large = build(sensor=FakeSensor(gap=100.0))
    profile2.staging_latency.observe(1.0)
    assert c_large.gap_allowance() == 100


def test_target_capped_by_max_stage_ahead():
    config = SoftStageConfig(max_stage_ahead=10)
    _, profile, _, coordinator = build(config=config, sensor=FakeSensor(gap=500.0))
    profile.staging_latency.observe(1.0)
    assert coordinator.target_signalled() == 10


def test_tick_signals_deficit():
    sensor = FakeSensor(gap=3.0)
    config = SoftStageConfig(initial_gap_estimate=3.0, initial_stage_count=2,
                             default_staging_latency=1.0)
    _, profile, tracker, coordinator = build(config=config, sensor=sensor)
    signalled = coordinator.tick()
    # initial_stage_count (2) + gap allowance (3) = 5 before estimates.
    assert signalled == 5
    assert profile.pending_staging() == 5
    # A second tick with nothing changed signals nothing.
    assert coordinator.tick() == 0


def test_tick_uses_eq1_after_first_confirmation():
    sensor = FakeSensor(gap=2.0)
    _, profile, tracker, coordinator = build(sensor=sensor)
    profile.observe_staging(1.0, 0.02)      # Lstage = 1
    profile.edge_fetch_latency.observe(0.25)  # Lfetch
    coordinator.tick()
    # eq1 = (0.02+1)/0.25 = 4.08 -> 5; allowance = ceil(2/1) = 2 -> 7.
    assert profile.pending_staging() == math.ceil(4.08) + 2


def test_tick_without_vnf_does_nothing():
    _, profile, tracker, coordinator = build(sensor=FakeSensor(vnf=None))
    assert coordinator.tick() == 0
    assert profile.pending_staging() == 0
    assert tracker.calls == []


def test_tick_resignals_stale_pending():
    config = SoftStageConfig(staging_signal_timeout=3.0)
    sim, profile, tracker, coordinator = build(config=config)
    coordinator.tick()
    first_calls = len(tracker.calls)
    # Let the pending entries go stale.
    sim._now = 10.0
    coordinator.tick()
    assert len(tracker.calls) > first_calls
    assert tracker.calls[-1][2] in ("re-signal", "eq1")


def test_poll_loop_runs_until_all_fetched():
    sim, profile, tracker, coordinator = build(num_chunks=2)
    coordinator.start()
    sim.run(until=2.0)
    assert coordinator.ticks >= 4
    for record in profile.records():
        profile.observe_fetch(record, 0.1, from_edge=True)
    ticks_at_done = coordinator.ticks
    sim.run(until=4.0)
    assert coordinator.ticks <= ticks_at_done + 1


def test_stop_halts_loop():
    sim, _, _, coordinator = build()
    coordinator.start()
    sim.run(until=1.0)
    coordinator.stop()
    ticks = coordinator.ticks
    sim.run(until=3.0)
    assert coordinator.ticks == ticks
