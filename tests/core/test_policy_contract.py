"""Conformance suite for the pluggable StagingPolicy framework.

Every shipped policy (reactive, predictive, rich, mobility) must obey
the same contract:

- no staging signals for unpublished content (an empty profile);
- no duplicate staging requests for chunks already in flight;
- fixed-seed determinism (two identical runs, identical outcomes);
- downloads complete cleanly through disconnections and handoffs.

Plus the refactor's hard guarantee: the default ``ReactiveEq1Policy``
reproduces the pre-framework coordinator's fixed-seed metrics
*bit-identically* (checked under the invariant auditor), and passing
``policy="reactive"`` explicitly changes nothing but the run id.
"""

import pytest

from repro.core import ChunkProfile, SoftStageConfig, StagingCoordinator
from repro.core.policy import (
    ActionKind,
    StagingAction,
    StagingObservation,
    StagingPolicy,
    available_policies,
    make_policy,
    policy_name,
)
from repro.core.states import StagingState
from repro.errors import ConfigurationError
from repro.experiments.params import MicrobenchParams
from repro.experiments.runner import run_download
from repro.experiments.scenario import TestbedScenario
from repro.sim import Simulator
from repro.util import MB
from repro.xcache import Chunk
from repro.xia import DagAddress, HID, NID, SID

ALL_POLICIES = ("reactive", "predictive", "rich", "mobility")

NID_S, HID_S = NID("origin"), HID("server")
VNF_DAG = DagAddress.service(SID("vnf"), NID("edge-a"), HID("cache-a"))


# -- harness -----------------------------------------------------------------


class FakeTracker:
    """Records every signal; tracks per-cid signal counts."""

    def __init__(self):
        self.calls = []

    def signal(self, records, vnf, label="", restage=False):
        self.calls.append((list(records), vnf, label, restage))
        for record in records:
            if not restage:
                record.staging_state = StagingState.PENDING
            record.staging_requested_at = 0.0
        return len(records)

    def signalled_cids(self):
        return [r.cid for records, _, _, _ in self.calls for r in records]


class FakeSensor:
    def __init__(self, vnf=VNF_DAG, gap=None):
        self.vnf = vnf
        self.gap = gap

    def current_vnf_address(self):
        return self.vnf

    def expected_gap(self, default):
        return self.gap if self.gap is not None else default


def named_policy(name):
    """Build a shipped policy via the registry (scenario-backed, so the
    predictive policy gets its mobility predictor)."""
    scenario = TestbedScenario(
        params=MicrobenchParams(file_size=2 * MB, chunk_size=MB), seed=0
    )
    return make_policy(name, scenario.softstage_config, scenario)


def build(num_chunks, policy, config=None, sensor=None):
    sim = Simulator()
    profile = ChunkProfile()
    for i in range(num_chunks):
        chunk = Chunk.synthetic("content", i, 1000)
        profile.register(chunk.cid, i, 1000,
                         DagAddress.content(chunk.cid, NID_S, HID_S))
    tracker = FakeTracker()
    coordinator = StagingCoordinator(
        sim, profile, tracker, sensor or FakeSensor(),
        config or SoftStageConfig(), policy=policy,
    )
    return sim, profile, tracker, coordinator


# -- the contract ------------------------------------------------------------


@pytest.mark.parametrize("name", ALL_POLICIES)
def test_no_staging_for_unpublished_content(name):
    """An empty profile (nothing published/registered) stays silent."""
    _, profile, tracker, coordinator = build(0, named_policy(name))
    assert coordinator.tick() == 0
    assert tracker.calls == []
    assert profile.pending_staging() == 0


@pytest.mark.parametrize("name", ALL_POLICIES)
def test_no_duplicate_requests_for_in_flight_chunks(name):
    """Chunks already PENDING (and not stale) are never re-signalled."""
    _, _, tracker, coordinator = build(40, named_policy(name))
    coordinator.tick()
    coordinator.tick()  # same sim time: nothing stale, nothing fetched
    cids = tracker.signalled_cids()
    assert len(cids) == len(set(cids)), "duplicate staging request"


@pytest.mark.parametrize("name", ALL_POLICIES)
def test_fixed_seed_determinism(name):
    """Two identical runs produce identical outcomes."""
    params = MicrobenchParams(file_size=4 * MB, chunk_size=MB)
    results = [
        run_download("softstage", params=params, seed=3, policy=name)
        for _ in range(2)
    ]
    a, b = (r.download for r in results)
    assert a.duration == b.duration
    assert a.bytes_received == b.bytes_received
    assert a.chunks_from_edge == b.chunks_from_edge
    assert a.chunks_from_origin == b.chunks_from_origin
    assert a.handoffs == b.handoffs
    assert a.staging_signals == b.staging_signals
    assert results[0].policy == name


@pytest.mark.parametrize("name", ALL_POLICIES)
def test_download_completes_through_handoffs(name):
    """Disconnections and handoffs never wedge a policy-driven run."""
    params = MicrobenchParams(file_size=8 * MB, chunk_size=MB,
                              encounter_time=4.0)
    result = run_download("softstage", params=params, seed=1, policy=name)
    assert result.download.bytes_received == params.file_size
    assert result.download.handoffs >= 1
    assert result.run_id == f"softstage-{name}-seed1"


# -- reactive parity: the refactor's hard guarantee --------------------------


GOLDEN_8MB_SEED0 = {
    "duration": 8.681552867077368,
    "bytes_received": 8_000_000,
    "chunks_from_edge": 7,
    "chunks_from_origin": 1,
    "fallbacks": 0,
    "handoffs": 1,
    "staging_signals": 1,
}


def test_reactive_parity_with_pre_framework_coordinator():
    """Bit-identical fixed-seed metrics, under gauges + strict audit."""
    params = MicrobenchParams(file_size=8 * MB, chunk_size=MB)
    result = run_download("softstage", params=params, seed=0,
                          gauges=True, audit=True)
    download = result.download
    for metric, expected in GOLDEN_8MB_SEED0.items():
        assert getattr(download, metric) == expected, metric


def test_explicit_reactive_equals_default():
    """policy="reactive" only changes the run id, nothing else."""
    params = MicrobenchParams(file_size=8 * MB, chunk_size=MB)
    default = run_download("softstage", params=params, seed=0)
    explicit = run_download("softstage", params=params, seed=0,
                            policy="reactive")
    assert default.run_id == "softstage-seed0"
    assert explicit.run_id == "softstage-reactive-seed0"
    assert default.policy == ""
    assert explicit.policy == "reactive"
    a, b = default.download, explicit.download
    assert a.duration == b.duration
    assert a.chunks_from_edge == b.chunks_from_edge
    assert a.staging_signals == b.staging_signals


# -- action executor ---------------------------------------------------------


class ScriptedPolicy(StagingPolicy):
    """Plays back a fixed list of action lists, one per tick."""

    name = "scripted"

    def __init__(self, script):
        self.script = list(script)

    def decide(self, obs: StagingObservation):
        return self.script.pop(0) if self.script else []


def test_cancel_returns_pending_chunks_to_blank():
    _, profile, tracker, coordinator = build(
        4,
        ScriptedPolicy([
            [StagingAction.stage(2)],
            [],  # filled in below once the cids exist
        ]),
    )
    coordinator.tick()
    pending = [r for r in profile.records()
               if r.staging_state is StagingState.PENDING]
    assert len(pending) == 2
    coordinator.policy.script = [
        [StagingAction.cancel([r.cid for r in pending])]
    ]
    coordinator.tick()
    assert profile.pending_staging() == 0
    for record in pending:
        assert record.staging_state is StagingState.BLANK
        assert record.staging_requested_at is None
    # Cancelling sends no packets.
    assert len(tracker.calls) == 1


def test_migrate_resignals_ready_chunks_with_restage():
    _, profile, tracker, coordinator = build(4, ScriptedPolicy([]))
    records = list(profile.records())
    ready, blank = records[0], records[1]
    ready.staging_state = StagingState.READY
    ready.location = (NID("edge-a"), HID("cache-a"))
    coordinator.policy.script = [
        [StagingAction.migrate([ready.cid, blank.cid], target=None)]
    ]
    coordinator.tick()
    # Only the READY chunk migrates; BLANK ones are not migratable.
    assert len(tracker.calls) == 1
    records, _vnf, label, restage = tracker.calls[0]
    assert [r.cid for r in records] == [ready.cid]
    assert label == "migrate"
    assert restage is True
    # The staged copy stays addressable while the move is in flight.
    assert ready.staging_state is StagingState.READY


def test_stage_toward_unknown_network_is_dropped():
    """Fault tolerance: a target without a VNF drops the action."""
    _, profile, tracker, coordinator = build(
        4, ScriptedPolicy([[StagingAction.stage(2, target="nowhere")]])
    )
    coordinator.tick()
    assert tracker.calls == []
    assert profile.pending_staging() == 0


# -- registry ----------------------------------------------------------------


def test_registry_lists_all_shipped_policies():
    assert set(available_policies()) == set(ALL_POLICIES)


def test_make_policy_unknown_name_lists_options():
    with pytest.raises(ConfigurationError) as exc:
        make_policy("nosuch")
    message = str(exc.value)
    for name in ALL_POLICIES:
        assert name in message


def test_policy_name_resolution():
    assert policy_name(None) == ""
    assert policy_name("rich") == "rich"
    assert policy_name(named_policy("mobility")) == "mobility"
