"""Tests for the Chunk Profile (Table I) and EWMA estimators."""

import pytest

from repro.core import ChunkProfile, FetchState, StagingState
from repro.core.profile import EwmaEstimator
from repro.errors import ConfigurationError
from repro.xcache import Chunk
from repro.xia import DagAddress, HID, NID


NID_S, HID_S = NID("origin"), HID("server")
NID_A, HID_A = NID("edge-a"), HID("cache-a")


def make_profile(num_chunks=5, size=1000):
    profile = ChunkProfile()
    chunks = [Chunk.synthetic("content", i, size) for i in range(num_chunks)]
    for i, chunk in enumerate(chunks):
        profile.register(
            chunk.cid, i, chunk.size_bytes,
            DagAddress.content(chunk.cid, NID_S, HID_S),
        )
    return profile, chunks


# ---------------------------------------------------------------------------
# EwmaEstimator
# ---------------------------------------------------------------------------


def test_ewma_starts_empty():
    est = EwmaEstimator()
    assert est.value is None
    assert est.value_or(7.0) == 7.0


def test_ewma_first_sample_sets_value():
    est = EwmaEstimator(alpha=0.5)
    est.observe(10.0)
    assert est.value == 10.0


def test_ewma_smooths():
    est = EwmaEstimator(alpha=0.5)
    est.observe(10.0)
    est.observe(20.0)
    assert est.value == pytest.approx(15.0)
    assert est.samples == 2


def test_ewma_alpha_validated():
    with pytest.raises(Exception):
        EwmaEstimator(alpha=1.5)


# ---------------------------------------------------------------------------
# Registration and state
# ---------------------------------------------------------------------------


def test_register_and_lookup():
    profile, chunks = make_profile(3)
    assert len(profile) == 3
    record = profile.get(chunks[1].cid)
    assert record.index == 1
    assert record.fetch_state is FetchState.BLANK
    assert record.staging_state is StagingState.BLANK


def test_register_duplicate_rejected():
    profile, chunks = make_profile(1)
    with pytest.raises(ConfigurationError):
        profile.register(chunks[0].cid, 0, 1000,
                         DagAddress.content(chunks[0].cid, NID_S, HID_S))


def test_get_unknown_raises():
    profile, _ = make_profile(1)
    with pytest.raises(KeyError):
        profile.get(Chunk.synthetic("other", 0, 10).cid)


def test_best_dag_prefers_ready_staged_copy():
    profile, chunks = make_profile(1)
    record = profile.get(chunks[0].cid)
    assert record.best_dag == record.raw_dag
    record.mark_staged(
        record.raw_dag.replace_fallback(NID_A, HID_A),
        NID_A, HID_A, staging_latency=0.4, fetch_rtt=0.01,
    )
    assert record.staging_state is StagingState.READY
    assert record.best_dag.fallback_nid == NID_A
    assert record.location == (NID_A, HID_A)


def test_best_dag_ignores_pending():
    profile, chunks = make_profile(1)
    record = profile.get(chunks[0].cid)
    record.staging_state = StagingState.PENDING
    assert record.best_dag == record.raw_dag


# ---------------------------------------------------------------------------
# Staging-algorithm queries
# ---------------------------------------------------------------------------


def test_staged_ahead_counts_ready_unfetched_only():
    profile, chunks = make_profile(4)
    for i in (0, 1, 2):
        record = profile.get(chunks[i].cid)
        record.mark_staged(
            record.raw_dag.replace_fallback(NID_A, HID_A),
            NID_A, HID_A, 0.5, 0.01,
        )
    # Fetch the first one: it no longer counts.
    profile.observe_fetch(profile.get(chunks[0].cid), 0.8, from_edge=True)
    assert profile.staged_ahead() == 2


def test_next_to_stage_skips_fetched_and_signalled():
    profile, chunks = make_profile(5)
    profile.observe_fetch(profile.get(chunks[0].cid), 1.0, from_edge=False)
    profile.get(chunks[1].cid).staging_state = StagingState.PENDING
    to_stage = profile.next_to_stage(2)
    assert [r.index for r in to_stage] == [2, 3]


def test_next_to_stage_respects_count_and_exhaustion():
    profile, chunks = make_profile(3)
    assert len(profile.next_to_stage(10)) == 3
    assert len(profile.next_to_stage(0)) == 0


def test_first_unfetched_index_and_all_fetched():
    profile, chunks = make_profile(3)
    assert profile.first_unfetched_index() == 0
    for chunk in chunks:
        profile.observe_fetch(profile.get(chunk.cid), 1.0, from_edge=False)
    assert profile.first_unfetched_index() is None
    assert profile.all_fetched()


def test_stale_pending_detection():
    profile, chunks = make_profile(2)
    record = profile.get(chunks[0].cid)
    record.staging_state = StagingState.PENDING
    record.staging_requested_at = 10.0
    assert profile.stale_pending(now=11.0, timeout=3.0) == []
    assert profile.stale_pending(now=13.5, timeout=3.0) == [record]


def test_observe_fetch_feeds_correct_estimator():
    profile, chunks = make_profile(2)
    profile.observe_fetch(profile.get(chunks[0].cid), 0.5, from_edge=True)
    profile.observe_fetch(profile.get(chunks[1].cid), 2.0, from_edge=False)
    assert profile.edge_fetch_latency.value == 0.5
    assert profile.origin_fetch_latency.value == 2.0


def test_observe_staging_handles_missing_values():
    profile, _ = make_profile(1)
    profile.observe_staging(None, None)
    assert profile.staging_latency.value is None
    profile.observe_staging(1.5, 0.02)
    assert profile.staging_latency.value == 1.5
    assert profile.rtt_to_edge.value == 0.02


def test_register_content_manifest():
    from repro.xcache import ContentPublisher, ContentStore

    store = ContentStore()
    publisher = ContentPublisher(store, NID_S, HID_S)
    content = publisher.publish_synthetic("file", 5000, 1000)
    profile = ChunkProfile()
    records = profile.register_content(content)
    assert len(records) == 5
    assert profile.record_at(2).index == 2
