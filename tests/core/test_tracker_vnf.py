"""Integration tests: Staging Tracker <-> Staging VNF over the testbed."""

import pytest

from repro.core.states import StagingState
from repro.experiments.params import MicrobenchParams
from repro.experiments.scenario import TestbedScenario
from repro.mobility.coverage import Coverage, CoverageWindow
from repro.util import MB


def always_on_scenario(**param_overrides):
    """Client permanently attached to edge A."""
    params = MicrobenchParams(
        file_size=4 * MB, chunk_size=1 * MB, packet_loss=0.05,
        **param_overrides,
    )
    coverage = Coverage([CoverageWindow("ap-A", 0.0, 100_000.0)])
    return TestbedScenario(params=params, seed=5, coverage=coverage)


def attach_and_register(scenario):
    content = scenario.publish_default_content()
    client = scenario.make_softstage_client()
    manager = client.manager
    manager.register_content(content)
    scenario.sim.run(until=1.0)  # let the scanner attach the client
    assert scenario.controller.is_associated
    return content, client, manager


def test_signal_marks_pending_and_response_marks_ready():
    scenario = always_on_scenario()
    content, client, manager = attach_and_register(scenario)
    records = manager.profile.next_to_stage(2)
    vnf_address = manager.sensor.current_vnf_address()
    assert vnf_address is not None

    sent = manager.tracker.signal(records, vnf_address)
    assert sent == 2
    assert all(r.staging_state is StagingState.PENDING for r in records)

    scenario.sim.run(until=scenario.sim.now + 10.0)
    assert all(r.staging_state is StagingState.READY for r in records)
    edge = scenario.edges[0]
    assert edge.vnf.chunks_staged == 2
    for record in records:
        assert edge.store.has(record.cid)
        assert record.location == (edge.router.nid, edge.router.hid)
        assert record.new_dag.fallback_nid == edge.router.nid


def test_staging_latency_and_rtt_reported():
    scenario = always_on_scenario()
    content, client, manager = attach_and_register(scenario)
    records = manager.profile.next_to_stage(1)
    manager.tracker.signal(records, manager.sensor.current_vnf_address())
    scenario.sim.run(until=scenario.sim.now + 10.0)
    record = records[0]
    assert record.staging_latency > 0
    assert record.fetch_rtt is not None and record.fetch_rtt > 0
    assert manager.profile.staging_latency.samples == 1
    # The control RTT over one wireless hop is far below the staging
    # latency across the Internet.
    assert record.fetch_rtt < record.staging_latency


def test_duplicate_signal_answered_from_store():
    scenario = always_on_scenario()
    content, client, manager = attach_and_register(scenario)
    records = manager.profile.next_to_stage(1)
    vnf_address = manager.sensor.current_vnf_address()
    manager.tracker.signal(records, vnf_address)
    scenario.sim.run(until=scenario.sim.now + 10.0)
    edge = scenario.edges[0]
    fetches_before = edge.vnf.fetcher.fetches_started

    # Re-signal the same chunk (e.g. the READY response was lost).
    records[0].staging_state = StagingState.PENDING
    manager.tracker.signal(records, vnf_address)
    scenario.sim.run(until=scenario.sim.now + 5.0)
    # Answered immediately from the store: no new origin fetch.
    assert edge.vnf.fetcher.fetches_started == fetches_before
    assert records[0].staging_state is StagingState.READY


def test_vnf_shares_staged_chunk_across_clients():
    """A chunk staged for one client serves another's signal instantly."""
    scenario = always_on_scenario()
    content, client, manager = attach_and_register(scenario)
    edge = scenario.edges[0]
    # Pre-stage via a direct put (as if another client staged it).
    chunk = content.chunks[0]
    edge.store.put(chunk, pin=True)
    records = [manager.profile.get(chunk.cid)]
    manager.tracker.signal(records, manager.sensor.current_vnf_address())
    scenario.sim.run(until=scenario.sim.now + 2.0)
    assert records[0].staging_state is StagingState.READY
    assert edge.vnf.chunks_staged == 0  # never had to fetch


def test_stale_response_for_unknown_cid_ignored():
    scenario = always_on_scenario()
    content, client, manager = attach_and_register(scenario)
    from repro.xcache import Chunk
    from repro.xia.dag import DagAddress
    from repro.xia.packet import Packet, PacketType

    ghost = Chunk.synthetic("ghost", 0, 1000)
    packet = Packet(
        PacketType.STAGE_RESPONSE,
        dst=DagAddress.host(scenario.client_host.hid),
        src=DagAddress.host(scenario.edges[0].router.hid),
        payload={"cid": ghost.cid, "nid": scenario.edges[0].router.nid,
                 "hid": scenario.edges[0].router.hid,
                 "staging_latency": 0.1},
    )
    manager.tracker.on_response(packet, None)
    assert manager.tracker.stale_responses == 1


def test_vnf_ignores_non_stage_packets():
    scenario = always_on_scenario()
    attach_and_register(scenario)
    edge = scenario.edges[0]
    from repro.xia.dag import DagAddress
    from repro.xia.packet import Packet, PacketType

    bogus = Packet(
        PacketType.CONTROL,
        dst=DagAddress.host(edge.router.hid),
        src=DagAddress.host(scenario.client_host.hid),
        payload={},
    )
    before = edge.vnf.requests_received
    edge.vnf.handle_packet(bogus, None)
    assert edge.vnf.requests_received == before
