"""Tests for the bandwidth shaper, routing and topology helpers."""

import pytest

from repro.errors import ConfigurationError, RoutingError
from repro.net import Host, Link, Network
from repro.net.emulation import (
    BandwidthShaper,
    loss_rate_for_throughput,
    loss_rate_for_wired_target,
    mathis_throughput,
)
from repro.sim import RandomStreams, Simulator
from repro.util import mbps, ms
from repro.xia import HID, NID
from repro.xia.router import XIARouter


# ---------------------------------------------------------------------------
# Mathis relation and shaper
# ---------------------------------------------------------------------------


def test_mathis_inverse_roundtrip():
    rate = loss_rate_for_throughput(mbps(30), 1460, 0.02)
    assert mathis_throughput(1460, 0.02, rate) == pytest.approx(mbps(30))


def test_mathis_no_loss_is_unbounded():
    assert mathis_throughput(1460, 0.02, 0.0) == float("inf")


def test_loss_rate_unachievable_target_raises():
    with pytest.raises(ConfigurationError):
        loss_rate_for_throughput(1.0, 1460, 10.0)  # 1 bps at 10 s RTT


def test_wired_target_table_interpolation_monotone():
    rates = [
        loss_rate_for_wired_target(mbps(value))
        for value in (60, 45, 30, 20, 15, 8, 2)
    ]
    assert rates == sorted(rates)  # slower target -> more loss
    assert rates[0] > 0


def test_wired_target_above_max_needs_no_loss():
    assert loss_rate_for_wired_target(mbps(70)) == 0.0


def test_wired_target_below_table_clamps():
    assert loss_rate_for_wired_target(1.0) == pytest.approx(0.1)


def test_shaper_unshaped_at_max():
    shaper = BandwidthShaper(
        target_bps=mbps(60), reference_rtt=0.002, mss_bytes=1290,
        rng=RandomStreams(0).stream("s"),
    )
    assert shaper.rate == 0.0


def test_shaper_shapes_below_max():
    shaper = BandwidthShaper(
        target_bps=mbps(15), reference_rtt=0.002, mss_bytes=1290,
        rng=RandomStreams(0).stream("s"),
    )
    assert 0.01 < shaper.rate < 0.05


# ---------------------------------------------------------------------------
# Topology / routing
# ---------------------------------------------------------------------------


def line_network():
    """hostA - r1 - r2 - hostB."""
    sim = Simulator()
    net = Network(sim)
    host_a = net.add_device(Host(sim, "hostA", HID("hostA")))
    r1 = net.add_device(XIARouter(sim, "r1", HID("r1"), NID("net1")))
    r2 = net.add_device(XIARouter(sim, "r2", HID("r2"), NID("net2")))
    host_b = net.add_device(Host(sim, "hostB", HID("hostB")))
    net.connect(host_a, r1, Link(sim, "a-r1", mbps(100), ms(1)))
    net.connect(r1, r2, Link(sim, "r1-r2", mbps(100), ms(1)))
    net.connect(r2, host_b, Link(sim, "r2-b", mbps(100), ms(1)))
    net.register_network(r1.nid, r1)
    net.register_network(r2.nid, r2)
    net.build_static_routes()
    return sim, net, host_a, r1, r2, host_b


def test_static_routes_install_nid_and_hid_tables():
    _, net, host_a, r1, r2, host_b = line_network()
    # r1 routes net2 toward r2 and vice versa.
    assert r1.engine.nid_routes[r2.nid].peer.device is r2
    assert r2.engine.nid_routes[r1.nid].peer.device is r1
    # Wired hosts' HIDs installed at their adjacent routers.
    assert r1.engine.hid_routes[host_a.hid].peer.device is host_a
    assert r2.engine.hid_routes[host_b.hid].peer.device is host_b
    # And the hosts learned their network.
    assert host_a.port_nids[host_a.port(0)] == r1.nid


def test_port_toward_and_link_between():
    _, net, host_a, r1, r2, host_b = line_network()
    assert net.port_toward(r1, r2).peer.device is r2
    assert net.link_between(r1, r2).name == "r1-r2"
    with pytest.raises(RoutingError):
        net.port_toward(host_a, host_b)


def test_wired_path_walks_links():
    _, net, host_a, r1, r2, host_b = line_network()
    links = net.wired_path(host_a, host_b)
    assert [link.name for link in links] == ["a-r1", "r1-r2", "r2-b"]


def test_duplicate_device_name_rejected():
    sim = Simulator()
    net = Network(sim)
    net.add_device(Host(sim, "x", HID("x")))
    with pytest.raises(ConfigurationError):
        net.add_device(Host(sim, "x", HID("y")))


def test_duplicate_network_registration_rejected():
    sim = Simulator()
    net = Network(sim)
    router = net.add_device(XIARouter(sim, "r", HID("r"), NID("n")))
    net.register_network(router.nid, router)
    with pytest.raises(ConfigurationError):
        net.register_network(router.nid, router)


def test_connect_requires_added_devices():
    sim = Simulator()
    net = Network(sim)
    a = Host(sim, "a", HID("a"))
    b = net.add_device(Host(sim, "b", HID("b")))
    with pytest.raises(ConfigurationError):
        net.connect(a, b, Link(sim, "l", mbps(10), 0.0))


def test_router_forwards_end_to_end():
    sim, net, host_a, r1, r2, host_b = line_network()
    from repro.xia import DagAddress
    from repro.xia.packet import Packet, PacketType

    got = []
    host_b.register_handler(PacketType.CONTROL, lambda p, port: got.append(p))
    packet = Packet(
        PacketType.CONTROL,
        dst=DagAddress.host(host_b.hid, r2.nid),
        src=DagAddress.host(host_a.hid, r1.nid),
        payload={},
    )
    host_a.send(packet)
    sim.run()
    assert len(got) == 1
    assert got[0].hop_count >= 3


def test_unroutable_packet_counted():
    sim, net, host_a, r1, r2, host_b = line_network()
    from repro.xia import DagAddress
    from repro.xia.packet import Packet, PacketType

    packet = Packet(
        PacketType.CONTROL,
        dst=DagAddress.host(HID("ghost"), NID("ghost-net")),
        src=DagAddress.host(host_a.hid, r1.nid),
        payload={},
    )
    host_a.send(packet)
    sim.run()
    assert r1.dropped_unroutable == 1
