"""Tests for loss models."""

import random

import pytest

from repro.net.loss import BernoulliLoss, GilbertElliottLoss, NoLoss


def test_noloss_never_drops():
    model = NoLoss()
    assert not any(model.dropped(t * 0.01) for t in range(1000))
    assert model.average_rate == 0.0


def test_bernoulli_rate_zero_and_one():
    rng = random.Random(1)
    assert not any(BernoulliLoss(0.0, rng).dropped(0.0) for _ in range(100))
    assert all(BernoulliLoss(1.0, rng).dropped(0.0) for _ in range(100))


def test_bernoulli_empirical_rate():
    rng = random.Random(7)
    model = BernoulliLoss(0.27, rng)
    drops = sum(model.dropped(0.0) for _ in range(20_000))
    assert drops / 20_000 == pytest.approx(0.27, abs=0.02)


def test_bernoulli_rejects_bad_rate():
    with pytest.raises(Exception):
        BernoulliLoss(1.5, random.Random(0))


def test_gilbert_elliott_empirical_average():
    rng = random.Random(3)
    model = GilbertElliottLoss(average_rate=0.27, rng=rng)
    # Sample at a packet-like cadence over a long horizon.
    samples = 50_000
    drops = sum(model.dropped(i * 0.002) for i in range(samples))
    assert drops / samples == pytest.approx(0.27, abs=0.04)


def test_gilbert_elliott_losses_are_bursty():
    """Consecutive-drop runs should be much longer than Bernoulli's."""
    rng = random.Random(11)
    model = GilbertElliottLoss(average_rate=0.27, rng=rng)
    outcomes = [model.dropped(i * 0.002) for i in range(50_000)]

    def mean_run(values):
        runs, current = [], 0
        for value in values:
            if value:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        if current:
            runs.append(current)
        return sum(runs) / len(runs) if runs else 0.0

    bernoulli = random.Random(11)
    bern_outcomes = [bernoulli.random() < 0.27 for _ in range(50_000)]
    assert mean_run(outcomes) > 3 * mean_run(bern_outcomes)


def test_gilbert_elliott_time_reversal_rejected():
    model = GilbertElliottLoss(average_rate=0.27, rng=random.Random(0))
    model.dropped(10.0)
    with pytest.raises(ValueError):
        model.dropped(5.0)


def test_gilbert_elliott_rate_bounds_validated():
    with pytest.raises(ValueError):
        GilbertElliottLoss(average_rate=0.001, rng=random.Random(0), good_loss=0.02)


def test_gilbert_elliott_extreme_fractions():
    rng = random.Random(5)
    always_good = GilbertElliottLoss(
        average_rate=0.02, rng=rng, good_loss=0.02, bad_loss=0.9
    )
    drops = sum(always_good.dropped(i * 0.01) for i in range(5000))
    assert drops / 5000 == pytest.approx(0.02, abs=0.01)
