"""Tests for links, queues, wireless ARQ and the processing model."""

import pytest

from repro.net import Host, Link, Network, ProcessingModel, WirelessLink
from repro.net.loss import BernoulliLoss, GilbertElliottLoss
from repro.sim import RandomStreams, Simulator
from repro.util import mbps, ms
from repro.xia import DagAddress, HID
from repro.xia.packet import Packet, PacketType


class Sink(Host):
    """A host that records everything it receives."""

    def __init__(self, sim, name):
        super().__init__(sim, name, HID(name))
        self.received = []
        self.register_handler(PacketType.DATA, self._on_data)

    def _on_data(self, packet, port):
        self.received.append((self.sim.now, packet))


def make_pair(link):
    sim = link.sim
    net = Network(sim)
    a = net.add_device(Sink(sim, "a"))
    b = net.add_device(Sink(sim, "b"))
    net.connect(a, b, link)
    return sim, a, b


def packet_to(b, size=1000, seq=0):
    return Packet(
        PacketType.DATA,
        dst=DagAddress.host(b.hid),
        src=DagAddress.host(HID("a")),
        size_bytes=size,
        seq=seq,
        payload={},
    )


def test_serialization_plus_propagation_delay():
    sim = Simulator()
    link = Link(sim, "l", bandwidth_bps=mbps(8), delay=ms(5))
    sim2, a, b = make_pair(link)
    a.send(packet_to(b, size=1000))  # 1000B at 8 Mbps = 1 ms airtime
    sim.run()
    arrival = b.received[0][0]
    assert arrival == pytest.approx(0.001 + 0.005)


def test_fifo_and_back_to_back_serialization():
    sim = Simulator()
    link = Link(sim, "l", bandwidth_bps=mbps(8), delay=0.0)
    _, a, b = make_pair(link)
    for seq in range(3):
        a.send(packet_to(b, size=1000, seq=seq))
    sim.run()
    times = [t for t, _ in b.received]
    seqs = [p.seq for _, p in b.received]
    assert seqs == [0, 1, 2]
    assert times == pytest.approx([0.001, 0.002, 0.003])


def test_queue_overflow_drops():
    sim = Simulator()
    link = Link(sim, "l", bandwidth_bps=mbps(1), delay=0.0, queue_bytes=2500)
    _, a, b = make_pair(link)
    for seq in range(10):
        a.send(packet_to(b, size=1000, seq=seq))
    sim.run()
    assert link.forward.stats.dropped_queue > 0
    assert len(b.received) < 10


def test_link_down_drops_everything():
    sim = Simulator()
    link = Link(sim, "l", bandwidth_bps=mbps(10), delay=ms(1))
    _, a, b = make_pair(link)
    link.set_up(False)
    a.send(packet_to(b))
    sim.run()
    assert b.received == []
    assert link.forward.stats.dropped_down >= 1


def test_link_down_mid_flight_drops():
    sim = Simulator()
    link = Link(sim, "l", bandwidth_bps=mbps(10), delay=ms(50))
    _, a, b = make_pair(link)
    a.send(packet_to(b))

    def cut(sim):
        yield sim.timeout(0.01)  # after serialization, before arrival
        link.set_up(False)

    sim.process(cut(sim))
    sim.run()
    assert b.received == []


def test_bernoulli_loss_drops_fraction():
    sim = Simulator()
    rng = RandomStreams(3).stream("loss")
    link = Link(sim, "l", bandwidth_bps=mbps(100), delay=0.0,
                loss_a_to_b=BernoulliLoss(0.5, rng))
    _, a, b = make_pair(link)
    for seq in range(400):
        a.send(packet_to(b, seq=seq))
    sim.run()
    assert 100 < len(b.received) < 300


def test_wireless_arq_hides_moderate_loss():
    sim = Simulator()
    rng = RandomStreams(3).stream("loss")
    link = WirelessLink(
        sim, "w", mac_rate_bps=mbps(65),
        loss_up=BernoulliLoss(0.3, rng), max_retries=6,
    )
    _, a, b = make_pair(link)

    def paced_sender(sim):
        for seq in range(300):
            a.send(packet_to(b, seq=seq))
            yield sim.timeout(1e-3)  # keep the queue from overflowing

    sim.process(paced_sender(sim))
    sim.run()
    # i.i.d. 30% loss with 6 retries: residual ~ 0.3^7 ~ 0.02%.
    assert len(b.received) >= 299
    assert link.forward.retransmissions > 50


def test_wireless_retries_cost_airtime():
    def run_with_loss(loss_rate):
        sim = Simulator()
        rng = RandomStreams(7).stream("loss")
        loss = BernoulliLoss(loss_rate, rng) if loss_rate else None
        link = WirelessLink(sim, "w", mac_rate_bps=mbps(65), loss_up=loss)
        _, a, b = make_pair(link)
        for seq in range(200):
            a.send(packet_to(b, size=1500, seq=seq))
        sim.run()
        return b.received[-1][0]

    assert run_with_loss(0.3) > 1.3 * run_with_loss(0.0)


def test_wireless_half_duplex_shares_airtime():
    sim = Simulator()
    link = WirelessLink(sim, "w", mac_rate_bps=mbps(65), delay=0.0)
    _, a, b = make_pair(link)
    for seq in range(100):
        a.send(packet_to(b, size=1500, seq=seq))
        b.send(packet_to(a, size=1500, seq=seq))
    sim.run()
    # Both directions moved 100 packets over ONE medium: the finish
    # time is ~double a single direction's.
    one_way_airtime = 100 * (1500 * 8 / mbps(65) + 150e-6)
    finish = max(b.received[-1][0], a.received[-1][0])
    assert finish > 1.8 * one_way_airtime


def test_gilbert_elliott_on_wireless_leaks_bursty_residual():
    sim = Simulator()
    rng = RandomStreams(11).stream("loss")
    loss = GilbertElliottLoss(0.27, rng, good_loss=0.02, bad_loss=0.95,
                              mean_bad_duration=0.25)
    link = WirelessLink(sim, "w", mac_rate_bps=mbps(65),
                        loss_up=loss, max_retries=4)
    _, a, b = make_pair(link)
    for seq in range(2000):
        a.send(packet_to(b, size=1500, seq=seq))
    sim.run()
    # Deep fades defeat ARQ: visible residual loss, unlike i.i.d.
    assert link.forward.residual_drops > 10


def test_processing_model_queues_work():
    sim = Simulator()
    model = ProcessingModel(sim, per_packet_seconds=1e-3)
    assert model.admit() == pytest.approx(1e-3)
    assert model.admit() == pytest.approx(2e-3)  # queued behind the first
    sim2 = Simulator()
    free = ProcessingModel(sim2, per_packet_seconds=0.0)
    assert free.admit() == 0.0
    assert free.max_packet_rate == float("inf")
    assert model.max_packet_rate == pytest.approx(1000.0)


def test_link_down_emits_one_batched_drop_event():
    """clear() publishes a single PacketDropped carrying the count."""
    from repro.obs.events import PacketDropped

    sim = Simulator()
    link = Link(sim, "l", bandwidth_bps=mbps(1), delay=ms(50))
    sim, a, b = make_pair(link)
    drops = []
    sim.probe.bus.subscribe(PacketDropped, lambda s: drops.append(s.event))
    for seq in range(6):
        a.send(packet_to(b, seq=seq))

    def take_down(sim):
        yield sim.timeout(0.001)
        link.set_up(False)

    sim.process(take_down(sim))
    sim.run()
    queued = link.forward.stats.dropped_down
    assert queued >= 4  # most of the burst was still queued
    down_events = [e for e in drops if e.reason == "down" and e.count > 1]
    assert len(down_events) == 1  # one batch, not one event per packet
    assert sum(e.count for e in drops if e.reason == "down") == (
        link.forward.stats.dropped_down
    )


def test_single_drops_keep_count_one():
    from repro.obs.events import PacketDropped

    sim = Simulator()
    link = Link(sim, "l", bandwidth_bps=mbps(100), delay=ms(1),
                queue_bytes=1500)
    sim, a, b = make_pair(link)
    drops = []
    sim.probe.bus.subscribe(PacketDropped, lambda s: drops.append(s.event))
    for seq in range(5):
        a.send(packet_to(b, size=1000, seq=seq))
    sim.run()
    assert link.forward.stats.dropped_queue >= 1
    assert all(e.count == 1 for e in drops if e.reason == "queue")


def test_down_link_delivery_counts_match_metrics_collector():
    """The batched event and the per-reason counters agree end to end."""
    from repro.metrics.collector import MetricsCollector

    sim = Simulator()
    link = Link(sim, "l", bandwidth_bps=mbps(1), delay=ms(50))
    sim, a, b = make_pair(link)
    collector = MetricsCollector(sim).attach(sim.probe.bus)
    for seq in range(6):
        a.send(packet_to(b, seq=seq))

    def take_down(sim):
        yield sim.timeout(0.001)
        link.set_up(False)

    sim.process(take_down(sim))
    sim.run()
    total_down = (link.forward.stats.dropped_down
                  + link.backward.stats.dropped_down)
    assert collector.counters["net.drops.down"] == total_down
