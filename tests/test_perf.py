"""Tests for the persistent perf trajectory (repro.perf)."""

import json

import pytest

from repro import perf


@pytest.fixture(autouse=True)
def bench_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    return tmp_path


def test_record_appends_entries_with_fingerprint(bench_dir):
    perf.record("kernel", {"events_per_sec": 100.0}, label="first")
    perf.record("kernel", {"events_per_sec": 120.0}, label="second")
    entries = perf.load("kernel")["entries"]
    assert [e["label"] for e in entries] == ["first", "second"]
    assert all(e["machine"] == perf.fingerprint() for e in entries)
    on_disk = json.loads((bench_dir / "BENCH_kernel.json").read_text())
    assert on_disk["kind"] == "kernel"
    assert len(on_disk["entries"]) == 2


def test_history_is_trimmed_to_limit(bench_dir):
    for index in range(perf.HISTORY_LIMIT + 7):
        perf.record("kernel", {"m": float(index)})
    entries = perf.load("kernel")["entries"]
    assert len(entries) == perf.HISTORY_LIMIT
    # Oldest entries fall off the front.
    assert entries[-1]["metrics"]["m"] == float(perf.HISTORY_LIMIT + 6)


def test_baseline_modes():
    perf.record("kernel", {"m": 10.0})
    perf.record("kernel", {"m": 30.0})
    perf.record("kernel", {"m": 20.0})
    assert perf.baseline("kernel", "m", mode="max") == 30.0
    assert perf.baseline("kernel", "m", mode="min") == 10.0
    assert perf.baseline("kernel", "m", mode="latest") == 20.0
    assert perf.baseline("kernel", "missing") is None
    assert perf.baseline("sweep", "m") is None  # no such file yet


def test_baseline_filters_other_machines(bench_dir):
    alien = {"kind": "kernel", "entries": [{
        "label": "other-box", "recorded_at": "2026-01-01T00:00:00",
        "machine": "plan9-mips-cpu128-py9.9", "metrics": {"m": 999.0},
    }]}
    (bench_dir / "BENCH_kernel.json").write_text(json.dumps(alien))
    assert perf.baseline("kernel", "m", same_machine=True) is None
    assert perf.baseline("kernel", "m", same_machine=False) == 999.0


def test_check_regression_passes_without_baseline():
    ok, base = perf.check_regression("kernel", "events_per_sec", 1.0)
    assert ok and base is None


def test_check_regression_higher_is_better():
    perf.record("kernel", {"events_per_sec": 1000.0})
    ok, base = perf.check_regression(
        "kernel", "events_per_sec", 800.0, allowed_drop=0.30
    )
    assert ok and base == 1000.0
    ok, _ = perf.check_regression(
        "kernel", "events_per_sec", 600.0, allowed_drop=0.30
    )
    assert not ok


def test_check_regression_lower_is_better():
    perf.record("kernel", {"pushes": 2.0})
    ok, base = perf.check_regression(
        "kernel", "pushes", 2.05, allowed_drop=0.05, higher_is_better=False
    )
    assert ok and base == 2.0
    ok, _ = perf.check_regression(
        "kernel", "pushes", 2.2, allowed_drop=0.05, higher_is_better=False
    )
    assert not ok


def test_fingerprint_shape():
    parts = perf.fingerprint().split("-")
    assert len(parts) == 4
    assert parts[2].startswith("cpu")
    assert parts[3].startswith("py")
