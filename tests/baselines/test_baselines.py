"""Tests for the predictive-staging and end-to-end baselines."""

import random

import pytest

from repro.baselines.predictive import MobilityPredictor
from repro.experiments.params import MicrobenchParams
from repro.experiments.scenario import TestbedScenario
from repro.mobility.association import AccessPointInfo
from repro.util import MB
from repro.xia import HID, NID, SID


def make_infos(names):
    return [
        AccessPointInfo(
            name=name, device=None, nid=NID(name), client_port_index=i,
            vnf_sid=SID(name), cache_hid=HID(name),
        )
        for i, name in enumerate(names)
    ]


# ---------------------------------------------------------------------------
# MobilityPredictor
# ---------------------------------------------------------------------------


def test_perfect_predictor_names_round_robin_next():
    infos = make_infos(["A", "B", "C"])
    predictor = MobilityPredictor(infos, accuracy=1.0, rng=random.Random(0))
    assert predictor.predict_next("A").name == "B"
    assert predictor.predict_next("B").name == "C"
    assert predictor.predict_next("C").name == "A"


def test_zero_accuracy_never_names_the_true_next():
    infos = make_infos(["A", "B", "C"])
    predictor = MobilityPredictor(infos, accuracy=0.0, rng=random.Random(0))
    for _ in range(50):
        assert predictor.predict_next("A").name != "B"


def test_predictor_accuracy_statistics():
    infos = make_infos(["A", "B"])
    predictor = MobilityPredictor(infos, accuracy=0.7, rng=random.Random(3))
    hits = sum(
        predictor.predict_next("A").name == "B" for _ in range(2000)
    )
    assert hits / 2000 == pytest.approx(0.7, abs=0.05)


def test_predictor_with_unknown_current():
    infos = make_infos(["A", "B"])
    predictor = MobilityPredictor(infos, accuracy=1.0, rng=random.Random(0))
    assert predictor.predict_next(None).name == "A"


# ---------------------------------------------------------------------------
# Baseline clients end-to-end
# ---------------------------------------------------------------------------


def test_predictive_client_downloads_with_good_predictions():
    params = MicrobenchParams(file_size=8 * MB, chunk_size=1 * MB)
    scenario = TestbedScenario(params=params, seed=1)
    content = scenario.publish_default_content()
    client = scenario.make_predictive_client(accuracy=1.0)
    result = scenario.sim.run(
        until=scenario.sim.process(client.download(content))
    )
    assert result.completed
    assert result.staging_signals >= 1
    # With perfect prediction, later chunks come from edges.
    assert result.chunks_from_edge > 0


def test_predictive_worse_with_bad_predictions():
    params = MicrobenchParams(file_size=12 * MB)
    times = {}
    for accuracy in (1.0, 0.0):
        scenario = TestbedScenario(params=params, seed=2, num_edges=3)
        content = scenario.publish_default_content()
        client = scenario.make_predictive_client(accuracy=accuracy)
        result = scenario.sim.run(
            until=scenario.sim.process(client.download(content))
        )
        times[accuracy] = result.duration
    assert times[0.0] >= times[1.0] * 0.95  # never better by margin


def test_endtoend_client_single_stream():
    params = MicrobenchParams(file_size=6 * MB, chunk_size=6 * MB)
    scenario = TestbedScenario(params=params, seed=1)
    content = scenario.publish_default_content()
    client = scenario.make_endtoend_client()
    result = scenario.sim.run(
        until=scenario.sim.process(client.download(content))
    )
    assert result.completed
    assert result.chunks_total == 1
    assert result.bytes_received == 6 * MB


def test_one_client_per_scenario_enforced():
    from repro.errors import ConfigurationError

    scenario = TestbedScenario(params=MicrobenchParams(file_size=2 * MB), seed=0)
    scenario.make_xftp_client()
    with pytest.raises(ConfigurationError):
        scenario.make_softstage_client()
