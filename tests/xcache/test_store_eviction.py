"""Tests for the content store and eviction policies."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CacheMiss, ConfigurationError
from repro.xcache import (
    Chunk,
    ContentStore,
    FifoEviction,
    LfuEviction,
    LruEviction,
    RandomEviction,
    TtlEviction,
    make_eviction_policy,
)


def make_chunk(index: int, size: int = 100) -> Chunk:
    return Chunk.synthetic("content", index, size)


# ---------------------------------------------------------------------------
# ContentStore basics
# ---------------------------------------------------------------------------


def test_put_get_roundtrip():
    store = ContentStore()
    chunk = make_chunk(0)
    assert store.put(chunk)
    assert store.has(chunk.cid)
    assert store.get(chunk.cid) is chunk
    assert store.hits == 1


def test_get_miss_raises_and_counts():
    store = ContentStore()
    with pytest.raises(CacheMiss):
        store.get(make_chunk(0).cid)
    assert store.misses == 1
    assert store.hit_ratio == 0.0


def test_duplicate_put_is_idempotent():
    store = ContentStore()
    chunk = make_chunk(0)
    store.put(chunk)
    store.put(chunk)
    assert len(store) == 1
    assert store.used_bytes == chunk.size_bytes


def test_capacity_eviction_lru_order():
    clock = [0.0]
    store = ContentStore(capacity_bytes=300, eviction=LruEviction(), clock=lambda: clock[0])
    chunks = [make_chunk(i) for i in range(3)]
    for chunk in chunks:
        store.put(chunk)
    store.get(chunks[0].cid)  # make chunk 0 most recent
    store.put(make_chunk(99))  # forces one eviction
    assert store.has(chunks[0].cid)
    assert not store.has(chunks[1].cid)  # LRU victim
    assert store.evictions == 1


def test_chunk_larger_than_capacity_rejected():
    store = ContentStore(capacity_bytes=50)
    assert not store.put(make_chunk(0, size=100))
    assert store.rejected == 1


def test_pinned_chunks_never_evicted():
    store = ContentStore(capacity_bytes=300)
    pinned = make_chunk(0)
    store.put(pinned, pin=True)
    for i in range(1, 10):
        store.put(make_chunk(i))
    assert store.has(pinned.cid)


def test_put_fails_when_everything_pinned():
    store = ContentStore(capacity_bytes=200)
    store.put(make_chunk(0), pin=True)
    store.put(make_chunk(1), pin=True)
    assert not store.put(make_chunk(2))
    assert store.rejected == 1


def test_unpin_allows_eviction():
    store = ContentStore(capacity_bytes=200)
    first = make_chunk(0)
    store.put(first, pin=True)
    store.put(make_chunk(1))
    store.unpin(first.cid)
    store.put(make_chunk(2))
    assert len(store) == 2


def test_pin_absent_chunk_raises():
    store = ContentStore()
    with pytest.raises(CacheMiss):
        store.pin(make_chunk(0).cid)


def test_remove_frees_space():
    store = ContentStore(capacity_bytes=100)
    chunk = make_chunk(0)
    store.put(chunk)
    store.remove(chunk.cid)
    assert store.used_bytes == 0
    assert store.put(make_chunk(1))


def test_peek_does_not_count_stats():
    store = ContentStore()
    chunk = make_chunk(0)
    store.put(chunk)
    assert store.peek(chunk.cid) is chunk
    assert store.peek(make_chunk(1).cid) is None
    assert store.hits == 0 and store.misses == 0


def test_store_requires_positive_capacity():
    with pytest.raises(ConfigurationError):
        ContentStore(capacity_bytes=0)


# ---------------------------------------------------------------------------
# Eviction policies
# ---------------------------------------------------------------------------


def test_fifo_ignores_access_pattern():
    clock = [0.0]
    store = ContentStore(capacity_bytes=300, eviction=FifoEviction(), clock=lambda: clock[0])
    chunks = [make_chunk(i) for i in range(3)]
    for chunk in chunks:
        store.put(chunk)
    store.get(chunks[0].cid)  # access does not protect under FIFO
    store.put(make_chunk(99))
    assert not store.has(chunks[0].cid)


def test_lfu_keeps_hot_chunks():
    store = ContentStore(capacity_bytes=300, eviction=LfuEviction())
    hot, warm, cold = make_chunk(0), make_chunk(1), make_chunk(2)
    for chunk in (hot, warm, cold):
        store.put(chunk)
    for _ in range(5):
        store.get(hot.cid)
    store.get(warm.cid)
    store.put(make_chunk(99))
    assert not store.has(cold.cid)
    assert store.has(hot.cid) and store.has(warm.cid)


def test_random_eviction_evicts_member():
    store = ContentStore(capacity_bytes=300, eviction=RandomEviction())
    for i in range(3):
        store.put(make_chunk(i))
    store.put(make_chunk(99))
    assert len(store) == 3


def test_ttl_expires_entries():
    clock = [0.0]
    store = ContentStore(eviction=TtlEviction(ttl=10.0), clock=lambda: clock[0])
    chunk = make_chunk(0)
    store.put(chunk)
    clock[0] = 5.0
    assert store.has(chunk.cid)
    clock[0] = 11.0
    assert not store.has(chunk.cid)


def test_ttl_does_not_expire_pinned():
    clock = [0.0]
    store = ContentStore(eviction=TtlEviction(ttl=10.0), clock=lambda: clock[0])
    chunk = make_chunk(0)
    store.put(chunk, pin=True)
    clock[0] = 100.0
    assert store.has(chunk.cid)


def test_make_eviction_policy_factory():
    assert isinstance(make_eviction_policy("lru"), LruEviction)
    assert isinstance(make_eviction_policy("TTL", ttl=5.0), TtlEviction)
    with pytest.raises(ConfigurationError):
        make_eviction_policy("mystery")


@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=60))
def test_store_never_exceeds_capacity(indexes):
    """Property: used_bytes <= capacity regardless of insert sequence."""
    store = ContentStore(capacity_bytes=500)
    for index in indexes:
        store.put(make_chunk(index))
        assert store.used_bytes <= 500
        assert store.used_bytes == sum(
            chunk.size_bytes for cid, chunk in store._chunks.items()
        )
