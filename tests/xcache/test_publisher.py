"""Tests for content publishing."""

import pytest

from repro.errors import ConfigurationError
from repro.xcache import ContentPublisher, ContentStore
from repro.xia import HID, NID
from repro.xia.ids import PrincipalType


def make_publisher(capacity=float("inf")):
    return ContentPublisher(
        ContentStore(capacity_bytes=capacity), NID("origin"), HID("server")
    )


def test_publish_synthetic_chunking():
    publisher = make_publisher()
    content = publisher.publish_synthetic("file", 5_500_000, 2_000_000)
    assert len(content) == 3
    assert [c.size_bytes for c in content.chunks] == [
        2_000_000, 2_000_000, 1_500_000,
    ]
    assert content.total_bytes == 5_500_000


def test_published_chunks_land_pinned_in_store():
    publisher = make_publisher()
    content = publisher.publish_synthetic("file", 2_000_000, 1_000_000)
    for chunk in content.chunks:
        assert publisher.store.has(chunk.cid)
        assert publisher.store.is_pinned(chunk.cid)


def test_addresses_point_at_origin():
    publisher = make_publisher()
    content = publisher.publish_synthetic("file", 1_000_000, 1_000_000)
    address = content.addresses[0]
    assert address.intent.principal_type is PrincipalType.CID
    assert address.fallback_nid == NID("origin")
    assert address.fallback_hid == HID("server")


def test_address_of_and_chunk_of():
    publisher = make_publisher()
    content = publisher.publish_synthetic("file", 3_000_000, 1_000_000)
    cid = content.chunks[1].cid
    assert content.address_of(cid).intent == cid
    assert content.chunk_of(cid).index == 1
    from repro.xcache import Chunk

    with pytest.raises(KeyError):
        content.address_of(Chunk.synthetic("other", 0, 10).cid)


def test_publish_bytes_roundtrip():
    publisher = make_publisher()
    content = publisher.publish_bytes("blob", b"hello world" * 100, 256)
    assert content.total_bytes == 1100
    assert sum(c.size_bytes for c in content.chunks) == 1100
    assert all(c.verify() for c in content.chunks)


def test_duplicate_name_rejected():
    publisher = make_publisher()
    publisher.publish_synthetic("file", 1000, 1000)
    with pytest.raises(ConfigurationError):
        publisher.publish_synthetic("file", 1000, 1000)


def test_manifest_lookup():
    publisher = make_publisher()
    content = publisher.publish_synthetic("file", 1000, 1000)
    assert publisher.manifest("file") is content
    assert publisher.manifest("missing") is None


def test_origin_store_too_small_raises():
    publisher = make_publisher(capacity=1_000)
    with pytest.raises(ConfigurationError):
        publisher.publish_synthetic("big", 10_000, 5_000)


def test_publisher_type_checks():
    with pytest.raises(ConfigurationError):
        ContentPublisher(ContentStore(), HID("x"), HID("server"))
    with pytest.raises(ConfigurationError):
        ContentPublisher(ContentStore(), NID("origin"), NID("x"))
