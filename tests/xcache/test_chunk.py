"""Tests for chunk objects and integrity."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ChunkIntegrityError
from repro.xcache import Chunk
from repro.xia.ids import PrincipalType


def test_synthetic_chunk_cid_is_deterministic():
    a = Chunk.synthetic("movie", 3, 2_000_000)
    b = Chunk.synthetic("movie", 3, 2_000_000)
    assert a.cid == b.cid
    assert a == b


def test_synthetic_chunks_differ_by_index_and_name():
    base = Chunk.synthetic("movie", 0, 1000)
    assert base.cid != Chunk.synthetic("movie", 1, 1000).cid
    assert base.cid != Chunk.synthetic("other", 0, 1000).cid


def test_chunk_cid_depends_on_size():
    assert Chunk.synthetic("m", 0, 1000).cid != Chunk.synthetic("m", 0, 2000).cid


def test_chunk_cid_principal_type():
    assert Chunk.synthetic("m", 0, 10).cid.principal_type is PrincipalType.CID


def test_from_bytes_roundtrip_verification():
    chunk = Chunk.from_bytes(b"real payload bytes", "file", 0)
    assert chunk.size_bytes == len(b"real payload bytes")
    assert chunk.verify()


def test_from_bytes_rejects_empty():
    with pytest.raises(ChunkIntegrityError):
        Chunk.from_bytes(b"")


def test_verify_against_wrong_cid_fails():
    chunk = Chunk.synthetic("m", 0, 10)
    other = Chunk.synthetic("m", 1, 10)
    assert not chunk.verify(claimed_cid=other.cid)


def test_chunk_is_immutable():
    chunk = Chunk.synthetic("m", 0, 10)
    with pytest.raises(AttributeError):
        chunk.size_bytes = 99


def test_chunk_size_must_be_positive():
    with pytest.raises(Exception):
        Chunk.synthetic("m", 0, 0)


@given(
    st.text(min_size=1, max_size=10),
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=1, max_value=10**9),
)
def test_synthetic_cid_stable(name, index, size):
    assert Chunk.synthetic(name, index, size).cid == Chunk.synthetic(name, index, size).cid
