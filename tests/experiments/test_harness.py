"""Tests for the experiment harness: params, report rendering, runner."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.params import (
    CHUNK_SIZE_LADDER,
    MicrobenchParams,
    PARAMETER_TABLE,
)
from repro.experiments.report import GainSeries, render_table
from repro.experiments.runner import gain, run_download
from repro.experiments.xia_benchmark import PAPER_FIG5, run_protocol
from repro.util import MB, mbps, ms


def test_default_params_match_table3():
    params = MicrobenchParams()
    assert params.chunk_size == 2 * MB
    assert params.encounter_time == 12.0
    assert params.disconnection_time == 8.0
    assert params.packet_loss == 0.27
    assert params.internet_bandwidth == mbps(60)
    assert params.internet_latency == ms(20)
    assert params.file_size == 64 * MB


def test_params_with_is_immutable_copy():
    base = MicrobenchParams()
    varied = base.with_(packet_loss=0.37)
    assert varied.packet_loss == 0.37
    assert base.packet_loss == 0.27


def test_parameter_table_rows():
    names = [row.name for row in PARAMETER_TABLE]
    assert names == [
        "Chunk Size", "Encounter Time", "Disconnection Time",
        "Packet Loss Rate", "Internet Bandwidth", "Internet Latency",
    ]
    assert CHUNK_SIZE_LADDER["360p"] == 250_000


def test_gain_series_render_contains_rows():
    series = GainSeries(title="demo", parameter="x")
    series.add("1", 10.0, 5.0, paper_gain=1.8)
    series.add("2", 20.0, 5.0)
    text = series.render()
    assert "demo" in text
    assert "2.00x" in text
    assert "1.80x" in text
    assert series.rows[1].gain == 4.0


def test_render_table_validates_row_width():
    with pytest.raises(ValueError):
        render_table("t", ("a", "b"), [(1,)])
    text = render_table("t", ("a", "b"), [(1, 2.5)])
    assert "2.50" in text


def test_gain_helper():
    assert gain(10.0, 5.0) == 2.0
    with pytest.raises(ConfigurationError):
        gain(10.0, 0.0)


def test_run_download_rejects_unknown_system():
    with pytest.raises(ConfigurationError):
        run_download("warpdrive")


def test_run_download_smoke_both_systems():
    params = MicrobenchParams(file_size=2 * MB, chunk_size=1 * MB,
                              packet_loss=0.05)
    xftp = run_download("xftp", params=params, seed=0)
    assert xftp.download.completed
    softstage = run_download("softstage", params=params, seed=0)
    assert softstage.download.completed
    assert softstage.system == "softstage"


def test_fig5_single_point_close_to_paper():
    point = run_protocol("wired", "linux-tcp")
    assert point.paper_mbps == PAPER_FIG5[("wired", "linux-tcp")]
    measured = point.throughput_bps / 1e6
    assert measured == pytest.approx(95.0, rel=0.15)


def test_run_id_derives_from_system_and_seed_and_round_trips(tmp_path):
    from repro.obs import read_trace

    params = MicrobenchParams(file_size=2 * MB, chunk_size=1 * MB,
                              packet_loss=0.05)
    trace = tmp_path / "run.jsonl"
    result = run_download("softstage", params=params, seed=7,
                          trace_path=str(trace))
    assert result.run_id == "softstage-seed7"
    stamps = read_trace(str(trace))
    assert stamps, "expected a non-empty trace"
    # Every stamped record in the trace carries the derived run id.
    assert {s.run_id for s in stamps} == {"softstage-seed7"}

    # An explicit run_id overrides the derived one.
    override = run_download("xftp", params=params, seed=7, run_id="custom")
    assert override.run_id == "custom"
