"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_cli_requires_command(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_cli_rejects_unknown_panel():
    with pytest.raises(SystemExit):
        main(["sweep", "--panel", "z"])


def test_cli_demo_runs_small(capsys):
    assert main(["demo", "--file-mb", "2"]) == 0
    out = capsys.readouterr().out
    assert "Xftp" in out and "SoftStage" in out and "gain" in out


def test_cli_fig5_prints_table(capsys):
    assert main(["fig5"]) == 0
    out = capsys.readouterr().out
    assert "xchunkp" in out and "paper (Mbps)" in out
