"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_cli_requires_command(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_cli_rejects_unknown_panel():
    with pytest.raises(SystemExit):
        main(["sweep", "--panel", "z"])


def test_cli_demo_runs_small(capsys):
    assert main(["demo", "--file-mb", "2"]) == 0
    out = capsys.readouterr().out
    assert "Xftp" in out and "SoftStage" in out and "gain" in out


def test_cli_fig5_prints_table(capsys):
    assert main(["fig5"]) == 0
    out = capsys.readouterr().out
    assert "xchunkp" in out and "paper (Mbps)" in out


def test_cli_demo_trace_and_spans(tmp_path, capsys):
    trace = tmp_path / "demo.jsonl"
    assert main([
        "demo", "--file-mb", "2", "--trace", str(trace), "--spans",
    ]) == 0
    out = capsys.readouterr().out
    assert "Spans [xftp-seed0]" in out
    assert "Spans [softstage-seed0]" in out
    assert trace.exists()
    # Both runs landed in the one file, told apart by run id.
    from repro.obs import read_trace

    run_ids = {s.run_id for s in read_trace(str(trace))}
    assert run_ids == {"xftp-seed0", "softstage-seed0"}


def test_cli_trace_subcommands_end_to_end(tmp_path, capsys):
    import json

    trace = tmp_path / "demo.jsonl"
    main(["demo", "--file-mb", "2", "--trace", str(trace)])
    capsys.readouterr()

    assert main(["trace", "summary", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "run xftp-seed0" in out and "run softstage-seed0" in out
    assert "Spans [softstage-seed0]" in out

    assert main(["trace", "spans", str(trace), "--run", "softstage-seed0",
                 "--critical"]) == 0
    out = capsys.readouterr().out
    assert "kind" in out and "Critical path" in out

    chrome = tmp_path / "chrome.json"
    assert main(["trace", "chrome", str(trace), "-o", str(chrome)]) == 0
    payload = json.loads(chrome.read_text())
    assert payload["traceEvents"]
    complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    assert all("ts" in e and "dur" in e for e in complete)

    # Diff the two runs inside the single multi-run file.
    assert main(["trace", "diff", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "A=xftp-seed0" in out and "B=softstage-seed0" in out

    # And the same run across two "files" (here: the same file twice).
    assert main(["trace", "diff", str(trace), str(trace),
                 "--run-a", "xftp-seed0", "--run-b", "softstage-seed0"]) == 0


def test_cli_emit_wide_matches_offline_trace_wide_byte_for_byte(
    tmp_path, capsys
):
    trace = tmp_path / "demo.jsonl"
    live = tmp_path / "live-wide.jsonl"
    offline = tmp_path / "offline-wide.jsonl"
    assert main([
        "demo", "--file-mb", "2", "--trace", str(trace),
        "--emit-wide", str(live),
    ]) == 0
    assert "wide events written to" in capsys.readouterr().out
    assert main(["trace", "wide", str(trace), "-o", str(offline)]) == 0
    assert "byte-identical" in capsys.readouterr().out
    assert live.read_bytes() == offline.read_bytes()
    # Both demo runs landed in the one wide file.
    import json

    runs = {json.loads(line)["run"] for line in live.read_text().splitlines()}
    assert runs == {"xftp-seed0", "softstage-seed0"}


def test_cli_trace_wide_prints_canonical_jsonl(tmp_path, capsys):
    import json

    trace = tmp_path / "demo.jsonl"
    main(["demo", "--file-mb", "2", "--trace", str(trace)])
    capsys.readouterr()
    assert main(["trace", "wide", str(trace),
                 "--run", "softstage-seed0"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    records = [json.loads(line) for line in lines]
    assert records and all(r["run"] == "softstage-seed0" for r in records)
    assert records[-1]["kind"] == "run"


def test_cli_demo_emit_wide_defaults_into_the_registry(tmp_path, capsys):
    assert main([
        "demo", "--file-mb", "2", "--registry-dir", str(tmp_path),
        "--emit-wide",
    ]) == 0
    out = capsys.readouterr().out
    assert "wide events written to" in out
    wide = tmp_path / "wide" / "demo-seed0.jsonl"
    assert wide.exists() and wide.read_text().strip()


def test_cli_demo_live_renders_the_dashboard(tmp_path, capsys):
    assert main([
        "demo", "--file-mb", "2", "--live",
        "--registry-dir", str(tmp_path),
    ]) == 0
    out = capsys.readouterr().out
    # The repaint loop ran (no TTY -> appended frames, no ANSI clears)
    # and the ordinary demo summary still printed afterwards.
    assert "repro live telemetry" in out
    assert "run softstage-seed0: finished" in out
    assert "gain" in out
    assert "\x1b[2J" not in out


def test_cli_trace_summary_missing_run_errors(tmp_path, capsys):
    import pytest

    trace = tmp_path / "demo.jsonl"
    main(["demo", "--file-mb", "2", "--trace", str(trace)])
    capsys.readouterr()
    with pytest.raises(ValueError, match="no-such-run"):
        main(["trace", "summary", str(trace), "--run", "no-such-run"])


def test_cli_profile_prints_hot_handlers(capsys):
    assert main(["profile", "--file-mb", "2", "--system", "softstage"]) == 0
    out = capsys.readouterr().out
    assert "Simulator profile [softstage-seed0]" in out
    assert "steps=" in out and "heap pushes=" in out
    assert "process:" in out
