"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_cli_requires_command(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_cli_rejects_unknown_panel():
    with pytest.raises(SystemExit):
        main(["sweep", "--panel", "z"])


def test_cli_demo_runs_small(capsys):
    assert main(["demo", "--file-mb", "2"]) == 0
    out = capsys.readouterr().out
    assert "Xftp" in out and "SoftStage" in out and "gain" in out


def test_cli_fig5_prints_table(capsys):
    assert main(["fig5"]) == 0
    out = capsys.readouterr().out
    assert "xchunkp" in out and "paper (Mbps)" in out


def test_cli_demo_trace_and_spans(tmp_path, capsys):
    trace = tmp_path / "demo.jsonl"
    assert main([
        "demo", "--file-mb", "2", "--trace", str(trace), "--spans",
    ]) == 0
    out = capsys.readouterr().out
    assert "Spans [xftp-seed0]" in out
    assert "Spans [softstage-seed0]" in out
    assert trace.exists()
    # Both runs landed in the one file, told apart by run id.
    from repro.obs import read_trace

    run_ids = {s.run_id for s in read_trace(str(trace))}
    assert run_ids == {"xftp-seed0", "softstage-seed0"}


def test_cli_trace_subcommands_end_to_end(tmp_path, capsys):
    import json

    trace = tmp_path / "demo.jsonl"
    main(["demo", "--file-mb", "2", "--trace", str(trace)])
    capsys.readouterr()

    assert main(["trace", "summary", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "run xftp-seed0" in out and "run softstage-seed0" in out
    assert "Spans [softstage-seed0]" in out

    assert main(["trace", "spans", str(trace), "--run", "softstage-seed0",
                 "--critical"]) == 0
    out = capsys.readouterr().out
    assert "kind" in out and "Critical path" in out

    chrome = tmp_path / "chrome.json"
    assert main(["trace", "chrome", str(trace), "-o", str(chrome)]) == 0
    payload = json.loads(chrome.read_text())
    assert payload["traceEvents"]
    complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    assert all("ts" in e and "dur" in e for e in complete)

    # Diff the two runs inside the single multi-run file.
    assert main(["trace", "diff", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "A=xftp-seed0" in out and "B=softstage-seed0" in out

    # And the same run across two "files" (here: the same file twice).
    assert main(["trace", "diff", str(trace), str(trace),
                 "--run-a", "xftp-seed0", "--run-b", "softstage-seed0"]) == 0


def test_cli_trace_summary_missing_run_errors(tmp_path, capsys):
    import pytest

    trace = tmp_path / "demo.jsonl"
    main(["demo", "--file-mb", "2", "--trace", str(trace)])
    capsys.readouterr()
    with pytest.raises(ValueError, match="no-such-run"):
        main(["trace", "summary", str(trace), "--run", "no-such-run"])


def test_cli_profile_prints_hot_handlers(capsys):
    assert main(["profile", "--file-mb", "2", "--system", "softstage"]) == 0
    out = capsys.readouterr().out
    assert "Simulator profile [softstage-seed0]" in out
    assert "steps=" in out and "heap pushes=" in out
    assert "process:" in out
