"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_cli_requires_command(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_cli_rejects_unknown_panel():
    with pytest.raises(SystemExit):
        main(["sweep", "--panel", "z"])


def test_cli_demo_runs_small(capsys):
    assert main(["demo", "--file-mb", "2"]) == 0
    out = capsys.readouterr().out
    assert "Xftp" in out and "SoftStage" in out and "gain" in out


def test_cli_fig5_prints_table(capsys):
    assert main(["fig5"]) == 0
    out = capsys.readouterr().out
    assert "xchunkp" in out and "paper (Mbps)" in out


def test_cli_demo_trace_and_spans(tmp_path, capsys):
    trace = tmp_path / "demo.jsonl"
    assert main([
        "demo", "--file-mb", "2", "--trace", str(trace), "--spans",
    ]) == 0
    out = capsys.readouterr().out
    assert "Spans [xftp-seed0]" in out
    assert "Spans [softstage-seed0]" in out
    assert trace.exists()
    # Both runs landed in the one file, told apart by run id.
    from repro.obs import read_trace

    run_ids = {s.run_id for s in read_trace(str(trace))}
    assert run_ids == {"xftp-seed0", "softstage-seed0"}


def test_cli_trace_subcommands_end_to_end(tmp_path, capsys):
    import json

    trace = tmp_path / "demo.jsonl"
    main(["demo", "--file-mb", "2", "--trace", str(trace)])
    capsys.readouterr()

    assert main(["trace", "summary", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "run xftp-seed0" in out and "run softstage-seed0" in out
    assert "Spans [softstage-seed0]" in out

    assert main(["trace", "spans", str(trace), "--run", "softstage-seed0",
                 "--critical"]) == 0
    out = capsys.readouterr().out
    assert "kind" in out and "Critical path" in out

    chrome = tmp_path / "chrome.json"
    assert main(["trace", "chrome", str(trace), "-o", str(chrome)]) == 0
    payload = json.loads(chrome.read_text())
    assert payload["traceEvents"]
    complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    assert all("ts" in e and "dur" in e for e in complete)

    # Diff the two runs inside the single multi-run file.
    assert main(["trace", "diff", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "A=xftp-seed0" in out and "B=softstage-seed0" in out

    # And the same run across two "files" (here: the same file twice).
    assert main(["trace", "diff", str(trace), str(trace),
                 "--run-a", "xftp-seed0", "--run-b", "softstage-seed0"]) == 0


def test_cli_emit_wide_matches_offline_trace_wide_byte_for_byte(
    tmp_path, capsys
):
    trace = tmp_path / "demo.jsonl"
    live = tmp_path / "live-wide.jsonl"
    offline = tmp_path / "offline-wide.jsonl"
    assert main([
        "demo", "--file-mb", "2", "--trace", str(trace),
        "--emit-wide", str(live),
    ]) == 0
    assert "wide events written to" in capsys.readouterr().out
    assert main(["trace", "wide", str(trace), "-o", str(offline)]) == 0
    assert "byte-identical" in capsys.readouterr().out
    assert live.read_bytes() == offline.read_bytes()
    # Both demo runs landed in the one wide file.
    import json

    runs = {json.loads(line)["run"] for line in live.read_text().splitlines()}
    assert runs == {"xftp-seed0", "softstage-seed0"}


def test_cli_trace_wide_prints_canonical_jsonl(tmp_path, capsys):
    import json

    trace = tmp_path / "demo.jsonl"
    main(["demo", "--file-mb", "2", "--trace", str(trace)])
    capsys.readouterr()
    assert main(["trace", "wide", str(trace),
                 "--run", "softstage-seed0"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    records = [json.loads(line) for line in lines]
    assert records and all(r["run"] == "softstage-seed0" for r in records)
    assert records[-1]["kind"] == "run"


def test_cli_demo_emit_wide_defaults_into_the_registry(tmp_path, capsys):
    assert main([
        "demo", "--file-mb", "2", "--registry-dir", str(tmp_path),
        "--emit-wide",
    ]) == 0
    out = capsys.readouterr().out
    assert "wide events written to" in out
    wide = tmp_path / "wide" / "demo-seed0.jsonl"
    assert wide.exists() and wide.read_text().strip()


def test_cli_demo_live_renders_the_dashboard(tmp_path, capsys):
    assert main([
        "demo", "--file-mb", "2", "--live",
        "--registry-dir", str(tmp_path),
    ]) == 0
    out = capsys.readouterr().out
    # The repaint loop ran (no TTY -> appended frames, no ANSI clears)
    # and the ordinary demo summary still printed afterwards.
    assert "repro live telemetry" in out
    assert "run softstage-seed0: finished" in out
    assert "gain" in out
    assert "\x1b[2J" not in out


def test_cli_trace_summary_missing_run_errors(tmp_path, capsys):
    import pytest

    trace = tmp_path / "demo.jsonl"
    main(["demo", "--file-mb", "2", "--trace", str(trace)])
    capsys.readouterr()
    with pytest.raises(ValueError, match="no-such-run"):
        main(["trace", "summary", str(trace), "--run", "no-such-run"])


def test_cli_profile_prints_hot_handlers(capsys):
    assert main(["profile", "--file-mb", "2", "--system", "softstage"]) == 0
    out = capsys.readouterr().out
    assert "Simulator profile [softstage-seed0]" in out
    assert "steps=" in out and "heap pushes=" in out
    assert "process:" in out


# ---------------------------------------------------------------------------
# SLO checks and root-cause attribution (`repro slo`, `repro runs why`)
# ---------------------------------------------------------------------------


def _demo_with_telemetry(tmp_path, capsys):
    """A 2MB demo recorded with gauges + wide events, output discarded."""
    assert main([
        "demo", "--file-mb", "2", "--gauges", "--emit-wide",
        "--registry-dir", str(tmp_path),
    ]) == 0
    capsys.readouterr()


def test_cli_slo_check_passes_on_healthy_records(tmp_path, capsys):
    _demo_with_telemetry(tmp_path, capsys)
    assert main([
        "slo", "--registry-dir", str(tmp_path), "check",
        "--slo", "p95(fetch_latency) <= 1000",
        "--slo", "chunks_completed >= 1",
    ]) == 0
    out = capsys.readouterr().out
    assert "all SLOs pass" in out
    assert "FAIL" not in out
    # No alert file is written on a green check.
    assert not (tmp_path / "alerts.jsonl").exists()


def test_cli_slo_check_fails_on_injected_gain_collapse(tmp_path, capsys):
    from repro.obs.registry import RunRegistry

    _demo_with_telemetry(tmp_path, capsys)
    # Inject a Fig. 6 gain regression: SoftStage barely beats Xftp.
    RunRegistry(str(tmp_path)).append(
        "demo-regressed", "demo", {"gain": 0.61},
    )
    with pytest.raises(SystemExit) as err:
        main([
            "slo", "--registry-dir", str(tmp_path), "check",
            "demo-regressed", "--slo", "gain >= 1.2",
        ])
    assert err.value.code == 1
    out = capsys.readouterr().out
    assert "FAIL" in out and "0.61" in out
    assert "alert(s) appended" in out
    # The violation landed in the persistent alert log.
    assert main(["slo", "--registry-dir", str(tmp_path), "alerts"]) == 0
    out = capsys.readouterr().out
    assert "gain >= 1.2" in out and "demo-regressed" in out


def test_cli_slo_check_json_is_deterministic(tmp_path, capsys):
    import json

    _demo_with_telemetry(tmp_path, capsys)
    args = [
        "slo", "--registry-dir", str(tmp_path), "check",
        "softstage-seed0", "--slo", "chunks_completed >= 1",
        "--json",
    ]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert main(args) == 0
    assert capsys.readouterr().out == first
    payload = json.loads(first)
    assert payload["violations"] == []
    assert payload["records"][0]["rec_id"].endswith("softstage-seed0")


def test_cli_runs_why_ranks_phase_contributors(tmp_path, capsys):
    import json

    from repro.obs.explain import PHASES

    _demo_with_telemetry(tmp_path, capsys)
    # Xftp is the slow run; why is it slower than SoftStage?
    args = [
        "runs", "--registry-dir", str(tmp_path),
        "why", "softstage-seed0", "xftp-seed0",
    ]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert "why: " in first
    assert "phase contributors (ranked)" in first
    assert "largest contributor:" in first
    # Byte-identical on repeat: attribution is deterministic.
    assert main(args) == 0
    assert capsys.readouterr().out == first
    # The machine-readable verdict names a known phase, ranked first.
    assert main([*args, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    ranked = [c["name"] for c in payload["contributors"]]
    assert ranked[0] in PHASES
    deltas = [abs(c["delta"]) for c in payload["contributors"]]
    assert deltas == sorted(deltas, reverse=True)


def test_cli_runs_why_errors_cleanly_without_wide_events(tmp_path, capsys):
    from repro.obs.registry import RunRegistry

    registry = RunRegistry(str(tmp_path))
    registry.append("a", "demo", {"gain": 1.5})
    registry.append("b", "demo", {"gain": 1.2})
    with pytest.raises(SystemExit) as err:
        main(["runs", "--registry-dir", str(tmp_path),
              "why", "0001/a", "0002/b"])
    assert "no wide events" in str(err.value)
    with pytest.raises(SystemExit) as err:
        main(["runs", "--registry-dir", str(tmp_path),
              "why", "bogus", "0002/b"])
    assert "bogus" in str(err.value)


# ---------------------------------------------------------------------------
# Clean shutdown: `repro serve` / `repro watch` under SIGINT/SIGTERM
# ---------------------------------------------------------------------------


def _spawn_serve(tmp_path, *extra):
    import os
    import subprocess
    import sys

    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve", "--port", "0",
         "--registry-dir", str(tmp_path), *extra],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=env,
    )


def _wait_until_serving(proc):
    """Read stdout until the bound URL appears; return that URL."""
    import urllib.request

    while True:
        line = proc.stdout.readline()
        assert line, "serve exited before binding"
        if "serving registry" in line:
            url = line.rsplit(" on ", 1)[1].strip()
            break
    # The accept loop is up once /healthz answers.
    for _ in range(100):
        try:
            with urllib.request.urlopen(url + "/healthz", timeout=1):
                return url
        except OSError:
            import time

            time.sleep(0.05)
    raise AssertionError("serve never answered /healthz")


@pytest.mark.parametrize("signame", ["SIGINT", "SIGTERM"])
def test_cli_serve_shuts_down_cleanly_on_signal(tmp_path, signame):
    import signal

    proc = _spawn_serve(tmp_path)
    try:
        _wait_until_serving(proc)
        proc.send_signal(getattr(signal, signame))
        out, err = proc.communicate(timeout=10)
    finally:
        proc.kill()
    assert proc.returncode == 0
    assert "shut down cleanly" in out
    assert "Traceback" not in err


def test_cli_serve_demo_signal_closes_the_live_stream(tmp_path):
    """SIGTERM mid-demo: /live subscribers get the SSE end frame."""
    import signal
    import threading
    import urllib.request

    proc = _spawn_serve(tmp_path, "--demo", "--file-mb", "2")
    try:
        url = _wait_until_serving(proc)
        connected = threading.Event()
        saw_end = threading.Event()

        def _consume():
            with urllib.request.urlopen(url + "/live", timeout=10) as live:
                for raw in live:
                    if raw.startswith(b"event: hello"):
                        connected.set()
                    elif raw.startswith(b"event: end"):
                        saw_end.set()
                        return

        consumer = threading.Thread(target=_consume, daemon=True)
        consumer.start()
        assert connected.wait(timeout=10), "live stream never connected"
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=15)
        consumer.join(timeout=10)
    finally:
        proc.kill()
    assert proc.returncode == 0
    assert "shut down cleanly" in out
    assert "Traceback" not in err
    assert saw_end.is_set()


def test_cli_watch_interrupt_closes_the_stream_cleanly(
    monkeypatch, capsys
):
    import urllib.request

    from repro.obs.server import sse_format

    class InterruptedStream:
        """An SSE response whose reader gets a Ctrl-C mid-stream."""

        closed = False

        def __iter__(self):
            yield from sse_format(
                "gauge",
                {"run": "r", "t": 0.0, "gauge": "g", "v": 1.0},
            ).splitlines(keepends=True)
            raise KeyboardInterrupt

        def close(self):
            self.closed = True

    stream = InterruptedStream()
    monkeypatch.setattr(
        urllib.request, "urlopen", lambda url: stream
    )
    assert main(["watch", "http://example.invalid"]) == 0
    out = capsys.readouterr().out
    assert "watch interrupted; stream closed cleanly" in out
    assert stream.closed
