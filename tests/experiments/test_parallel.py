"""Tests for the parallel sweep engine (determinism is the contract)."""

import concurrent.futures

import pytest

from repro.experiments import microbench, parallel
from repro.experiments.microbench import BenchProfile
from repro.experiments.parallel import (
    RunSummary,
    SweepTask,
    execute_task,
    run_tasks,
)
from repro.experiments.params import MicrobenchParams
from repro.util import MB

#: Small enough to run in seconds, real enough to exercise the stack.
QUICK = BenchProfile(file_size=MB, seeds=(0, 1), segment_scale=8)


def quick_task(system="softstage", seed=0):
    return SweepTask(
        system=system,
        params=MicrobenchParams(file_size=QUICK.file_size),
        seed=seed,
        segment_scale=QUICK.segment_scale,
    )


def test_run_summary_equality_ignores_wall_clock():
    a = RunSummary("softstage", 0, 9.5, 1 * MB, 4, 3, 1, 0, 2, 2,
                   wall_seconds=0.8)
    b = RunSummary("softstage", 0, 9.5, 1 * MB, 4, 3, 1, 0, 2, 2,
                   wall_seconds=99.0)
    assert a == b


def test_execute_task_is_deterministic():
    first = execute_task(quick_task())
    second = execute_task(quick_task())
    assert first == second
    assert first.bytes_received == MB


def test_parallel_matches_sequential_in_order():
    tasks = [
        quick_task(system, seed)
        for seed in (0, 1)
        for system in ("xftp", "softstage")
    ]
    sequential = run_tasks(tasks, jobs=1)
    parallel_results = run_tasks(tasks, jobs=4)
    assert parallel_results == sequential
    assert [s.system for s in parallel_results] == [t.system for t in tasks]
    assert [s.seed for s in parallel_results] == [t.seed for t in tasks]


def test_sweep_jobs_produces_byte_identical_series():
    """Satellite acceptance: --jobs 4 == sequential, bytes and all."""
    sequential = microbench.sweep_encounter_time(QUICK)
    fanned = microbench.sweep_encounter_time(
        BenchProfile(
            file_size=QUICK.file_size,
            seeds=QUICK.seeds,
            segment_scale=QUICK.segment_scale,
            jobs=4,
        )
    )
    assert fanned == sequential
    assert fanned.render() == sequential.render()


def test_broken_pool_falls_back_to_sequential(monkeypatch):
    """Pool-infrastructure failure degrades gracefully, same results."""

    class ExplodingPool:
        def __init__(self, *args, **kwargs):
            raise OSError("no processes for you")

    monkeypatch.setattr(parallel, "ProcessPoolExecutor", ExplodingPool)
    tasks = [quick_task(seed=0), quick_task(seed=1)]
    assert run_tasks(tasks, jobs=4) == [execute_task(t) for t in tasks]


def test_broken_executor_mid_flight_falls_back(monkeypatch):
    class DyingPool:
        def __init__(self, *args, **kwargs):
            pass

        def __enter__(self):
            return self

        def __exit__(self, *exc_info):
            return False

        def map(self, fn, tasks, chunksize=1):
            raise concurrent.futures.BrokenExecutor("worker died")

    monkeypatch.setattr(parallel, "ProcessPoolExecutor", DyingPool)
    tasks = [quick_task(seed=0), quick_task(seed=1)]
    assert run_tasks(tasks, jobs=2) == [execute_task(t) for t in tasks]


def test_task_errors_propagate_not_swallowed():
    bad = SweepTask(
        system="no-such-system",
        params=MicrobenchParams(file_size=MB),
        seed=0,
        segment_scale=8,
    )
    with pytest.raises(Exception, match="no-such-system"):
        run_tasks([bad, bad], jobs=1)


def test_single_task_and_jobs_one_skip_the_pool(monkeypatch):
    def forbidden(*args, **kwargs):
        raise AssertionError("pool must not be constructed")

    monkeypatch.setattr(parallel, "ProcessPoolExecutor", forbidden)
    assert run_tasks([quick_task()], jobs=8)[0].bytes_received == MB
    two = [quick_task(seed=0), quick_task(seed=1)]
    assert len(run_tasks(two, jobs=1)) == 2


def test_profile_from_env_reads_jobs(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_JOBS", "3")
    assert BenchProfile.from_env().jobs == 3
    monkeypatch.delenv("REPRO_BENCH_JOBS")
    assert BenchProfile.from_env().jobs == 1


# ---------------------------------------------------------------------------
# Hub forwarding under worker exceptions (no stall, no double-publish)
# ---------------------------------------------------------------------------


def _drain_runs(sub):
    """The ``run`` payloads a subscription has received, in order."""
    return [payload for topic, payload in sub.drain() if topic == "run"]


def test_hub_receives_one_summary_per_task_in_order():
    from repro.obs.stream import TelemetryHub

    hub = TelemetryHub()
    sub = hub.subscribe(maxsize=64)
    try:
        tasks = [quick_task("xftp", 0), quick_task("softstage", 0)]
        summaries = run_tasks(tasks, jobs=1, hub=hub)
        runs = _drain_runs(sub)
        assert [r["run"] for r in runs] == [
            "xftp-seed0", "softstage-seed0",
        ]
        assert runs[1]["download_time"] == summaries[1].download_time
        assert all(r["state"] == "finished" for r in runs)
    finally:
        hub.close()


def test_mid_stream_task_error_forwards_prefix_then_propagates():
    """A raise mid-sweep must not stall the hub or drop the prefix."""
    from repro.obs.stream import TelemetryHub

    hub = TelemetryHub()
    sub = hub.subscribe(maxsize=64)
    bad = SweepTask(
        system="no-such-system",
        params=MicrobenchParams(file_size=MB),
        seed=0,
        segment_scale=8,
    )
    try:
        with pytest.raises(Exception, match="no-such-system"):
            run_tasks([quick_task(seed=0), bad, quick_task(seed=1)],
                      jobs=1, hub=hub)
        runs = _drain_runs(sub)
        # Exactly the pre-failure prefix, exactly once.
        assert [r["run"] for r in runs] == ["softstage-seed0"]
    finally:
        hub.close()


def test_pool_death_mid_stream_does_not_double_publish(monkeypatch):
    """Summaries streamed before a pool death are not re-published."""
    from repro.obs.stream import TelemetryHub

    class HalfDeadPool:
        """Yields the first result, then dies from infrastructure."""

        def __init__(self, *args, **kwargs):
            pass

        def __enter__(self):
            return self

        def __exit__(self, *exc_info):
            return False

        def map(self, fn, tasks, chunksize=1):
            yield fn(tasks[0])
            raise concurrent.futures.BrokenExecutor("worker died")

    monkeypatch.setattr(parallel, "ProcessPoolExecutor", HalfDeadPool)
    hub = TelemetryHub()
    sub = hub.subscribe(maxsize=64)
    try:
        tasks = [quick_task(seed=0), quick_task(seed=1)]
        summaries = run_tasks(tasks, jobs=2, hub=hub)
        assert summaries == [execute_task(t) for t in tasks]
        runs = _drain_runs(sub)
        assert [r["run"] for r in runs] == [
            "softstage-seed0", "softstage-seed1",
        ]
    finally:
        hub.close()


# ---------------------------------------------------------------------------
# Sweep-wide sketches: per-worker fold, parent-side merge
# ---------------------------------------------------------------------------


def test_sketches_ride_the_summary_and_merge_across_tasks():
    from repro.obs.sketch import load_sketches
    from repro.experiments.parallel import merge_summary_sketches

    tasks = [
        SweepTask(
            system="softstage",
            params=MicrobenchParams(file_size=QUICK.file_size),
            seed=seed,
            segment_scale=QUICK.segment_scale,
            sketches=True,
        )
        for seed in (0, 1)
    ]
    summaries = [execute_task(t) for t in tasks]
    assert all(s.sketches for s in summaries)
    merged = merge_summary_sketches(summaries)
    sketches = load_sketches(merged)
    per_run = [
        load_sketches(s.sketches)["wide.fetch_latency"] for s in summaries
    ]
    assert sketches["wide.fetch_latency"].count == sum(
        q.count for q in per_run
    )


def test_merge_summary_sketches_skips_runs_without_sketches():
    from repro.experiments.parallel import merge_summary_sketches

    plain = execute_task(quick_task(seed=0))
    assert plain.sketches is None
    assert merge_summary_sketches([plain]) == {}


def test_sketches_are_excluded_from_summary_equality():
    a = RunSummary("softstage", 0, 9.5, 1 * MB, 4, 3, 1, 0, 2, 2)
    b = RunSummary("softstage", 0, 9.5, 1 * MB, 4, 3, 1, 0, 2, 2,
                   sketches={"x": {"kind": "stat"}})
    assert a == b
