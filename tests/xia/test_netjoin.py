"""Tests for NetJoin advertisements."""

import pytest

from repro.errors import ConfigurationError
from repro.xia import HID, NID, SID
from repro.xia.netjoin import AdvertisementDirectory, NetworkAdvertisement


def make_ad(vnf=True):
    return NetworkAdvertisement(
        network_name="edge-a",
        nid=NID("edge-a"),
        gateway_hid=HID("cache-a"),
        vnf_sid=SID("staging-a") if vnf else None,
    )


def test_advertisement_fields_and_vnf_flag():
    ad = make_ad()
    assert ad.has_vnf
    assert not make_ad(vnf=False).has_vnf


def test_advertisement_type_checks():
    with pytest.raises(ConfigurationError):
        NetworkAdvertisement("x", HID("h"), HID("h"))
    with pytest.raises(ConfigurationError):
        NetworkAdvertisement("x", NID("n"), NID("n"))
    with pytest.raises(ConfigurationError):
        NetworkAdvertisement("x", NID("n"), HID("h"), vnf_sid=HID("h"))


def test_directory_announce_lookup():
    directory = AdvertisementDirectory()
    ad = make_ad()
    directory.announce("ap-A", ad)
    assert directory.lookup("ap-A") is ad
    assert directory.lookup("ap-B") is None
    assert "ap-A" in directory
    assert len(directory) == 1


def test_directory_rejects_duplicate():
    directory = AdvertisementDirectory()
    directory.announce("ap-A", make_ad())
    with pytest.raises(ConfigurationError):
        directory.announce("ap-A", make_ad())
