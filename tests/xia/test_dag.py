"""Tests for DAG addresses and fallback semantics."""

import pytest

from repro.errors import AddressError
from repro.xia import CID, DagAddress, HID, NID, SID


CHUNK = CID(b"chunk payload")
SERVER_HID = HID("origin-server")
SERVER_NID = NID("origin-net")
EDGE_HID = HID("edge-cache")
EDGE_NID = NID("edge-a")


def test_content_address_shape():
    address = DagAddress.content(CHUNK, SERVER_NID, SERVER_HID)
    assert address.intent == CHUNK
    assert address.routes == ((), (SERVER_NID, SERVER_HID))


def test_content_address_type_checked():
    with pytest.raises(AddressError):
        DagAddress.content(SERVER_HID, SERVER_NID, SERVER_HID)
    with pytest.raises(AddressError):
        DagAddress.content(CHUNK, SERVER_HID, SERVER_HID)


def test_host_address_with_and_without_nid():
    direct = DagAddress.host(SERVER_HID)
    assert direct.routes == ((),)
    routed = DagAddress.host(SERVER_HID, SERVER_NID)
    assert routed.routes == ((SERVER_NID,),)
    assert routed.intent == SERVER_HID


def test_service_address():
    sid = SID("staging-vnf")
    address = DagAddress.service(sid, EDGE_NID, EDGE_HID)
    assert address.intent == sid
    assert address.routes == ((), (EDGE_NID, EDGE_HID))


def test_route_may_not_contain_intent():
    with pytest.raises(AddressError):
        DagAddress(SERVER_HID, routes=((SERVER_HID,),))


def test_next_candidates_priority_order():
    address = DagAddress.content(CHUNK, SERVER_NID, SERVER_HID)
    # Nothing visited: try the CID first, then the fallback NID.
    assert address.next_candidates() == [CHUNK, SERVER_NID]
    # Inside the server network: NID satisfied, so try the HID.
    assert address.next_candidates({SERVER_NID}) == [CHUNK, SERVER_HID]
    # At the server host: all waypoints satisfied; only the intent remains.
    assert address.next_candidates({SERVER_NID, SERVER_HID}) == [CHUNK]


def test_next_candidates_deduplicates():
    address = DagAddress(CHUNK, routes=((), ()))
    assert address.next_candidates() == [CHUNK]


def test_replace_fallback_rewrites_route_keeps_intent():
    original = DagAddress.content(CHUNK, SERVER_NID, SERVER_HID)
    staged = original.replace_fallback(EDGE_NID, EDGE_HID)
    assert staged.intent == CHUNK
    assert staged.routes == ((), (EDGE_NID, EDGE_HID))
    assert original.routes == ((), (SERVER_NID, SERVER_HID))  # unchanged


def test_replace_fallback_without_direct_route():
    address = DagAddress.host(SERVER_HID, SERVER_NID)
    moved = address.replace_fallback(EDGE_NID, EDGE_HID)
    assert moved.routes == ((EDGE_NID, EDGE_HID),)


def test_fallback_accessors():
    address = DagAddress.content(CHUNK, SERVER_NID, SERVER_HID)
    assert address.fallback_nid == SERVER_NID
    assert address.fallback_hid == SERVER_HID
    assert DagAddress(CHUNK).fallback_nid is None
    assert DagAddress(CHUNK).fallback_hid is None


def test_to_string_parse_roundtrip():
    for address in (
        DagAddress.content(CHUNK, SERVER_NID, SERVER_HID),
        DagAddress.host(SERVER_HID, SERVER_NID),
        DagAddress.host(SERVER_HID),
        DagAddress.service(SID("svc"), EDGE_NID, EDGE_HID),
    ):
        assert DagAddress.parse(address.to_string()) == address


def test_parse_rejects_inconsistent_intent():
    a = DagAddress.host(SERVER_HID).to_string()
    b = DagAddress.host(EDGE_HID).to_string()
    with pytest.raises(AddressError):
        DagAddress.parse(f"{a} | {b}")


def test_parse_rejects_empty():
    with pytest.raises(AddressError):
        DagAddress.parse("")


def test_value_semantics():
    a = DagAddress.content(CHUNK, SERVER_NID, SERVER_HID)
    b = DagAddress.content(CHUNK, SERVER_NID, SERVER_HID)
    assert a == b
    assert hash(a) == hash(b)
    assert a != DagAddress.content(CHUNK, EDGE_NID, EDGE_HID)


def test_immutability():
    address = DagAddress.host(SERVER_HID)
    with pytest.raises(AttributeError):
        address.intent = EDGE_HID


def test_nodes_lists_intent_last():
    address = DagAddress.content(CHUNK, SERVER_NID, SERVER_HID)
    nodes = address.nodes()
    assert nodes[-1].xid == CHUNK
    assert [node.xid for node in nodes[:-1]] == [SERVER_NID, SERVER_HID]
