"""Data-plane fast path: DAG plans, visited bitmasks, decision cache.

The bitmask/plan machinery must be observably identical to the old
per-packet frozenset walk (DESIGN.md §10), so the properties here
compare against a literal reimplementation of the historical
``next_candidates`` and the decision-cache tests drive real topologies
through route changes, service registration and store attachment.
"""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.net import Host, Link, Network
from repro.sim import Simulator
from repro.util import mbps, ms
from repro.xia import CID, DagAddress, HID, NID
from repro.xia.ids import PrincipalType, SID, XID
from repro.xia.packet import Packet, PacketType
from repro.xia.router import XIARouter


def reference_candidates(address: DagAddress, visited) -> list[XID]:
    """The pre-bitmask ``next_candidates``: per-route scan over sets."""
    candidates: list[XID] = []
    for route in address.routes:
        candidate = address.intent
        for waypoint in route:
            if waypoint not in visited:
                candidate = waypoint
                break
        if candidate not in candidates:
            candidates.append(candidate)
    return candidates


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@st.composite
def xids(draw, kind="any"):
    payload = draw(st.binary(min_size=1, max_size=6))
    if kind == "cid":
        return CID(payload)
    if kind == "nid":
        return NID(payload)
    if kind == "hid":
        return HID(payload)
    maker = draw(st.sampled_from([CID, NID, HID, SID]))
    return maker(payload)


@st.composite
def random_dags(draw):
    """DAGs of every shape the codebase builds — the paper's
    ``CID | NID : HID``, host ``NID : HID``, plus arbitrary multi-route
    fallback shapes with shared waypoints."""
    shape = draw(st.sampled_from(["content", "host", "free"]))
    if shape == "content":
        return DagAddress.content(
            draw(xids("cid")), draw(xids("nid")), draw(xids("hid"))
        )
    if shape == "host":
        return DagAddress.host(draw(xids("hid")), draw(xids("nid")))
    pool = draw(st.lists(xids(), min_size=1, max_size=5, unique=True))
    intent = pool[0]
    waypoints = pool[1:]
    routes = draw(
        st.lists(
            st.lists(
                st.sampled_from(waypoints) if waypoints else st.nothing(),
                max_size=3,
            ),
            min_size=0,
            max_size=3,
        )
        if waypoints
        else st.just([[]])
    )
    return DagAddress(intent, routes=tuple(tuple(r) for r in routes) or ((),))


@st.composite
def dags_with_visited(draw):
    """A DAG plus a visited set mixing its own nodes and foreign XIDs."""
    address = draw(random_dags())
    members = list(address.plan.node_order)
    visited = set(draw(st.lists(st.sampled_from(members), max_size=len(members))))
    for foreign in draw(st.lists(xids(), max_size=2)):
        visited.add(foreign)
    return address, frozenset(visited)


# ---------------------------------------------------------------------------
# Plan compilation
# ---------------------------------------------------------------------------


def test_plan_assigns_one_bit_per_unique_node():
    address = DagAddress.content(CID(b"c"), NID(b"n"), HID(b"h"))
    plan = address.plan
    assert len(plan.bit_of) == 3
    assert sorted(plan.bit_of.values()) == [1, 2, 4]
    assert plan.full_mask == 0b111
    # Lazy and cached on the (immutable) address itself.
    assert address.plan is plan


def test_plan_memoizes_candidate_walks():
    address = DagAddress.content(CID(b"c"), NID(b"n"), HID(b"h"))
    plan = address.plan
    first = plan.candidates(0)
    assert plan.candidates(0) is first  # table lookup, not a re-walk
    assert list(first) == reference_candidates(address, frozenset())


@given(dags_with_visited())
def test_bitmask_candidates_match_frozenset_semantics(case):
    address, visited = case
    assert address.next_candidates(visited) == reference_candidates(
        address, visited
    )


@given(dags_with_visited())
def test_mask_roundtrip_keeps_dag_members(case):
    address, visited = case
    plan = address.plan
    members = set(address.plan.node_order)
    assert plan.visited_xids(plan.mask_of(visited)) == visited & members


@given(random_dags(), st.data())
def test_packet_mark_visited_matches_reference_walk(address, data):
    """Marking nodes one by one, the packet's candidate walk tracks the
    historical set-based walk at every step."""
    packet = Packet(PacketType.DATA, dst=address, src=address)
    members = list(address.plan.node_order)
    marks = data.draw(
        st.lists(st.sampled_from(members), max_size=2 * len(members))
    )
    visited: set[XID] = set()
    for xid in marks:
        packet.mark_visited(xid)
        visited.add(xid)
        assert packet.visited == frozenset(visited)
        assert address.next_candidates(packet.visited) == reference_candidates(
            address, visited
        )


def test_mark_visited_of_foreign_xid_is_noop():
    address = DagAddress.host(HID(b"h"), NID(b"n"))
    packet = Packet(PacketType.DATA, dst=address, src=address)
    packet.mark_visited(HID(b"somewhere-else"))
    assert packet.visited_mask == 0
    assert packet.visited == frozenset()


def test_visited_setter_accepts_sets():
    address = DagAddress.content(CID(b"c"), NID(b"n"), HID(b"h"))
    packet = Packet(PacketType.DATA, dst=address, src=address)
    packet.visited = {NID(b"n"), HID(b"unrelated")}
    assert packet.visited == frozenset({NID(b"n")})


# ---------------------------------------------------------------------------
# Decision cache
# ---------------------------------------------------------------------------


def line_network():
    """hostA - r1 - r2 - hostB (all wired, static routes)."""
    sim = Simulator()
    net = Network(sim)
    host_a = net.add_device(Host(sim, "hostA", HID("hostA")))
    r1 = net.add_device(XIARouter(sim, "r1", HID("r1"), NID("net1")))
    r2 = net.add_device(XIARouter(sim, "r2", HID("r2"), NID("net2")))
    host_b = net.add_device(Host(sim, "hostB", HID("hostB")))
    net.connect(host_a, r1, Link(sim, "a-r1", mbps(100), ms(1)))
    net.connect(r1, r2, Link(sim, "r1-r2", mbps(100), ms(1)))
    net.connect(r2, host_b, Link(sim, "r2-b", mbps(100), ms(1)))
    net.register_network(r1.nid, r1)
    net.register_network(r2.nid, r2)
    net.build_static_routes()
    return sim, net, host_a, r1, r2, host_b


def _control_packet(host_a, r1, r2, host_b):
    return Packet(
        PacketType.CONTROL,
        dst=DagAddress.host(host_b.hid, r2.nid),
        src=DagAddress.host(host_a.hid, r1.nid),
        payload={},
    )


def test_decision_cache_counts_hits_and_misses():
    sim, net, host_a, r1, r2, host_b = line_network()
    got = []
    host_b.register_handler(PacketType.CONTROL, lambda p, port: got.append(p))
    for _ in range(5):
        host_a.send(_control_packet(host_a, r1, r2, host_b))
    sim.run()
    assert len(got) == 5
    # Each router compiles each distinct (dst, mask) key exactly once.
    assert sim.fwd_cache_misses == 2
    assert sim.fwd_cache_hits == 8
    assert r1._decisions and r2._decisions


def test_remove_hid_route_invalidates_and_drops():
    sim, net, host_a, r1, r2, host_b = line_network()
    host_b.register_handler(PacketType.CONTROL, lambda p, port: None)
    host_a.send(_control_packet(host_a, r1, r2, host_b))
    sim.run()
    assert r2._decisions
    r2.engine.remove_hid_route(host_b.hid)
    assert r2._decisions == {}
    # The stale FORWARD decision must not be replayed.
    host_a.send(_control_packet(host_a, r1, r2, host_b))
    sim.run()
    assert r2.dropped_unroutable == 1


def test_set_route_invalidates_and_restores_forwarding():
    sim, net, host_a, r1, r2, host_b = line_network()
    got = []
    host_b.register_handler(PacketType.CONTROL, lambda p, port: got.append(p))
    host_a.send(_control_packet(host_a, r1, r2, host_b))
    sim.run()
    port_to_b = r2.engine.port_for(host_b.hid)
    r2.engine.remove_hid_route(host_b.hid)
    host_a.send(_control_packet(host_a, r1, r2, host_b))
    sim.run()
    assert len(got) == 1  # dropped at r2 while the route was gone
    r2.engine.set_hid_route(host_b.hid, port_to_b)
    assert r2._decisions == {}
    host_a.send(_control_packet(host_a, r1, r2, host_b))
    sim.run()
    assert len(got) == 2


def test_service_registration_invalidates_decisions():
    sim, net, host_a, r1, r2, host_b = line_network()
    host_b.register_handler(PacketType.CONTROL, lambda p, port: None)
    host_a.send(_control_packet(host_a, r1, r2, host_b))
    sim.run()
    assert r1._decisions
    r1.register_service(SID(b"staging-vnf"), lambda p, port: None)
    assert r1._decisions == {}


def test_store_and_handler_attachment_invalidate_decisions():
    sim, net, host_a, r1, r2, host_b = line_network()
    host_b.register_handler(PacketType.CONTROL, lambda p, port: None)
    host_a.send(_control_packet(host_a, r1, r2, host_b))
    sim.run()
    assert r1._decisions

    class _Store:
        def has(self, cid):
            return False

    r1.content_store = _Store()
    assert r1._decisions == {}
    host_a.send(_control_packet(host_a, r1, r2, host_b))
    sim.run()
    assert r1._decisions
    r1.cid_request_handler = lambda p, port: None
    assert r1._decisions == {}


def test_cached_decision_rechecks_store_per_packet():
    """The store lookup is the one step the cache must NOT freeze: the
    same (dst, mask) key first misses the store (request forwarded),
    then hits it after staging (request served locally)."""
    sim, net, host_a, r1, r2, host_b = line_network()
    cid = CID(b"the-chunk")
    dst = DagAddress.content(cid, r2.nid, host_b.hid)
    src = DagAddress.host(host_a.hid, r1.nid)

    class _Store:
        def __init__(self):
            self.cids = set()

        def has(self, cid):
            return cid in self.cids

    store = _Store()
    served = []
    r1.content_store = store
    r1.cid_request_handler = lambda p, port: served.append(p)
    reached_origin = []
    host_b.register_handler(
        PacketType.CHUNK_REQUEST, lambda p, port: reached_origin.append(p)
    )

    def request():
        return Packet(PacketType.CHUNK_REQUEST, dst=dst, src=src,
                      payload={"session": 1})

    host_a.send(request())
    sim.run()
    assert len(reached_origin) == 1 and not served  # miss: fell back to origin
    store.cids.add(cid)  # the chunk gets staged at the edge
    host_a.send(request())
    sim.run()
    assert len(served) == 1 and len(reached_origin) == 1
    assert served[0].visited  # CID marked visited on the served request


def test_data_packets_never_served_from_store():
    """Only CHUNK_REQUESTs are answered by the cache; DATA packets of an
    ongoing transfer route past a store that holds their CID."""
    sim, net, host_a, r1, r2, host_b = line_network()
    cid = CID(b"the-chunk")
    dst = DagAddress.content(cid, r2.nid, host_b.hid)
    src = DagAddress.host(host_a.hid, r1.nid)

    class _Store:
        def has(self, _cid):
            return True

    served = []
    r1.content_store = _Store()
    r1.cid_request_handler = lambda p, port: served.append(p)
    delivered = []
    host_b.register_handler(PacketType.DATA, lambda p, port: delivered.append(p))
    host_a.send(Packet(PacketType.DATA, dst=dst, src=src, payload={}))
    sim.run()
    assert not served and len(delivered) == 1


def test_default_port_setter_invalidates():
    sim, net, host_a, r1, r2, host_b = line_network()
    host_b.register_handler(PacketType.CONTROL, lambda p, port: None)
    host_a.send(_control_packet(host_a, r1, r2, host_b))
    sim.run()
    assert r1._decisions
    r1.engine.default_port = r1.engine.port_for(r2.nid)
    assert r1._decisions == {}


def test_forwarding_engine_single_table_views():
    sim, net, host_a, r1, r2, host_b = line_network()
    # One dict underneath, typed views on top.
    assert set(r1.engine.routes) == set(r1.engine.nid_routes) | set(
        r1.engine.hid_routes
    )
    assert all(
        x.principal_type is PrincipalType.NID for x in r1.engine.nid_routes
    )
    assert all(
        x.principal_type is PrincipalType.HID for x in r1.engine.hid_routes
    )
    with pytest.raises(ConfigurationError):
        r1.engine.set_nid_route(host_a.hid, r1.port(0))  # wrong principal
