"""Property-based tests for DAG addresses."""

from hypothesis import given, strategies as st

from repro.xia import CID, DagAddress, HID, NID
from repro.xia.ids import XID


@st.composite
def xids(draw, kind="any"):
    payload = draw(st.binary(min_size=1, max_size=8))
    if kind == "cid":
        return CID(payload)
    if kind == "nid":
        return NID(payload)
    if kind == "hid":
        return HID(payload)
    maker = draw(st.sampled_from([CID, NID, HID]))
    return maker(payload)


@st.composite
def content_addresses(draw):
    return DagAddress.content(
        draw(xids("cid")), draw(xids("nid")), draw(xids("hid"))
    )


@given(content_addresses())
def test_roundtrip_through_text(address):
    assert DagAddress.parse(address.to_string()) == address


@given(content_addresses())
def test_candidates_always_end_at_intent(address):
    visited: set[XID] = set()
    for _ in range(10):
        candidates = address.next_candidates(visited)
        assert candidates, "there is always something to try"
        assert candidates[0] == address.intent or candidates
        head = candidates[0]
        if head == address.intent:
            break
        visited.add(head)
    else:  # pragma: no cover - would mean non-termination
        raise AssertionError("walking the DAG did not reach the intent")


@given(content_addresses(), xids("nid"), xids("hid"))
def test_replace_fallback_preserves_intent(address, nid, hid):
    staged = address.replace_fallback(nid, hid)
    assert staged.intent == address.intent
    assert staged.fallback_nid == nid
    assert staged.fallback_hid == hid


@given(content_addresses())
def test_hash_equals_consistency(address):
    clone = DagAddress.parse(address.to_string())
    assert hash(clone) == hash(address)
    assert clone == address
