"""Tests for XIA identifiers."""

import hashlib

import pytest
from hypothesis import given, strategies as st

from repro.errors import AddressError
from repro.xia import CID, HID, NID, SID, XID, PrincipalType


def test_cid_is_sha1_of_content():
    payload = b"hello chunk"
    cid = CID(payload)
    assert cid.principal_type is PrincipalType.CID
    assert cid.id_bytes == hashlib.sha1(payload).digest()


def test_same_content_same_cid():
    assert CID(b"x") == CID(b"x")
    assert hash(CID(b"x")) == hash(CID(b"x"))


def test_different_content_different_cid():
    assert CID(b"x") != CID(b"y")


def test_hid_nid_sid_are_domain_separated():
    """The same key material yields different XIDs per principal type."""
    ids = {HID("key"), NID("key"), SID("key")}
    assert len(ids) == 3


def test_hid_accepts_str_and_bytes():
    assert HID("host-1") == HID(b"host-1")


def test_xid_is_immutable():
    xid = HID("h")
    with pytest.raises(AttributeError):
        xid.id_bytes = b"\x00" * 20


def test_xid_wrong_length_rejected():
    with pytest.raises(AddressError):
        XID(PrincipalType.CID, b"\x00" * 19)


def test_xid_bad_type_rejected():
    with pytest.raises(AddressError):
        XID("CID", b"\x00" * 20)


def test_repr_parse_roundtrip():
    original = NID("edge-a")
    assert XID.parse(repr(original)) == original


def test_parse_garbage_raises():
    with pytest.raises(AddressError):
        XID.parse("not an xid")
    with pytest.raises(AddressError):
        XID.parse("CID:zzzz")


def test_short_is_prefix_of_hex():
    xid = HID("abc")
    assert xid.hex.startswith(xid.short)
    assert len(xid.short) == 8


def test_ordering_is_total():
    xids = sorted([HID("b"), CID(b"a"), NID("c"), SID("d")])
    assert xids == sorted(xids)


@given(st.binary(min_size=0, max_size=64))
def test_cid_deterministic(payload):
    assert CID(payload) == CID(payload)


@given(st.binary(min_size=0, max_size=64), st.binary(min_size=0, max_size=64))
def test_cid_injective_on_samples(a, b):
    if a != b:
        assert CID(a) != CID(b)
