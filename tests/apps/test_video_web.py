"""Tests for the VoD player and web workload (§V extensions)."""

import random

import pytest

from repro.apps.video import (
    BufferBasedPlayer,
    PlaybackStats,
    VideoLadder,
    publish_video,
)
from repro.apps.web import PageSpec, WebClient, generate_page, publish_page
from repro.errors import ConfigurationError
from repro.sim import Simulator
from repro.xcache import ContentPublisher, ContentStore
from repro.xia import HID, NID


def make_publisher():
    return ContentPublisher(ContentStore(), NID("origin"), HID("server"))


# ---------------------------------------------------------------------------
# Video ladder and publishing
# ---------------------------------------------------------------------------


def test_ladder_segment_bytes():
    ladder = VideoLadder(bitrates=(1e6, 4e6), segment_seconds=2.0)
    assert ladder.segment_bytes(0) == 250_000
    assert ladder.segment_bytes(1) == 1_000_000
    assert ladder.rungs == 2


def test_publish_video_all_renditions():
    publisher = make_publisher()
    ladder = VideoLadder(bitrates=(1e6, 2e6), segment_seconds=2.0)
    renditions = publish_video(publisher, "clip", 10.0, ladder)
    assert set(renditions) == {0, 1}
    assert len(renditions[0].chunks) == 5
    assert renditions[1].chunks[0].size_bytes == ladder.segment_bytes(1)


# ---------------------------------------------------------------------------
# Buffer-based adaptation logic
# ---------------------------------------------------------------------------


def make_player(fetch_delay=0.1, ladder=None):
    sim = Simulator()
    publisher = make_publisher()
    ladder = ladder or VideoLadder(bitrates=(1e6, 2e6, 4e6), segment_seconds=2.0)
    renditions = publish_video(publisher, "clip", 30.0, ladder)

    def fetch(cid):
        yield sim.timeout(fetch_delay)
        return cid

    player = BufferBasedPlayer(
        sim, renditions, fetch, ladder=ladder,
        reservoir_seconds=4.0, cushion_seconds=12.0,
    )
    return sim, player


def test_choose_rung_reservoir_and_cushion():
    _, player = make_player()
    assert player.choose_rung(0.0) == 0
    assert player.choose_rung(3.9) == 0
    assert player.choose_rung(12.0) == player.ladder.rungs - 1
    assert player.choose_rung(8.0) == 1  # middle of the cushion


def test_fast_network_reaches_top_rung_without_rebuffering():
    sim, player = make_player(fetch_delay=0.05)
    stats = sim.run(until=sim.process(player.play()))
    assert isinstance(stats, PlaybackStats)
    assert stats.segments_played == 15
    assert stats.rebuffer_events == 0
    assert max(stats.rung_history) == player.ladder.rungs - 1


def test_slow_network_stays_low_and_rebuffers():
    sim, player = make_player(fetch_delay=2.5)  # slower than realtime
    stats = sim.run(until=sim.process(player.play()))
    assert stats.rebuffer_events > 0
    assert stats.mean_rung < 1.0


def test_player_requires_renditions_and_sane_thresholds():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        BufferBasedPlayer(sim, {}, lambda cid: None)
    publisher = make_publisher()
    renditions = publish_video(publisher, "x", 4.0)
    with pytest.raises(ConfigurationError):
        BufferBasedPlayer(
            sim, renditions, lambda cid: None,
            reservoir_seconds=10.0, cushion_seconds=5.0,
        )


def test_max_segments_truncates():
    sim, player = make_player(fetch_delay=0.05)
    stats = sim.run(until=sim.process(player.play(max_segments=4)))
    assert stats.segments_played == 4


# ---------------------------------------------------------------------------
# Web workload
# ---------------------------------------------------------------------------


def test_generate_page_sizes():
    spec = PageSpec(name="p", subresources=10)
    sizes = generate_page(spec, random.Random(1))
    assert len(sizes) == 11
    assert sizes[0] == spec.root_bytes
    assert all(1_000 <= s <= spec.max_object_bytes for s in sizes[1:])


def test_publish_and_load_page():
    sim = Simulator()
    publisher = make_publisher()
    content = publish_page(publisher, PageSpec(name="page"), random.Random(2))

    def fetch(cid):
        yield sim.timeout(0.02)

    client = WebClient(sim, fetch)
    result = sim.run(until=sim.process(client.load_page(content)))
    assert result.objects == len(content.chunks)
    assert result.load_time == pytest.approx(0.02 * result.objects)
    assert result.first_paint == pytest.approx(0.02)
    assert client.loads == [result]
