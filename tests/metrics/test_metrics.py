"""Tests for metrics: stats helpers and the collector."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics import (
    MetricsCollector,
    confidence_interval_95,
    mean,
    percentile,
    summarize,
)
from repro.sim import Simulator


def test_mean_and_empty():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    with pytest.raises(ValueError):
        mean([])


def test_percentile_interpolation():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0
    assert percentile(values, 50) == pytest.approx(2.5)
    assert percentile(values, 25) == pytest.approx(1.75)


def test_percentile_single_value_and_validation():
    assert percentile([7.0], 50) == 7.0
    with pytest.raises(ValueError):
        percentile([1.0], 150)
    with pytest.raises(ValueError):
        percentile([], 50)


def test_percentile_matches_cabernet_usage():
    """25/50/75th of a known sequence (how Table III was derived)."""
    values = list(range(1, 101))
    assert percentile(values, 25) == pytest.approx(25.75)
    assert percentile(values, 50) == pytest.approx(50.5)
    assert percentile(values, 75) == pytest.approx(75.25)


def test_confidence_interval():
    assert confidence_interval_95([5.0]) == 0.0
    ci = confidence_interval_95([10.0, 12.0, 11.0, 9.0])
    assert ci > 0


def test_summarize():
    summary = summarize([3.0, 1.0, 2.0])
    assert summary.count == 3
    assert summary.mean == 2.0
    assert summary.p50 == 2.0
    assert summary.minimum == 1.0
    assert summary.maximum == 3.0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
def test_percentile_bounded_by_extremes(values):
    for q in (0, 25, 50, 75, 100):
        assert min(values) <= percentile(values, q) <= max(values)


def test_collector_counters_and_samples():
    collector = MetricsCollector()
    collector.count("fetches")
    collector.count("fetches", 2)
    collector.observe("latency", 0.5)
    collector.observe("latency", 1.5)
    assert collector.counters["fetches"] == 3
    assert collector.monitor("latency").mean == 1.0
    assert collector.samples("latency") == [0.5, 1.5]
    assert collector.summary("latency").count == 2


def test_collector_series_with_sim_clock():
    sim = Simulator()
    collector = MetricsCollector(sim)

    def worker(sim):
        collector.record("staged", 1)
        yield sim.timeout(2.0)
        collector.record("staged", 5)

    sim.process(worker(sim))
    sim.run()
    series = collector.series("staged")
    assert list(series) == [(0.0, 1), (2.0, 5)]


def test_collector_series_needs_clock_or_time():
    collector = MetricsCollector()
    with pytest.raises(ValueError):
        collector.record("x", 1.0)
    collector.record("x", 1.0, time=3.0)
    assert collector.series("x").last() == 1.0


def test_collector_unknown_names_raise():
    collector = MetricsCollector()
    with pytest.raises(KeyError):
        collector.monitor("nope")
    with pytest.raises(KeyError):
        collector.series("nope")


def test_collector_report_flattens():
    collector = MetricsCollector()
    collector.count("a")
    collector.observe("b", 2.0)
    report = collector.report()
    assert report["a"] == 1.0
    assert report["b.mean"] == 2.0


def test_percentile_subnormal_values_do_not_underflow():
    # Interpolating between two equal subnormals must not round to 0.0
    # (regression: 5e-324 * 0.5 + 5e-324 * 0.5 underflows).
    tiny = 5e-324
    assert percentile([tiny, tiny], 50) == tiny
    assert percentile([tiny, tiny, tiny], 75) == tiny
