"""Tests for the path-loss model and the 1-D road coverage generator."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.mobility.road import RoadModel, RoadsideAp
from repro.mobility.rss import PathLossModel


def test_rss_decreases_with_distance():
    model = PathLossModel()
    assert model.rss_dbm(10.0) > model.rss_dbm(100.0)


def test_rss_at_reference_distance():
    model = PathLossModel(tx_power_dbm=20.0, pl_d0=40.0, d0=1.0)
    assert model.rss_dbm(1.0) == pytest.approx(-20.0)


def test_rss_clamps_below_reference():
    model = PathLossModel(d0=1.0)
    assert model.rss_dbm(0.5) == model.rss_dbm(1.0)


def test_shadowing_adds_variance():
    model = PathLossModel(shadowing_sigma=6.0)
    rng = random.Random(1)
    samples = {model.rss_dbm(50.0, rng) for _ in range(10)}
    assert len(samples) > 1
    # Without an rng, shadowing is skipped (deterministic mean).
    assert model.rss_dbm(50.0) == PathLossModel().rss_dbm(50.0)


def test_range_for_rss_inverts_rss():
    model = PathLossModel()
    threshold = -80.0
    distance = model.range_for_rss(threshold)
    assert model.rss_dbm(distance) == pytest.approx(threshold, abs=0.1)


def test_road_coverage_windows_follow_geometry():
    model = RoadModel(
        aps=[RoadsideAp("ap-0", position=100.0), RoadsideAp("ap-1", position=400.0)],
        speed_mps=10.0,
        sensitivity_dbm=-80.0,
    )
    coverage = model.coverage(duration=60.0)
    names = {w.ap for w in coverage.windows}
    assert names == {"ap-0", "ap-1"}
    # ap-0 audible around t=10 (x=100), not at t=25 (x=250 if far).
    assert "ap-0" in coverage.visible_at(10.0)
    assert "ap-1" in coverage.visible_at(40.0)


def test_road_rss_peaks_at_closest_approach():
    model = RoadModel(
        aps=[RoadsideAp("ap", position=200.0)], speed_mps=10.0,
        sensitivity_dbm=-85.0, window_resolution=0.5,
    )
    coverage = model.coverage(duration=60.0)
    at_pass = coverage.visible_at(20.0)["ap"]      # directly abeam
    early = coverage.visible_at(16.0).get("ap")
    assert early is None or at_pass > early


def test_road_encounter_time_scales_inversely_with_speed():
    ap = RoadsideAp("ap", position=500.0)
    slow = RoadModel([ap], speed_mps=5.0).encounter_time(ap)
    fast = RoadModel([ap], speed_mps=20.0).encounter_time(ap)
    assert slow == pytest.approx(4 * fast)


def test_road_out_of_range_ap_yields_nothing():
    model = RoadModel(
        aps=[RoadsideAp("far", position=100.0, offset=10_000.0)],
        speed_mps=10.0,
    )
    assert len(model.coverage(duration=60.0)) == 0
    assert model.encounter_time(model.aps[0]) == 0.0


def test_road_validation():
    with pytest.raises(ConfigurationError):
        RoadModel(aps=[], speed_mps=10.0)
