"""Tests for coverage timelines and builders."""

import pytest

from repro.errors import ConfigurationError
from repro.mobility import Coverage, CoverageWindow, alternating_coverage, overlapping_coverage


def test_window_rss_interpolation():
    window = CoverageWindow("ap", 0.0, 10.0, rss_start=-80.0, rss_end=-60.0)
    assert window.rss_at(0.0) == -80.0
    assert window.rss_at(5.0) == pytest.approx(-70.0)
    assert window.duration == 10.0


def test_window_rejects_empty_interval():
    with pytest.raises(ConfigurationError):
        CoverageWindow("ap", 5.0, 5.0)


def test_window_rss_outside_raises():
    window = CoverageWindow("ap", 0.0, 1.0)
    with pytest.raises(ValueError):
        window.rss_at(2.0)


def test_visible_at_boundaries_half_open():
    coverage = Coverage([CoverageWindow("ap", 1.0, 2.0)])
    assert coverage.visible_at(0.5) == {}
    assert "ap" in coverage.visible_at(1.0)
    assert coverage.visible_at(2.0) == {}


def test_change_times_sorted_unique():
    coverage = Coverage(
        [CoverageWindow("a", 0.0, 5.0), CoverageWindow("b", 5.0, 8.0)]
    )
    assert coverage.change_times() == [0.0, 5.0, 8.0]


def test_alternating_coverage_pattern():
    coverage = alternating_coverage(
        ["A", "B"], encounter_time=12.0, disconnection_time=8.0, total_time=60.0
    )
    # Windows: A[0,12), B[20,32), A[40,52)
    assert [w.ap for w in coverage.windows] == ["A", "B", "A"]
    assert coverage.visible_at(5.0) == {"A": pytest.approx(-55.0)}
    assert coverage.visible_at(15.0) == {}
    assert coverage.visible_at(25.0).keys() == {"B"}


def test_alternating_connected_fraction():
    coverage = alternating_coverage(
        ["A", "B"], encounter_time=12.0, disconnection_time=8.0, total_time=200.0
    )
    assert coverage.connected_fraction(until=200.0) == pytest.approx(0.6, abs=0.05)


def test_alternating_zero_disconnection_continuous():
    coverage = alternating_coverage(
        ["A", "B"], encounter_time=10.0, disconnection_time=0.0, total_time=50.0
    )
    assert coverage.connected_fraction(until=50.0) == pytest.approx(1.0)


def test_overlapping_coverage_has_overlap():
    coverage = overlapping_coverage(
        ["A", "B"], encounter_time=12.0, overlap_time=3.0, total_time=40.0
    )
    # During the overlap, both APs are audible.
    overlap_instant = 11.0  # A's window is [0, 12), B starts at 9.
    visible = coverage.visible_at(overlap_instant)
    assert set(visible) == {"A", "B"}
    # A is fading out while B ramps up.
    assert visible["B"] > visible["A"]


def test_overlapping_coverage_validates():
    with pytest.raises(ConfigurationError):
        overlapping_coverage(["A", "B"], encounter_time=3.0, overlap_time=3.0, total_time=10)
    with pytest.raises(ConfigurationError):
        overlapping_coverage(["A"], encounter_time=12.0, overlap_time=3.0, total_time=10)


def test_windows_for_filters_by_ap():
    coverage = alternating_coverage(
        ["A", "B"], encounter_time=5.0, disconnection_time=5.0, total_time=40.0
    )
    assert all(w.ap == "A" for w in coverage.windows_for("A"))
    assert len(coverage.windows_for("A")) == 2
