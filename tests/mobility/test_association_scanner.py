"""Integration tests: association control + scanning on the testbed."""

import pytest

from repro.experiments.params import MicrobenchParams
from repro.experiments.scenario import TestbedScenario
from repro.mobility.coverage import Coverage, CoverageWindow, alternating_coverage
from repro.util import MB


def make_scenario(coverage=None, **overrides):
    params = MicrobenchParams(
        file_size=2 * MB, chunk_size=1 * MB, packet_loss=0.05, **overrides
    )
    return TestbedScenario(params=params, seed=4, coverage=coverage)


def test_scanner_sees_coverage_and_advertisements():
    coverage = Coverage([CoverageWindow("ap-A", 0.0, 50.0)])
    scenario = make_scenario(coverage=coverage)
    scenario.scanner.start()
    scenario.sim.run(until=1.0)
    visible = scenario.scanner.visible_now()
    assert [v.name for v in visible] == ["ap-A"]
    assert visible[0].has_vnf
    assert visible[0].nid == scenario.edges[0].router.nid


def test_association_brings_link_up_and_routes_hid():
    coverage = Coverage([CoverageWindow("ap-A", 0.0, 50.0)])
    scenario = make_scenario(coverage=coverage)
    controller = scenario.controller
    process = scenario.sim.process(controller.associate("ap-A"))
    scenario.sim.run(until=process)
    assert controller.is_associated
    assert scenario.client_host.current_nid == scenario.edges[0].router.nid
    gateway = scenario.edges[0].router
    assert scenario.client_host.hid in gateway.engine.hid_routes


def test_disassociate_withdraws_route_and_downs_link():
    coverage = Coverage([CoverageWindow("ap-A", 0.0, 50.0)])
    scenario = make_scenario(coverage=coverage)
    controller = scenario.controller
    scenario.sim.run(until=scenario.sim.process(controller.associate("ap-A")))
    controller.disassociate()
    assert not controller.is_associated
    gateway = scenario.edges[0].router
    assert scenario.client_host.hid not in gateway.engine.hid_routes
    assert scenario.client_host.current_nid is None


def test_scanner_enforces_coverage_loss():
    coverage = Coverage([CoverageWindow("ap-A", 0.0, 5.0)])
    scenario = make_scenario(coverage=coverage)
    scenario.scanner.start()
    controller = scenario.controller
    scenario.sim.run(until=scenario.sim.process(controller.associate("ap-A")))
    assert controller.is_associated
    scenario.sim.run(until=6.0)
    # Coverage ended at t=5: the scanner forced a disassociation.
    assert not controller.is_associated
    assert controller.disassociations == 1


def test_attach_listeners_and_waiters_fire():
    coverage = Coverage([CoverageWindow("ap-A", 1.0, 50.0)])
    scenario = make_scenario(coverage=coverage)
    controller = scenario.controller
    events = []
    controller.on_attach(lambda a: events.append(("attach", a.ap.name)))
    controller.on_detach(lambda a: events.append(("detach", a.ap.name)))

    waiter = controller.wait_attached()
    assert waiter is not None

    scenario.sim.run(until=scenario.sim.process(controller.associate("ap-A")))
    assert waiter.triggered
    assert controller.wait_attached() is None  # already online
    controller.disassociate()
    assert events == [("attach", "ap-A"), ("detach", "ap-A")]


def test_switching_aps_reroutes_and_changes_active_port():
    scenario = make_scenario(
        coverage=alternating_coverage(["ap-A", "ap-B"], 10.0, 0.0, 100.0)
    )
    controller = scenario.controller
    scenario.sim.run(until=scenario.sim.process(controller.associate("ap-A")))
    port_a = scenario.client_host.active_port
    scenario.sim.run(until=scenario.sim.process(controller.associate("ap-B")))
    assert controller.current_ap_name == "ap-B"
    assert scenario.client_host.active_port is not port_a
    gateway_a = scenario.edges[0].router
    gateway_b = scenario.edges[1].router
    assert scenario.client_host.hid not in gateway_a.engine.hid_routes
    assert scenario.client_host.hid in gateway_b.engine.hid_routes
    assert controller.associations == 2
    assert controller.disassociations == 1


def test_associate_same_ap_is_noop():
    coverage = Coverage([CoverageWindow("ap-A", 0.0, 50.0)])
    scenario = make_scenario(coverage=coverage)
    controller = scenario.controller
    scenario.sim.run(until=scenario.sim.process(controller.associate("ap-A")))
    scenario.sim.run(until=scenario.sim.process(controller.associate("ap-A")))
    assert controller.associations == 1


def test_associate_unknown_ap_raises():
    from repro.errors import ConfigurationError

    scenario = make_scenario(
        coverage=Coverage([CoverageWindow("ap-A", 0.0, 50.0)])
    )
    with pytest.raises(ConfigurationError):
        # The generator raises on creation inside process start.
        process = scenario.sim.process(
            scenario.controller.associate("ap-nope")
        )
        scenario.sim.run(until=process)


def test_scan_results_sorted_by_rss():
    coverage = Coverage([
        CoverageWindow("ap-A", 0.0, 50.0, rss_start=-70.0, rss_end=-70.0),
        CoverageWindow("ap-B", 0.0, 50.0, rss_start=-55.0, rss_end=-55.0),
    ])
    scenario = make_scenario(coverage=coverage)
    scenario.scanner.start()
    scenario.sim.run(until=0.1)
    visible = scenario.scanner.visible_now()
    assert [v.name for v in visible] == ["ap-B", "ap-A"]
