"""Tests for connectivity traces, Cabernet and wardriving generators."""

import random

import pytest

from repro.errors import TraceFormatError
from repro.mobility import (
    CabernetDistributions,
    CabernetTraceGenerator,
    ConnectivityTrace,
    WardrivingSynthesizer,
)
from repro.mobility.cabernet import lognormal_params


def test_trace_stats():
    trace = ConnectivityTrace([(0.0, 10.0), (20.0, 25.0)], duration=50.0)
    assert trace.connected_time == 15.0
    assert trace.coverage_fraction == pytest.approx(0.3)
    assert trace.encounter_durations() == [10.0, 5.0]
    assert trace.gap_durations() == [10.0, 25.0]
    assert trace.connected_at(5.0)
    assert not trace.connected_at(15.0)


def test_trace_rejects_overlap_and_bad_intervals():
    with pytest.raises(TraceFormatError):
        ConnectivityTrace([(0.0, 10.0), (5.0, 15.0)], duration=20.0)
    with pytest.raises(TraceFormatError):
        ConnectivityTrace([(5.0, 5.0)], duration=20.0)
    with pytest.raises(TraceFormatError):
        ConnectivityTrace([(0.0, 30.0)], duration=20.0)


def test_trace_save_load_roundtrip(tmp_path):
    trace = ConnectivityTrace([(1.5, 9.25), (12.0, 30.0)], duration=60.0)
    path = tmp_path / "trace.txt"
    trace.save(path)
    loaded = ConnectivityTrace.load(path)
    assert loaded.intervals == trace.intervals
    assert loaded.duration == trace.duration


def test_trace_load_rejects_garbage(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("not a trace\n")
    with pytest.raises(TraceFormatError):
        ConnectivityTrace.load(path)


def test_trace_to_coverage_round_robins_aps():
    trace = ConnectivityTrace([(0.0, 5.0), (10.0, 15.0), (20.0, 25.0)], duration=30.0)
    coverage = trace.to_coverage(["A", "B"])
    assert [w.ap for w in coverage.windows] == ["A", "B", "A"]


def test_lognormal_params_match_moments():
    mu, sigma = lognormal_params(median=4.0, mean=10.0)
    import math

    assert math.exp(mu) == pytest.approx(4.0)
    assert math.exp(mu + sigma**2 / 2) == pytest.approx(10.0)


def test_lognormal_params_validation():
    with pytest.raises(ValueError):
        lognormal_params(median=10.0, mean=4.0)


def test_cabernet_generator_statistics():
    generator = CabernetTraceGenerator(random.Random(42))
    encounters = [generator.sample_encounter() for _ in range(4000)]
    # Median should be near the Cabernet median of 4 s (clamping shifts
    # the small tail slightly upward).
    encounters.sort()
    median = encounters[len(encounters) // 2]
    assert 2.5 <= median <= 6.5
    gaps = [generator.sample_gap() for _ in range(4000)]
    gaps.sort()
    assert 20.0 <= gaps[len(gaps) // 2] <= 48.0


def test_cabernet_generate_trace_valid():
    generator = CabernetTraceGenerator(random.Random(7))
    trace = generator.generate(duration=3600.0)
    assert trace.duration == 3600.0
    assert 0.0 < trace.coverage_fraction < 1.0
    assert len(trace.intervals) > 5


def test_cabernet_distributions_table3_values():
    dist = CabernetDistributions()
    assert dist.ENCOUNTER_PERCENTILES == (3.0, 4.0, 12.0)
    assert dist.DISCONNECTION_PERCENTILES == (8.0, 32.0, 100.0)
    assert dist.LOSS_PERCENTILES == (0.22, 0.27, 0.37)


def test_wardriving_trace_one_high_coverage():
    synthesizer = WardrivingSynthesizer(random.Random(3))
    trace = synthesizer.trace_one(duration=600.0)
    assert trace.coverage_fraction > 0.75


def test_wardriving_trace_two_choppier_than_one():
    synthesizer = WardrivingSynthesizer(random.Random(3))
    one = synthesizer.trace_one(duration=600.0)
    two = synthesizer.trace_two(duration=600.0)
    assert two.coverage_fraction > 0.5
    mean_encounter_one = sum(one.encounter_durations()) / len(one.encounter_durations())
    mean_encounter_two = sum(two.encounter_durations()) / len(two.encounter_durations())
    assert mean_encounter_two < mean_encounter_one


def test_wardriving_deterministic_per_seed():
    a = WardrivingSynthesizer(random.Random(9)).trace_one(300.0)
    b = WardrivingSynthesizer(random.Random(9)).trace_one(300.0)
    assert a.intervals == b.intervals
