"""The terminal dashboard: pure fold + render, and the SSE client."""

import io

from repro.obs.dashboard import (
    Dashboard,
    iter_sse,
    run_from_sse,
    sparkline,
)
from repro.obs.server import sse_format


# ---------------------------------------------------------------------------
# Sparklines (shared with the ``runs gauges`` CLI)
# ---------------------------------------------------------------------------


def test_sparkline_shapes():
    assert sparkline([]) == ""
    assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"
    ramp = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
    assert ramp == "▁▂▃▄▅▆▇█"


# ---------------------------------------------------------------------------
# The fold and the frame
# ---------------------------------------------------------------------------


def _feed_demo_traffic(dash):
    dash.feed("run", {"run": "softstage-seed0", "state": "started"})
    for i in range(4):
        dash.feed("gauge", {"run": "softstage-seed0", "t": float(i),
                            "gauge": "staging.lead_bytes", "v": float(i)})
    dash.feed("gauge", {"run": "softstage-seed0", "t": 3.0,
                        "gauge": "vnf.queue_depth", "v": 2.0})
    dash.feed("wide", {"kind": "chunk", "cid": "cid-123", "source": "edge",
                       "t_fetched": 3.5, "fetch_latency": 0.25,
                       "stage_wait_s": 1.0, "masked_s": 0.0,
                       "lead_bytes": 3.0})
    dash.feed("run", {"run": "softstage-seed0", "state": "finished",
                      "download_time": 12.5})


def test_render_is_a_deterministic_function_of_the_feed():
    one, two = Dashboard(), Dashboard()
    _feed_demo_traffic(one)
    _feed_demo_traffic(two)
    assert one.render() == two.render()
    frame = one.render()
    assert "run softstage-seed0: finished  time=12.5s" in frame
    assert "staging.lead_bytes" in frame
    assert "▁" in frame  # a sparkline was plotted
    # Non-featured gauges show sample counts, not sparklines.
    assert "vnf.queue_depth" in frame and "(1 samples)" in frame
    assert "cid-123" in frame and "edge" in frame
    assert f"items={one.items_seen}" in frame


def test_empty_dashboard_renders_placeholders():
    frame = Dashboard().render()
    assert "(waiting for telemetry)" in frame
    assert "--gauges" in frame
    assert "(none yet)" in frame


def test_tail_is_bounded_and_drop_counter_lands_in_the_frame():
    dash = Dashboard(tail=3)
    for i in range(10):
        dash.feed("wide", {"kind": "chunk", "cid": f"c{i}",
                           "t_fetched": float(i)})
    dash.feed("end", {"published": 10, "dropped": 7})
    frame = dash.render()
    assert "c9" in frame and "c0" not in frame  # only the newest kept
    assert dash.wide_seen == 10
    assert "dropped=7" in frame


def test_unknown_wide_kind_degrades_gracefully():
    dash = Dashboard()
    dash.feed("wide", {"kind": "novel", "t": 1.0, "x": 1})
    assert "novel" in dash.render()


# ---------------------------------------------------------------------------
# The SSE client (inverse of server.sse_format)
# ---------------------------------------------------------------------------


def test_iter_sse_round_trips_sse_format():
    items = [
        ("hello", {"live": True}),
        ("gauge", {"run": "r", "t": 1.0, "gauge": "g", "v": 2.0}),
        ("wide", {"kind": "chunk", "seq": 0}),
        ("end", {"published": 2}),
    ]
    wire = b"".join(sse_format(topic, payload) for topic, payload in items)
    # Keep-alive comments on the wire are transparent to the parser.
    wire = wire.replace(b"event: wide", b": keep-alive\n\nevent: wide")
    parsed = list(iter_sse(io.BytesIO(wire)))
    assert parsed == items


def test_iter_sse_joins_multiline_data_and_defaults_the_event():
    wire = b"data: {\"a\":\ndata: 1}\n\n"
    assert list(iter_sse(io.BytesIO(wire))) == [("message", {"a": 1})]


def test_run_from_sse_paints_until_end():
    wire = b"".join([
        sse_format("hello", {"live": True}),
        sse_format("gauge", {"run": "r", "t": 0.0,
                             "gauge": "staging.lead_bytes", "v": 1.0}),
        sse_format("end", {"published": 1, "dropped": 0}),
    ])
    out = io.StringIO()
    dash = run_from_sse(io.BytesIO(wire), out=out, clear=False)
    assert dash.items_seen == 2  # hello frames are not items
    assert "staging.lead_bytes" in out.getvalue()
    assert "dropped=0" in out.getvalue()


def test_alert_pane_appears_only_once_alerts_arrive():
    dash = Dashboard(alert_tail=2)
    assert "SLO alerts" not in dash.render()
    for t in (3.0, 5.0, 9.0):
        dash.feed("alert", {
            "t": t, "run": "demo-seed0", "slo": "gain >= 1.2",
            "value": 1.1, "burn_rate": 1.0,
        })
    frame = dash.render()
    assert "SLO alerts (3 total):" in frame
    assert "demo-seed0: gain >= 1.2" in frame
    assert "observed=1.1" in frame
    # alert_tail bounds the pane: the t=3 alert scrolled off.
    assert "t=        5" in frame and "t=        3" not in frame
    assert "alerts=3" in frame  # footer counter
