"""Root-cause attribution: phase profiles, ranking, determinism."""

import pytest

from repro.obs.explain import (
    Contributor,
    PhaseProfile,
    explain,
    explain_registry_pair,
    load_wide_for_run,
    render_why,
    why_payload,
)


def chunk(source="edge", fetch=1.0, ready_wait=0.5, **over):
    record = {
        "kind": "chunk", "run": "r", "source": source,
        "fetch_latency": fetch, "ready_wait_s": ready_wait,
        "re_signals": 0, "stage_failures": 0, "stale_responses": 0,
    }
    record.update(over)
    return record


def run_summary(t_end=10.0, gap=0.0, masked=0.0, **over):
    record = {
        "kind": "run", "run": "r", "t_end": t_end,
        "gap_time_s": gap, "masked_total_s": masked,
        "handoffs_completed": 0, "dropped_packets": 0, "network": "edge1",
    }
    record.update(over)
    return record


# -- PhaseProfile -------------------------------------------------------------


def test_profile_folds_phases_and_counters():
    profile = PhaseProfile.from_records([
        chunk(source="edge", fetch=1.0),
        chunk(source="origin", fetch=4.0, re_signals=2),
        chunk(source="edge", fetch=2.0, ready_wait=-1.5),
        run_summary(t_end=20.0, gap=5.0, masked=3.0),
    ])
    assert profile.run_id == "r"
    assert profile.t_end == 20.0
    assert profile.phases["fetch.edge"] == pytest.approx(3.0)
    assert profile.phases["fetch.origin"] == pytest.approx(4.0)
    assert profile.phases["stage_stall"] == pytest.approx(1.5)
    assert profile.phases["gap.unmasked"] == pytest.approx(2.0)
    assert profile.counters["chunks"] == 3
    assert profile.counters["chunks_edge"] == 2
    assert profile.counters["re_signals"] == 2


def test_profile_tolerates_missing_fields():
    profile = PhaseProfile.from_records([
        {"kind": "chunk", "source": "origin"},  # no latencies at all
        {"kind": "run"},
    ])
    assert profile.counters["chunks"] == 1
    assert profile.phases["gap.unmasked"] == 0.0


# -- explain ------------------------------------------------------------------


def healthy():
    return [
        chunk(source="edge", fetch=0.5),
        chunk(source="edge", fetch=0.5),
        chunk(source="origin", fetch=2.0),
        run_summary(t_end=10.0, gap=2.0, masked=2.0),
    ]


def regressed():
    # The staging pipeline collapsed: chunks shifted to origin, fetch
    # time ballooned, gaps went unmasked.
    return [
        chunk(source="origin", fetch=6.0, ready_wait=-2.0, run="r2"),
        chunk(source="origin", fetch=6.0, run="r2"),
        chunk(source="edge", fetch=0.5, run="r2"),
        run_summary(t_end=25.0, gap=4.0, masked=0.5, run="r2"),
    ]


def test_explain_ranks_the_responsible_phase_first():
    explanation = explain(healthy(), regressed())
    assert explanation.run_a == "r" and explanation.run_b == "r2"
    assert explanation.time_delta == pytest.approx(15.0)
    top = explanation.contributors[0]
    # fetch.origin moved +10.0s — by far the largest mover.
    assert top.name == "fetch.origin"
    assert top.delta == pytest.approx(10.0)
    assert top.share == pytest.approx(10.0 / 15.0)
    assert "fetch.origin" in explanation.verdict
    mix = {c.name: c.delta for c in explanation.counters}
    assert mix["chunks_origin"] == 1 and mix["chunks_edge"] == -1


def test_explain_ties_break_by_name_for_determinism():
    records = [chunk(fetch=1.0), run_summary(t_end=5.0)]
    explanation = explain(records, records)
    names = [c.name for c in explanation.contributors]
    assert names == sorted(names)  # all deltas zero → alphabetical
    assert explanation.time_delta == 0.0
    assert "no download-time movement" in explanation.verdict


def test_render_why_is_deterministic_and_names_the_phase():
    explanation = explain(healthy(), regressed(),
                          metrics_a={"gain": 1.5}, metrics_b={"gain": 0.6})
    text = render_why(explanation)
    assert text == render_why(explain(
        healthy(), regressed(),
        metrics_a={"gain": 1.5}, metrics_b={"gain": 0.6},
    ))
    assert "gain: 1.5 -> 0.6" in text
    assert "fetch.origin" in text.splitlines()[text.splitlines().index(
        next(line for line in text.splitlines() if "+10.000" in line)
    )]
    payload = why_payload(explanation)
    assert payload["gain_delta"] == pytest.approx(-0.9)
    assert payload["contributors"][0]["name"] == "fetch.origin"


def test_contributor_share_is_none_when_time_flat():
    records = [chunk(fetch=1.0), run_summary(t_end=5.0)]
    explanation = explain(records, records)
    assert all(c.share is None for c in explanation.contributors)
    assert isinstance(explanation.contributors[0], Contributor)


# -- registry + wide-file plumbing -------------------------------------------


def write_wide(path, records):
    from repro.obs.wide import wide_json

    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(wide_json(record) + "\n")


def test_load_wide_for_run_filters_and_sorts(tmp_path):
    write_wide(tmp_path / "b.jsonl", [chunk(run="x"), run_summary(run="x")])
    write_wide(tmp_path / "a.jsonl", [chunk(run="y", fetch=9.0)])
    records = load_wide_for_run(str(tmp_path), "x")
    assert [r["run"] for r in records] == ["x", "x"]
    assert load_wide_for_run(str(tmp_path), "nope") == []


def test_explain_registry_pair_end_to_end(tmp_path):
    from repro.obs.registry import RunRegistry

    registry = RunRegistry(str(tmp_path))
    registry.append("r", "demo", {"gain": 1.5})
    registry.append("r2", "demo", {"gain": 0.6})
    wide_dir = tmp_path / "wide"
    wide_dir.mkdir()
    write_wide(wide_dir / "r.jsonl", healthy())
    write_wide(wide_dir / "r2.jsonl", regressed())
    explanation = explain_registry_pair(registry, "0001/r", "r2")
    assert explanation.contributors[0].name == "fetch.origin"
    assert explanation.run_a == "0001/r"
    with pytest.raises(ValueError, match="no wide events"):
        registry.append("bare", "demo", {})
        explain_registry_pair(registry, "0001/r", "bare")
    with pytest.raises(KeyError):
        explain_registry_pair(registry, "0001/r", "missing")


def test_why_is_byte_identical_live_vs_replayed_trace(tmp_path):
    """Acceptance: the report must not care whether the wide records
    came from the live run or from replaying its trace offline."""
    from repro.experiments.params import MicrobenchParams
    from repro.experiments.runner import run_download
    from repro.obs.trace import read_trace
    from repro.obs.wide import derive_wide

    params = MicrobenchParams(file_size=2 * 1024 * 1024)
    live = {}
    for seed in (0, 1):
        trace = tmp_path / f"t{seed}.jsonl"
        result = run_download(
            "softstage", params=params, seed=seed,
            trace_path=str(trace), wide=str(tmp_path / f"w{seed}.jsonl"),
        )
        live[seed] = result.wide_records
    live_report = render_why(explain(live[0], live[1]))
    replayed = {
        seed: derive_wide(read_trace(str(tmp_path / f"t{seed}.jsonl")))
        for seed in (0, 1)
    }
    replay_report = render_why(explain(replayed[0], replayed[1]))
    assert live_report == replay_report
