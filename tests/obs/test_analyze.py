"""Trace analysis: breakdowns, critical path, Chrome export, diffs."""

import io
import json

from repro.obs import Stamped
from repro.obs.analyze import (
    chrome_trace,
    critical_path,
    diff_spans,
    latency_breakdown,
    load_runs,
    pick_run,
    summarize_breakdown,
)
from repro.obs.events import (
    ChunkFetched,
    CoverageGap,
    StagingSignalled,
    VnfStageCompleted,
)
from repro.obs.spans import build_spans
from repro.obs.trace import EventBus, TraceExporter


def stamp(t, event, run="r0"):
    return Stamped(t, run, event)


LIFECYCLE = [
    stamp(0.0, StagingSignalled(count=2, label="eq1", cids="c1,c2")),
    stamp(2.0, VnfStageCompleted(vnf="edge1", cid="c1", latency=1.5)),
    stamp(3.0, CoverageGap(duration=2.0)),  # offline over [1, 3]
    stamp(5.0, ChunkFetched(cid="c1", latency=0.5, from_edge=True, fallback=False)),
    stamp(9.0, VnfStageCompleted(vnf="edge1", cid="c2", latency=1.0)),
    stamp(12.0, ChunkFetched(cid="c2", latency=3.0, from_edge=False, fallback=True)),
]


def trace_text(stampeds):
    bus = EventBus()
    buffer = io.StringIO()
    exporter = TraceExporter(buffer).attach(bus)
    for s in stampeds:
        bus.publish(s)
    exporter.close()
    return buffer.getvalue()


def test_latency_breakdown_decomposes_phases():
    rows = latency_breakdown(build_spans(LIFECYCLE))
    by_cid = {r.cid: r for r in rows}
    c1 = by_cid["c1"]
    assert c1.source == "edge"
    assert c1.stage_wait == 2.0        # signalled 0.0 -> staged 2.0
    assert c1.fetch_time == 0.5
    # Staging interval [0, 2] overlaps the [1, 3] gap for one second.
    assert c1.masked == 1.0
    c2 = by_cid["c2"]
    assert c2.source == "fallback"
    assert c2.stage_wait == 9.0
    assert c2.masked == 2.0  # its [0, 9] staging covers the whole gap

    summary = summarize_breakdown(rows)
    assert summary.chunks == 2 and summary.edge == 1 and summary.fallback == 1
    assert summary.mean_edge_fetch == 0.5
    assert summary.mean_origin_fetch == 3.0
    assert summary.masked_total == 3.0


def test_critical_path_partitions_the_download():
    segments = critical_path(build_spans(LIFECYCLE))
    assert [s.cid for s in segments] == ["c1", "c2"]
    # c1 blocks from its span start (0.0) to its delivery (5.0)...
    assert (segments[0].start, segments[0].end) == (0.0, 5.0)
    # ...then c2 blocks until the download completes at 12.0.
    assert (segments[1].start, segments[1].end) == (5.0, 12.0)
    assert segments[1].phase == "stage_wait"  # c2's fetch began at 9.0
    # Segments cover the timeline with no overlap.
    assert segments[0].end == segments[1].start


def test_load_runs_splits_multi_run_traces():
    mixed = [
        stamp(1.0, ChunkFetched(cid="a", latency=1.0, from_edge=True, fallback=False), run="A"),
        stamp(1.0, ChunkFetched(cid="b", latency=0.5, from_edge=False, fallback=False), run="B"),
        stamp(2.0, ChunkFetched(cid="c", latency=1.0, from_edge=True, fallback=False), run="A"),
    ]
    runs = load_runs(io.StringIO(trace_text(mixed)))
    assert list(runs) == ["A", "B"]
    assert runs["A"].events_total == 2
    assert len(runs["A"].spans) == 2
    assert pick_run(runs).run_id == "A"
    assert pick_run(runs, "B").run_id == "B"


def test_chrome_trace_is_valid_trace_event_json():
    runs = load_runs(io.StringIO(trace_text(LIFECYCLE)))
    payload = chrome_trace(runs)
    # Round-trip through JSON like a real file would.
    payload = json.loads(json.dumps(payload))
    events = payload["traceEvents"]
    assert payload["displayTimeUnit"] == "ms"
    complete = [e for e in events if e["ph"] == "X"]
    assert complete, "expected complete (ph=X) span events"
    for e in complete:
        assert {"name", "cat", "ts", "dur", "pid", "tid"} <= set(e)
        assert e["dur"] >= 0
    # c1's chunk span: [0, 5] seconds -> microseconds.
    c1 = next(e for e in complete if e["name"] == "chunk:c1")
    assert c1["ts"] == 0.0 and c1["dur"] == 5.0e6
    # Metadata names the run.
    meta = [e for e in events if e["ph"] == "M" and e["name"] == "process_name"]
    assert meta[0]["args"]["name"] == "r0"


def test_diff_reports_per_kind_deltas():
    fast = build_spans([
        stamp(0.0, StagingSignalled(count=1, label="eq1", cids="c1")),
        stamp(1.0, ChunkFetched(cid="c1", latency=0.5, from_edge=True, fallback=False)),
    ])
    slow = build_spans([
        stamp(0.0, StagingSignalled(count=1, label="eq1", cids="c1")),
        stamp(4.0, ChunkFetched(cid="c1", latency=3.0, from_edge=False, fallback=False)),
    ])
    (delta,) = diff_spans(fast, slow)
    assert delta.kind == "chunk"
    assert delta.count_a == delta.count_b == 1
    assert delta.mean_a == 1.0 and delta.mean_b == 4.0
    assert delta.delta == 3.0
    assert delta.ratio == 4.0
