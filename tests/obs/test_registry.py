"""Run registry: persistence, lookup, diffing and the ``runs`` CLI."""

import json

import pytest

from repro.__main__ import main
from repro.obs.registry import (
    GAIN_REGRESSION_THRESHOLD,
    RunRecord,
    RunRegistry,
    diff_records,
    record_from_result,
    regressions,
)


@pytest.fixture
def registry(tmp_path):
    return RunRegistry(str(tmp_path / "runs"))


def test_append_assigns_sequential_rec_ids_and_persists(registry):
    first = registry.append("run-a", "demo", {"gain": 1.8})
    second = registry.append("run-b", "demo", {"gain": 1.7})
    assert first.rec_id == "0001/run-a"
    assert second.rec_id == "0002/run-b"
    loaded = registry.records()
    assert [r.rec_id for r in loaded] == ["0001/run-a", "0002/run-b"]
    assert loaded[0].metrics == {"gain": 1.8}
    assert loaded[0].git_sha and loaded[0].machine
    assert loaded[0].recorded_at  # ISO stamp present


def test_env_var_overrides_directory(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "env-runs"))
    registry = RunRegistry()
    registry.append("r", "demo", {})
    assert (tmp_path / "env-runs" / "registry.jsonl").exists()


def test_find_exact_then_latest_substring(registry):
    registry.append("softstage-seed0", "demo", {"n": 1})
    registry.append("softstage-seed0", "demo", {"n": 2})
    registry.append("xftp-seed0", "demo", {"n": 3})
    assert registry.find("0001/softstage-seed0").metrics == {"n": 1}
    # Substring resolution returns the *latest* match.
    assert registry.find("softstage").metrics == {"n": 2}
    with pytest.raises(KeyError, match="no registry record"):
        registry.find("nonexistent")


def test_concurrent_appends_never_tear_lines(registry):
    from concurrent.futures import ThreadPoolExecutor

    def _append(worker: int) -> list[str]:
        return [
            registry.append(f"w{worker}-r{i}", "demo", {"n": i}).rec_id
            for i in range(5)
        ]

    with ThreadPoolExecutor(max_workers=6) as pool:
        issued = [r for ids in pool.map(_append, range(6)) for r in ids]

    # Every line is whole JSON (no torn writes) ...
    with open(registry.path, encoding="utf-8") as fh:
        lines = [line for line in fh if line.strip()]
    parsed = [json.loads(line) for line in lines]
    assert len(parsed) == 30
    # ... every record survived ...
    assert {r["run_id"] for r in parsed} == {
        f"w{w}-r{i}" for w in range(6) for i in range(5)
    }
    # ... and the locked seq-read+write kept rec_id sequence numbers
    # unique and dense despite 6 writers racing.
    seqs = sorted(int(r["rec_id"].split("/")[0]) for r in parsed)
    assert seqs == list(range(1, 31))
    assert sorted(issued) == sorted(r["rec_id"] for r in parsed)


def test_unknown_keys_round_trip(registry, tmp_path):
    registry.append("r", "demo", {"gain": 1.0})
    # Simulate a newer writer adding a top-level key.
    with open(registry.path, encoding="utf-8") as fh:
        payload = json.loads(fh.readline())
    payload["future_field"] = {"x": 1}
    record = RunRecord.from_json(payload)
    assert record.extra == {"future_field": {"x": 1}}
    assert record.to_json()["future_field"] == {"x": 1}


def test_gauge_series_filter_folds_separators():
    record = RunRecord.from_json({
        "rec_id": "0001/r", "run_id": "r", "kind": "demo",
        "gauges": {
            "cache.occupancy_bytes.xcache-A": {"t": [0], "v": [1]},
            "staging.lead_bytes": {"t": [0], "v": [2]},
        },
    })
    assert set(record.gauge_series("cache_occupancy")) == {
        "cache.occupancy_bytes.xcache-A"
    }
    assert set(record.gauge_series("staging.lead")) == {"staging.lead_bytes"}


# ---------------------------------------------------------------------------
# Diffing and gain-regression detection
# ---------------------------------------------------------------------------


def _record(rec_id, metrics):
    return RunRecord.from_json(
        {"rec_id": rec_id, "run_id": rec_id, "kind": "demo",
         "metrics": metrics}
    )


def test_diff_flags_an_injected_fig6_gain_regression():
    baseline = _record("a", {"gain.3s": 1.55, "gain.12s": 1.77,
                             "download_time": 40.0})
    # Inject a Fig. 6 shape regression: the 12 s encounter gain
    # collapses well past the threshold; the 3 s point holds.
    regressed = _record("b", {"gain.3s": 1.54, "gain.12s": 1.10,
                              "download_time": 41.0})
    deltas = diff_records(baseline, regressed)
    flagged = regressions(deltas)
    assert [d.name for d in flagged] == ["gain.12s"]
    assert flagged[0].ratio < 1.0 - GAIN_REGRESSION_THRESHOLD
    # Non-gain metrics never flag, and a small gain wobble doesn't.
    assert all(d.name == "gain.12s" for d in flagged)


def test_diff_ignores_non_numeric_and_unshared_metrics():
    a = _record("a", {"gain": 1.7, "only_a": 1.0, "label": "x"})
    b = _record("b", {"gain": 1.7, "only_b": 2.0, "label": "y"})
    deltas = diff_records(a, b)
    assert [d.name for d in deltas] == ["gain"]
    assert not regressions(deltas)


def test_diff_handles_zero_baseline():
    deltas = diff_records(_record("a", {"gain": 0.0}),
                          _record("b", {"gain": 1.0}))
    assert deltas[0].ratio is None
    assert not deltas[0].regression


def test_record_from_result_strips_gauge_prefix():
    from repro.experiments.params import MicrobenchParams
    from repro.experiments.runner import run_download
    from repro.util import MB

    result = run_download(
        "softstage", params=MicrobenchParams(file_size=2 * MB),
        seed=0, gauges=True,
    )
    run_id, metrics, gauges = record_from_result(result)
    assert run_id == "softstage-seed0"
    assert metrics["bytes_received"] == result.download.bytes_received
    assert "staging.lead_bytes" in gauges
    series = gauges["staging.lead_bytes"]
    assert len(series["t"]) == len(series["v"]) > 0


# ---------------------------------------------------------------------------
# The ``runs`` CLI
# ---------------------------------------------------------------------------


@pytest.fixture
def populated_dir(tmp_path):
    registry = RunRegistry(str(tmp_path))
    registry.append(
        "softstage-seed0", "demo", {"gain": 1.77, "download_time": 30.0},
        gauges={"staging.lead_bytes": {"t": [0.0, 1.0], "v": [0.0, 4.0]}},
    )
    registry.append(
        "softstage-seed1", "demo", {"gain": 1.20, "download_time": 44.0},
    )
    return str(tmp_path)


def test_cli_list(populated_dir, capsys):
    assert main(["runs", "--registry-dir", populated_dir, "list"]) == 0
    out = capsys.readouterr().out
    assert "0001/softstage-seed0" in out
    assert "gain=1.77x" in out


def test_cli_list_empty(tmp_path, capsys):
    assert main(["runs", "--registry-dir", str(tmp_path), "list"]) == 0
    assert "no records" in capsys.readouterr().out


def test_cli_show(populated_dir, capsys):
    assert main(
        ["runs", "--registry-dir", populated_dir, "show", "seed0"]
    ) == 0
    out = capsys.readouterr().out
    assert "0001/softstage-seed0" in out
    assert "staging.lead_bytes" in out


def test_cli_diff_exits_zero_and_names_the_regression(populated_dir, capsys):
    assert main(
        ["runs", "--registry-dir", populated_dir, "diff", "seed0", "seed1"]
    ) == 0
    out = capsys.readouterr().out
    assert "gain regression" in out
    assert "1.770 -> 1.200" in out


def test_cli_diff_fail_on_regression_exits_nonzero(populated_dir):
    with pytest.raises(SystemExit) as info:
        main(["runs", "--registry-dir", populated_dir, "diff",
              "seed0", "seed1", "--fail-on-regression"])
    assert info.value.code == 1


def test_cli_diff_without_regression(populated_dir, capsys):
    assert main(
        ["runs", "--registry-dir", populated_dir, "diff", "seed0", "seed0"]
    ) == 0
    assert "no gain regressions" in capsys.readouterr().out


def test_cli_gauges_sparkline_and_csv(populated_dir, capsys):
    assert main(
        ["runs", "--registry-dir", populated_dir, "gauges", "seed0",
         "--metric", "staging_lead"]
    ) == 0
    assert "staging.lead_bytes" in capsys.readouterr().out
    assert main(
        ["runs", "--registry-dir", populated_dir, "gauges", "seed0",
         "--metric", "staging_lead", "--csv"]
    ) == 0
    out = capsys.readouterr().out
    assert "gauge,t,value" in out
    assert "staging.lead_bytes,1,4" in out


def test_cli_list_json_shares_the_http_serialization(populated_dir, capsys):
    assert main(
        ["runs", "--registry-dir", populated_dir, "list", "--json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    from repro.obs.registry import list_payload

    assert payload == json.loads(
        json.dumps(list_payload(RunRegistry(populated_dir)))
    )
    assert [r["rec_id"] for r in payload["records"]] == [
        "0001/softstage-seed0", "0002/softstage-seed1",
    ]
    # The listing carries gauge *names*, not the heavy timelines.
    assert payload["records"][0]["gauges"] == ["staging.lead_bytes"]


def test_cli_diff_json_names_regressions(populated_dir, capsys):
    assert main(
        ["runs", "--registry-dir", populated_dir, "diff",
         "seed0", "seed1", "--json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["a"] == "0001/softstage-seed0"
    assert payload["regressions"] == ["gain"]
    gain = next(d for d in payload["deltas"] if d["name"] == "gain")
    assert gain["regression"] is True and gain["ratio"] < 1.0


def test_cli_diff_json_honours_fail_on_regression(populated_dir, capsys):
    with pytest.raises(SystemExit) as info:
        main(["runs", "--registry-dir", populated_dir, "diff",
              "seed0", "seed1", "--json", "--fail-on-regression"])
    assert info.value.code == 1
    # The payload still printed before the failing exit.
    assert json.loads(capsys.readouterr().out)["regressions"] == ["gain"]


def test_cli_gauges_unknown_metric_fails(populated_dir):
    with pytest.raises(SystemExit, match="no gauge matching"):
        main(["runs", "--registry-dir", populated_dir, "gauges", "seed0",
              "--metric", "bogus"])


def test_cli_unknown_record_fails(populated_dir):
    with pytest.raises(SystemExit, match="no registry record"):
        main(["runs", "--registry-dir", populated_dir, "show", "bogus"])
