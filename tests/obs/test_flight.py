"""Flight recorder: gauge sampling, replay parity, invariant auditing."""

import io

import pytest

from repro.experiments.params import MicrobenchParams
from repro.experiments.runner import run_download
from repro.metrics.collector import MetricsCollector
from repro.obs.bus import EventBus, Stamped
from repro.obs.events import CacheEvicted, CacheStored, ChunkStaged, GaugeSample
from repro.obs.flight import (
    GaugeSampler,
    InvariantAuditor,
    InvariantViolationError,
    install_flight_recorder,
)
from repro.obs.trace import replay_trace
from repro.sim import Simulator
from repro.util import MB

PARAMS = MicrobenchParams(file_size=2 * MB)


# ---------------------------------------------------------------------------
# GaugeSampler
# ---------------------------------------------------------------------------


def _collected(sim):
    collector = MetricsCollector(sim)
    collector.attach(sim.probe.bus)
    return collector


def test_sampler_emits_each_gauge_every_period():
    sim = Simulator()
    sim.probe.run_id = "r"
    collector = _collected(sim)
    state = {"x": 0.0}
    sampler = GaugeSampler(sim, period=1.0)
    sampler.register("test.x", lambda: state["x"])
    sampler.start()

    def bump():
        while True:
            state["x"] += 1.0
            yield sim.timeout(1.0)

    sim.process(bump())
    sim.run(until=3.5)
    series = collector.series("gauge.r.test.x")
    assert list(series) == [(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]
    assert sampler.samples_taken == 4


def test_sampler_rejects_duplicate_gauge_names():
    sampler = GaugeSampler(Simulator())
    sampler.register("a", lambda: 0.0)
    with pytest.raises(ValueError, match="already registered"):
        sampler.register("a", lambda: 1.0)


def test_sampler_rejects_nonpositive_period():
    with pytest.raises(ValueError):
        GaugeSampler(Simulator(), period=0.0)


def test_sampler_is_silent_without_subscribers():
    sim = Simulator()
    sampler = GaugeSampler(sim, period=1.0)
    calls = []
    sampler.register("g", lambda: calls.append(1) or 0.0)
    sampler.start()
    sim.run(until=5.0)
    # probe.active is False with nothing attached: gauges never even read.
    assert calls == []
    assert sampler.samples_taken == 0


def test_start_is_idempotent():
    sim = Simulator()
    sim.probe.run_id = "r"
    collector = _collected(sim)
    sampler = GaugeSampler(sim, period=1.0).register("g", lambda: 1.0)
    sampler.start()
    sampler.start()
    sim.run(until=2.5)
    assert len(collector.series("gauge.r.g")) == 3  # not doubled


# ---------------------------------------------------------------------------
# Full-stack: recorder does not perturb the simulation; replay is exact
# ---------------------------------------------------------------------------


def test_recorder_does_not_perturb_the_fixed_seed_run():
    bare = run_download("softstage", params=PARAMS, seed=3)
    recorded = run_download(
        "softstage", params=PARAMS, seed=3, gauges=True, audit=True
    )
    assert recorded.download_time == bare.download_time
    assert recorded.download.bytes_received == bare.download.bytes_received
    assert recorded.download.handoffs == bare.download.handoffs


def test_gauge_timelines_replay_identically():
    buf = io.StringIO()
    live = run_download(
        "softstage", params=PARAMS, seed=0, gauges=True, trace_path=buf
    )
    live_timelines = live.metrics.timelines("gauge.")
    assert live_timelines
    buf.seek(0)
    replayed = replay_trace(buf)
    assert replayed.timelines("gauge.") == live_timelines
    assert replayed.report() == live.metrics.report()


def test_standard_gauge_set_covers_the_issue_surface():
    result = run_download("softstage", params=PARAMS, seed=0, gauges=True)
    names = set(result.gauge_timelines())
    for expected in (
        "staging.lead_bytes",
        "staging.pending_chunks",
        "staging.staged_ahead_chunks",
        "client.progress_bytes",
        "client.connected",
        "pool.event_allocs",
        "pool.events_free",
        "pool.packet_releases",
        "pool.packets_free",
    ):
        assert expected in names, expected
    assert any(name.startswith("cache.occupancy_bytes.") for name in names)
    assert any(name.startswith("link.queue_bytes.") for name in names)
    assert any(name.startswith("link.utilization.") for name in names)


def test_xftp_run_records_gauges_without_staging_pipeline():
    result = run_download("xftp", params=PARAMS, seed=0, gauges=True)
    names = set(result.gauge_timelines())
    assert "client.connected" in names
    assert "staging.lead_bytes" not in names  # no manager on Xftp


def test_gauges_off_means_no_sampler_and_no_gauge_series():
    result = run_download("softstage", params=PARAMS, seed=0, instrument=True)
    assert result.sampler is None
    assert result.metrics.series_names("gauge.") == []


# ---------------------------------------------------------------------------
# InvariantAuditor
# ---------------------------------------------------------------------------


def _stamp(event, time=1.0, run_id="r"):
    return Stamped(time=time, run_id=run_id, event=event)


def _audited_bus(strict=True):
    bus = EventBus()
    auditor = InvariantAuditor(strict=strict).attach(bus)
    return bus, auditor


def test_audited_live_run_is_clean():
    result = run_download(
        "softstage", params=PARAMS, seed=0, gauges=True, audit=True
    )
    assert result.auditor is not None
    assert result.auditor.ok
    assert result.auditor.events_audited > 0


def test_eviction_exceeding_stored_bytes_fires():
    bus, auditor = _audited_bus()
    bus.publish(_stamp(CacheStored(store="s", cid="c1", size_bytes=100, pinned=False)))
    with pytest.raises(InvariantViolationError) as info:
        bus.publish(_stamp(CacheEvicted(store="s", cid="c1", size_bytes=200)))
    (violation,) = info.value.violations
    assert violation.invariant == "cache-conservation"
    assert not auditor.ok


def test_occupancy_gauge_disagreeing_with_balance_fires():
    bus, auditor = _audited_bus()
    bus.publish(_stamp(CacheStored(store="s", cid="c1", size_bytes=100, pinned=False)))
    with pytest.raises(InvariantViolationError):
        bus.publish(
            _stamp(GaugeSample(gauge="cache.occupancy_bytes.s", value=150.0))
        )
    assert not auditor.ok


def test_ready_without_pending_fires_with_a_useful_report():
    bus, auditor = _audited_bus()
    bus.publish(_stamp(CacheStored(store="s", cid="c9", size_bytes=1, pinned=False)))
    with pytest.raises(InvariantViolationError) as info:
        bus.publish(
            _stamp(
                ChunkStaged(
                    cid="c9", staging_latency=None, control_rtt=None
                ),
                time=2.0,
            )
        )
    report = info.value.violations[0].render()
    # The report names the invariant, the time, and carries the
    # timeline slice leading up to the violation.
    assert "staging-state" in report
    assert "t=2.0" in report
    assert "timeline slice" in report
    assert "CacheStored" in report
    assert "c9" in report


def test_monotonic_time_violation_fires():
    bus, _auditor = _audited_bus()
    bus.publish(_stamp(CacheStored(store="s", cid="c", size_bytes=1, pinned=False), time=5.0))
    with pytest.raises(InvariantViolationError) as info:
        bus.publish(
            _stamp(CacheStored(store="s", cid="d", size_bytes=1, pinned=False), time=4.0)
        )
    assert info.value.violations[0].invariant == "monotonic-time"


def test_negative_gauge_fires():
    bus, _auditor = _audited_bus()
    with pytest.raises(InvariantViolationError) as info:
        bus.publish(_stamp(GaugeSample(gauge="g", value=-1.0)))
    assert info.value.violations[0].invariant == "gauge-sane"


def test_pool_free_list_exceeding_allocs_fires():
    bus, _auditor = _audited_bus()
    bus.publish(_stamp(GaugeSample(gauge="pool.event_allocs", value=10.0)))
    with pytest.raises(InvariantViolationError) as info:
        bus.publish(_stamp(GaugeSample(gauge="pool.events_free", value=11.0)))
    assert info.value.violations[0].invariant == "pool-balance"


def test_non_strict_auditor_accumulates_instead_of_raising():
    bus, auditor = _audited_bus(strict=False)
    bus.publish(_stamp(GaugeSample(gauge="g", value=-1.0)))
    bus.publish(_stamp(GaugeSample(gauge="h", value=-2.0)))
    assert len(auditor.violations) == 2
    with pytest.raises(InvariantViolationError):
        auditor.raise_if_violated()
    assert "2 violation(s)" in auditor.render()


def test_report_parity_detects_counter_drift():
    bus, auditor = _audited_bus(strict=False)
    bus.publish(_stamp(CacheStored(store="s", cid="c", size_bytes=1, pinned=False)))
    # A collector that (incorrectly) claims two insertions.
    violations = auditor.check_report_parity({"cache.insertions": 2})
    assert violations
    assert violations[0].invariant == "report-parity"
    assert "cache.insertions" in violations[0].detail


def test_report_parity_passes_on_honest_collector():
    sim = Simulator()
    sim.probe.run_id = "r"
    collector = _collected(sim)
    auditor = InvariantAuditor(strict=True).attach(sim.probe.bus)
    sim.probe.emit(CacheStored(store="s", cid="c", size_bytes=1, pinned=False))
    assert auditor.check_report_parity(collector.report()) == []


def test_detach_stops_auditing():
    bus, auditor = _audited_bus()
    auditor.detach()
    bus_active_events = auditor.events_audited
    # After detach the bus has no subscribers; publishing is a no-op
    # for the auditor even if something else re-activates the bus.
    bus.subscribe_all(lambda stamped: None)
    bus.publish(_stamp(GaugeSample(gauge="g", value=-1.0)))
    assert auditor.events_audited == bus_active_events
    assert auditor.ok


# ---------------------------------------------------------------------------
# Fault injection through the real stack
# ---------------------------------------------------------------------------


def test_injected_cache_fault_is_caught_in_a_real_scenario():
    """Deliberately corrupt a live run's cache accounting mid-flight:
    the auditor must fire with the store named in the report."""
    from repro.experiments.scenario import TestbedScenario

    scenario = TestbedScenario(params=PARAMS, seed=0)
    scenario.sim.probe.run_id = "fault"
    _collected(scenario.sim)
    auditor = InvariantAuditor(strict=False).attach(scenario.sim.probe.bus)
    install_flight_recorder(scenario, period=0.5)
    store = scenario.edges[0].store

    def corrupt():
        yield scenario.sim.timeout(1.0)
        # Phantom eviction: the event stream claims bytes left the
        # store that were never stored.
        scenario.sim.probe.emit(
            CacheEvicted(store=store.name, cid="phantom", size_bytes=999)
        )

    scenario.sim.process(corrupt())
    scenario.sim.run(until=3.0)
    assert not auditor.ok
    assert any(
        v.invariant == "cache-conservation" and store.name in v.detail
        for v in auditor.violations
    )
