"""Span derivation: lifecycle folding, variants, parents, parity."""

import pytest

from repro.experiments.params import MicrobenchParams
from repro.experiments.runner import run_download
from repro.obs import Stamped, read_trace
from repro.obs.events import (
    CacheStored,
    ChunkFetched,
    ChunkStaged,
    CoverageGap,
    EncounterEnded,
    HandoffCompleted,
    HandoffDeferred,
    HandoffStarted,
    StageRequestReceived,
    StagingSignalled,
    StaleStagingResponse,
    VnfStageCompleted,
    VnfStageFailed,
)
from repro.obs.spans import SpanBuilder, build_spans, render_summary
from repro.util import MB


def stamp(t, event, run="r0"):
    return Stamped(t, run, event)


def spans_of(stampeds, **kw):
    return build_spans(stampeds, **kw)


# -- chunk lifecycle ---------------------------------------------------------


def test_full_edge_lifecycle_produces_one_chunk_span():
    spans = spans_of([
        stamp(1.0, StagingSignalled(count=2, label="eq1", cids="c1,c2")),
        stamp(1.2, StageRequestReceived(vnf="edge1", chunks=2, cids="c1,c2")),
        stamp(2.0, VnfStageCompleted(vnf="edge1", cid="c1", latency=0.8)),
        stamp(2.0, CacheStored(store="edge1", cid="c1", size_bytes=4, pinned=True)),
        stamp(2.3, ChunkStaged(cid="c1", staging_latency=0.8, control_rtt=0.5)),
        stamp(3.0, ChunkFetched(cid="c1", latency=0.4, from_edge=True, fallback=False)),
    ])
    chunk = next(s for s in spans if s.kind == "chunk" and s.key == "c1")
    assert chunk.start == 1.0 and chunk.end == 3.0
    assert chunk.status == "edge"
    assert [name for name, _ in chunk.phases] == [
        "signalled", "stage_request", "staged", "cached", "ready", "fetched",
    ]
    assert chunk.attrs["vnf"] == "edge1"
    assert chunk.attrs["stage_latency"] == 0.8
    assert chunk.attrs["fetch_start"] == pytest.approx(2.6)
    # c2 was signalled but never delivered: still open.
    other = next(s for s in spans if s.key == "c2")
    assert other.end is None and other.status == "staging"


def test_origin_fallback_and_unsignalled_variants():
    spans = spans_of([
        stamp(0.0, StagingSignalled(count=1, label="eq1", cids="c1")),
        stamp(0.5, VnfStageFailed(vnf="edge1", cid="c1")),
        stamp(4.0, ChunkFetched(cid="c1", latency=3.0, from_edge=False, fallback=True)),
        # Never signalled: span opens retroactively at fetch start.
        stamp(9.0, ChunkFetched(cid="c9", latency=2.0, from_edge=False, fallback=False)),
    ])
    c1 = next(s for s in spans if s.key == "c1")
    assert c1.status == "fallback"
    assert c1.phase_time("stage_failed") == 0.5
    c9 = next(s for s in spans if s.key == "c9")
    assert c9.status == "origin"
    assert c9.start == 7.0 and c9.end == 9.0


def test_re_signal_and_stale_response_marks():
    spans = spans_of([
        stamp(0.0, StagingSignalled(count=1, label="eq1", cids="c1")),
        stamp(5.0, StagingSignalled(count=1, label="re-signal", cids="c1")),
        stamp(6.0, StaleStagingResponse(cid="c1")),
    ])
    (c1,) = [s for s in spans if s.key == "c1"]
    assert c1.attrs["re_signals"] == 1
    assert c1.attrs["stale_responses"] == 1
    assert c1.phase_time("re-signalled") == 5.0


def test_cache_stored_never_opens_a_span():
    # Origin-side publishes at t=0 must not look like staging.
    spans = spans_of([
        stamp(0.0, CacheStored(store="origin", cid="c1", size_bytes=4, pinned=False)),
    ])
    assert spans == []


# -- encounters, gaps, handoffs ---------------------------------------------


def test_encounter_and_gap_spans_are_retroactive_intervals():
    spans = spans_of([
        stamp(12.0, EncounterEnded(duration=12.0)),
        stamp(20.0, CoverageGap(duration=8.0)),
    ])
    enc = next(s for s in spans if s.kind == "encounter")
    gap = next(s for s in spans if s.kind == "gap")
    assert (enc.start, enc.end) == (0.0, 12.0)
    assert (gap.start, gap.end) == (12.0, 20.0)
    assert gap.status == "offline"


def test_handoff_span_variants():
    spans = spans_of([
        stamp(1.0, HandoffDeferred(target="net2")),
        stamp(2.0, HandoffStarted(target="net2")),
        stamp(2.5, HandoffCompleted(target="net2", duration=0.5)),
    ])
    deferred, executed = [s for s in spans if s.kind == "handoff"]
    assert deferred.status == "deferred" and deferred.duration == 0.0
    assert executed.status == "completed"
    assert executed.start == 2.0 and executed.end == 2.5
    assert executed.attrs["join_duration"] == 0.5


def test_chunk_nests_under_delivering_encounter():
    spans = spans_of([
        stamp(1.0, StagingSignalled(count=2, label="eq1", cids="c1,c2")),
        stamp(3.0, ChunkFetched(cid="c1", latency=1.0, from_edge=True, fallback=False)),
        stamp(5.0, EncounterEnded(duration=5.0)),       # [0, 5]
        stamp(30.0, ChunkFetched(cid="c2", latency=1.0, from_edge=True, fallback=False)),
    ])
    enc = next(s for s in spans if s.kind == "encounter")
    c1 = next(s for s in spans if s.key == "c1")
    c2 = next(s for s in spans if s.key == "c2")
    assert c1.parent_id == enc.span_id
    assert c2.parent_id is None  # delivered after the last ended encounter


# -- builder mechanics -------------------------------------------------------


def test_builder_adopts_first_run_and_skips_others():
    builder = SpanBuilder()
    builder.feed(stamp(1.0, HandoffDeferred(target="a"), run="runA"))
    builder.feed(stamp(2.0, HandoffDeferred(target="b"), run="runB"))
    spans = builder.finish()
    assert builder.run_id == "runA"
    assert builder.skipped_other_runs == 1
    assert [s.key for s in spans] == ["a"]


def test_finish_is_idempotent():
    builder = SpanBuilder()
    builder.feed(stamp(1.0, HandoffDeferred(target="a")))
    assert builder.finish() == builder.finish()


def test_span_to_dict_is_json_friendly():
    import json

    spans = spans_of([
        stamp(1.0, StagingSignalled(count=1, label="eq1", cids="c1")),
        stamp(2.0, ChunkFetched(cid="c1", latency=0.5, from_edge=True, fallback=False)),
    ])
    payload = json.dumps([s.to_dict() for s in spans])
    assert json.loads(payload)[0]["kind"] == "chunk"


# -- live/offline parity (the headline guarantee) ---------------------------

PARAMS = MicrobenchParams(file_size=4 * MB, chunk_size=1 * MB, packet_loss=0.05)


@pytest.mark.parametrize("system", ["softstage", "xftp"])
def test_offline_span_derivation_equals_live(system, tmp_path):
    trace = tmp_path / f"{system}.jsonl"
    result = run_download(
        system, params=PARAMS, seed=0, trace_path=str(trace), spans=True,
    )
    live = result.spans
    offline = build_spans(read_trace(str(trace)), run_id=result.run_id)
    assert [s.to_dict() for s in offline] == [s.to_dict() for s in live]
    # The rendered summaries must be byte-identical.
    assert render_summary(offline) == render_summary(live)
    if system == "softstage":
        assert any(s.kind == "chunk" for s in live)


def test_offline_derivation_is_deterministic(tmp_path):
    trace = tmp_path / "det.jsonl"
    result = run_download(
        "softstage", params=PARAMS, seed=1, trace_path=str(trace),
    )
    first = build_spans(read_trace(str(trace)), run_id=result.run_id)
    second = build_spans(read_trace(str(trace)), run_id=result.run_id)
    assert [s.to_dict() for s in first] == [s.to_dict() for s in second]
