"""Event bus semantics: subscription, ordering, the unsubscribed fast path."""

import pytest

from repro.obs import EventBus, Stamped
from repro.obs.events import CacheHit, ChunkFetched, CoverageGap
from repro.sim import Simulator


def fetched(cid="c1"):
    return ChunkFetched(cid=cid, latency=0.1, from_edge=True, fallback=False)


def stamp(event, time=0.0, run="test"):
    return Stamped(time, run, event)


def test_topic_subscription_filters_by_type():
    bus = EventBus()
    seen = []
    bus.subscribe(ChunkFetched, seen.append)
    bus.publish(stamp(fetched()))
    bus.publish(stamp(CacheHit(store="s", cid="c")))
    assert [type(s.event) for s in seen] == [ChunkFetched]


def test_wildcard_receives_everything():
    bus = EventBus()
    seen = []
    bus.subscribe_all(seen.append)
    bus.publish(stamp(fetched()))
    bus.publish(stamp(CoverageGap(duration=2.0)))
    assert [type(s.event) for s in seen] == [ChunkFetched, CoverageGap]


def test_delivery_order_topic_then_wildcard_in_subscription_order():
    bus = EventBus()
    order = []
    bus.subscribe_all(lambda s: order.append("all-1"))
    bus.subscribe(ChunkFetched, lambda s: order.append("topic-1"))
    bus.subscribe(ChunkFetched, lambda s: order.append("topic-2"))
    bus.subscribe_all(lambda s: order.append("all-2"))
    bus.publish(stamp(fetched()))
    assert order == ["topic-1", "topic-2", "all-1", "all-2"]


def test_unsubscribe_stops_delivery_and_clears_active():
    bus = EventBus()
    seen = []
    handler = bus.subscribe(ChunkFetched, seen.append)
    assert bus.active
    bus.unsubscribe(ChunkFetched, handler)
    assert not bus.active
    bus.publish(stamp(fetched()))
    assert seen == []


def test_unsubscribe_all_and_clear():
    bus = EventBus()
    seen = []
    handler = bus.subscribe_all(seen.append)
    bus.unsubscribe_all(handler)
    assert not bus.active

    bus.subscribe(ChunkFetched, seen.append)
    bus.subscribe_all(seen.append)
    bus.clear()
    assert not bus.active and bus.subscriber_count == 0


def test_subscribe_rejects_non_event_topics():
    bus = EventBus()
    with pytest.raises(TypeError):
        bus.subscribe(int, lambda s: None)


def test_no_subscriber_fast_path_publishes_nothing():
    bus = EventBus()
    assert not bus.active
    # publish() with no subscribers is a no-op (early return).
    bus.publish(stamp(fetched()))
    assert bus.subscriber_count == 0


def test_probe_is_inert_without_subscribers():
    sim = Simulator()
    assert not sim.probe.active
    sim.probe.emit(fetched())  # must not raise, must not deliver anywhere


def test_probe_stamps_time_and_run_id():
    sim = Simulator()
    sim.probe.run_id = "seed42"
    seen = []
    sim.probe.bus.subscribe_all(seen.append)

    def worker(sim):
        yield sim.timeout(3.5)
        sim.probe.emit(CoverageGap(duration=1.0))

    sim.process(worker(sim))
    sim.run()
    assert len(seen) == 1
    assert seen[0].time == 3.5
    assert seen[0].run_id == "seed42"
    assert seen[0].event == CoverageGap(duration=1.0)


def test_kernel_step_hooks_observe_every_dispatch():
    sim = Simulator()
    steps = []

    def hook(when, event):
        steps.append(when)

    sim.add_step_hook(hook)

    def worker(sim):
        yield sim.timeout(1.0)
        yield sim.timeout(2.0)

    sim.process(worker(sim))
    sim.run()
    assert steps  # init + timeouts + process completion
    assert steps == sorted(steps)
    sim.remove_step_hook(hook)
    before = len(steps)
    sim.process(worker(sim))
    sim.run()
    assert len(steps) == before


def test_process_failure_is_published():
    from repro.obs.events import ProcessFailed

    sim = Simulator()
    seen = []
    sim.probe.bus.subscribe(ProcessFailed, seen.append)

    def crasher(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("boom")

    process = sim.process(crasher(sim))
    with pytest.raises(RuntimeError):
        sim.run(until=process)
    assert len(seen) == 1
    assert "boom" in seen[0].event.error


def test_uninstrumented_run_constructs_zero_event_objects(monkeypatch):
    """With no subscribers, emit sites must not even build event objects.

    Every emit site is written as ``if probe.active: probe.emit(Evt(...))``
    so an uninstrumented run never pays for dataclass construction.  Patch
    every event class constructor to explode; a full download must still
    complete untouched.
    """
    from repro.experiments.params import MicrobenchParams
    from repro.experiments.runner import run_download
    from repro.obs.events import EVENT_TYPES
    from repro.util import MB

    def boom(self, *args, **kwargs):
        raise AssertionError(
            f"{type(self).__name__} constructed during uninstrumented run"
        )

    for cls in EVENT_TYPES.values():
        monkeypatch.setattr(cls, "__init__", boom)

    params = MicrobenchParams(file_size=2 * MB, chunk_size=1 * MB,
                              packet_loss=0.05)
    result = run_download("softstage", params=params, seed=0)
    assert result.download.completed
