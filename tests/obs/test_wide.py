"""Wide events: the per-chunk fold, live/offline byte parity, schema."""

import io
import json

import pytest

from repro.experiments.params import MicrobenchParams
from repro.experiments.runner import run_download
from repro.obs import events as ev
from repro.obs.bus import Stamped
from repro.obs.trace import read_trace
from repro.obs.wide import (
    WIDE_SCHEMA_VERSION,
    WideEventBuilder,
    WideEventStream,
    WideEventWriter,
    derive_wide,
    policy_from_run_id,
    read_wide,
    wide_json,
)
from repro.util import MB


@pytest.fixture(scope="module")
def live(tmp_path_factory):
    """One instrumented SoftStage run: a trace plus live wide events."""
    directory = tmp_path_factory.mktemp("wide")
    trace = str(directory / "trace.jsonl")
    wide = str(directory / "wide.jsonl")
    result = run_download(
        "softstage", params=MicrobenchParams(file_size=2 * MB), seed=0,
        gauges=True, trace_path=trace, wide=wide,
    )
    return result, trace, wide


# ---------------------------------------------------------------------------
# The headline property: live == offline, byte for byte
# ---------------------------------------------------------------------------


def test_offline_derivation_is_byte_identical_to_live(live):
    _result, trace, wide = live
    offline = derive_wide(read_trace(trace))
    derived = "".join(wide_json(r) + "\n" for r in offline)
    with open(wide, encoding="utf-8") as fh:
        assert fh.read() == derived


def test_live_records_match_the_emit_file(live):
    result, _trace, wide = live
    on_disk = list(read_wide(wide))
    assert result.wide_records == on_disk


# ---------------------------------------------------------------------------
# Record content from a real run
# ---------------------------------------------------------------------------


def test_chunk_records_capture_the_lifecycle(live):
    result, _trace, wide = live
    records = list(read_wide(wide))
    chunks = [r for r in records if r["kind"] == "chunk"]
    assert chunks, "a softstage run must deliver chunk wide events"
    for record in chunks:
        assert record["schema"] == WIDE_SCHEMA_VERSION
        assert record["run"] == "softstage-seed0"
        assert record["policy"] == ""
        assert record["source"] in {"edge", "origin", "fallback"}
        assert record["t_fetched"] >= record["t_fetch_start"]
        assert record["fetch_latency"] >= 0.0
        # The flight recorder ran, so gauge context is present.
        assert record["lead_bytes"] is not None
    # seq numbers the run's records densely, in emission order.
    assert [r["seq"] for r in records] == list(range(len(records)))


def test_run_summary_is_last_and_agrees_with_the_download(live):
    result, _trace, wide = live
    records = list(read_wide(wide))
    summary = records[-1]
    assert summary["kind"] == "run"
    assert summary["chunks"] == result.download.chunks_completed
    assert summary["chunks_edge"] == result.download.chunks_from_edge
    assert summary["events"] > 0
    assert summary["chunks_open"] == 0


# ---------------------------------------------------------------------------
# Policy derivation (from the run id — never out-of-band)
# ---------------------------------------------------------------------------


def test_policy_from_run_id():
    assert policy_from_run_id("softstage-seed0") == ""
    assert policy_from_run_id("softstage-rich-seed0") == "rich"
    assert policy_from_run_id("softstage-mobility-aware-seed3") == (
        "mobility-aware"
    )
    assert policy_from_run_id("whatever") == ""
    assert policy_from_run_id("") == ""


def test_policy_stamped_on_every_record():
    records = []
    builder = WideEventBuilder(
        run_id="softstage-rich-seed0", sinks=[records.append]
    )
    builder.feed(Stamped(1.0, "softstage-rich-seed0",
                         ev.HandoffCompleted(target="edge-B", duration=0.2)))
    builder.finish()
    assert [r["kind"] for r in records] == ["handoff", "run"]
    assert all(r["policy"] == "rich" for r in records)


# ---------------------------------------------------------------------------
# The fold itself (synthetic streams)
# ---------------------------------------------------------------------------


def _chunk_events(run_id, cid, t0=1.0):
    return [
        Stamped(t0, run_id,
                ev.StagingSignalled(count=1, label="eq1", cids=cid)),
        Stamped(t0 + 0.1, run_id,
                ev.StageRequestReceived(vnf="vnf-A", chunks=1, cids=cid)),
        Stamped(t0 + 0.5, run_id,
                ev.VnfStageCompleted(vnf="vnf-A", cid=cid, latency=0.4)),
        Stamped(t0 + 0.6, run_id,
                ev.ChunkStaged(cid=cid, staging_latency=0.6,
                               control_rtt=0.05)),
        Stamped(t0 + 2.0, run_id,
                ev.ChunkFetched(cid=cid, latency=0.3, from_edge=True,
                                fallback=False)),
    ]


def test_chunk_fold_joins_all_phases():
    records = []
    builder = WideEventBuilder(run_id="r", sinks=[records.append])
    for stamped in _chunk_events("r", "cid-1"):
        builder.feed(stamped)
    (chunk,) = [r for r in records if r["kind"] == "chunk"]
    assert chunk["t_signalled"] == 1.0
    assert chunk["t_stage_request"] == 1.1
    assert chunk["t_staged"] == 1.5
    assert chunk["t_ready"] == 1.6
    assert chunk["t_fetch_start"] == pytest.approx(2.7)
    assert chunk["stage_wait_s"] == pytest.approx(0.5)
    assert chunk["ready_wait_s"] == pytest.approx(1.1)
    assert chunk["source"] == "edge"
    assert chunk["vnf"] == "vnf-A"
    assert chunk["signal_label"] == "eq1"
    assert chunk["control_rtt"] == 0.05


def test_re_signals_and_gap_masking_are_attributed():
    records = []
    builder = WideEventBuilder(run_id="r", sinks=[records.append])
    cid = "cid-1"
    builder.feed(Stamped(1.0, "r",
                         ev.StagingSignalled(count=1, label="eq1", cids=cid)))
    builder.feed(Stamped(2.0, "r",
                         ev.StagingSignalled(count=1, label="eq1", cids=cid)))
    # A 3 s coverage gap [3, 6] inside the chunk's lifecycle [1, 8].
    builder.feed(Stamped(6.0, "r", ev.CoverageGap(duration=3.0)))
    builder.feed(Stamped(8.0, "r",
                         ev.ChunkFetched(cid=cid, latency=0.5, from_edge=True,
                                         fallback=False)))
    builder.finish()
    gap = next(r for r in records if r["kind"] == "gap")
    chunk = next(r for r in records if r["kind"] == "chunk")
    summary = records[-1]
    assert gap["duration_s"] == 3.0
    assert chunk["re_signals"] == 1
    assert chunk["masked_s"] == pytest.approx(3.0)
    assert summary["masked_total_s"] == pytest.approx(3.0)
    assert summary["re_signals"] == 1
    assert summary["gap_time_s"] == 3.0


def test_handoff_updates_the_current_network():
    records = []
    builder = WideEventBuilder(run_id="r", sinks=[records.append])
    builder.feed(Stamped(1.0, "r",
                         ev.HandoffCompleted(target="edge-B", duration=0.2)))
    for stamped in _chunk_events("r", "cid-1", t0=2.0):
        builder.feed(stamped)
    handoff = records[0]
    chunk = records[1]
    assert handoff["kind"] == "handoff"
    assert handoff["target"] == "edge-B"
    assert handoff["from_network"] == ""
    assert handoff["status"] == "completed"
    assert chunk["network"] == "edge-B"


# ---------------------------------------------------------------------------
# Multi-run streams (the demo's shared trace file)
# ---------------------------------------------------------------------------


def _handoff(run_id, t):
    return Stamped(t, run_id, ev.HandoffCompleted(target="e", duration=0.1))


def test_stream_finishes_each_run_where_a_live_pipeline_would():
    records = []
    stream = WideEventStream(sinks=[records.append])
    stream.feed(_handoff("run-a", 1.0))
    stream.feed(_handoff("run-b", 2.0))  # run-a ends here, mid-file
    stream.finish()
    assert [(r["run"], r["kind"]) for r in records] == [
        ("run-a", "handoff"), ("run-a", "run"),
        ("run-b", "handoff"), ("run-b", "run"),
    ]
    # Each run's seq restarts — records are per-run, not per-file.
    assert [r["seq"] for r in records] == [0, 1, 0, 1]


def test_derive_wide_run_filter_selects_one_run():
    stampeds = [_handoff("run-a", 1.0), _handoff("run-b", 2.0)]
    records = derive_wide(stampeds, run_id="run-b")
    assert {r["run"] for r in records} == {"run-b"}


# ---------------------------------------------------------------------------
# Writer, reader, and the forward-compat rule
# ---------------------------------------------------------------------------


def test_writer_reader_round_trip_preserves_unknown_keys(tmp_path):
    path = str(tmp_path / "wide.jsonl")
    record = {"kind": "chunk", "schema": WIDE_SCHEMA_VERSION,
              "run": "r", "seq": 0, "future_key": {"x": [1, 2]}}
    with WideEventWriter(path) as writer:
        writer.write(record)
    assert writer.records_written == 1
    assert writer.path == path
    (loaded,) = read_wide(path)
    assert loaded["future_key"] == {"x": [1, 2]}
    # Rewriting through the canonical serializer loses nothing.
    assert json.loads(wide_json(loaded)) == record


def test_writer_borrows_file_objects_without_closing_them():
    sink = io.StringIO()
    writer = WideEventWriter(sink)
    writer.write({"kind": "run", "seq": 0})
    writer.close()
    assert writer.path is None
    assert not sink.closed
    assert sink.getvalue() == wide_json({"kind": "run", "seq": 0}) + "\n"


def test_builder_skips_other_runs_and_finish_is_idempotent():
    records = []
    builder = WideEventBuilder(run_id="mine", sinks=[records.append])
    builder.feed(_handoff("other", 1.0))
    assert builder.skipped_other_runs == 1
    assert builder.events_seen == 0
    assert builder.finish() == 1
    assert builder.finish() == 1  # no second summary
    assert [r["kind"] for r in records] == ["run"]
