"""The HTTP telemetry service: registry endpoints, /diff gate, SSE."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs.registry import RunRegistry, list_payload
from repro.obs.server import make_server, sse_format
from repro.obs.stream import TelemetryHub
from repro.obs.wide import WideEventWriter


@pytest.fixture
def service(tmp_path):
    """A served registry: two healthy records, one regressed, wide events."""
    registry = RunRegistry(str(tmp_path))
    registry.append(
        "softstage-seed0", "demo",
        {"gain": 1.77, "download_time": 30.0},
        gauges={"staging.lead_bytes": {"t": [0.0, 1.0], "v": [0.0, 4.0]},
                "client.connected": {"t": [0.0], "v": [1.0]}},
    )
    registry.append("xftp-seed0", "demo", {"gain": 1.75})
    registry.append("demo-regressed", "demo", {"gain": 1.10})
    wide_dir = tmp_path / "wide"
    wide_dir.mkdir()
    with WideEventWriter(str(wide_dir / "demo.jsonl")) as writer:
        writer.write({"kind": "chunk", "run": "softstage-seed0", "seq": 0})
        writer.write({"kind": "run", "run": "softstage-seed0", "seq": 1})
        writer.write({"kind": "run", "run": "xftp-seed0", "seq": 0})
    hub = TelemetryHub()
    server = make_server(port=0, registry=registry, hub=hub)
    server.serve_background()
    yield server, registry, hub
    hub.close()
    server.shutdown()
    server.server_close()


def _get(server, path):
    """(status, parsed body) for a GET, 4xx/5xx included."""
    try:
        with urllib.request.urlopen(server.url + path) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def test_index_and_healthz(service):
    server, _registry, _hub = service
    status, index = _get(server, "/")
    assert status == 200
    assert index["records"] == 3
    assert index["live"] is True
    assert "/diff?a=<key>&b=<key>" in index["endpoints"]
    assert _get(server, "/healthz") == (200, {"ok": True})


def test_runs_listing_shares_the_cli_json_serialization(service):
    server, registry, _hub = service
    status, payload = _get(server, "/runs")
    assert status == 200
    assert payload == json.loads(json.dumps(list_payload(registry)))


def test_single_run_resolution_and_404(service):
    server, _registry, _hub = service
    status, record = _get(server, "/runs/softstage-seed0")
    assert status == 200
    assert record["rec_id"] == "0001/softstage-seed0"
    assert record["metrics"]["gain"] == 1.77
    status, error = _get(server, "/runs/bogus")
    assert status == 404
    assert "bogus" in error["error"]
    assert _get(server, "/nonsense")[0] == 404
    assert _get(server, "/runs/softstage-seed0/nonsense")[0] == 404


def test_gauges_endpoint_filters_like_the_cli(service):
    server, _registry, _hub = service
    status, payload = _get(server, "/runs/softstage-seed0/gauges")
    assert status == 200
    assert set(payload["gauges"]) == {
        "staging.lead_bytes", "client.connected",
    }
    _status, filtered = _get(
        server, "/runs/softstage-seed0/gauges?metric=staging_lead"
    )
    assert set(filtered["gauges"]) == {"staging.lead_bytes"}
    assert filtered["gauges"]["staging.lead_bytes"]["v"] == [0.0, 4.0]


def test_wide_endpoint_serves_only_the_requested_run(service):
    server, _registry, _hub = service
    status, payload = _get(server, "/runs/softstage-seed0/wide")
    assert status == 200
    assert [r["seq"] for r in payload["records"]] == [0, 1]
    assert all(r["run"] == "softstage-seed0" for r in payload["records"])


def test_diff_gate_returns_409_exactly_on_regression(service):
    server, _registry, _hub = service
    status, payload = _get(server, "/diff?a=softstage-seed0&b=xftp-seed0")
    assert status == 200
    assert payload["regressions"] == []
    # The injected regression (1.77 -> 1.10) breaches the threshold.
    status, payload = _get(server, "/diff?a=softstage-seed0&b=demo-regressed")
    assert status == 409
    assert payload["regressions"] == ["gain"]
    (delta,) = [d for d in payload["deltas"] if d["name"] == "gain"]
    assert delta["regression"] is True
    # A forgiving threshold turns the same pair green.
    status, _payload = _get(
        server, "/diff?a=softstage-seed0&b=demo-regressed&threshold=0.9"
    )
    assert status == 200


def test_diff_validates_its_query(service):
    server, _registry, _hub = service
    assert _get(server, "/diff")[0] == 400
    assert _get(server, "/diff?a=softstage-seed0")[0] == 400
    assert _get(server, "/diff?a=softstage-seed0&b=bogus")[0] == 404
    assert _get(
        server, "/diff?a=softstage-seed0&b=xftp-seed0&threshold=x"
    )[0] == 400


# ---------------------------------------------------------------------------
# SSE
# ---------------------------------------------------------------------------


def test_sse_format_wire_shape():
    frame = sse_format("gauge", {"v": 1.5, "gauge": "x"})
    assert frame == b'event: gauge\ndata: {"gauge":"x","v":1.5}\n\n'


def test_live_streams_hub_traffic_until_close(service):
    server, _registry, hub = service
    frames = []

    def _consume():
        with urllib.request.urlopen(server.url + "/live") as response:
            assert response.headers["Content-Type"] == "text/event-stream"
            event = None
            for raw in response:
                line = raw.decode().rstrip("\n")
                if line.startswith("event:"):
                    event = line.split(": ", 1)[1]
                elif line.startswith("data:") and event is not None:
                    frames.append((event, json.loads(line[len("data:"):])))
                    if event == "end":
                        return

    consumer = threading.Thread(target=_consume, daemon=True)
    consumer.start()
    # Wait for the consumer's subscription to appear before publishing.
    for _ in range(100):
        if hub.subscriber_count:
            break
        threading.Event().wait(0.01)
    hub.publish("gauge", {"run": "r", "t": 1.0, "gauge": "g", "v": 2.0})
    hub.publish("wide", {"kind": "chunk", "run": "r", "seq": 0})
    hub.close()
    consumer.join(timeout=10)
    assert not consumer.is_alive()
    assert [topic for topic, _p in frames] == [
        "hello", "gauge", "wide", "end",
    ]
    assert frames[1][1]["v"] == 2.0
    assert frames[-1][1]["published"] == 2


def test_live_without_a_hub_is_503(tmp_path):
    server = make_server(port=0, registry=RunRegistry(str(tmp_path)))
    server.serve_background()
    try:
        try:
            with urllib.request.urlopen(server.url + "/live"):
                raise AssertionError("expected a 503")
        except urllib.error.HTTPError as error:
            assert error.code == 503
        status_index = urllib.request.urlopen(server.url + "/")
        assert json.loads(status_index.read())["live"] is False
    finally:
        server.shutdown()
        server.server_close()


# ---------------------------------------------------------------------------
# Bad input contract: 400 JSON bodies, 500 JSON on unexpected failure
# ---------------------------------------------------------------------------


def test_gauges_rejects_blank_and_unmatched_metric_filters(service):
    server, _registry, _hub = service
    status, payload = _get(server, "/runs/softstage-seed0/gauges?metric=")
    assert status == 400
    assert "non-empty" in payload["error"]
    status, payload = _get(
        server, "/runs/softstage-seed0/gauges?metric=bogus"
    )
    assert status == 400
    assert "bogus" in payload["error"]
    assert "staging.lead_bytes" in payload["error"]  # names what exists


def test_unexpected_handler_failure_is_json_500(service):
    server, _registry, _hub = service

    class ExplodingRegistry:
        def records(self):
            raise RuntimeError("registry exploded")

    server.registry = ExplodingRegistry()
    status, payload = _get(server, "/slo")
    assert status == 500
    assert "RuntimeError" in payload["error"]
    assert "registry exploded" in payload["error"]


# ---------------------------------------------------------------------------
# /slo: the SLO gate endpoint
# ---------------------------------------------------------------------------


def _quote(spec):
    import urllib.parse

    return urllib.parse.quote(spec)


def test_slo_passes_a_healthy_subset(service):
    server, _registry, _hub = service
    status, payload = _get(
        server, "/slo?run=softstage-seed0&slo=" + _quote("gain >= 1.2")
    )
    assert status == 200
    assert payload["slos"] == ["gain >= 1.2"]
    assert payload["violations"] == []
    (row,) = payload["records"]
    assert row["rec_id"] == "0001/softstage-seed0"
    (result,) = row["results"]
    assert result["status"] == "pass" and result["value"] == 1.77


def test_slo_gate_is_409_when_any_record_violates(service):
    server, _registry, _hub = service
    # The whole registry includes demo-regressed (gain 1.10 < 1.2).
    status, payload = _get(server, "/slo?slo=" + _quote("gain >= 1.2"))
    assert status == 409
    assert any("demo-regressed" in v for v in payload["violations"])


def test_slo_validates_specs_and_run_keys(service):
    server, _registry, _hub = service
    status, payload = _get(server, "/slo?slo=garbage")
    assert status == 400
    assert "garbage" in payload["error"]
    status, payload = _get(server, "/slo?run=bogus")
    assert status == 404
    assert "bogus" in payload["error"]


# ---------------------------------------------------------------------------
# /runs/<key>/explain: root-cause attribution over HTTP
# ---------------------------------------------------------------------------


def test_explain_compares_against_the_base_run(service):
    server, _registry, _hub = service
    status, payload = _get(
        server, "/runs/xftp-seed0/explain?base=softstage-seed0"
    )
    assert status == 200
    assert payload["a"] == "0001/softstage-seed0"
    assert payload["b"] == "0002/xftp-seed0"
    assert [c["name"] for c in payload["contributors"]]  # ranked list
    assert "verdict" in payload


def test_explain_validates_base_and_wide_availability(service):
    server, _registry, _hub = service
    status, payload = _get(server, "/runs/xftp-seed0/explain")
    assert status == 400
    assert "base" in payload["error"]
    status, payload = _get(server, "/runs/xftp-seed0/explain?base=bogus")
    assert status == 404
    # demo-regressed has no wide events on disk.
    status, payload = _get(
        server, "/runs/demo-regressed/explain?base=softstage-seed0"
    )
    assert status == 404
    assert "wide events" in payload["error"]
