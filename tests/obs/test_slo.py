"""SLO engine: spec grammar, offline judging, live burn rates, alerts."""

import json

import pytest

from repro.obs.registry import RunRecord
from repro.obs.sketch import QuantileSketch, StatSketch, serialize_sketches
from repro.obs.slo import (
    DEFAULT_SLOS,
    DEFAULT_WINDOW_S,
    SLO,
    AlertLog,
    AlertRecord,
    LiveSLOEvaluator,
    check_payload,
    evaluate_record,
    evaluate_slos,
    parse_slo,
    render_check,
    violations,
)
from repro.obs.stream import TelemetryHub


# -- spec grammar -------------------------------------------------------------


def test_parse_bare_metric_floor():
    slo = parse_slo("gain >= 1.2")
    assert (slo.metric, slo.agg, slo.op, slo.threshold) == \
        ("gain", "value", ">=", 1.2)
    assert slo.window_s == DEFAULT_WINDOW_S


def test_parse_percentile_ceiling_with_window():
    slo = parse_slo("p95(stage_latency) <= 2.0 @ 60")
    assert (slo.metric, slo.agg, slo.op) == ("stage_latency", "p95", "<=")
    assert slo.window_s == 60.0


def test_spec_round_trips_through_parse():
    for spec in (
        "gain >= 1.2",
        "p95(stage_latency) <= 2",
        "mean(fetch_latency) <= 10 @ 60",
        "ready_before_fetch_ratio >= 0.6",
    ):
        assert parse_slo(parse_slo(spec).spec()) == parse_slo(spec)


def test_parse_rejects_garbage():
    for bad in ("gain", "gain == 1", "p42(x) <= 1", "gain >= fast"):
        with pytest.raises(ValueError):
            parse_slo(bad)
    with pytest.raises(ValueError):
        SLO(metric="x", agg="value", op="!=", threshold=1.0)


def test_ok_direction():
    floor = parse_slo("gain >= 1.2")
    assert floor.ok(1.2) and not floor.ok(1.1)
    ceil = parse_slo("p95(x) <= 2.0")
    assert ceil.ok(2.0) and not ceil.ok(2.5)


# -- offline evaluation -------------------------------------------------------


def _sketches_with(name, values, kind=QuantileSketch):
    sketch = kind() if kind is StatSketch else kind(compression=256)
    sketch.add_many(values)
    return {name: sketch}


def test_evaluate_value_slo_from_metrics():
    results = evaluate_slos(
        [parse_slo("gain >= 1.2")], metrics={"gain": 1.5},
    )
    assert results[0].ok is True and results[0].value == 1.5
    assert results[0].source == "metrics"


def test_evaluate_percentile_slo_from_sketch():
    sketches = _sketches_with(
        "wide.stage_latency", [0.1] * 95 + [9.0] * 5,
    )
    ok = evaluate_slos([parse_slo("p95(stage_latency) <= 2.0")],
                       sketches=sketches)[0]
    # p95 lands on the last 0.1 (rank 95/100) — within budget.
    assert ok.ok is True
    bad = evaluate_slos([parse_slo("p90(stage_latency) <= 0.05")],
                        sketches=sketches)[0]
    assert bad.ok is False


def test_evaluate_ready_before_fetch_ratio():
    indicator = StatSketch()
    indicator.add_many([1.0, 1.0, 1.0, 0.0])
    results = evaluate_slos(
        [parse_slo("ready_before_fetch_ratio >= 0.6")],
        sketches={"wide.ready_before_fetch": indicator},
    )
    assert results[0].value == pytest.approx(0.75)
    assert results[0].ok is True


def test_missing_metric_is_no_data_not_failure():
    results = evaluate_slos([parse_slo("gain >= 1.2")], metrics={})
    assert results[0].ok is None
    assert results[0].status == "no-data"
    assert violations(results) == []


def test_evaluate_from_wide_records_folds_on_the_fly():
    records = [
        {"kind": "chunk", "fetch_latency": f, "ready_wait_s": 0.5}
        for f in (1.0, 2.0, 3.0, 50.0)
    ]
    results = evaluate_slos(
        [parse_slo("p95(fetch_latency) <= 30.0"),
         parse_slo("ready_before_fetch_ratio >= 0.99")],
        wide_records=records,
    )
    assert results[0].ok is False          # p95 hits the 50 s outlier
    assert results[1].ok is True           # all four staged in time


def test_evaluate_record_reads_serialized_sketches():
    sketches = _sketches_with("wide.fetch_latency", [1.0, 2.0, 3.0])
    record = RunRecord(
        rec_id="r1", run_id="softstage-seed0", kind="demo",
        recorded_at="", git_sha="", machine="",
        metrics={"gain": 1.5},
        sketches=serialize_sketches(sketches),
    )
    results = evaluate_record(
        [parse_slo("gain >= 1.2"), parse_slo("p95(fetch_latency) <= 30")],
        record,
    )
    assert [r.ok for r in results] == [True, True]


def test_default_slos_are_the_paper_shape_set():
    specs = [slo.spec() for slo in DEFAULT_SLOS]
    assert "gain >= 1.2" in specs
    assert any("stage_latency" in s for s in specs)
    assert any("ready_before_fetch_ratio" in s for s in specs)


def test_check_payload_and_render_are_deterministic():
    per_record = [(
        "rec1",
        evaluate_slos([parse_slo("gain >= 1.2")], metrics={"gain": 0.8}),
    )]
    payload = check_payload(per_record)
    assert payload["violations"] == ["rec1: gain >= 1.2"]
    text = render_check(per_record)
    assert "FAIL" in text and "1 SLO violation(s)" in text
    assert render_check(per_record) == text
    json.dumps(payload)  # must be serializable


# -- alerts -------------------------------------------------------------------


def test_alert_log_round_trip(tmp_path):
    log = AlertLog(str(tmp_path))
    alert = AlertRecord(
        slo="gain >= 1.2", run="softstage-seed0", value=0.9,
        threshold=1.2, t=12.5, kind="burn", burn_rate=0.4, window_s=30.0,
        source="live",
    )
    log.append(alert)
    log.append(AlertRecord(slo="x <= 1", run="r", value=2.0, threshold=1.0))
    loaded = log.read()
    assert loaded[0] == alert
    assert len(loaded) == 2
    assert "burn 40%" in alert.describe()


def test_alert_log_missing_file_reads_empty(tmp_path):
    assert AlertLog(str(tmp_path / "nope")).read() == []


# -- live evaluation ----------------------------------------------------------


def gauge_item(t, value, gauge="staging.lead_chunks", run="r1"):
    return "gauge", {"run": run, "t": t, "gauge": gauge, "v": value}


def test_live_evaluator_fires_on_transition_only():
    slo = parse_slo("staging.lead_chunks >= 2.0 @ 10")
    ev = LiveSLOEvaluator([slo])
    for t in range(5):
        ev.feed(*gauge_item(float(t), 5.0))
    assert ev.alerts == []
    ev.feed(*gauge_item(5.0, 0.0))   # latest value violates
    assert len(ev.alerts) == 1
    ev.feed(*gauge_item(6.0, 0.0))   # still violating: no re-fire
    assert len(ev.alerts) == 1
    ev.feed(*gauge_item(7.0, 5.0))   # recovers
    ev.feed(*gauge_item(8.0, 0.0))   # violates again: second alert
    assert len(ev.alerts) == 2
    alert = ev.alerts[0]
    assert alert.kind == "burn" and alert.run == "r1"
    assert 0.0 < alert.burn_rate <= 1.0


def test_live_window_slides_by_sim_time():
    slo = parse_slo("mean(g) >= 1.0 @ 10")
    ev = LiveSLOEvaluator([slo])
    ev.feed(*gauge_item(0.0, 0.0, gauge="g"))   # mean 0 → violating
    assert len(ev.alerts) == 1
    # 100 s later the bad sample has aged out; the window holds only
    # the healthy one, so a later dip re-fires.
    ev.feed(*gauge_item(100.0, 2.0, gauge="g"))
    ev.feed(*gauge_item(101.0, -2.0, gauge="g"))
    assert len(ev.alerts) == 2
    assert ev.alerts[-1].burn_rate == pytest.approx(0.5)


def test_live_evaluator_judges_wide_chunks():
    ev = LiveSLOEvaluator([
        parse_slo("p95(fetch_latency) <= 1.0 @ 1000"),
        parse_slo("ready_before_fetch_ratio >= 0.99 @ 1000"),
    ])
    for i in range(4):
        ev.feed("wide", {
            "kind": "chunk", "run": "r1", "t_fetched": float(i),
            "fetch_latency": 0.5, "ready_wait_s": 0.1,
        })
    assert ev.alerts == []
    ev.feed("wide", {
        "kind": "chunk", "run": "r1", "t_fetched": 4.0,
        "fetch_latency": 60.0, "ready_wait_s": -1.0,
    })
    fired = {a.slo for a in ev.alerts}
    assert "p95(fetch_latency) <= 1 @ 1000" in fired
    assert "ready_before_fetch_ratio >= 0.99 @ 1000" in fired
    ev.feed("wide", {"kind": "run", "run": "r1"})  # summary: ignored


def test_live_evaluator_resets_windows_per_run():
    slo = parse_slo("mean(g) >= 1.0 @ 1000")
    ev = LiveSLOEvaluator([slo])
    ev.feed(*gauge_item(0.0, 0.0, gauge="g", run="a"))
    assert len(ev.alerts) == 1
    # A fresh run with a healthy stream must not inherit run a's
    # violating window (or its violating state).
    ev.feed(*gauge_item(0.0, 5.0, gauge="g", run="b"))
    assert len(ev.alerts) == 1
    ev.feed(*gauge_item(1.0, -5.0, gauge="g", run="b"))
    assert len(ev.alerts) == 2 and ev.alerts[-1].run == "b"


def test_live_evaluator_judges_run_finished_values():
    ev = LiveSLOEvaluator([parse_slo("download_time <= 30")])
    ev.feed("run", {"run": "r1", "state": "finished",
                    "download_time": 55.0})
    assert len(ev.alerts) == 1
    assert ev.alerts[0].value == 55.0


def test_live_evaluator_over_hub_with_alert_log(tmp_path):
    hub = TelemetryHub()
    listener = hub.subscribe(topics={"alert"})
    log = AlertLog(str(tmp_path))
    ev = LiveSLOEvaluator([parse_slo("g >= 1.0 @ 10")]).start(hub, log)
    hub.publish(*gauge_item(0.0, 0.5, gauge="g"))
    # The alert arrives back over the hub before we close it.
    topic, payload = listener.get(timeout=5.0)
    assert topic == "alert" and payload["slo"] == "g >= 1 @ 10"
    hub.close()
    ev.join(timeout=5.0)
    assert len(ev.alerts) == 1
    assert len(log.read()) == 1


def test_live_evaluator_attached_keeps_fixed_seed_bit_identical(tmp_path):
    """Acceptance: live SLO evaluator + sketches + strict auditor
    attached must not perturb a fixed-seed run."""
    from repro.experiments.runner import run_download
    from repro.experiments.params import MicrobenchParams

    params = MicrobenchParams(file_size=2 * 1024 * 1024)

    def run(with_obs):
        hub = TelemetryHub() if with_obs else None
        ev = None
        if with_obs:
            ev = LiveSLOEvaluator(DEFAULT_SLOS).start(
                hub, AlertLog(str(tmp_path))
            )
        result = run_download(
            "softstage", params=params, seed=3,
            gauges=with_obs, audit=with_obs, sketches=with_obs,
            hub=hub,
        )
        if hub is not None:
            hub.close()
            ev.join(timeout=5.0)
        return (
            result.download_time,
            result.download.chunks_completed,
            result.download.chunks_from_edge,
        )

    assert run(False) == run(True)
