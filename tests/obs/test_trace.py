"""JSONL trace export, round-trip and offline replay."""

import io
import json

from repro.obs import EventBus, Stamped, TraceExporter, read_trace, replay_trace
from repro.obs.events import (
    CacheStored,
    ChunkFetched,
    CoordinatorTick,
    SegmentTimeout,
)

SAMPLE = [
    Stamped(0.5, "r0", CoordinatorTick(signalled=2, decision=True, offline=False)),
    Stamped(1.25, "r0", CacheStored(store="edge", cid="abcd", size_bytes=512, pinned=True)),
    Stamped(2.0, "r0", SegmentTimeout(session="s1", seq=7, rto=0.375)),
    Stamped(3.125, "r0", ChunkFetched(cid="abcd", latency=0.875, from_edge=True, fallback=False)),
]


def export_to_string(stampeds):
    bus = EventBus()
    buffer = io.StringIO()
    exporter = TraceExporter(buffer).attach(bus)
    for stamped in stampeds:
        bus.publish(stamped)
    exporter.close()
    assert exporter.events_written == len(stampeds)
    return buffer.getvalue()


def test_exported_lines_are_flat_json_objects():
    text = export_to_string(SAMPLE)
    lines = text.strip().splitlines()
    assert len(lines) == len(SAMPLE)
    first = json.loads(lines[0])
    assert first == {
        "t": 0.5,
        "run": "r0",
        "type": "CoordinatorTick",
        "signalled": 2,
        "decision": True,
        "offline": False,
    }


def test_read_trace_round_trips_events_exactly():
    text = export_to_string(SAMPLE)
    restored = list(read_trace(io.StringIO(text)))
    assert restored == SAMPLE


def test_exporter_detaches_on_close():
    bus = EventBus()
    exporter = TraceExporter(io.StringIO()).attach(bus)
    bus.publish(SAMPLE[0])
    exporter.close()
    bus.publish(SAMPLE[1])
    assert exporter.events_written == 1
    assert not bus.active


def test_exporter_owns_path_file(tmp_path):
    path = tmp_path / "trace.jsonl"
    bus = EventBus()
    with TraceExporter(str(path)) as exporter:
        exporter.attach(bus)
        for stamped in SAMPLE:
            bus.publish(stamped)
    assert exporter.path == str(path)
    assert [s.event for s in read_trace(str(path))] == [s.event for s in SAMPLE]


def test_replay_trace_rebuilds_metrics():
    text = export_to_string(SAMPLE)
    collector = replay_trace(io.StringIO(text))
    report = collector.report()
    assert report["coordinator.ticks"] == 1
    assert report["coordinator.decisions"] == 1
    assert report["cache.insertions"] == 1
    assert report["cache.stored_bytes"] == 512
    assert report["transport.timeouts"] == 1
    assert report["transport.rto.mean"] == 0.375
    assert report["chunks.fetched"] == 1
    assert report["chunks.from_edge"] == 1
    assert report["fetch.latency.mean"] == 0.875


def test_replay_matches_live_collector_report():
    from repro.metrics.collector import MetricsCollector

    bus = EventBus()
    live = MetricsCollector().attach(bus)
    buffer = io.StringIO()
    exporter = TraceExporter(buffer).attach(bus)
    for stamped in SAMPLE:
        bus.publish(stamped)
    exporter.close()

    replayed = replay_trace(io.StringIO(buffer.getvalue()))
    assert replayed.report() == live.report()
