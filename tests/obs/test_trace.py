"""JSONL trace export, round-trip and offline replay."""

import io
import json

from repro.obs import EventBus, Stamped, TraceExporter, read_trace, replay_trace
from repro.obs.events import (
    CacheStored,
    ChunkFetched,
    CoordinatorTick,
    SegmentTimeout,
)

SAMPLE = [
    Stamped(0.5, "r0", CoordinatorTick(signalled=2, decision=True, offline=False)),
    Stamped(1.25, "r0", CacheStored(store="edge", cid="abcd", size_bytes=512, pinned=True)),
    Stamped(2.0, "r0", SegmentTimeout(session="s1", seq=7, rto=0.375)),
    Stamped(3.125, "r0", ChunkFetched(cid="abcd", latency=0.875, from_edge=True, fallback=False)),
]


def export_to_string(stampeds):
    bus = EventBus()
    buffer = io.StringIO()
    exporter = TraceExporter(buffer).attach(bus)
    for stamped in stampeds:
        bus.publish(stamped)
    exporter.close()
    assert exporter.events_written == len(stampeds)
    return buffer.getvalue()


def test_exported_lines_are_flat_json_objects():
    text = export_to_string(SAMPLE)
    lines = text.strip().splitlines()
    assert len(lines) == len(SAMPLE)
    first = json.loads(lines[0])
    assert first == {
        "t": 0.5,
        "run": "r0",
        "type": "CoordinatorTick",
        "signalled": 2,
        "decision": True,
        "offline": False,
    }


def test_read_trace_round_trips_events_exactly():
    text = export_to_string(SAMPLE)
    restored = list(read_trace(io.StringIO(text)))
    assert restored == SAMPLE


def test_exporter_detaches_on_close():
    bus = EventBus()
    exporter = TraceExporter(io.StringIO()).attach(bus)
    bus.publish(SAMPLE[0])
    exporter.close()
    bus.publish(SAMPLE[1])
    assert exporter.events_written == 1
    assert not bus.active


def test_exporter_owns_path_file(tmp_path):
    path = tmp_path / "trace.jsonl"
    bus = EventBus()
    with TraceExporter(str(path)) as exporter:
        exporter.attach(bus)
        for stamped in SAMPLE:
            bus.publish(stamped)
    assert exporter.path == str(path)
    assert [s.event for s in read_trace(str(path))] == [s.event for s in SAMPLE]


def test_replay_trace_rebuilds_metrics():
    text = export_to_string(SAMPLE)
    collector = replay_trace(io.StringIO(text))
    report = collector.report()
    assert report["coordinator.ticks"] == 1
    assert report["coordinator.decisions"] == 1
    assert report["cache.insertions"] == 1
    assert report["cache.stored_bytes"] == 512
    assert report["transport.timeouts"] == 1
    assert report["transport.rto.mean"] == 0.375
    assert report["chunks.fetched"] == 1
    assert report["chunks.from_edge"] == 1
    assert report["fetch.latency.mean"] == 0.875


def test_replay_matches_live_collector_report():
    from repro.metrics.collector import MetricsCollector

    bus = EventBus()
    live = MetricsCollector().attach(bus)
    buffer = io.StringIO()
    exporter = TraceExporter(buffer).attach(bus)
    for stamped in SAMPLE:
        bus.publish(stamped)
    exporter.close()

    replayed = replay_trace(io.StringIO(buffer.getvalue()))
    assert replayed.report() == live.report()


# -- forward compatibility (traces from newer code versions) -----------------


def test_read_trace_skips_unknown_event_types_with_warning():
    import pytest

    text = (
        '{"t":1.0,"run":"r0","type":"CacheHit","store":"s","cid":"c"}\n'
        '{"t":2.0,"run":"r0","type":"QuantumTeleport","qubits":3}\n'
        '{"t":3.0,"run":"r0","type":"CacheMiss","store":"s","cid":"c"}\n'
    )
    counts = {}
    with pytest.warns(UserWarning, match="QuantumTeleport"):
        restored = list(
            read_trace(io.StringIO(text), unknown_counts=counts)
        )
    assert [type(s.event).__name__ for s in restored] == ["CacheHit", "CacheMiss"]
    assert counts == {"QuantumTeleport": 1}


def test_read_trace_strict_raises_on_unknown_type():
    import pytest

    text = '{"t":2.0,"run":"r0","type":"QuantumTeleport","qubits":3}\n'
    with pytest.raises(KeyError, match="QuantumTeleport"):
        list(read_trace(io.StringIO(text), strict=True))


def test_read_trace_drops_unknown_fields_on_known_types():
    import pytest

    text = '{"t":1.0,"run":"r0","type":"CacheHit","store":"s","cid":"c","tier":2}\n'
    with pytest.warns(UserWarning, match="tier"):
        (restored,) = list(read_trace(io.StringIO(text)))
    assert type(restored.event).__name__ == "CacheHit"
    assert restored.event.store == "s"
    with pytest.raises(TypeError):
        list(read_trace(io.StringIO(text), strict=True))


def test_read_trace_skips_records_missing_required_fields():
    # A known type whose (newer) writer dropped a required field.
    text = '{"t":1.0,"run":"r0","type":"CacheHit","store":"s","extra":1}\n'
    counts = {}
    import warnings as warnings_mod

    with warnings_mod.catch_warnings():
        warnings_mod.simplefilter("ignore")
        restored = list(read_trace(io.StringIO(text), unknown_counts=counts))
    assert restored == []
    assert counts == {"CacheHit": 1}


def test_replay_trace_survives_unknown_types():
    import warnings as warnings_mod

    text = (
        '{"t":1.0,"run":"r0","type":"CacheHit","store":"s","cid":"c"}\n'
        '{"t":2.0,"run":"r0","type":"FutureEvent","x":1}\n'
    )
    with warnings_mod.catch_warnings():
        warnings_mod.simplefilter("ignore")
        collector = replay_trace(io.StringIO(text))
    assert collector.report()["cache.hits"] == 1


def test_pre_count_packet_dropped_traces_still_load():
    """Traces written before PacketDropped.count default to one drop."""
    old_line = '{"t":1.0,"run":"legacy","type":"PacketDropped","link":"l","reason":"loss"}\n'
    (restored,) = list(read_trace(io.StringIO(old_line)))
    assert restored.event.count == 1
    collector = replay_trace(io.StringIO(old_line * 3))
    assert collector.counters["net.drops.loss"] == 3


def test_batched_packet_dropped_replays_full_count():
    line = '{"t":1.0,"run":"r","type":"PacketDropped","link":"l","reason":"down","count":7}\n'
    collector = replay_trace(io.StringIO(line))
    assert collector.counters["net.drops.down"] == 7
