"""Fixed-memory sketches: accuracy, mergeability, determinism, bounds."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.sketch import (
    ExpHistogram,
    QuantileSketch,
    SketchRecorder,
    StatSketch,
    load_sketch,
    load_sketches,
    merge_sketch_sets,
    serialize_sketches,
    sketches_from_wide,
)


def exact_rank(data, value):
    """Fraction of ``data`` at or below ``value``."""
    return sum(1 for v in data if v <= value) / len(data)


# -- StatSketch ---------------------------------------------------------------


def test_stat_sketch_tracks_exact_moments():
    sketch = StatSketch()
    sketch.add_many([3.0, -1.0, 4.0, 1.5])
    assert sketch.count == 4
    assert sketch.total == pytest.approx(7.5)
    assert sketch.minimum == -1.0
    assert sketch.maximum == 4.0
    assert sketch.mean == pytest.approx(1.875)


def test_stat_sketch_merge_equals_single_stream():
    a, b, whole = StatSketch(), StatSketch(), StatSketch()
    a.add_many([1.0, 2.0])
    b.add_many([10.0, -5.0, 3.0])
    whole.add_many([1.0, 2.0, 10.0, -5.0, 3.0])
    a.merge(b)
    assert a.to_json() == whole.to_json()


def test_stat_sketch_empty_round_trip():
    sketch = StatSketch.from_json(StatSketch().to_json())
    assert sketch.count == 0 and sketch.mean is None


# -- QuantileSketch -----------------------------------------------------------


def test_quantile_sketch_small_streams_are_exact_at_extremes():
    sketch = QuantileSketch(compression=16)
    sketch.add_many(float(i) for i in range(100))
    assert sketch.quantile(0.0) == 0.0
    assert sketch.quantile(1.0) == 99.0
    assert abs(sketch.quantile(0.5) - 49.5) < 5.0


def test_quantile_sketch_memory_is_bounded():
    sketch = QuantileSketch(compression=64)
    sketch.add_many(float(i % 977) for i in range(50_000))
    assert len(sketch.centroids) <= 2 * 64
    assert sketch.count == 50_000


def test_quantile_sketch_is_deterministic():
    def build():
        s = QuantileSketch(compression=32)
        s.add_many(math.sin(i * 0.7) * 100 for i in range(5_000))
        return json.dumps(s.to_json(), sort_keys=True)

    assert build() == build()


def test_quantile_sketch_empty_and_round_trip():
    assert QuantileSketch().quantile(0.5) is None
    sketch = QuantileSketch(compression=32)
    sketch.add_many([5.0, 1.0, 3.0])
    clone = QuantileSketch.from_json(sketch.to_json())
    for q in (0.0, 0.25, 0.5, 0.9, 1.0):
        assert clone.quantile(q) == sketch.quantile(q)


def test_quantile_sketch_rejects_bad_inputs():
    with pytest.raises(ValueError):
        QuantileSketch(compression=2)
    with pytest.raises(ValueError):
        QuantileSketch().quantile(1.5)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=2000,
    ),
    st.integers(min_value=1, max_value=5),
)
def test_merged_sketch_quantiles_within_one_percent_rank_error(data, parts):
    """The acceptance contract: merged quantiles ≤ 1 % rank error.

    The stream is split into ``parts`` worker shards, folded into
    independent sketches (as ``experiments/parallel.py`` workers
    would), merged pairwise, and every queried quantile's *rank* in
    the exact data must sit within 1 % of the requested rank.
    """
    shard_size = math.ceil(len(data) / parts)
    shards = [data[i:i + shard_size] for i in range(0, len(data), shard_size)]
    sketches = []
    for shard in shards:
        sketch = QuantileSketch()
        sketch.add_many(shard)
        sketches.append(sketch)
    merged = sketches[0]
    for other in sketches[1:]:
        merged.merge(other)
    assert merged.count == len(data)
    data_sorted = sorted(data)
    for q in (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99):
        estimate = merged.quantile(q)
        # Rank error: how far the estimate's position in the exact
        # data is from the requested rank.  Ties need both sides.
        at_or_below = exact_rank(data_sorted, estimate)
        strictly_below = sum(1 for v in data_sorted if v < estimate) \
            / len(data_sorted)
        assert strictly_below - 0.01 <= q <= at_or_below + 0.01


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-1e3, max_value=1e3,
                  allow_nan=False, allow_infinity=False),
        min_size=3, max_size=300,
    )
)
def test_merge_is_associative_within_rank_error(data):
    third = max(1, len(data) // 3)
    a, b, c = data[:third], data[third:2 * third], data[2 * third:]

    def sketch_of(part):
        s = QuantileSketch()
        s.add_many(part)
        return s

    left = sketch_of(a).merge(sketch_of(b)).merge(sketch_of(c))
    right_inner = sketch_of(b).merge(sketch_of(c))
    right = sketch_of(a).merge(right_inner)
    assert left.count == right.count == len(data)
    data_sorted = sorted(data)
    for q in (0.25, 0.5, 0.75):
        for estimate in (left.quantile(q), right.quantile(q)):
            strictly_below = sum(1 for v in data_sorted if v < estimate) \
                / len(data_sorted)
            at_or_below = exact_rank(data_sorted, estimate)
            assert strictly_below - 0.015 <= q <= at_or_below + 0.015


# -- ExpHistogram -------------------------------------------------------------


def test_exp_histogram_buckets_and_overflow():
    hist = ExpHistogram(lo=1.0, growth=2.0, buckets=4)
    hist.add_many([0.5, 1.0, 1.5, 2.0, 3.9, 100.0, -2.0])
    assert hist.count == 7
    assert hist.counts[0] == 2          # 0.5 and -2.0 underflow
    assert hist.counts[1] == 2          # [1, 2): 1.0, 1.5
    assert hist.counts[2] == 2          # [2, 4): 2.0, 3.9
    assert hist.counts[5] == 1          # >= 16 overflow
    assert hist.bounds(0) == (-math.inf, 1.0)
    assert hist.bounds(2) == (2.0, 4.0)
    assert hist.bounds(5) == (16.0, math.inf)


def test_exp_histogram_merge_requires_matching_shape():
    a = ExpHistogram(lo=1.0, growth=2.0, buckets=4)
    b = ExpHistogram(lo=1.0, growth=2.0, buckets=4)
    a.add_many([1.0, 2.0])
    b.add_many([2.5, 50.0])
    a.merge(b)
    assert a.count == 4
    with pytest.raises(ValueError):
        a.merge(ExpHistogram(lo=0.5, growth=2.0, buckets=4))


def test_exp_histogram_round_trip():
    hist = ExpHistogram(lo=0.01, growth=4.0, buckets=8)
    hist.add_many([0.02, 1.0, 300.0])
    clone = load_sketch(hist.to_json())
    assert clone.counts == hist.counts and clone.count == 3


# -- sketch sets --------------------------------------------------------------


def test_serialize_and_load_sketch_sets_round_trip():
    stat = StatSketch()
    stat.add_many([1.0, 2.0])
    quant = QuantileSketch(compression=32)
    quant.add_many([0.1, 0.2, 0.9])
    payload = serialize_sketches({"a.stat": stat, "b.q": quant})
    loaded = load_sketches(json.loads(json.dumps(payload)))
    assert loaded["a.stat"].mean == pytest.approx(1.5)
    assert loaded["b.q"].count == 3


def test_load_sketches_skips_unknown_kinds():
    loaded = load_sketches({
        "ok": StatSketch().to_json(),
        "future": {"kind": "hyperloglog", "data": [1, 2]},
    })
    assert set(loaded) == {"ok"}


def test_merge_sketch_sets_copies_and_merges():
    a_stat = StatSketch()
    a_stat.add(1.0)
    b_stat = StatSketch()
    b_stat.add(3.0)
    b_only = StatSketch()
    b_only.add(7.0)
    target = {"shared": a_stat}
    merge_sketch_sets(target, {"shared": b_stat, "solo": b_only})
    assert target["shared"].count == 2
    assert target["solo"].count == 1
    # Copied, not aliased: mutating the source must not leak.
    b_only.add(9.0)
    assert target["solo"].count == 1
    with pytest.raises(ValueError):
        merge_sketch_sets({"x": StatSketch()}, {"x": QuantileSketch()})


# -- SketchRecorder -----------------------------------------------------------


def chunk_record(**over):
    record = {
        "kind": "chunk", "fetch_latency": 0.5, "stage_wait_s": 0.2,
        "ready_wait_s": 1.0, "masked_s": 0.0, "source": "edge",
    }
    record.update(over)
    return record


def test_recorder_folds_wide_chunk_phases():
    recorder = SketchRecorder()
    recorder.feed_wide(chunk_record())
    recorder.feed_wide(chunk_record(
        fetch_latency=2.0, ready_wait_s=-0.5, source="origin",
    ))
    recorder.feed_wide({"kind": "run", "chunks": 2})  # non-chunk: ignored
    sketches = recorder.sketches
    assert sketches["wide.fetch_latency"].count == 2
    assert sketches["wide.ready_before_fetch"].mean == pytest.approx(0.5)
    assert sketches["wide.source.edge"].count == 1
    assert sketches["wide.source.origin"].count == 1
    assert sketches["wide.fetch_latency.hist"].count == 2
    assert recorder.wide_records == 3


def test_offline_wide_fold_matches_live_sink():
    records = [chunk_record(fetch_latency=float(i)) for i in range(1, 9)]
    live = SketchRecorder()
    for record in records:
        live.feed_wide(record)
    offline = sketches_from_wide(records)
    assert serialize_sketches(offline) == live.to_json()


def test_recorder_folds_gauge_samples_from_the_bus():
    from repro.obs.bus import EventBus, Stamped
    from repro.obs.events import GaugeSample

    bus = EventBus()
    recorder = SketchRecorder().attach(bus)
    for t, v in ((0.0, 1.0), (0.5, 3.0), (1.0, 2.0)):
        bus.publish(Stamped(
            time=t, run_id="r", event=GaugeSample(gauge="x.y", value=v),
        ))
    recorder.detach()
    bus.publish(Stamped(
        time=2.0, run_id="r", event=GaugeSample(gauge="x.y", value=99.0),
    ))
    assert recorder.gauge_samples == 3
    assert recorder.sketches["gauge.x.y"].maximum == 3.0
    assert recorder.sketches["gauge.x.y.q"].count == 3
