"""The telemetry hub: fan-out, backpressure, and sim non-perturbation."""

from repro.experiments.params import MicrobenchParams
from repro.experiments.runner import run_download
from repro.obs.bus import EventBus, Stamped
from repro.obs.events import GaugeSample
from repro.obs.stream import GaugeFeed, TelemetryHub
from repro.util import MB


# ---------------------------------------------------------------------------
# Publish / subscribe basics
# ---------------------------------------------------------------------------


def test_publish_fans_out_to_every_subscriber():
    hub = TelemetryHub()
    a, b = hub.subscribe(), hub.subscribe()
    hub.publish("gauge", {"v": 1})
    hub.publish("wide", {"v": 2})
    assert a.drain() == [("gauge", {"v": 1}), ("wide", {"v": 2})]
    assert b.drain() == [("gauge", {"v": 1}), ("wide", {"v": 2})]
    assert hub.published == 2


def test_publish_without_subscribers_is_free():
    hub = TelemetryHub()
    hub.publish("gauge", {"v": 1})
    assert hub.published == 0  # not even counted: nothing listened


def test_topic_filter_restricts_delivery():
    hub = TelemetryHub()
    sub = hub.subscribe(topics={"wide"})
    hub.publish("gauge", {"v": 1})
    hub.publish("wide", {"v": 2})
    assert sub.drain() == [("wide", {"v": 2})]
    assert sub.received == 1


def test_slow_subscriber_drops_with_counters_never_blocks():
    hub = TelemetryHub()
    sub = hub.subscribe(maxsize=2)
    for i in range(5):
        hub.publish("gauge", {"i": i})  # returns immediately every time
    assert sub.received == 2
    assert sub.dropped == 3
    # Oldest items survive; the overflow was discarded.
    assert [p["i"] for _t, p in sub.drain()] == [0, 1]
    stats = hub.stats()
    assert stats["published"] == 5
    assert stats["dropped"] == 3
    assert stats["queues"][0] == {"received": 2, "dropped": 3, "depth": 0}


def test_unsubscribe_mid_run_stops_delivery():
    hub = TelemetryHub()
    keep, leave = hub.subscribe(), hub.subscribe()
    hub.publish("gauge", {"i": 0})
    leave.close()
    hub.publish("gauge", {"i": 1})
    assert len(keep.drain()) == 2
    assert len(leave.drain()) == 1
    assert hub.subscriber_count == 1


def test_close_delivers_sentinel_and_ends_iteration():
    hub = TelemetryHub()
    sub = hub.subscribe()
    hub.publish("gauge", {"i": 0})
    hub.close()
    assert list(sub) == [("gauge", {"i": 0})]
    assert sub.closed
    assert sub.get(timeout=0.01) is None


def test_subscribe_after_close_is_immediately_closed():
    hub = TelemetryHub()
    hub.close()
    sub = hub.subscribe()
    assert sub.get(timeout=0.01) is None
    assert sub.closed


def test_drain_consumes_the_close_sentinel():
    hub = TelemetryHub()
    sub = hub.subscribe()
    hub.publish("run", {"state": "started"})
    hub.close()
    assert sub.drain() == [("run", {"state": "started"})]
    assert sub.closed


# ---------------------------------------------------------------------------
# The bus -> hub gauge bridge
# ---------------------------------------------------------------------------


def test_gauge_feed_forwards_samples_with_run_context():
    bus = EventBus()
    hub = TelemetryHub()
    sub = hub.subscribe()
    feed = GaugeFeed(hub).attach(bus)
    bus.publish(Stamped(3.5, "run-x",
                        GaugeSample(gauge="staging.lead_bytes", value=42.0)))
    feed.detach()
    bus.publish(Stamped(4.0, "run-x",
                        GaugeSample(gauge="staging.lead_bytes", value=43.0)))
    assert feed.forwarded == 1
    assert sub.drain() == [("gauge", {
        "run": "run-x", "t": 3.5, "gauge": "staging.lead_bytes", "v": 42.0,
    })]
    assert not bus.active  # detach left the bus on its zero-cost path


# ---------------------------------------------------------------------------
# The determinism contract: telemetry never perturbs the simulation
# ---------------------------------------------------------------------------


def test_fixed_seed_run_is_bit_identical_with_subscribers_attached():
    params = MicrobenchParams(file_size=2 * MB)
    bare = run_download("softstage", params=params, seed=0, gauges=True)

    hub = TelemetryHub()
    # A deliberately tiny queue: the subscriber *will* drop, and the
    # run must not care.  audit=True keeps the PR 5 invariant auditor
    # on the bus throughout.
    sub = hub.subscribe(maxsize=1)
    fed = run_download(
        "softstage", params=params, seed=0, gauges=True, audit=True,
        hub=hub, wide=None,
    )
    hub.close()

    assert fed.download_time == bare.download_time
    assert fed.download.bytes_received == bare.download.bytes_received
    assert fed.download.chunks_completed == bare.download.chunks_completed
    assert fed.download.chunks_from_edge == bare.download.chunks_from_edge
    assert fed.metrics.report() == bare.metrics.report()
    # The hub really was under pressure (items were dropped), the run
    # lifecycle markers flowed, and the auditor stayed green.
    assert sub.dropped > 0
    topics = {t for t, _p in sub.drain()}
    assert "run" in topics
    assert fed.auditor.violations == []


def test_wide_records_are_identical_with_and_without_a_hub():
    params = MicrobenchParams(file_size=2 * MB)
    plain = run_download("softstage", params=params, seed=0, wide=None,
                         hub=None, gauges=True, trace_path=None)
    hub = TelemetryHub()
    hub.subscribe(maxsize=4)
    fed = run_download("softstage", params=params, seed=0, gauges=True,
                       hub=hub)
    hub.close()
    # plain had no wide sink or hub -> no records were built there;
    # rebuild the baseline with a records-only sink for comparison.
    import io

    baseline = run_download("softstage", params=params, seed=0, gauges=True,
                            wide=io.StringIO())
    assert plain.wide_records is None
    assert fed.wide_records == baseline.wide_records
    assert fed.wide_records and fed.wide_records[-1]["kind"] == "run"


def test_close_is_never_lost_to_a_full_queue():
    """The close sentinel can be dropped; the close *flag* cannot.

    Regression: a busy demo fills a slow SSE subscriber's queue, the
    sentinel hits queue.Full and vanishes, and the subscriber never
    learns the hub closed — so `repro serve` shutdown hangs past its
    grace period and the terminal frame is lost.
    """
    hub = TelemetryHub()
    sub = hub.subscribe(maxsize=2)
    for i in range(5):
        hub.publish("gauge", {"i": i})
    assert sub.dropped == 3
    hub.close()  # sentinel lost: the queue is still full
    assert [p["i"] for _t, p in sub.drain()] == [0, 1]
    assert sub.closed
    assert sub.get(timeout=0.01) is None


def test_wait_closed_returns_once_subscribers_detach():
    import threading

    hub = TelemetryHub()
    sub = hub.subscribe()
    assert hub.wait_closed(timeout=0.05) is False  # still attached
    threading.Timer(0.05, sub.close).start()
    assert hub.wait_closed(timeout=5.0) is True
