"""Parity: bus-fed metrics equal the legacy ad-hoc counters, and a
JSONL trace replays into a report identical to the live one."""

import pytest

from repro.experiments.params import MicrobenchParams
from repro.experiments.runner import run_download
from repro.obs.trace import replay_trace
from repro.util import MB

PARAMS = MicrobenchParams(file_size=4 * MB, chunk_size=1 * MB, packet_loss=0.05)


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    # gauges + audit ride along: every parity run is continuously
    # checked against the conservation invariants (a strict auditor
    # raises at the first violation) at zero extra test cost.
    trace = tmp_path_factory.mktemp("obs") / "softstage.jsonl"
    result = run_download(
        "softstage", params=PARAMS, seed=0, trace_path=str(trace),
        gauges=True, audit=True,
    )
    return result


def test_collector_counters_match_legacy_download_counters(traced_run):
    download = traced_run.download
    report = traced_run.metrics.report()
    assert report["chunks.from_edge"] == download.chunks_from_edge
    assert report.get("chunks.from_origin", 0) == download.chunks_from_origin
    assert report.get("chunks.fallbacks", 0) == download.fallbacks
    assert report["chunks.fetched"] == (
        download.chunks_from_edge + download.chunks_from_origin
    )
    assert report["handoff.executed"] == download.handoffs
    assert report["staging.signals"] == download.staging_signals


def test_coordinator_and_staging_counters_are_consistent(traced_run):
    report = traced_run.metrics.report()
    # Every signal carried at least one chunk entry.
    assert report["staging.chunks_signalled"] >= report["staging.signals"]
    # The coordinator ticked at least once per signal it raised.
    assert report["coordinator.ticks"] >= report["staging.signals"]
    # Staged responses observed by the tracker came from VNF completions.
    if "staging.responses" in report:
        assert report["staging.responses"] <= report.get("vnf.staged", 0)


def test_replay_report_is_identical_to_live_report(traced_run):
    replayed = replay_trace(traced_run.trace_path)
    assert replayed.report() == traced_run.metrics.report()


def test_live_run_passes_the_invariant_audit(traced_run):
    auditor = traced_run.auditor
    assert auditor is not None and auditor.ok
    assert auditor.events_audited > 0
    # The end-of-run double-entry check already ran inside
    # run_download; make the pass explicit here.
    assert auditor.check_report_parity(traced_run.metrics.report()) == []


def test_replayed_gauge_timelines_match_live(traced_run):
    replayed = replay_trace(traced_run.trace_path)
    live = traced_run.metrics.timelines("gauge.")
    assert live  # the flight recorder actually sampled
    assert replayed.timelines("gauge.") == live


def test_replayed_trace_passes_the_invariant_audit(traced_run):
    from repro.obs.bus import EventBus
    from repro.obs.flight import InvariantAuditor
    from repro.obs.trace import read_trace

    bus = EventBus()
    auditor = InvariantAuditor(strict=True).attach(bus)
    for stamped in read_trace(traced_run.trace_path):
        bus.publish(stamped)
    assert auditor.ok
    assert auditor.events_audited == traced_run.auditor.events_audited


def test_uninstrumented_run_attaches_nothing():
    result = run_download("softstage", params=PARAMS, seed=0)
    assert result.metrics is None
    assert result.trace_path is None


def test_xftp_run_emits_no_staging_events(tmp_path):
    trace = tmp_path / "xftp.jsonl"
    result = run_download(
        "xftp", params=PARAMS, seed=0, trace_path=str(trace)
    )
    report = result.metrics.report()
    assert "staging.signals" not in report
    assert "vnf.staged" not in report
    # Xftp drives ChunkFetcher directly (no ChunkManager), so no
    # per-chunk fetch events — but handoffs and cache traffic still show.
    assert "chunks.fetched" not in report
    assert report["handoff.executed"] == result.download.handoffs
    assert report  # link/handoff/coverage events still flow
    replayed = replay_trace(str(trace))
    assert replayed.report() == report
