"""Tests for unit helpers and validation."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.util import (
    GB,
    KB,
    MB,
    bits,
    bytes_to_mbit,
    check_fraction,
    check_non_negative,
    check_positive,
    gbps,
    kbps,
    mbit_to_bytes,
    mbps,
    ms,
    seconds_to_ms,
    us,
)


def test_size_constants():
    assert KB == 1_000
    assert MB == 1_000_000
    assert GB == 1_000_000_000


def test_rate_helpers():
    assert kbps(5) == 5_000
    assert mbps(60) == 60_000_000
    assert gbps(1) == 1_000_000_000


def test_time_helpers():
    assert ms(20) == pytest.approx(0.02)
    assert us(150) == pytest.approx(150e-6)
    assert seconds_to_ms(1.5) == 1500


def test_bit_byte_conversions():
    assert bits(10) == 80
    assert bytes_to_mbit(2 * MB) == pytest.approx(16.0)
    assert mbit_to_bytes(16.0) == pytest.approx(2 * MB)


@given(st.floats(min_value=0.001, max_value=1e9))
def test_mbit_roundtrip(value):
    assert mbit_to_bytes(bytes_to_mbit(value)) == pytest.approx(value)


def test_check_positive():
    assert check_positive("x", 1.5) == 1.5
    with pytest.raises(ConfigurationError):
        check_positive("x", 0)
    with pytest.raises(ConfigurationError):
        check_positive("x", -1)


def test_check_non_negative():
    assert check_non_negative("x", 0.0) == 0.0
    with pytest.raises(ConfigurationError):
        check_non_negative("x", -0.1)


def test_check_fraction():
    assert check_fraction("x", 0.5) == 0.5
    assert check_fraction("x", 0.0) == 0.0
    assert check_fraction("x", 1.0) == 1.0
    with pytest.raises(ConfigurationError):
        check_fraction("x", 1.01)
