"""Tests for Timeout / AnyOf / AllOf / Condition."""

import pytest

from repro.sim import AllOf, AnyOf, Simulator


def test_timeout_fires_at_delay_with_value():
    sim = Simulator()
    assert sim.run(until=sim.timeout(2.5, value="x")) == "x"
    assert sim.now == 2.5


def test_zero_delay_timeout_fires_immediately():
    sim = Simulator()
    sim.run(until=sim.timeout(0.0))
    assert sim.now == 0.0


def test_any_of_fires_on_first_event():
    sim = Simulator()

    def waiter(sim):
        early = sim.timeout(1.0, "early")
        late = sim.timeout(9.0, "late")
        fired = yield sim.any_of([early, late])
        return (sim.now, list(fired.values()))

    proc = sim.process(waiter(sim))
    assert sim.run(until=proc) == (1.0, ["early"])


def test_all_of_waits_for_every_event():
    sim = Simulator()

    def waiter(sim):
        events = [sim.timeout(d, d) for d in (3.0, 1.0, 2.0)]
        fired = yield sim.all_of(events)
        return (sim.now, sorted(fired.values()))

    proc = sim.process(waiter(sim))
    assert sim.run(until=proc) == (3.0, [1.0, 2.0, 3.0])


def test_any_of_empty_list_fires_immediately():
    sim = Simulator()

    def waiter(sim):
        fired = yield sim.any_of([])
        return fired

    proc = sim.process(waiter(sim))
    assert sim.run(until=proc) == {}


def test_all_of_empty_list_fires_immediately():
    sim = Simulator()

    def waiter(sim):
        fired = yield sim.all_of([])
        return fired

    proc = sim.process(waiter(sim))
    assert sim.run(until=proc) == {}


def test_condition_value_maps_events_to_values():
    sim = Simulator()

    def waiter(sim):
        a = sim.timeout(1.0, "va")
        b = sim.timeout(2.0, "vb")
        fired = yield sim.all_of([a, b])
        return fired[a], fired[b]

    proc = sim.process(waiter(sim))
    assert sim.run(until=proc) == ("va", "vb")


def test_condition_with_already_processed_events():
    sim = Simulator()

    def waiter(sim):
        done = sim.timeout(1.0, "done")
        yield sim.timeout(5.0)
        fired = yield sim.all_of([done])
        return (sim.now, fired[done])

    proc = sim.process(waiter(sim))
    assert sim.run(until=proc) == (5.0, "done")


def test_condition_fails_when_constituent_fails():
    sim = Simulator()

    def waiter(sim):
        bad = sim.event()
        bad.fail(RuntimeError("constituent failed"), delay=1.0)
        good = sim.timeout(5.0)
        yield sim.all_of([good, bad])

    proc = sim.process(waiter(sim))
    with pytest.raises(RuntimeError, match="constituent failed"):
        sim.run(until=proc)


def test_mixed_simulator_events_rejected():
    sim_a, sim_b = Simulator(), Simulator()
    with pytest.raises(ValueError):
        AnyOf(sim_a, [sim_a.timeout(1.0), sim_b.timeout(1.0)])


def test_any_of_result_excludes_unfired_events():
    sim = Simulator()

    def waiter(sim):
        fast = sim.timeout(1.0, "fast")
        slow = sim.timeout(50.0, "slow")
        fired = yield AnyOf(sim, [fast, slow])
        assert slow not in fired
        return fired[fast]

    proc = sim.process(waiter(sim))
    assert sim.run(until=proc) == "fast"


def test_all_of_same_timestamp():
    sim = Simulator()

    def waiter(sim):
        events = [sim.timeout(2.0, i) for i in range(4)]
        fired = yield AllOf(sim, events)
        return sorted(fired.values())

    proc = sim.process(waiter(sim))
    assert sim.run(until=proc) == [0, 1, 2, 3]
