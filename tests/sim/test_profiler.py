"""Kernel profiler: wall-clock attribution, heap counters, sampling."""

import pytest

from repro.obs.events import ProfilerSample
from repro.sim import SimProfiler, Simulator


def ticker(sim, n, delay=1.0):
    for _ in range(n):
        yield sim.timeout(delay)


def test_profiler_attributes_steps_to_handler_classes():
    sim = Simulator()
    profiler = SimProfiler(sim).install()
    sim.process(ticker(sim, 5))
    sim.run()
    profiler.uninstall()

    assert profiler.steps > 0
    keys = {row.key for row in profiler.stats()}
    assert "process:ticker" in keys
    by_key = {row.key: row for row in profiler.stats()}
    # init + 5 timeouts resume the generator; the 5th return pops the
    # Process event itself.
    assert by_key["process:ticker"].calls == 1
    assert by_key["event:timeout"].calls == 5
    assert all(row.total_s >= 0 for row in profiler.stats())


def test_heap_counters_balance():
    sim = Simulator()
    profiler = SimProfiler(sim).install()
    sim.process(ticker(sim, 3))
    sim.run()
    assert profiler.heap_pops == profiler.steps
    # Everything pushed while profiled was eventually popped.
    assert profiler.heap_pushes == profiler.heap_pops
    assert sim.heap_pushes == profiler.heap_pushes
    assert profiler.max_depth >= 1
    assert profiler.mean_depth >= 0


def test_profiler_uninstall_stops_collection():
    sim = Simulator()
    profiler = SimProfiler(sim).install()
    sim.process(ticker(sim, 1))
    sim.run()
    steps = profiler.steps
    profiler.uninstall()
    sim.process(ticker(sim, 3))
    sim.run()
    assert profiler.steps == steps


def test_only_one_profiler_at_a_time():
    sim = Simulator()
    SimProfiler(sim).install()
    with pytest.raises(RuntimeError):
        SimProfiler(sim).install()


def test_sampling_emits_deterministic_profiler_samples():
    sim = Simulator()
    seen = []
    sim.probe.bus.subscribe(ProfilerSample, seen.append)
    with SimProfiler(sim, sample_interval=2):
        sim.process(ticker(sim, 6))
        sim.run()
    assert seen, "expected ProfilerSample events"
    for stamped in seen:
        assert stamped.event.steps % 2 == 0
        assert stamped.event.depth >= 0
    # No wall-clock values leak into the event stream.
    from dataclasses import asdict

    assert set(asdict(seen[0].event)) == {"depth", "steps"}


def test_render_is_a_table():
    sim = Simulator()
    profiler = SimProfiler(sim).install()
    sim.process(ticker(sim, 2))
    sim.run()
    text = profiler.render()
    assert "handler" in text and "process:ticker" in text
    assert f"steps={profiler.steps}" in text


def test_unprofiled_kernel_has_no_profiler_attribute_set():
    sim = Simulator()
    assert sim._profiler is None
    sim.process(ticker(sim, 2))
    sim.run()
    assert sim._profiler is None
