"""Tests for generator-based processes."""

import pytest

from repro.sim import Interrupt, Process, Simulator, SimulationError


def test_process_runs_and_returns_value():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(3.0)
        return "result"

    proc = sim.process(worker(sim))
    assert sim.run(until=proc) == "result"
    assert sim.now == 3.0


def test_process_requires_a_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)


def test_process_is_alive_until_done():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1.0)

    proc = sim.process(worker(sim))
    assert proc.is_alive
    sim.run()
    assert not proc.is_alive


def test_processes_interleave_by_time():
    sim = Simulator()
    log = []

    def worker(sim, name, period):
        for _ in range(3):
            yield sim.timeout(period)
            log.append((sim.now, name))

    sim.process(worker(sim, "fast", 1.0))
    sim.process(worker(sim, "slow", 2.0))
    sim.run()
    # At t=2.0 both fire; "slow" scheduled its timeout earlier (t=0 vs
    # t=1), so FIFO tie-breaking resumes it first.
    assert log == [
        (1.0, "fast"),
        (2.0, "slow"),
        (2.0, "fast"),
        (3.0, "fast"),
        (4.0, "slow"),
        (6.0, "slow"),
    ]


def test_exception_in_process_propagates_through_run_until():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1.0)
        raise ValueError("inner failure")

    proc = sim.process(worker(sim))
    with pytest.raises(ValueError, match="inner failure"):
        sim.run(until=proc)


def test_process_can_wait_on_another_process():
    sim = Simulator()

    def inner(sim):
        yield sim.timeout(2.0)
        return 10

    def outer(sim):
        value = yield sim.process(inner(sim))
        return value * 2

    proc = sim.process(outer(sim))
    assert sim.run(until=proc) == 20


def test_interrupt_delivers_cause():
    sim = Simulator()

    def victim(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            return ("interrupted", interrupt.cause, sim.now)

    def attacker(sim, victim_proc):
        yield sim.timeout(5.0)
        victim_proc.interrupt("reason")

    victim_proc = sim.process(victim(sim))
    sim.process(attacker(sim, victim_proc))
    assert sim.run(until=victim_proc) == ("interrupted", "reason", 5.0)


def test_interrupted_process_can_keep_running():
    sim = Simulator()

    def victim(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            pass
        yield sim.timeout(1.0)
        return sim.now

    def attacker(sim, victim_proc):
        yield sim.timeout(5.0)
        victim_proc.interrupt()

    victim_proc = sim.process(victim(sim))
    sim.process(attacker(sim, victim_proc))
    assert sim.run(until=victim_proc) == 6.0


def test_interrupting_finished_process_raises():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1.0)

    proc = sim.process(worker(sim))
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_process_cannot_interrupt_itself():
    sim = Simulator()
    failures = []

    def worker(sim):
        proc = sim.active_process
        try:
            proc.interrupt()
        except SimulationError:
            failures.append(True)
        yield sim.timeout(0.0)

    sim.process(worker(sim))
    sim.run()
    assert failures == [True]


def test_stale_target_event_after_interrupt_is_ignored():
    """The original waited-on event may still fire; it must not resume us twice."""
    sim = Simulator()
    resumed = []

    def victim(sim):
        try:
            yield sim.timeout(10.0)
        except Interrupt:
            resumed.append(("interrupt", sim.now))
        yield sim.timeout(100.0)
        resumed.append(("late", sim.now))

    def attacker(sim, victim_proc):
        yield sim.timeout(5.0)
        victim_proc.interrupt()

    victim_proc = sim.process(victim(sim))
    sim.process(attacker(sim, victim_proc))
    sim.run()
    assert resumed == [("interrupt", 5.0), ("late", 105.0)]


def test_yielding_non_event_fails_the_process():
    sim = Simulator()

    def worker(sim):
        yield 42

    proc = sim.process(worker(sim))
    with pytest.raises(SimulationError, match="non-event"):
        sim.run(until=proc)


def test_yielding_already_processed_event_continues_immediately():
    sim = Simulator()

    def worker(sim):
        timeout = sim.timeout(1.0, value="early")
        yield sim.timeout(5.0)
        value = yield timeout  # already processed by now
        return (value, sim.now)

    proc = sim.process(worker(sim))
    assert sim.run(until=proc) == ("early", 5.0)


def test_active_process_visible_inside_process():
    sim = Simulator()
    seen = []

    def worker(sim):
        seen.append(sim.active_process)
        yield sim.timeout(0.0)

    proc = sim.process(worker(sim))
    sim.run()
    assert seen == [proc]
    assert sim.active_process is None


def test_process_return_none_by_default():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1.0)

    proc = sim.process(worker(sim))
    assert sim.run(until=proc) is None
