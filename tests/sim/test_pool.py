"""Tests for the kernel event free list and scheduling priorities."""

import pytest

from repro.sim import Simulator
from repro.sim.core import NORMAL, URGENT, SimulationError
from repro.sim.resources import Resource


def test_pooled_event_is_recycled_and_reused():
    sim = Simulator()
    first = sim.pooled_event("one")
    first.succeed(value=1)
    sim.run()
    # After its callbacks ran, the object went back to the free list:
    # the next acquisition hands out the same object, reset.
    second = sim.pooled_event("two")
    assert second is first
    assert second.name == "two"
    assert not second.triggered
    assert second.callbacks == []


def test_pool_counters_track_allocs_and_reuses():
    sim = Simulator()
    assert (sim.pool_allocs, sim.pool_reuses) == (0, 0)
    for _ in range(3):
        event = sim.pooled_event()
        event.succeed()
        sim.run()
    assert sim.pool_allocs == 1
    assert sim.pool_reuses == 2


def test_steps_processed_counts_every_pop():
    sim = Simulator()
    for _ in range(4):
        sim.pooled_event().succeed()
    sim.run()
    assert sim.steps_processed == 4
    assert sim.heap_pushes == 4


def test_pooled_events_carry_values():
    sim = Simulator()
    seen = []
    for index in range(3):
        event = sim.pooled_event("carry")
        event.callbacks.append(lambda ev: seen.append(ev.value))
        event.succeed(value=index, delay=float(index))
    sim.run()
    assert seen == [0, 1, 2]


def test_succeed_priority_orders_same_timestamp_events():
    sim = Simulator()
    order = []
    normal = sim.event("normal")
    normal.callbacks.append(lambda ev: order.append("normal"))
    normal.succeed(delay=1.0, priority=NORMAL)
    urgent = sim.event("urgent")
    urgent.callbacks.append(lambda ev: order.append("urgent"))
    urgent.succeed(delay=1.0, priority=URGENT)
    sim.run()
    # Scheduled after, runs first: URGENT beats NORMAL at equal time.
    assert order == ["urgent", "normal"]


def test_fail_priority_orders_same_timestamp_events():
    sim = Simulator()
    order = []
    normal = sim.event("normal")
    normal.callbacks.append(lambda ev: order.append("normal"))
    normal.succeed(delay=1.0)

    failing = sim.event("failing")
    failing.callbacks.append(lambda ev: order.append("urgent-failure"))
    failing.fail(RuntimeError("x"), delay=1.0, priority=URGENT)
    sim.run()
    assert order == ["urgent-failure", "normal"]


def test_triggered_pooled_event_rejects_double_trigger():
    sim = Simulator()
    event = sim.pooled_event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()


def test_fast_acquire_token_reuse_round_trip():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    token = resource.try_acquire()
    assert token is not None
    resource.release(token)
    again = resource.try_acquire()
    assert again is token  # recycled, not reallocated
    resource.release(again)
