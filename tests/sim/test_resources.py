"""Tests for Resource / Store / Container."""

import pytest

from repro.sim import Container, Resource, Simulator, Store


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    first, second, third = resource.request(), resource.request(), resource.request()
    assert first.triggered and second.triggered
    assert not third.triggered
    assert resource.count == 2
    assert resource.queue_length == 1


def test_resource_release_grants_next_waiter():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    first = resource.request()
    second = resource.request()
    resource.release(first)
    assert second.triggered
    assert resource.count == 1


def test_resource_context_manager_releases():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    order = []

    def worker(sim, name, hold):
        with resource.request() as req:
            yield req
            order.append((sim.now, name, "acquired"))
            yield sim.timeout(hold)
        order.append((sim.now, name, "released"))

    sim.process(worker(sim, "a", 2.0))
    sim.process(worker(sim, "b", 1.0))
    sim.run()
    assert order == [
        (0.0, "a", "acquired"),
        (2.0, "a", "released"),
        (2.0, "b", "acquired"),
        (3.0, "b", "released"),
    ]


def test_resource_fifo_ordering():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    acquired = []

    def worker(sim, name):
        with resource.request() as req:
            yield req
            acquired.append(name)
            yield sim.timeout(1.0)

    for name in "abcd":
        sim.process(worker(sim, name))
    sim.run()
    assert acquired == list("abcd")


def test_resource_cancel_removes_from_queue():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    resource.request()
    waiting = resource.request()
    waiting.cancel()
    assert resource.queue_length == 0


def test_resource_invalid_capacity():
    with pytest.raises(ValueError):
        Resource(Simulator(), capacity=0)


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("item")
    get = store.get()
    assert get.triggered and get.value == "item"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    results = []

    def consumer(sim):
        item = yield store.get()
        results.append((sim.now, item))

    def producer(sim):
        yield sim.timeout(3.0)
        store.put("late")

    sim.process(consumer(sim))
    sim.process(producer(sim))
    sim.run()
    assert results == [(3.0, "late")]


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    for item in (1, 2, 3):
        store.put(item)
    got = [store.get().value for _ in range(3)]
    assert got == [1, 2, 3]


def test_store_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    assert store.put("a").triggered
    blocked = store.put("b")
    assert not blocked.triggered
    store.get()
    assert blocked.triggered
    assert store.items == ["b"]


def test_store_get_with_predicate():
    sim = Simulator()
    store = Store(sim)
    for item in (1, 2, 3, 4):
        store.put(item)
    got = store.get(lambda x: x % 2 == 0)
    assert got.value == 2
    assert store.items == [1, 3, 4]


def test_store_predicate_waits_for_matching_item():
    sim = Simulator()
    store = Store(sim)
    results = []

    def consumer(sim):
        item = yield store.get(lambda x: x == "wanted")
        results.append((sim.now, item))

    def producer(sim):
        store.put("other")
        yield sim.timeout(2.0)
        store.put("wanted")

    sim.process(consumer(sim))
    sim.process(producer(sim))
    sim.run()
    assert results == [(2.0, "wanted")]
    assert store.items == ["other"]


def test_store_len():
    sim = Simulator()
    store = Store(sim)
    assert len(store) == 0
    store.put(1)
    assert len(store) == 1


# ---------------------------------------------------------------------------
# Container
# ---------------------------------------------------------------------------


def test_container_initial_level():
    sim = Simulator()
    container = Container(sim, capacity=10, initial=4)
    assert container.level == 4


def test_container_get_blocks_until_enough():
    sim = Simulator()
    container = Container(sim, capacity=100)
    results = []

    def consumer(sim):
        yield container.get(5)
        results.append(sim.now)

    def producer(sim):
        yield sim.timeout(1.0)
        container.put(3)
        yield sim.timeout(1.0)
        container.put(3)

    sim.process(consumer(sim))
    sim.process(producer(sim))
    sim.run()
    assert results == [2.0]
    assert container.level == pytest.approx(1.0)


def test_container_put_blocks_at_capacity():
    sim = Simulator()
    container = Container(sim, capacity=5, initial=5)
    blocked = container.put(2)
    assert not blocked.triggered
    container.get(3)
    assert blocked.triggered
    assert container.level == pytest.approx(4.0)


def test_container_rejects_bad_arguments():
    sim = Simulator()
    with pytest.raises(ValueError):
        Container(sim, capacity=0)
    with pytest.raises(ValueError):
        Container(sim, capacity=5, initial=9)
    container = Container(sim, capacity=5)
    with pytest.raises(ValueError):
        container.put(-1)
    with pytest.raises(ValueError):
        container.get(-1)


# -- try_acquire: the synchronous fast path ---------------------------------


def test_try_acquire_grants_when_free():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    one = resource.try_acquire()
    two = resource.try_acquire()
    assert one is not None and two is not None
    assert resource.count == 2
    assert resource.try_acquire() is None  # at capacity
    resource.release(one)
    assert resource.try_acquire() is not None


def test_try_acquire_refuses_while_processes_wait():
    """The fast path must not jump the FIFO queue."""
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    holder = resource.request()
    assert holder.triggered
    waiter = resource.request()
    assert not waiter.triggered
    # A slot is busy AND someone queues: no synchronous grant.
    assert resource.try_acquire() is None
    resource.release(holder)
    sim.run()
    assert waiter.triggered  # the waiter got the slot, not a fast token


def test_try_acquire_token_works_as_context_manager():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    with resource.try_acquire():
        assert resource.count == 1
    assert resource.count == 0


def test_try_acquire_is_heap_free():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    before = sim.heap_pushes
    token = resource.try_acquire()
    resource.release(token)
    assert sim.heap_pushes == before


def test_try_acquire_yieldable_resumes_immediately():
    """A process yielding a fast token continues without stalling."""
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    log = []

    def worker(sim):
        token = resource.try_acquire()
        assert token is not None
        yield token
        log.append(sim.now)
        yield sim.timeout(1.0)
        resource.release(token)
        log.append(sim.now)

    sim.process(worker(sim))
    sim.run()
    assert log == [0.0, 1.0]


def test_mixed_fast_and_queued_acquisition_stays_fifo():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    grants = []

    def fast_then_release(sim):
        token = resource.try_acquire()
        grants.append("fast")
        yield sim.timeout(2.0)
        resource.release(token)

    def queued(sim, name):
        request = resource.request()
        yield request
        grants.append(name)
        yield sim.timeout(1.0)
        resource.release(request)

    sim.process(fast_then_release(sim))
    sim.process(queued(sim, "first"))
    sim.process(queued(sim, "second"))
    sim.run()
    assert grants == ["fast", "first", "second"]
