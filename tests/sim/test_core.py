"""Tests for the event loop and Event primitives."""

import pytest

from repro.sim import Simulator, SimulationError
from repro.sim.core import Event, NORMAL, URGENT


def test_initial_time_defaults_to_zero():
    assert Simulator().now == 0.0


def test_initial_time_can_be_set():
    assert Simulator(initial_time=42.5).now == 42.5


def test_run_empty_queue_returns_none():
    sim = Simulator()
    assert sim.run() is None
    assert sim.now == 0.0


def test_run_until_timestamp_advances_clock():
    sim = Simulator()
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_run_until_past_timestamp_raises():
    sim = Simulator(initial_time=5.0)
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    for delay in (3.0, 1.0, 2.0):
        event = sim.event()
        event.callbacks.append(lambda ev, d=delay: order.append(d))
        event.succeed(delay=delay)
    sim.run()
    assert order == [1.0, 2.0, 3.0]


def test_same_time_events_fire_in_fifo_order():
    sim = Simulator()
    order = []
    for label in "abc":
        event = sim.event()
        event.callbacks.append(lambda ev, s=label: order.append(s))
        event.succeed(delay=1.0)
    sim.run()
    assert order == ["a", "b", "c"]


def test_urgent_priority_preempts_normal():
    sim = Simulator()
    order = []
    normal = sim.event()
    normal.callbacks.append(lambda ev: order.append("normal"))
    normal._ok = True
    normal._value = None
    sim.schedule(normal, delay=1.0, priority=NORMAL)
    urgent = sim.event()
    urgent.callbacks.append(lambda ev: order.append("urgent"))
    urgent._ok = True
    urgent._value = None
    sim.schedule(urgent, delay=1.0, priority=URGENT)
    sim.run()
    assert order == ["urgent", "normal"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_event_double_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)
    with pytest.raises(SimulationError):
        event.fail(RuntimeError("x"))


def test_event_value_before_trigger_raises():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(SimulationError):
        _ = event.value
    with pytest.raises(SimulationError):
        _ = event.ok


def test_fail_requires_an_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_run_until_event_returns_value():
    sim = Simulator()
    assert sim.run(until=sim.timeout(2.0, value="payload")) == "payload"
    assert sim.now == 2.0


def test_run_until_failed_event_raises():
    sim = Simulator()
    event = sim.event()
    event.fail(RuntimeError("boom"), delay=1.0)
    with pytest.raises(RuntimeError, match="boom"):
        sim.run(until=event)


def test_run_until_already_processed_event_returns_immediately():
    sim = Simulator()
    event = sim.timeout(1.0, value="v")
    sim.run()
    assert sim.run(until=event) == "v"


def test_run_until_event_that_never_fires_raises():
    sim = Simulator()
    event = sim.event()  # never triggered
    sim.timeout(1.0)
    with pytest.raises(SimulationError, match="never fired"):
        sim.run(until=event)


def test_step_on_empty_queue_raises():
    with pytest.raises(SimulationError):
        Simulator().step()


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(4.0)
    sim.timeout(2.0)
    assert sim.peek() == 2.0


def test_clock_never_goes_backwards():
    sim = Simulator()
    times = []

    def watcher(sim):
        for _ in range(5):
            yield sim.timeout(1.0)
            times.append(sim.now)

    sim.process(watcher(sim))
    sim.run()
    assert times == sorted(times)


def test_schedule_same_event_twice_rejected():
    sim = Simulator()
    event = sim.timeout(1.0)
    with pytest.raises(SimulationError):
        sim.schedule(event)


def test_callbacks_see_processed_event():
    sim = Simulator()
    seen = {}
    event = sim.timeout(1.0, value=7)
    event.callbacks.append(
        lambda ev: seen.update(processed=ev.processed, value=ev.value)
    )
    sim.run()
    assert seen == {"processed": True, "value": 7}


def test_repr_mentions_state():
    sim = Simulator()
    event = sim.event("my-event")
    assert "pending" in repr(event)
    event.succeed()
    assert "scheduled" in repr(event) or "triggered" in repr(event)
    sim.run()
    assert "processed" in repr(event)


def test_trigger_copies_outcome_from_processed_event():
    sim = Simulator()
    source = sim.event("source")
    mirror = sim.event("mirror")
    source.succeed(13)
    mirror.trigger(source)
    sim.run()
    assert mirror.value == 13


def test_trigger_from_untriggered_event_raises():
    sim = Simulator()
    source = sim.event("source")
    mirror = sim.event("mirror")
    with pytest.raises(SimulationError):
        mirror.trigger(source)
