"""Monitor/TimeSeries edge behavior and collector attach/detach contracts.

Regression coverage for the before-first-sample contract: a
:class:`~repro.sim.monitor.TimeSeries` is a step function that is
*undefined* before its first sample.  ``value_at`` and
``time_average`` used to extrapolate the first value backwards in
time; both now raise :class:`ValueError` instead.
"""

import math

import pytest

from repro.metrics.collector import MetricsCollector
from repro.obs.bus import EventBus
from repro.obs.events import CacheMiss
from repro.obs.probe import Probe
from repro.sim import Monitor, Simulator, TimeSeries


# ---------------------------------------------------------------------------
# TimeSeries: the before-first-sample contract
# ---------------------------------------------------------------------------


def _series():
    series = TimeSeries("s")
    series.record(10.0, 4.0)
    series.record(20.0, 8.0)
    return series


def test_value_at_before_first_sample_raises():
    series = _series()
    with pytest.raises(ValueError, match="no sample at or before"):
        series.value_at(9.999)


def test_value_at_exactly_first_sample():
    assert _series().value_at(10.0) == 4.0


def test_value_at_on_empty_series_raises():
    with pytest.raises(ValueError):
        TimeSeries("empty").value_at(0.0)


def test_time_average_before_first_sample_raises():
    series = _series()
    with pytest.raises(ValueError, match="precedes the first sample"):
        series.time_average(until=5.0)


def test_time_average_zero_width_window_is_first_value():
    assert _series().time_average(until=10.0) == 4.0


def test_time_average_partial_window_integrates_correctly():
    series = _series()
    # [10, 15): value 4 throughout -> mean 4.
    assert series.time_average(until=15.0) == pytest.approx(4.0)
    # [10, 20): 4 for 10s; [20, 25): 8 for 5s -> (40 + 40) / 15.
    assert series.time_average(until=25.0) == pytest.approx(80.0 / 15.0)


def test_time_average_mid_series_truncates_later_samples():
    series = TimeSeries("s")
    for t, v in ((0.0, 1.0), (10.0, 100.0), (20.0, 1000.0)):
        series.record(t, v)
    # until=12 sees 1 for 10s then 100 for 2s; the 1000 sample at
    # t=20 must not contribute.
    assert series.time_average(until=12.0) == pytest.approx(210.0 / 12.0)


def test_time_average_defaults_to_last_sample_time():
    assert _series().time_average() == pytest.approx(4.0)


# ---------------------------------------------------------------------------
# TimeSeries: bounded memory via oldest-pair folding
# ---------------------------------------------------------------------------


def test_max_samples_bounds_length_and_counts_folds():
    series = TimeSeries("s", max_samples=4)
    for t in range(100):
        series.record(float(t), float(t % 7))
    assert len(series) == 4
    assert series.folded == 96
    # The newest samples are verbatim.
    assert series.last() == float(99 % 7)
    assert series.value_at(99.0) == float(99 % 7)


def test_folding_preserves_time_average_exactly():
    exact = TimeSeries("exact")
    capped = TimeSeries("capped", max_samples=3)
    samples = [(0.0, 5.0), (1.0, 1.0), (2.5, 8.0), (4.0, 2.0),
               (7.0, 6.0), (7.5, 0.0), (11.0, 3.0)]
    for t, v in samples:
        exact.record(t, v)
        capped.record(t, v)
    # The fold keeps the step integral: any window that extends past
    # the folded prefix (which always ends at a surviving sample time)
    # averages identically.
    assert capped.time_average() == pytest.approx(exact.time_average())
    assert capped.time_average(until=20.0) == pytest.approx(
        exact.time_average(until=20.0)
    )


def test_folding_handles_equal_times_and_rejects_tiny_caps():
    series = TimeSeries("s", max_samples=2)
    series.record(1.0, 10.0)
    series.record(1.0, 20.0)
    series.record(1.0, 30.0)  # zero-width pair folds to the later value
    assert len(series) == 2
    assert series.values[0] == 20.0
    with pytest.raises(ValueError, match="max_samples"):
        TimeSeries("s", max_samples=1)


def test_uncapped_series_never_folds():
    series = _series()
    assert series.max_samples is None and series.folded == 0


# ---------------------------------------------------------------------------
# Monitor: record/len/iter/last and streaming statistics
# ---------------------------------------------------------------------------


def test_timeseries_len_iter_last_roundtrip():
    series = _series()
    assert len(series) == 2
    assert list(series) == [(10.0, 4.0), (20.0, 8.0)]
    assert series.last() == 8.0
    assert TimeSeries("e").last() is None


def test_timeseries_out_of_order_rejection_names_the_series():
    series = TimeSeries("queue")
    series.record(5.0, 1.0)
    with pytest.raises(ValueError, match="queue"):
        series.record(4.0, 2.0)
    # Equal times are legal (step function with repeated samples).
    series.record(5.0, 3.0)
    assert series.value_at(5.0) == 3.0


def test_monitor_streaming_stats():
    monitor = Monitor("m")
    monitor.observe_many([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
    assert monitor.count == 8
    assert monitor.mean == pytest.approx(5.0)
    assert monitor.minimum == 2.0
    assert monitor.maximum == 9.0
    # ddof=1 sample variance of the classic example set.
    assert monitor.variance == pytest.approx(32.0 / 7.0)
    assert monitor.stddev == pytest.approx(math.sqrt(32.0 / 7.0))


def test_monitor_empty_contract():
    monitor = Monitor("m")
    with pytest.raises(ValueError, match="no observations"):
        monitor.mean
    assert monitor.variance == 0.0
    assert "empty" in repr(monitor)


def test_monitor_single_observation():
    monitor = Monitor("m")
    monitor.observe(3.5)
    assert monitor.mean == 3.5
    assert monitor.variance == 0.0
    assert monitor.minimum == monitor.maximum == 3.5


# ---------------------------------------------------------------------------
# MetricsCollector.detach is an idempotent no-op
# ---------------------------------------------------------------------------


def _emit_one(probe):
    probe.emit(CacheMiss(store="s", cid="c"))


def test_detach_twice_is_a_noop():
    probe = Probe(Simulator())
    collector = MetricsCollector().attach(probe.bus)
    _emit_one(probe)
    collector.detach()
    collector.detach()  # second detach: no error, no effect
    _emit_one(probe)
    assert collector.counters["cache.misses"] == 1


def test_detach_without_attach_is_a_noop():
    collector = MetricsCollector()
    collector.detach()  # never attached at all
    collector.detach(EventBus())  # nor to this specific bus
    assert collector.counters == {}


def test_detach_specific_bus_leaves_others_attached():
    probe_a, probe_b = Probe(Simulator()), Probe(Simulator())
    collector = MetricsCollector().attach(probe_a.bus).attach(probe_b.bus)
    collector.detach(probe_a.bus)
    collector.detach(probe_a.bus)  # again: still a no-op
    _emit_one(probe_a)
    _emit_one(probe_b)
    assert collector.counters["cache.misses"] == 1
    collector.detach()
    _emit_one(probe_b)
    assert collector.counters["cache.misses"] == 1
