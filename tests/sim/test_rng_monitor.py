"""Tests for RandomStreams, Monitor and TimeSeries."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim import Monitor, RandomStreams, TimeSeries


# ---------------------------------------------------------------------------
# RandomStreams
# ---------------------------------------------------------------------------


def test_same_seed_same_name_same_sequence():
    a = RandomStreams(7).stream("loss")
    b = RandomStreams(7).stream("loss")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_give_independent_sequences():
    streams = RandomStreams(7)
    a = [streams.stream("loss").random() for _ in range(5)]
    b = [streams.stream("mobility").random() for _ in range(5)]
    assert a != b


def test_creation_order_does_not_matter():
    first = RandomStreams(3)
    first.stream("x")
    value_y_after_x = first.stream("y").random()
    second = RandomStreams(3)
    value_y_alone = second.stream("y").random()
    assert value_y_after_x == value_y_alone


def test_different_seeds_differ():
    a = RandomStreams(1).stream("s").random()
    b = RandomStreams(2).stream("s").random()
    assert a != b


def test_stream_is_cached():
    streams = RandomStreams(0)
    assert streams.stream("a") is streams.stream("a")


def test_spawn_children_are_independent():
    parent = RandomStreams(5)
    child_a = parent.spawn("a")
    child_b = parent.spawn("b")
    assert child_a.root_seed != child_b.root_seed
    assert child_a.stream("s").random() != child_b.stream("s").random()


@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
def test_spawn_deterministic(seed, name):
    assert RandomStreams(seed).spawn(name).root_seed == RandomStreams(seed).spawn(name).root_seed


# ---------------------------------------------------------------------------
# Monitor
# ---------------------------------------------------------------------------


def test_monitor_mean_min_max():
    monitor = Monitor("m")
    monitor.observe_many([1.0, 2.0, 3.0, 4.0])
    assert monitor.count == 4
    assert monitor.mean == pytest.approx(2.5)
    assert monitor.minimum == 1.0
    assert monitor.maximum == 4.0


def test_monitor_variance_matches_sample_variance():
    monitor = Monitor()
    data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
    monitor.observe_many(data)
    mean = sum(data) / len(data)
    expected = sum((x - mean) ** 2 for x in data) / (len(data) - 1)
    assert monitor.variance == pytest.approx(expected)
    assert monitor.stddev == pytest.approx(math.sqrt(expected))


def test_monitor_empty_raises():
    with pytest.raises(ValueError):
        _ = Monitor().mean


def test_monitor_single_observation_zero_variance():
    monitor = Monitor()
    monitor.observe(3.0)
    assert monitor.variance == 0.0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=50))
def test_monitor_mean_matches_batch_mean(values):
    monitor = Monitor()
    monitor.observe_many(values)
    assert monitor.mean == pytest.approx(sum(values) / len(values), rel=1e-9, abs=1e-6)


# ---------------------------------------------------------------------------
# TimeSeries
# ---------------------------------------------------------------------------


def test_timeseries_records_in_order():
    series = TimeSeries("ts")
    series.record(0.0, 1.0)
    series.record(2.0, 3.0)
    assert list(series) == [(0.0, 1.0), (2.0, 3.0)]
    assert len(series) == 2
    assert series.last() == 3.0


def test_timeseries_rejects_time_reversal():
    series = TimeSeries()
    series.record(5.0, 1.0)
    with pytest.raises(ValueError):
        series.record(4.0, 2.0)


def test_timeseries_time_average_step_function():
    series = TimeSeries()
    series.record(0.0, 10.0)
    series.record(5.0, 20.0)  # value 10 for 5s, then 20
    assert series.time_average(until=10.0) == pytest.approx(15.0)


def test_timeseries_time_average_single_sample():
    series = TimeSeries()
    series.record(1.0, 42.0)
    assert series.time_average() == 42.0


def test_timeseries_time_average_empty_raises():
    with pytest.raises(ValueError):
        TimeSeries().time_average()


def test_timeseries_value_at():
    series = TimeSeries()
    series.record(0.0, 1.0)
    series.record(10.0, 2.0)
    series.record(20.0, 3.0)
    assert series.value_at(0.0) == 1.0
    assert series.value_at(9.99) == 1.0
    assert series.value_at(10.0) == 2.0
    assert series.value_at(100.0) == 3.0
    with pytest.raises(ValueError):
        series.value_at(-1.0)


def test_timeseries_last_empty():
    assert TimeSeries().last() is None
