"""Integration tests: chunk fetches over a small packet-level network.

Topology:  server -- core router -- edge router (cache) -- client
"""

import pytest

from repro.net import Host, Link, Network
from repro.net.loss import BernoulliLoss
from repro.sim import RandomStreams, Simulator
from repro.transport import (
    KERNEL_TCP,
    TransportEndpoint,
    XIA_CHUNK,
    CacheDaemon,
    ChunkFetcher,
)
from repro.transport.xchunkp import XChunkPClient
from repro.transport.xstream import XstreamClient
from repro.util import MB, mbps, ms
from repro.xcache import ContentPublisher, ContentStore
from repro.xia import HID, NID
from repro.xia.router import XIARouter


class SmallTopology:
    """server -- core -- edge(cache) -- client, all wired."""

    def __init__(self, seed=0, internet_loss=0.0, config=XIA_CHUNK):
        self.sim = Simulator()
        streams = RandomStreams(seed)
        self.net = Network(self.sim, streams)

        self.server = self.net.add_device(
            Host(self.sim, "server", HID("server"))
        )
        self.core = self.net.add_device(
            XIARouter(self.sim, "core", HID("core"), NID("core-net"))
        )
        self.edge = self.net.add_device(
            XIARouter(
                self.sim, "edge", HID("edge"), NID("edge-net"),
                content_store=ContentStore(),
            )
        )
        self.client = self.net.add_device(
            Host(self.sim, "client", HID("client"))
        )

        loss = (
            BernoulliLoss(internet_loss, streams.stream("internet-loss"))
            if internet_loss
            else None
        )
        self.net.connect(
            self.server, self.core,
            Link(self.sim, "server-core", mbps(100), ms(5),
                 loss_a_to_b=loss, loss_b_to_a=loss),
        )
        self.net.connect(
            self.core, self.edge,
            Link(self.sim, "core-edge", mbps(100), ms(1)),
        )
        self.net.connect(
            self.edge, self.client,
            Link(self.sim, "edge-client", mbps(50), ms(1)),
        )
        self.net.register_network(self.core.nid, self.core)
        self.net.register_network(self.edge.nid, self.edge)
        # The server lives behind the core router's network.
        self.net.build_static_routes()
        # Client is wired here: make its HID routable at the edge.
        self.edge.engine.set_hid_route(
            self.client.hid, self.net.port_toward(self.edge, self.client)
        )
        self.client.port_nids[self.client.port(0)] = self.edge.nid

        # Publish content at the origin.
        self.origin_store = ContentStore()
        self.publisher = ContentPublisher(
            self.origin_store, self.core.nid, self.server.hid
        )
        self.server_endpoint = TransportEndpoint(self.sim, self.server, config)
        self.daemon = CacheDaemon(
            self.sim, self.server, self.origin_store, self.server_endpoint,
            nid=self.core.nid,
        )
        self.client_endpoint = TransportEndpoint(self.sim, self.client, config)

        # Edge cache daemon (for staged-chunk tests).
        self.edge_endpoint = TransportEndpoint(self.sim, self.edge, config)
        self.edge_daemon = CacheDaemon(
            self.sim, self.edge, self.edge.content_store, self.edge_endpoint
        )


def run_fetch(topo, address):
    fetcher = ChunkFetcher(topo.sim, topo.client_endpoint)
    process = topo.sim.process(fetcher.fetch(address))
    return topo.sim.run(until=process)


def test_fetch_single_chunk_from_origin():
    topo = SmallTopology()
    content = topo.publisher.publish_synthetic("file", 200_000, 200_000)
    outcome = run_fetch(topo, content.addresses[0])
    assert outcome.bytes_received == 200_000
    assert outcome.served_by_hid == topo.server.hid
    assert outcome.duration > 0
    assert outcome.request_attempts == 1


def test_fetch_served_from_edge_cache_when_staged():
    topo = SmallTopology()
    content = topo.publisher.publish_synthetic("file", 200_000, 200_000)
    # Stage the chunk at the edge cache.
    topo.edge.content_store.put(content.chunks[0])
    outcome = run_fetch(topo, content.addresses[0])
    assert outcome.served_by_hid == topo.edge.hid
    assert outcome.bytes_received == 200_000


def test_edge_fetch_is_faster_than_origin_fetch():
    origin_topo = SmallTopology()
    content = origin_topo.publisher.publish_synthetic("file", 1 * MB, 1 * MB)
    origin_outcome = run_fetch(origin_topo, content.addresses[0])

    edge_topo = SmallTopology()
    content2 = edge_topo.publisher.publish_synthetic("file", 1 * MB, 1 * MB)
    edge_topo.edge.content_store.put(content2.chunks[0])
    edge_outcome = run_fetch(edge_topo, content2.addresses[0])

    assert edge_outcome.duration < origin_outcome.duration


def test_fetch_completes_under_heavy_loss():
    topo = SmallTopology(internet_loss=0.10)
    content = topo.publisher.publish_synthetic("file", 500_000, 500_000)
    outcome = run_fetch(topo, content.addresses[0])
    assert outcome.bytes_received == 500_000


def test_fetch_unpublished_chunk_times_out():
    from repro.errors import TransportError
    from repro.xcache import Chunk
    from repro.xia.dag import DagAddress

    topo = SmallTopology()
    ghost = Chunk.synthetic("ghost", 0, 1000)
    address = DagAddress.content(ghost.cid, topo.core.nid, topo.server.hid)
    fetcher = ChunkFetcher(
        topo.sim,
        topo.client_endpoint,
        config=XIA_CHUNK.with_(request_retries=2, request_timeout=0.2),
    )
    process = topo.sim.process(fetcher.fetch(address))
    with pytest.raises(TransportError):
        topo.sim.run(until=process)


def test_xchunkp_download_whole_content():
    topo = SmallTopology()
    content = topo.publisher.publish_synthetic("movie", 2 * MB, 500_000)
    client = XChunkPClient(topo.sim, topo.client_endpoint, XIA_CHUNK)
    process = topo.sim.process(client.download(content))
    result = topo.sim.run(until=process)
    assert result.bytes_received == 2 * MB
    assert len(result.chunk_outcomes) == 4
    assert result.throughput_bps > mbps(1)


def test_xstream_download():
    topo = SmallTopology()
    content = topo.publisher.publish_synthetic("blob", 2 * MB, 2 * MB)
    client = XstreamClient(topo.sim, topo.client_endpoint, XIA_CHUNK)
    process = topo.sim.process(client.download(content.addresses[0]))
    result = topo.sim.run(until=process)
    assert result.bytes_received == 2 * MB
    assert result.throughput_bps > mbps(1)


def test_tcp_config_faster_than_xia_on_clean_path():
    def run(config):
        topo = SmallTopology(config=config)
        content = topo.publisher.publish_synthetic("blob", 2 * MB, 2 * MB)
        client = XstreamClient(topo.sim, topo.client_endpoint, config)
        process = topo.sim.process(client.download(content.addresses[0]))
        return topo.sim.run(until=process)

    tcp = run(KERNEL_TCP)
    xia = run(XIA_CHUNK)
    assert tcp.throughput_bps > xia.throughput_bps


def test_duplicate_requests_do_not_double_serve():
    topo = SmallTopology()
    content = topo.publisher.publish_synthetic("file", 100_000, 100_000)
    fetcher = ChunkFetcher(
        topo.sim,
        topo.client_endpoint,
        config=XIA_CHUNK.with_(request_timeout=0.001),  # hammer retries
    )
    process = topo.sim.process(fetcher.fetch(content.addresses[0]))
    outcome = topo.sim.run(until=process)
    assert outcome.bytes_received == 100_000
    assert topo.daemon.requests_served == 1


def test_packet_trace_goes_through_routers():
    topo = SmallTopology()
    content = topo.publisher.publish_synthetic("file", 50_000, 50_000)
    outcome = run_fetch(topo, content.addresses[0])
    assert outcome.bytes_received == 50_000
    # The edge and core forwarded packets both ways.
    assert topo.edge.forwarded_packets > 0
    assert topo.core.forwarded_packets > 0
