"""Tests for the analytic flow model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.transport import FlowModel, PathCharacteristics, XIA_STREAM, KERNEL_TCP
from repro.transport.flowmodel import effective_wireless_goodput, residual_loss
from repro.util import MB, mbps, ms


MODEL = FlowModel(XIA_STREAM)
CLEAN = PathCharacteristics(bottleneck_bps=mbps(100), rtt=ms(2))


def test_steady_rate_bounded_by_bottleneck_efficiency():
    rate = MODEL.steady_rate(CLEAN)
    efficiency = XIA_STREAM.mss_bytes / XIA_STREAM.segment_bytes
    assert rate <= mbps(100) * efficiency + 1
    # The daemon pacing cap binds below 100 Mbps for Xstream.
    assert rate == pytest.approx(XIA_STREAM.mss_bytes * 8 / XIA_STREAM.per_packet_cost)


def test_steady_rate_loss_limited_on_long_paths():
    lossy = PathCharacteristics(bottleneck_bps=mbps(1000), rtt=ms(50), loss_rate=0.01)
    clean = PathCharacteristics(bottleneck_bps=mbps(1000), rtt=ms(50))
    assert MODEL.steady_rate(lossy) < MODEL.steady_rate(clean)


def test_transfer_time_zero_bytes():
    assert MODEL.transfer_time(0, CLEAN) == 0.0


def test_transfer_time_increases_with_bytes():
    small = MODEL.transfer_time(1 * MB, CLEAN)
    large = MODEL.transfer_time(10 * MB, CLEAN)
    assert large > small
    # Large transfers approach the steady rate.
    assert 10 * MB * 8 / large == pytest.approx(MODEL.steady_rate(CLEAN), rel=0.1)


def test_small_transfer_dominated_by_slow_start():
    tiny = MODEL.transfer_time(10_000, CLEAN)
    # 10 kB in slow start from cwnd=2: a few RTTs, far from line rate.
    assert tiny > ms(2)
    assert 10_000 * 8 / tiny < 0.5 * MODEL.steady_rate(CLEAN)


def test_request_and_verify_costs_added():
    base = MODEL.transfer_time(1 * MB, CLEAN)
    with_request = MODEL.transfer_time(1 * MB, CLEAN, include_request=True)
    assert with_request == pytest.approx(base + CLEAN.rtt)
    chunk_model = FlowModel(XIA_STREAM.with_(verify_rate=50e6))
    with_verify = chunk_model.transfer_time(1 * MB, CLEAN, include_verify=True)
    assert with_verify == pytest.approx(
        chunk_model.transfer_time(1 * MB, CLEAN) + 1 * MB / 50e6
    )


def test_bytes_in_inverts_transfer_time():
    for num_bytes in (50_000, 1 * MB, 8 * MB):
        duration = MODEL.transfer_time(num_bytes, CLEAN)
        recovered = MODEL.bytes_in(duration, CLEAN)
        assert recovered == pytest.approx(num_bytes, rel=0.01)


def test_bytes_in_zero_duration():
    assert MODEL.bytes_in(0.0, CLEAN) == 0.0


@settings(max_examples=30)
@given(st.floats(min_value=1e4, max_value=5e7))
def test_transfer_time_monotone_in_bytes(num_bytes):
    t1 = MODEL.transfer_time(num_bytes, CLEAN)
    t2 = MODEL.transfer_time(num_bytes * 1.5, CLEAN)
    assert t2 > t1


def test_path_join_composes():
    wireless = PathCharacteristics(mbps(20), ms(3), loss_rate=0.004)
    internet = PathCharacteristics(mbps(60), ms(20), loss_rate=0.001)
    joined = wireless.joined(internet)
    assert joined.bottleneck_bps == mbps(20)
    assert joined.rtt == pytest.approx(ms(23))
    assert joined.loss_rate == pytest.approx(1 - 0.996 * 0.999)


def test_tcp_config_faster_than_xia_flow_model():
    tcp = FlowModel(KERNEL_TCP)
    assert tcp.steady_rate(CLEAN) > MODEL.steady_rate(CLEAN)


def test_effective_wireless_goodput_decreases_with_loss():
    clean = effective_wireless_goodput(mbps(65), 0.0)
    lossy = effective_wireless_goodput(mbps(65), 0.3)
    assert lossy < clean
    assert lossy > 0.5 * clean  # ARQ costs airtime, not collapse


def test_effective_wireless_goodput_validates():
    with pytest.raises(ConfigurationError):
        effective_wireless_goodput(mbps(65), 1.0)


def test_residual_loss_iid_bound():
    assert residual_loss(0.3, max_retries=6) == pytest.approx(0.3**7)
    assert residual_loss(0.0) == 0.0
