"""Packet recycling: free-list lifecycle, poison mode, metric parity.

The free list mirrors ``Simulator.pooled_event`` (DESIGN.md §10):
transports acquire DATA/ACK/request packets and release them in their
terminal receive handlers.  Recycling must be invisible to everything
``packet_id``-independent, and poison mode must turn any
use-after-release into a loud :class:`PacketLifecycleError`.
"""

import pytest

from repro.errors import PacketLifecycleError
from repro.experiments.params import MicrobenchParams
from repro.experiments.runner import run_download
from repro.xia import DagAddress, HID, NID
from repro.xia import packet as packet_mod
from repro.xia.packet import Packet, PacketType


@pytest.fixture(autouse=True)
def _restore_pool_flags():
    """Every test leaves the module-level pool configuration pristine."""
    yield
    packet_mod.set_packet_poison(False)
    packet_mod.set_packet_pool(True)


def _dag():
    return DagAddress.host(HID(b"h"), NID(b"n"))


def _acquire(**kwargs):
    return Packet.acquire(
        PacketType.DATA, dst=_dag(), src=_dag(), payload={"x": 1}, **kwargs
    )


# ---------------------------------------------------------------------------
# Free-list mechanics
# ---------------------------------------------------------------------------


def test_release_recycles_and_acquire_reuses():
    first = _acquire(seq=7)
    first_id = first.packet_id
    first.release()
    second = _acquire(seq=9)
    assert second is first  # same object back from the free list
    assert second.packet_id != first_id  # but a fresh identity
    assert second.seq == 9 and second.visited_mask == 0
    assert second.hop_count == 0
    second.release()


def test_plain_constructor_packets_never_recycle():
    packet = Packet(PacketType.DATA, dst=_dag(), src=_dag())
    packet.release()  # no-op: the caller keeps full ownership
    packet.release()
    assert packet.dst is not None


def test_double_release_of_pooled_packet_raises():
    packet = _acquire()
    packet.release()
    with pytest.raises(PacketLifecycleError, match="released twice"):
        packet.release()


def test_pool_disable_drops_releases_to_gc():
    packet_mod.set_packet_pool(False)
    packet = _acquire()
    packet.release()
    second = _acquire()
    assert second is not packet


# ---------------------------------------------------------------------------
# Poison mode
# ---------------------------------------------------------------------------


def test_poisoned_packet_raises_on_any_touch():
    packet_mod.set_packet_poison(True)
    packet = _acquire()
    packet.release()
    with pytest.raises(PacketLifecycleError, match="use-after-release"):
        packet.dst.intent
    with pytest.raises(PacketLifecycleError):
        packet.payload["x"]
    assert packet.ptype is PacketType.DATA  # demux still works (by design)


def test_transport_touching_released_packet_raises():
    """A transport handler fed an already-released packet fails at its
    first field read instead of acting on recycled state."""
    from repro.net.nodes import Host
    from repro.sim import Simulator
    from repro.transport.config import XIA_STREAM
    from repro.transport.reliable import TransportEndpoint

    packet_mod.set_packet_poison(True)
    sim = Simulator()
    host = Host(sim, "h", HID(b"h"))
    endpoint = TransportEndpoint(sim, host, XIA_STREAM)
    receiver = endpoint.open_receiver(1)
    stale = _acquire(session_id=1)
    stale.release()
    with pytest.raises(PacketLifecycleError):
        receiver.on_packet(stale, None)


def test_poison_quarantines_instead_of_recycling():
    packet_mod.set_packet_poison(True)
    packet = _acquire()
    packet.release()
    replacement = _acquire()
    assert replacement is not packet
    replacement.release()


def test_end_to_end_download_is_poison_clean():
    """No transport in the full SoftStage stack touches a packet after
    releasing it: a whole staging download survives poison mode."""
    packet_mod.set_packet_poison(True)
    result = run_download(
        "softstage", params=MicrobenchParams(file_size=256 * 1024), seed=0
    )
    assert result.download.completed


# ---------------------------------------------------------------------------
# Parity: recycling is invisible to packet_id-independent metrics
# ---------------------------------------------------------------------------


def test_fixed_seed_parity_with_and_without_recycling():
    # Both sides run under the strict invariant auditor: recycling
    # must stay invisible *and* conservation-clean.
    params = MicrobenchParams(file_size=512 * 1024)
    with_pool = run_download("softstage", params=params, seed=11, audit=True)
    packet_mod.set_packet_pool(False)
    without_pool = run_download(
        "softstage", params=params, seed=11, audit=True
    )

    assert with_pool.auditor.ok and without_pool.auditor.ok
    for attr in ("download_time",):
        assert getattr(with_pool, attr) == getattr(without_pool, attr)
    a, b = with_pool.download, without_pool.download
    for attr in (
        "bytes_received",
        "chunks_completed",
        "chunks_from_edge",
        "chunks_from_origin",
        "fallbacks",
        "handoffs",
    ):
        assert getattr(a, attr) == getattr(b, attr), attr
    # The audited event streams agree event-for-event, too.
    assert (
        with_pool.auditor.event_counts == without_pool.auditor.event_counts
    )
