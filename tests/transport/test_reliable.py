"""Unit tests for the reliable transport's congestion machinery.

These drive a sender/receiver pair over a tiny two-host network so the
protocol state can be inspected directly.
"""

import pytest

from repro.net import Host, Link, Network
from repro.net.loss import BernoulliLoss
from repro.sim import RandomStreams, Simulator
from repro.transport import TransportEndpoint, XIA_STREAM
from repro.transport.config import TransportConfig
from repro.transport.reliable import new_session_id
from repro.util import mbps, ms
from repro.xia import DagAddress, HID


CONFIG = XIA_STREAM.with_(per_packet_cost=0.0)


class Pair:
    """Two hosts on one link, with endpoints."""

    def __init__(self, loss=0.0, bandwidth=mbps(50), delay=ms(2), seed=3,
                 config: TransportConfig = CONFIG):
        self.sim = Simulator()
        net = Network(self.sim, RandomStreams(seed))
        self.a = net.add_device(Host(self.sim, "a", HID("a")))
        self.b = net.add_device(Host(self.sim, "b", HID("b")))
        loss_model = (
            BernoulliLoss(loss, RandomStreams(seed).stream("l"))
            if loss else None
        )
        link = Link(self.sim, "ab", bandwidth, delay,
                    loss_a_to_b=loss_model, loss_b_to_a=None)
        net.connect(self.a, self.b, link)
        self.ep_a = TransportEndpoint(self.sim, self.a, config)
        self.ep_b = TransportEndpoint(self.sim, self.b, config)

    def transfer(self, total_bytes, config=None):
        session = new_session_id()
        receiver = self.ep_b.open_receiver(session, config=config)
        sender = self.ep_a.start_send(
            session,
            dst=DagAddress.host(self.b.hid),
            src=DagAddress.host(self.a.hid),
            total_bytes=total_bytes,
            config=config,
        )
        self.sim.run(until=receiver.done)
        # Let the final ACKs drain back so the sender completes too.
        if not sender.done.triggered:
            self.sim.run(until=sender.done)
        return sender, receiver


def test_transfer_delivers_every_byte():
    pair = Pair()
    sender, receiver = pair.transfer(100_000)
    assert receiver.bytes_received == 100_000
    assert receiver.completed
    assert sender.completed


def test_transfer_with_loss_still_completes():
    pair = Pair(loss=0.05)
    sender, receiver = pair.transfer(300_000)
    assert receiver.bytes_received == 300_000
    assert sender.retransmissions > 0


def test_lossless_transfer_has_no_retransmissions():
    pair = Pair()
    sender, receiver = pair.transfer(500_000)
    assert sender.retransmissions == 0
    assert sender.timeouts == 0
    assert receiver.duplicate_segments == 0


def test_rtt_estimator_converges_to_path_rtt():
    pair = Pair(delay=ms(10))
    sender, _ = pair.transfer(500_000)
    assert sender.srtt == pytest.approx(0.02, rel=0.5)  # ~2 * 10 ms


def test_slow_start_grows_cwnd():
    pair = Pair()
    sender, _ = pair.transfer(500_000)
    assert sender.cwnd > CONFIG.initial_cwnd


def test_throughput_bounded_by_link():
    pair = Pair(bandwidth=mbps(10), delay=ms(1))
    started = pair.sim.now
    _, receiver = pair.transfer(1_000_000)
    duration = pair.sim.now - started
    throughput = 1_000_000 * 8 / duration
    assert throughput < mbps(10)
    assert throughput > mbps(5)


def test_mathis_scaling_under_loss():
    """Halving RTT roughly doubles loss-limited throughput."""
    def rate(delay):
        pair = Pair(loss=0.02, delay=delay, bandwidth=mbps(500))
        started = pair.sim.now
        pair.transfer(1_000_000)
        return 1_000_000 * 8 / (pair.sim.now - started)

    slow = rate(ms(20))
    fast = rate(ms(5))
    assert fast > 2.0 * slow


def test_duplicate_data_is_acked_not_recounted():
    pair = Pair()
    sender, receiver = pair.transfer(50_000)
    before = receiver.bytes_received
    # Simulate a stale retransmission arriving after completion.
    from repro.xia.packet import Packet, PacketType

    stale = Packet(
        PacketType.DATA,
        dst=DagAddress.host(pair.b.hid),
        src=DagAddress.host(pair.a.hid),
        payload={"total_segments": sender.total_segments,
                 "payload_bytes": 1290},
        size_bytes=1514,
        session_id=sender.session_id,
        seq=0,
    )
    receiver._on_data(stale)
    assert receiver.bytes_received == before


def test_partial_final_segment_sizes():
    pair = Pair()
    odd_size = CONFIG.mss_bytes * 3 + 17
    sender, receiver = pair.transfer(odd_size)
    assert sender.total_segments == 4
    assert receiver.bytes_received == odd_size


def test_sender_idempotent_start():
    pair = Pair()
    session = new_session_id()
    receiver = pair.ep_b.open_receiver(session)
    kwargs = dict(
        dst=DagAddress.host(pair.b.hid),
        src=DagAddress.host(pair.a.hid),
        total_bytes=10_000,
    )
    first = pair.ep_a.start_send(session, **kwargs)
    second = pair.ep_a.start_send(session, **kwargs)
    assert first is second
    pair.sim.run(until=receiver.done)


def test_session_ids_unique():
    assert new_session_id() != new_session_id()


def test_redirect_restarts_toward_new_destination():
    pair = Pair()
    session = new_session_id()
    receiver = pair.ep_b.open_receiver(session)
    sender = pair.ep_a.start_send(
        session,
        dst=DagAddress.host(HID("elsewhere")),  # unroutable at first
        src=DagAddress.host(pair.a.hid),
        total_bytes=50_000,
    )
    pair.sim.run(until=5.0)
    assert not receiver.started.triggered
    sender.redirect(DagAddress.host(pair.b.hid))
    pair.sim.run(until=receiver.done)
    assert receiver.bytes_received == 50_000
