"""Property-based tests: transport completeness under random conditions."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.net import Host, Link, Network
from repro.net.loss import BernoulliLoss
from repro.sim import RandomStreams, Simulator
from repro.transport import TransportEndpoint, XIA_STREAM
from repro.transport.reliable import new_session_id
from repro.util import mbps, ms
from repro.xia import DagAddress, HID


@settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    total_bytes=st.integers(min_value=1, max_value=400_000),
    loss=st.floats(min_value=0.0, max_value=0.15),
    delay_ms=st.floats(min_value=0.1, max_value=30.0),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_every_byte_arrives_exactly_once(total_bytes, loss, delay_ms, seed):
    """Property: for any size/loss/RTT/seed, the receiver reassembles
    exactly the sent bytes — no loss, no duplication, in order."""
    sim = Simulator()
    net = Network(sim, RandomStreams(seed))
    a = net.add_device(Host(sim, "a", HID("a")))
    b = net.add_device(Host(sim, "b", HID("b")))
    loss_model = (
        BernoulliLoss(loss, RandomStreams(seed).stream("loss"))
        if loss > 0 else None
    )
    net.connect(a, b, Link(sim, "ab", mbps(80), ms(delay_ms),
                           loss_a_to_b=loss_model))
    config = XIA_STREAM.with_(per_packet_cost=0.0, min_rto=0.05)
    ep_a = TransportEndpoint(sim, a, config)
    ep_b = TransportEndpoint(sim, b, config)

    session = new_session_id()
    receiver = ep_b.open_receiver(session)
    ep_a.start_send(
        session,
        dst=DagAddress.host(b.hid),
        src=DagAddress.host(a.hid),
        total_bytes=total_bytes,
    )
    sim.run(until=receiver.done)
    assert receiver.bytes_received == total_bytes
    assert receiver.completed
    assert not receiver._out_of_order
