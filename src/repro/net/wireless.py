"""802.11-style wireless links.

The wireless segment differs from a wired pipe in three ways that
matter to the paper's evaluation:

1. **MAC efficiency** — contention, interframe spaces and ACKs mean the
   application-visible rate is well below the PHY rate.  We take an
   *effective MAC rate* (e.g. ~30 Mbps for the paper's 802.11n setup)
   as the serialization bandwidth.
2. **Link-layer ARQ** — losses are mostly recovered by retransmission,
   which costs airtime (reducing throughput) and adds delay jitter
   instead of showing up as end-to-end loss...
3. **Residual loss** — ...except during deep fades, when all retries
   fail and the loss *escapes* to the transport.  With a bursty
   (Gilbert-Elliott) channel this happens at a meaningful rate, which
   is exactly why retransmitting "from a closer location" (the edge
   cache) beats retransmitting across the Internet (paper §IV-C,
   Fig. 6(d)).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.net.link import Link, LinkDirection
from repro.net.loss import LossModel
from repro.obs.events import LinkRetransmission
from repro.util.validation import check_non_negative, check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.xia.packet import Packet


class WirelessDirection(LinkDirection):
    """A link direction with per-packet ARQ."""

    def __init__(
        self,
        *args,
        max_retries: int = 4,
        retry_backoff: float = 0.5e-3,
        frame_overhead: float = 150e-6,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.max_retries = int(check_non_negative("max_retries", max_retries))
        self.retry_backoff = check_non_negative("retry_backoff", retry_backoff)
        #: Fixed per-frame MAC cost (DIFS + preamble + SIFS + MAC ACK).
        self.frame_overhead = check_non_negative("frame_overhead", frame_overhead)
        self.retransmissions = 0
        self.residual_drops = 0
        self._pending_attempts = 0

    def airtime(self, packet: "Packet") -> float:
        """Sample ARQ attempts now; airtime covers all of them.

        The attempt count is stashed so :meth:`sample_loss` can report
        whether the packet ultimately got through.
        """
        attempts = 1
        now = self.sim.now
        while self.loss.dropped(now) and attempts <= self.max_retries:
            attempts += 1
        self._pending_attempts = attempts
        single = packet.size_bytes * 8 / self.bandwidth_bps + self.frame_overhead
        retries = attempts - 1
        self.retransmissions += retries
        if retries:
            probe = self._probe
            if probe.active:
                probe.emit(
                    LinkRetransmission(link=self.source.name, retries=retries)
                )
        return attempts * single + retries * self.retry_backoff

    def sample_loss(self, packet: "Packet") -> bool:
        attempts, self._pending_attempts = self._pending_attempts, 0
        if attempts > self.max_retries:
            self.residual_drops += 1
            return True
        return False

    @property
    def residual_loss_estimate(self) -> float:
        """Observed fraction of packets dropped after all retries."""
        if self.stats.sent_packets == 0:
            return 0.0
        return self.residual_drops / self.stats.sent_packets


class WirelessLink(Link):
    """A full-duplex wireless link (client <-> access point)."""

    direction_class = WirelessDirection

    def __init__(
        self,
        sim,
        name: str,
        mac_rate_bps: float,
        delay: float = 1.0e-3,
        loss_up: Optional[LossModel] = None,
        loss_down: Optional[LossModel] = None,
        max_retries: int = 4,
        retry_backoff: float = 0.5e-3,
        frame_overhead: float = 150e-6,
        queue_bytes: float = 256_000,
    ) -> None:
        check_positive("mac_rate_bps", mac_rate_bps)
        super().__init__(
            sim,
            name,
            bandwidth_bps=mac_rate_bps,
            delay=delay,
            loss_a_to_b=loss_up,
            loss_b_to_a=loss_down,
            queue_bytes=queue_bytes,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            frame_overhead=frame_overhead,
        )
        # 802.11 is half duplex: both directions contend for one medium.
        from repro.sim import Resource

        medium = Resource(sim, capacity=1)
        self.forward.medium = medium
        self.backward.medium = medium
