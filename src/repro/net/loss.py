"""Per-packet loss processes.

Two models are provided:

- :class:`BernoulliLoss`: i.i.d. drops, matching how the paper emulates
  Internet bandwidth "by tuning the packet loss rate in the NIC";
- :class:`GilbertElliottLoss`: two-state bursty loss, matching the
  large-scale-fading character of the vehicular wireless channel (the
  22-37% loss rates in Table III come from wardriving measurements
  where losses cluster in deep fades).
"""

from __future__ import annotations

import abc
import random

from repro.util.validation import check_fraction, check_positive


class LossModel(abc.ABC):
    """Decides, per packet, whether the channel drops it."""

    @abc.abstractmethod
    def dropped(self, now: float) -> bool:
        """Return True if a packet sent at time ``now`` is lost."""

    @property
    @abc.abstractmethod
    def average_rate(self) -> float:
        """Long-run average loss probability."""


class NoLoss(LossModel):
    """A perfect channel."""

    def dropped(self, now: float) -> bool:
        return False

    @property
    def average_rate(self) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "NoLoss()"


class BernoulliLoss(LossModel):
    """Independent per-packet drops with fixed probability."""

    def __init__(self, rate: float, rng: random.Random) -> None:
        self.rate = check_fraction("loss rate", rate)
        self._rng = rng

    def dropped(self, now: float) -> bool:
        return self._rng.random() < self.rate

    @property
    def average_rate(self) -> float:
        return self.rate

    def __repr__(self) -> str:
        return f"BernoulliLoss(rate={self.rate})"


class GilbertElliottLoss(LossModel):
    """Two-state (good/bad) bursty loss driven by simulated time.

    The channel alternates between a *good* state with low loss and a
    *bad* state (deep fade) with very high loss.  State residence times
    are exponential.  Instead of stepping a Markov chain per packet, we
    evolve the state lazily as a function of the simulation clock, so
    the model is independent of packet rate.
    """

    def __init__(
        self,
        average_rate: float,
        rng: random.Random,
        good_loss: float = 0.02,
        bad_loss: float = 0.95,
        mean_bad_duration: float = 0.25,
    ) -> None:
        check_fraction("average_rate", average_rate)
        check_fraction("good_loss", good_loss)
        check_fraction("bad_loss", bad_loss)
        check_positive("mean_bad_duration", mean_bad_duration)
        if not good_loss <= average_rate <= bad_loss:
            raise ValueError(
                f"average_rate {average_rate} must lie between good_loss "
                f"{good_loss} and bad_loss {bad_loss}"
            )
        self._rng = rng
        self._good_loss = good_loss
        self._bad_loss = bad_loss
        self._mean_bad = mean_bad_duration
        #: Fraction of time in the bad state solving
        #: avg = f*bad + (1-f)*good for f.
        self._bad_fraction = (average_rate - good_loss) / (bad_loss - good_loss)
        self._average = average_rate
        if self._bad_fraction in (0.0, 1.0):
            self._mean_good = float("inf")
        else:
            self._mean_good = mean_bad_duration * (1 - self._bad_fraction) / self._bad_fraction
        self._state_bad = rng.random() < self._bad_fraction
        self._state_until = self._sample_duration()
        self._clock = 0.0

    def _sample_duration(self) -> float:
        mean = self._mean_bad if self._state_bad else self._mean_good
        if mean == float("inf"):
            return float("inf")
        return self._rng.expovariate(1.0 / mean)

    def _advance(self, now: float) -> None:
        if now < self._clock:
            # Loss models are per-link and links see monotonic time; a
            # stale clock would only happen on misuse.
            raise ValueError("GilbertElliottLoss observed time going backwards")
        self._clock = now
        while self._state_until <= now:
            self._state_bad = not self._state_bad
            self._state_until += self._sample_duration()

    def dropped(self, now: float) -> bool:
        self._advance(now)
        rate = self._bad_loss if self._state_bad else self._good_loss
        return self._rng.random() < rate

    @property
    def in_fade(self) -> bool:
        return self._state_bad

    @property
    def average_rate(self) -> float:
        return self._average

    def __repr__(self) -> str:
        return (
            f"GilbertElliottLoss(avg={self._average}, good={self._good_loss}, "
            f"bad={self._bad_loss}, mean_bad={self._mean_bad}s)"
        )
