"""Point-to-point links with serialization, delay, loss and queues.

A :class:`Link` is full duplex: it owns two :class:`Port` objects (one
per endpoint) and two independent :class:`LinkDirection` pipes.  A port
belongs to a device; sending on a port feeds the outgoing pipe, which
serializes packets at the link bandwidth, applies the loss model, waits
the propagation delay and finally hands the packet to the peer port's
device.

Links can be taken down (``set_up(False)``) to model disconnection;
queued and in-flight packets are then dropped, like a radio going out
of range.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.obs.events import LinkStateChanged, PacketDropped
from repro.sim import Simulator
from repro.sim.core import Event, URGENT
from repro.net.loss import LossModel, NoLoss
from repro.util.validation import check_non_negative, check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.nodes import Device
    from repro.xia.packet import Packet


class LinkStats:
    """Per-direction counters."""

    __slots__ = (
        "sent_packets",
        "sent_bytes",
        "delivered_packets",
        "delivered_bytes",
        "dropped_loss",
        "dropped_queue",
        "dropped_down",
        "busy_time",
    )

    def __init__(self) -> None:
        self.sent_packets = 0
        self.sent_bytes = 0
        self.delivered_packets = 0
        self.delivered_bytes = 0
        self.dropped_loss = 0
        self.dropped_queue = 0
        self.dropped_down = 0
        self.busy_time = 0.0

    def utilization(self, elapsed: float) -> float:
        return self.busy_time / elapsed if elapsed > 0 else 0.0


class Port:
    """A device's attachment point to one end of a link."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.device: Optional["Device"] = None
        self.link: Optional["Link"] = None
        self._out: Optional["LinkDirection"] = None
        self.peer: Optional["Port"] = None

    @property
    def is_up(self) -> bool:
        return self.link is not None and self.link.is_up

    def send(self, packet: "Packet") -> None:
        """Queue ``packet`` for transmission toward the peer."""
        if self._out is None:
            raise ConfigurationError(f"port {self.name!r} is not connected")
        self._out.enqueue(packet)

    def deliver(self, packet: "Packet") -> None:
        """Called by the incoming pipe when a packet arrives here."""
        if self.device is not None:
            self.device.receive(packet, self)

    def __repr__(self) -> str:
        owner = self.device.name if self.device else "unattached"
        return f"<Port {self.name} of {owner}>"


class LinkDirection:
    """A one-way pipe: FIFO queue + serialization + delay + loss.

    This is the per-packet hot path: every simulated packet passes
    through ``enqueue`` → ``_transmit`` → ``_tx_complete`` →
    ``_deliver``.  The path is deliberately closure-free — each stage
    is a bound method attached to a pooled kernel event (see
    :meth:`repro.sim.core.Simulator.pooled_event`), with the in-flight
    packet carried on the event's value (propagation) or stashed on
    the direction (serialization, which is one-at-a-time by
    construction), so a steady-state packet allocates nothing.
    """

    def __init__(
        self,
        sim: Simulator,
        source: Port,
        sink: Port,
        bandwidth_bps: float,
        delay: float,
        loss: Optional[LossModel] = None,
        queue_bytes: float = 512_000,
    ) -> None:
        self.sim = sim
        self.source = source
        self.sink = sink
        self.bandwidth_bps = check_positive("bandwidth_bps", bandwidth_bps)
        self.delay = check_non_negative("delay", delay)
        self.loss = loss if loss is not None else NoLoss()
        self.queue_limit_bytes = check_positive("queue_bytes", queue_bytes)
        self.stats = LinkStats()
        self._queue: deque["Packet"] = deque()
        self._queued_bytes = 0
        self._transmitting = False
        #: The packet being serialized and the medium grant it holds
        #: (at most one per direction — transmission is serialized).
        self._tx_packet: Optional["Packet"] = None
        self._tx_grant = None
        #: The simulator probe, cached: the per-packet emit sites pay
        #: one attribute load + one bool check, not a chain.
        self._probe = sim.probe
        #: The owning Link, set by ``Link.__init__`` — lets the hot
        #: path read ``_link._up`` directly instead of walking the
        #: ``source.is_up`` property chain.  ``None`` for a direction
        #: constructed standalone, which therefore counts as down
        #: (matching ``Port.is_up`` with no link).
        self._link: Optional["Link"] = None
        #: Optional shared-medium resource (half-duplex links set this
        #: to one Resource shared by both directions).
        self.medium = None

    def _drop(self, count: int, reason: str) -> None:
        """Publish one batched drop event (counters update in the caller)."""
        if count:
            probe = self._probe
            if probe.active:
                probe.emit(
                    PacketDropped(link=self.source.name, reason=reason,
                                  count=count)
                )

    # -- queueing -----------------------------------------------------------

    def enqueue(self, packet: "Packet") -> None:
        link = self._link
        if link is None or not link._up:
            self.stats.dropped_down += 1
            self._drop(1, "down")
            return
        if self._queued_bytes + packet.size_bytes > self.queue_limit_bytes:
            self.stats.dropped_queue += 1
            self._drop(1, "queue")
            return
        self._queue.append(packet)
        self._queued_bytes += packet.size_bytes
        if not self._transmitting:
            self._transmitting = True
            self._begin_next()

    def clear(self) -> None:
        """Drop everything queued (link went down).

        Counters update synchronously; the batched
        :class:`PacketDropped` publishes on an URGENT pooled event so
        it lands after the caller finishes mutating link state (e.g.
        ``Link.set_up`` clears both directions, then flips ``_up`` —
        subscribers observe the link consistently down).
        """
        dropped = len(self._queue)
        if not dropped:
            return
        self.stats.dropped_down += dropped
        self._queue.clear()
        self._queued_bytes = 0
        if self._probe.active:
            flush = self.sim.pooled_event("link-down-flush")
            flush.callbacks.append(self._emit_down_drops)
            flush.succeed(value=dropped, priority=URGENT)

    def _emit_down_drops(self, event: Event) -> None:
        self._drop(event.value, "down")

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def queued_bytes(self) -> int:
        """Bytes waiting in this direction's queue (flight-recorder gauge)."""
        return self._queued_bytes

    # -- transmission ---------------------------------------------------------

    def _begin_next(self) -> None:
        """Start serializing the head-of-line packet (callback-driven:
        the transmit path creates no generator processes)."""
        if not self._queue:
            self._transmitting = False
            return
        medium = self.medium
        if medium is None:
            self._transmit(None)
            return
        grant = medium.try_acquire()
        if grant is not None:
            # Uncontended medium: granted synchronously, no heap push.
            self._transmit(grant)
            return
        request = medium.request()
        self._tx_grant = request
        request.callbacks.append(self._transmit_granted)

    def _transmit_granted(self, event: Event) -> None:
        grant = self._tx_grant
        self._tx_grant = None
        self._transmit(grant)

    def _transmit(self, medium_request) -> None:
        if not self._queue:
            # The link went down (queue cleared) while we waited for
            # the medium.
            if medium_request is not None:
                self.medium.release(medium_request)
            self._transmitting = False
            return
        packet = self._queue.popleft()
        self._queued_bytes -= packet.size_bytes
        airtime = self.airtime(packet)
        stats = self.stats
        stats.sent_packets += 1
        stats.sent_bytes += packet.size_bytes
        stats.busy_time += airtime
        # Serialization is one-at-a-time, so the in-flight packet and
        # its medium grant live on the direction itself.
        self._tx_packet = packet
        self._tx_grant = medium_request
        done = self.sim.pooled_event("tx-done")
        done.callbacks.append(self._tx_complete)
        done.succeed(delay=airtime)

    def _tx_complete(self, event: Event) -> None:
        packet = self._tx_packet
        medium_request = self._tx_grant
        self._tx_packet = None
        self._tx_grant = None
        if medium_request is not None:
            self.medium.release(medium_request)
        link = self._link
        if link is None or not link._up:
            self.stats.dropped_down += 1
            self._drop(1, "down")
        elif self.sample_loss(packet):
            self.stats.dropped_loss += 1
            self._drop(1, "loss")
        else:
            # Propagation: one pooled event carrying the packet as its
            # value, delivering at the far end (arrivals pipeline, so
            # the packet cannot live on the direction here).
            arrival = self.sim.pooled_event("arrival")
            arrival.callbacks.append(self._deliver)
            arrival.succeed(value=packet, delay=self.delay)
        self._begin_next()

    def _deliver(self, event: Event) -> None:
        link = self._link
        if link is None or not link._up:
            self.stats.dropped_down += 1
            self._drop(1, "down")
            return
        packet = event.value
        stats = self.stats
        stats.delivered_packets += 1
        stats.delivered_bytes += packet.size_bytes
        self.sink.deliver(packet)

    # -- hooks for subclasses ----------------------------------------------------

    def airtime(self, packet: "Packet") -> float:
        """Time the medium is occupied sending ``packet``."""
        return packet.size_bytes * 8 / self.bandwidth_bps

    def sample_loss(self, packet: "Packet") -> bool:
        """Whether the packet is lost after (any) link-layer recovery."""
        return self.loss.dropped(self.sim.now)


class Link:
    """A full-duplex point-to-point link between two devices."""

    direction_class = LinkDirection

    def __init__(
        self,
        sim: Simulator,
        name: str,
        bandwidth_bps: float,
        delay: float,
        loss_a_to_b: Optional[LossModel] = None,
        loss_b_to_a: Optional[LossModel] = None,
        queue_bytes: float = 512_000,
        **direction_kwargs,
    ) -> None:
        self.sim = sim
        self.name = name
        self._up = True
        self.port_a = Port(sim, f"{name}.a")
        self.port_b = Port(sim, f"{name}.b")
        self.forward = self.direction_class(
            sim,
            self.port_a,
            self.port_b,
            bandwidth_bps,
            delay,
            loss=loss_a_to_b,
            queue_bytes=queue_bytes,
            **direction_kwargs,
        )
        self.backward = self.direction_class(
            sim,
            self.port_b,
            self.port_a,
            bandwidth_bps,
            delay,
            loss=loss_b_to_a,
            queue_bytes=queue_bytes,
            **direction_kwargs,
        )
        self.forward._link = self
        self.backward._link = self
        self.port_a.link = self
        self.port_a._out = self.forward
        self.port_a.peer = self.port_b
        self.port_b.link = self
        self.port_b._out = self.backward
        self.port_b.peer = self.port_a

    @property
    def is_up(self) -> bool:
        return self._up

    def set_up(self, up: bool) -> None:
        """Bring the link up or down; going down drops queued packets."""
        changed = self._up != up
        if self._up and not up:
            self.forward.clear()
            self.backward.clear()
        self._up = up
        if changed:
            probe = self.sim.probe
            if probe.active:
                probe.emit(LinkStateChanged(link=self.name, up=up))

    def attach(self, device_a: "Device", device_b: "Device") -> None:
        """Hand each endpoint port to its device."""
        device_a.add_port(self.port_a)
        device_b.add_port(self.port_b)

    @property
    def propagation_delay(self) -> float:
        return self.forward.delay

    @property
    def bandwidth_bps(self) -> float:
        return self.forward.bandwidth_bps

    def __repr__(self) -> str:
        state = "up" if self._up else "down"
        return f"<Link {self.name} {self.bandwidth_bps / 1e6:.1f}Mbps {state}>"
