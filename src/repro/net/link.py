"""Point-to-point links with serialization, delay, loss and queues.

A :class:`Link` is full duplex: it owns two :class:`Port` objects (one
per endpoint) and two independent :class:`LinkDirection` pipes.  A port
belongs to a device; sending on a port feeds the outgoing pipe, which
serializes packets at the link bandwidth, applies the loss model, waits
the propagation delay and finally hands the packet to the peer port's
device.

Links can be taken down (``set_up(False)``) to model disconnection;
queued and in-flight packets are then dropped, like a radio going out
of range.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.obs.events import LinkStateChanged, PacketDropped
from repro.sim import Simulator
from repro.sim.core import Event
from repro.net.loss import LossModel, NoLoss
from repro.util.validation import check_non_negative, check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.nodes import Device
    from repro.xia.packet import Packet


class LinkStats:
    """Per-direction counters."""

    __slots__ = (
        "sent_packets",
        "sent_bytes",
        "delivered_packets",
        "delivered_bytes",
        "dropped_loss",
        "dropped_queue",
        "dropped_down",
        "busy_time",
    )

    def __init__(self) -> None:
        self.sent_packets = 0
        self.sent_bytes = 0
        self.delivered_packets = 0
        self.delivered_bytes = 0
        self.dropped_loss = 0
        self.dropped_queue = 0
        self.dropped_down = 0
        self.busy_time = 0.0

    def utilization(self, elapsed: float) -> float:
        return self.busy_time / elapsed if elapsed > 0 else 0.0


class Port:
    """A device's attachment point to one end of a link."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.device: Optional["Device"] = None
        self.link: Optional["Link"] = None
        self._out: Optional["LinkDirection"] = None
        self.peer: Optional["Port"] = None

    @property
    def is_up(self) -> bool:
        return self.link is not None and self.link.is_up

    def send(self, packet: "Packet") -> None:
        """Queue ``packet`` for transmission toward the peer."""
        if self._out is None:
            raise ConfigurationError(f"port {self.name!r} is not connected")
        self._out.enqueue(packet)

    def deliver(self, packet: "Packet") -> None:
        """Called by the incoming pipe when a packet arrives here."""
        if self.device is not None:
            self.device.receive(packet, self)

    def __repr__(self) -> str:
        owner = self.device.name if self.device else "unattached"
        return f"<Port {self.name} of {owner}>"


class LinkDirection:
    """A one-way pipe: FIFO queue + serialization + delay + loss."""

    def __init__(
        self,
        sim: Simulator,
        source: Port,
        sink: Port,
        bandwidth_bps: float,
        delay: float,
        loss: Optional[LossModel] = None,
        queue_bytes: float = 512_000,
    ) -> None:
        self.sim = sim
        self.source = source
        self.sink = sink
        self.bandwidth_bps = check_positive("bandwidth_bps", bandwidth_bps)
        self.delay = check_non_negative("delay", delay)
        self.loss = loss if loss is not None else NoLoss()
        self.queue_limit_bytes = check_positive("queue_bytes", queue_bytes)
        self.stats = LinkStats()
        self._queue: deque["Packet"] = deque()
        self._queued_bytes = 0
        self._transmitting = False
        #: Optional shared-medium resource (half-duplex links set this
        #: to one Resource shared by both directions).
        self.medium = None

    def _drop(self, count: int, reason: str) -> None:
        """Publish drop events (counters are updated by the caller)."""
        probe = self.sim.probe
        if probe.active and count:
            name = self.source.name
            for _ in range(count):
                probe.emit(PacketDropped(link=name, reason=reason))

    # -- queueing -----------------------------------------------------------

    def enqueue(self, packet: "Packet") -> None:
        if not self.source.is_up:
            self.stats.dropped_down += 1
            self._drop(1, "down")
            return
        if self._queued_bytes + packet.size_bytes > self.queue_limit_bytes:
            self.stats.dropped_queue += 1
            self._drop(1, "queue")
            return
        self._queue.append(packet)
        self._queued_bytes += packet.size_bytes
        if not self._transmitting:
            self._transmitting = True
            self._begin_next()

    def clear(self) -> None:
        """Drop everything queued (link went down)."""
        self.stats.dropped_down += len(self._queue)
        self._drop(len(self._queue), "down")
        self._queue.clear()
        self._queued_bytes = 0

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # -- transmission ---------------------------------------------------------

    def _begin_next(self) -> None:
        """Start serializing the head-of-line packet (callback-driven:
        the transmit path creates no generator processes)."""
        if not self._queue:
            self._transmitting = False
            return
        if self.medium is not None:
            request = self.medium.request()
            request.callbacks.append(lambda event: self._transmit(request))
        else:
            self._transmit(None)

    def _transmit(self, medium_request) -> None:
        if not self._queue:
            # The link went down (queue cleared) while we waited for
            # the medium.
            if medium_request is not None:
                self.medium.release(medium_request)
            self._transmitting = False
            return
        packet = self._queue.popleft()
        self._queued_bytes -= packet.size_bytes
        airtime = self.airtime(packet)
        self.stats.sent_packets += 1
        self.stats.sent_bytes += packet.size_bytes
        self.stats.busy_time += airtime
        done = Event(self.sim, name="tx-done")
        done.callbacks.append(
            lambda event: self._tx_complete(packet, medium_request)
        )
        done.succeed(delay=airtime)

    def _tx_complete(self, packet: "Packet", medium_request) -> None:
        if medium_request is not None:
            self.medium.release(medium_request)
        if not self.source.is_up:
            self.stats.dropped_down += 1
            self._drop(1, "down")
        elif self.sample_loss(packet):
            self.stats.dropped_loss += 1
            self._drop(1, "loss")
        else:
            # Propagation: one bare event delivering at the far end.
            arrival = Event(self.sim, name="arrival")
            arrival.callbacks.append(self._make_delivery(packet))
            arrival.succeed(delay=self.delay)
        self._begin_next()

    def _make_delivery(self, packet: "Packet"):
        def deliver(event: Event) -> None:
            if not self.source.is_up:
                self.stats.dropped_down += 1
                self._drop(1, "down")
                return
            self.stats.delivered_packets += 1
            self.stats.delivered_bytes += packet.size_bytes
            self.sink.deliver(packet)

        return deliver

    # -- hooks for subclasses ----------------------------------------------------

    def airtime(self, packet: "Packet") -> float:
        """Time the medium is occupied sending ``packet``."""
        return packet.size_bytes * 8 / self.bandwidth_bps

    def sample_loss(self, packet: "Packet") -> bool:
        """Whether the packet is lost after (any) link-layer recovery."""
        return self.loss.dropped(self.sim.now)


class Link:
    """A full-duplex point-to-point link between two devices."""

    direction_class = LinkDirection

    def __init__(
        self,
        sim: Simulator,
        name: str,
        bandwidth_bps: float,
        delay: float,
        loss_a_to_b: Optional[LossModel] = None,
        loss_b_to_a: Optional[LossModel] = None,
        queue_bytes: float = 512_000,
        **direction_kwargs,
    ) -> None:
        self.sim = sim
        self.name = name
        self._up = True
        self.port_a = Port(sim, f"{name}.a")
        self.port_b = Port(sim, f"{name}.b")
        self.forward = self.direction_class(
            sim,
            self.port_a,
            self.port_b,
            bandwidth_bps,
            delay,
            loss=loss_a_to_b,
            queue_bytes=queue_bytes,
            **direction_kwargs,
        )
        self.backward = self.direction_class(
            sim,
            self.port_b,
            self.port_a,
            bandwidth_bps,
            delay,
            loss=loss_b_to_a,
            queue_bytes=queue_bytes,
            **direction_kwargs,
        )
        self.port_a.link = self
        self.port_a._out = self.forward
        self.port_a.peer = self.port_b
        self.port_b.link = self
        self.port_b._out = self.backward
        self.port_b.peer = self.port_a

    @property
    def is_up(self) -> bool:
        return self._up

    def set_up(self, up: bool) -> None:
        """Bring the link up or down; going down drops queued packets."""
        changed = self._up != up
        if self._up and not up:
            self.forward.clear()
            self.backward.clear()
        self._up = up
        if changed:
            probe = self.sim.probe
            if probe.active:
                probe.emit(LinkStateChanged(link=self.name, up=up))

    def attach(self, device_a: "Device", device_b: "Device") -> None:
        """Hand each endpoint port to its device."""
        device_a.add_port(self.port_a)
        device_b.add_port(self.port_b)

    @property
    def propagation_delay(self) -> float:
        return self.forward.delay

    @property
    def bandwidth_bps(self) -> float:
        return self.forward.bandwidth_bps

    def __repr__(self) -> str:
        state = "up" if self._up else "down"
        return f"<Link {self.name} {self.bandwidth_bps / 1e6:.1f}Mbps {state}>"
