"""Per-node packet-processing cost model.

The XIA prototype runs as a user-level Click daemon, so each packet
pays a context-switch/copy cost that kernel TCP does not.  This is the
mechanism behind the paper's Fig. 5 (Xstream caps at ~66 Mbps on a
wired segment where Linux TCP reaches ~95 Mbps).  We model a node's
packet path as a single server: each packet needs ``per_packet_seconds``
of CPU, packets queue FIFO for it, and the resulting delay is what the
node adds before a packet can be forwarded or delivered.
"""

from __future__ import annotations

from repro.sim import Simulator
from repro.util.validation import check_non_negative


class ProcessingModel:
    """A single-server CPU for a node's packet path."""

    def __init__(self, sim: Simulator, per_packet_seconds: float = 0.0) -> None:
        self.sim = sim
        self.per_packet_seconds = check_non_negative(
            "per_packet_seconds", per_packet_seconds
        )
        self._busy_until = 0.0
        self.packets_processed = 0

    @property
    def max_packet_rate(self) -> float:
        """Packets/second ceiling implied by the per-packet cost."""
        if self.per_packet_seconds == 0:
            return float("inf")
        return 1.0 / self.per_packet_seconds

    def admit(self) -> float:
        """Account for one packet; return the total delay it incurs.

        The delay is queueing (waiting for the CPU to drain earlier
        packets) plus the packet's own service time.
        """
        self.packets_processed += 1
        if self.per_packet_seconds == 0:
            return 0.0
        now = self.sim.now
        start = max(now, self._busy_until)
        self._busy_until = start + self.per_packet_seconds
        return self._busy_until - now

    def __repr__(self) -> str:
        return f"ProcessingModel(per_packet={self.per_packet_seconds * 1e6:.1f}us)"


#: Convenience presets (seconds per packet), calibrated in
#: :mod:`repro.experiments.calibration` against the paper's Fig. 5.
KERNEL_STACK_COST = 1.5e-6       # native Linux TCP path
USER_DAEMON_COST = 175e-6        # XIA Click user-level daemon data path
