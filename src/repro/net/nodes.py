"""Devices: the things ports attach to.

:class:`Device` is the base: it owns ports, a processing-cost model and
a receive path.  :class:`Host` adds endpoint behaviour — an HID, packet
demultiplexing to transport sessions and control-plane handlers, and
multihoming (the SoftStage client uses a *data* interface and a
*sensor* interface, §II-B).

Routers are devices too, but they carry an XIA forwarding engine and
live in :mod:`repro.xia.router`.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.net.link import Port
from repro.net.processing import ProcessingModel
from repro.sim import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.xia.ids import XID
    from repro.xia.packet import Packet, PacketType


class Device:
    """A network element with ports and a packet-processing budget."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        processing: Optional[ProcessingModel] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.ports: list[Port] = []
        self.processing = processing or ProcessingModel(sim)
        self.received_packets = 0

    def add_port(self, port: Port) -> Port:
        port.device = self
        self.ports.append(port)
        return port

    def port(self, index: int = 0) -> Port:
        try:
            return self.ports[index]
        except IndexError:
            raise ConfigurationError(
                f"{self.name} has no port {index} (has {len(self.ports)})"
            ) from None

    # -- receive path ------------------------------------------------------

    def receive(self, packet: "Packet", port: Port) -> None:
        """Entry point from the link layer; applies processing cost."""
        self.received_packets += 1
        delay = self.processing.admit()
        if delay > 0:
            ready = self.sim.pooled_event("cpu")
            ready.callbacks.append(self._packet_ready)
            ready.succeed(value=(packet, port), delay=delay)
        else:
            self.handle_packet(packet, port)

    def _packet_ready(self, event) -> None:
        packet, port = event.value
        self.handle_packet(packet, port)

    def handle_packet(self, packet: "Packet", port: Port) -> None:
        """Override: what to do with a received packet."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{self.__class__.__name__} {self.name}>"


class Host(Device):
    """An end host: an HID, sessions, handlers, possibly multihomed."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        hid: "XID",
        processing: Optional[ProcessingModel] = None,
    ) -> None:
        super().__init__(sim, name, processing=processing)
        self.hid = hid
        #: NID of the network each port is currently attached to
        #: (maintained by the topology / mobility layer).
        self.port_nids: dict[Port, "XID"] = {}
        self._session_handlers: dict[int, Callable[["Packet", Port], None]] = {}
        self._type_handlers: dict["PacketType", Callable[["Packet", Port], None]] = {}
        self._active_port_index = 0
        self.dropped_unhandled = 0
        self.dropped_misaddressed = 0

    # -- ports / multihoming ---------------------------------------------------

    @property
    def active_port(self) -> Port:
        """The interface used for data transfer."""
        return self.port(self._active_port_index)

    def set_active_port(self, index: int) -> None:
        if not 0 <= index < len(self.ports):
            raise ConfigurationError(f"{self.name}: no port {index}")
        self._active_port_index = index

    def nid_of(self, port: Port) -> Optional["XID"]:
        return self.port_nids.get(port)

    @property
    def current_nid(self) -> Optional["XID"]:
        """NID the data interface is attached to (None when offline)."""
        port = self.active_port
        if not port.is_up:
            return None
        return self.port_nids.get(port)

    def send(self, packet: "Packet", port: Optional[Port] = None) -> None:
        """Transmit on ``port`` (default: the data interface)."""
        (port or self.active_port).send(packet)

    # -- demultiplexing ---------------------------------------------------------

    def register_session(
        self, session_id: int, handler: Callable[["Packet", Port], None]
    ) -> None:
        self._session_handlers[session_id] = handler

    def unregister_session(self, session_id: int) -> None:
        self._session_handlers.pop(session_id, None)

    def register_handler(
        self, ptype: "PacketType", handler: Callable[["Packet", Port], None]
    ) -> None:
        self._type_handlers[ptype] = handler

    def _addressed_to_me(self, packet: "Packet") -> bool:
        """Whether this host is a legitimate destination of the packet:
        its HID is the intent or appears on a fallback route (a CID/SID
        intent with our HID as fallback is how chunk requests reach the
        origin server)."""
        dst = packet.dst
        if dst.intent == self.hid:
            return True
        for route in dst.routes:
            for waypoint in route:
                if waypoint == self.hid:
                    return True
        return False

    def handle_packet(self, packet: "Packet", port: Port) -> None:
        packet.hop_count += 1
        trace = packet.trace
        if trace is not None:
            trace.append(self.name)
        if not self._addressed_to_me(packet):
            self.dropped_misaddressed += 1
            return
        if packet.session_id is not None:
            handler = self._session_handlers.get(packet.session_id)
            if handler is not None:
                handler(packet, port)
                return
        handler = self._type_handlers.get(packet.ptype)
        if handler is not None:
            handler(packet, port)
            return
        self.dropped_unhandled += 1
