"""Packet-level network substrate.

Provides the physical/link layer the XIA forwarding engine runs over:

- :mod:`repro.net.loss` — per-packet loss processes (Bernoulli and
  bursty Gilbert-Elliott fading);
- :mod:`repro.net.link` — point-to-point links with store-and-forward
  serialization, propagation delay, bounded queues;
- :mod:`repro.net.wireless` — an 802.11-style link with MAC efficiency
  and link-layer ARQ that hides most (not all) channel loss;
- :mod:`repro.net.processing` — per-node packet-processing costs (the
  kernel-vs-user-level-daemon distinction behind the paper's Fig. 5);
- :mod:`repro.net.nodes` — devices (hosts, routers, access points);
- :mod:`repro.net.topology` — the network graph, NID registry and route
  computation;
- :mod:`repro.net.emulation` — the paper's loss-based Internet
  bandwidth shaper.
"""

from repro.net.link import Link, Port
from repro.net.loss import BernoulliLoss, GilbertElliottLoss, LossModel, NoLoss
from repro.net.nodes import Device, Host
from repro.net.processing import ProcessingModel
from repro.net.topology import Network
from repro.net.wireless import WirelessLink

__all__ = [
    "BernoulliLoss",
    "Device",
    "GilbertElliottLoss",
    "Host",
    "Link",
    "LossModel",
    "Network",
    "NoLoss",
    "Port",
    "ProcessingModel",
    "WirelessLink",
]
