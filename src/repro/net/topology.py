"""The network: devices, links, NID registry and route computation.

A :class:`Network` assembles devices and links, computes static routes
between the wired infrastructure (routers, servers), and manages the
dynamic part — which wireless access link the mobile client is
currently attached to, and therefore where its HID is routable.
"""

from __future__ import annotations

from typing import Iterable, Optional

import networkx as nx

from repro.errors import ConfigurationError, RoutingError
from repro.net.link import Link, Port
from repro.net.nodes import Device, Host
from repro.net.wireless import WirelessLink
from repro.sim import RandomStreams, Simulator
from repro.xia.ids import PrincipalType, XID

if False:  # pragma: no cover - typing only
    from repro.xia.router import XIARouter


class Network:
    """A collection of devices and links plus routing helpers."""

    def __init__(self, sim: Simulator, streams: Optional[RandomStreams] = None) -> None:
        self.sim = sim
        self.streams = streams or RandomStreams(0)
        self.devices: dict[str, Device] = {}
        self.links: list[Link] = []
        self._adjacency: list[tuple[Device, Device, Link]] = []
        #: NID -> gateway router of that network.
        self.gateways: dict[XID, "XIARouter"] = {}

    # -- construction -------------------------------------------------------

    def add_device(self, device: Device) -> Device:
        if device.name in self.devices:
            raise ConfigurationError(f"duplicate device name {device.name!r}")
        self.devices[device.name] = device
        return device

    def register_network(self, nid: XID, gateway: "XIARouter") -> None:
        if nid.principal_type is not PrincipalType.NID:
            raise ConfigurationError(f"expected a NID, got {nid!r}")
        if nid in self.gateways:
            raise ConfigurationError(f"network {nid.short} already registered")
        self.gateways[nid] = gateway

    def connect(self, device_a: Device, device_b: Device, link: Link) -> Link:
        """Attach ``link`` between two already-added devices."""
        for device in (device_a, device_b):
            if device.name not in self.devices:
                raise ConfigurationError(f"{device.name} not added to the network")
        link.attach(device_a, device_b)
        self.links.append(link)
        self._adjacency.append((device_a, device_b, link))
        return link

    # -- lookup ----------------------------------------------------------------

    def port_toward(self, device: Device, neighbor: Device) -> Port:
        """The port on ``device`` whose link leads to ``neighbor``."""
        for dev_a, dev_b, link in self._adjacency:
            if dev_a is device and dev_b is neighbor:
                return link.port_a
            if dev_b is device and dev_a is neighbor:
                return link.port_b
        raise RoutingError(f"no link between {device.name} and {neighbor.name}")

    def link_between(self, device_a: Device, device_b: Device) -> Link:
        for dev_a, dev_b, link in self._adjacency:
            if {dev_a, dev_b} == {device_a, device_b}:
                return link
        raise RoutingError(f"no link between {device_a.name} and {device_b.name}")

    def neighbors(self, device: Device, include_wireless: bool = True) -> list[Device]:
        result = []
        for dev_a, dev_b, link in self._adjacency:
            if not include_wireless and isinstance(link, WirelessLink):
                continue
            if dev_a is device:
                result.append(dev_b)
            elif dev_b is device:
                result.append(dev_a)
        return result

    # -- routing ----------------------------------------------------------------

    def _wired_graph(self) -> nx.Graph:
        graph = nx.Graph()
        for device in self.devices.values():
            graph.add_node(device.name)
        for dev_a, dev_b, link in self._adjacency:
            if isinstance(link, WirelessLink):
                continue
            graph.add_edge(dev_a.name, dev_b.name, delay=link.propagation_delay)
        return graph

    def build_static_routes(self) -> None:
        """Install NID and wired-host HID routes on every router."""
        from repro.xia.router import XIARouter

        graph = self._wired_graph()
        routers = [d for d in self.devices.values() if isinstance(d, XIARouter)]
        paths = dict(nx.all_pairs_dijkstra_path(graph, weight="delay"))

        for router in routers:
            table = paths.get(router.name, {})
            for nid, gateway in self.gateways.items():
                if gateway is router:
                    continue
                path = table.get(gateway.name)
                if path is None or len(path) < 2:
                    continue
                next_device = self.devices[path[1]]
                router.engine.set_nid_route(nid, self.port_toward(router, next_device))

        # Wired hosts: their adjacent router delivers their HID; other
        # routers reach them via the NID of that router's network.
        for dev_a, dev_b, link in self._adjacency:
            if isinstance(link, WirelessLink):
                continue
            for host, peer in ((dev_a, dev_b), (dev_b, dev_a)):
                if isinstance(host, Host) and not isinstance(host, XIARouter):
                    if isinstance(peer, XIARouter):
                        peer.engine.set_hid_route(
                            host.hid, self.port_toward(peer, host)
                        )
                        host.port_nids[self.port_toward(host, peer)] = peer.nid

    def wired_path(self, source: Device, target: Device) -> list[Link]:
        """Links along the shortest wired path (for flow-level models)."""
        graph = self._wired_graph()
        try:
            names = nx.dijkstra_path(graph, source.name, target.name, weight="delay")
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise RoutingError(
                f"no wired path {source.name} -> {target.name}"
            ) from exc
        return [
            self.link_between(self.devices[a], self.devices[b])
            for a, b in zip(names, names[1:])
        ]

    # -- client attachment (called by the mobility layer) ----------------------------

    def attach_client(
        self,
        client: Host,
        client_port: Port,
        access_point: Device,
        nid: XID,
    ) -> None:
        """Bring the client's access link up and make its HID routable."""
        gateway = self.gateways.get(nid)
        if gateway is None:
            raise ConfigurationError(f"unknown network {nid.short}")
        link = client_port.link
        if link is None:
            raise ConfigurationError("client port is not connected to a link")
        link.set_up(True)
        client.port_nids[client_port] = nid
        # Route client HID: gateway -> access point -> (bridged) client.
        if gateway is access_point:
            gateway.engine.set_hid_route(client.hid, client_port.peer)
        else:
            gateway.engine.set_hid_route(
                client.hid, self.port_toward(gateway, access_point)
            )

    def detach_client(self, client: Host, client_port: Port, nid: XID) -> None:
        """Take the access link down and withdraw the client's route."""
        gateway = self.gateways.get(nid)
        link = client_port.link
        if link is not None:
            link.set_up(False)
        client.port_nids.pop(client_port, None)
        if gateway is not None:
            gateway.engine.remove_hid_route(client.hid)

    def __repr__(self) -> str:
        return (
            f"<Network {len(self.devices)} devices, {len(self.links)} links, "
            f"{len(self.gateways)} NIDs>"
        )
