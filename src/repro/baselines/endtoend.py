"""Host-based end-to-end download (the pre-ICN baseline).

One long byte-stream session from the origin server, no chunking, no
caching — what a classic TCP file download looks like under vehicular
connectivity.  It survives moves only through whole-session migration
and gives the ablation benches a floor to compare against.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.client import DownloadResult
from repro.core.config import SoftStageConfig
from repro.core.handoff import HandoffManager, RssGreedyPolicy
from repro.mobility.association import Association, AssociationController
from repro.mobility.scanner import Scanner
from repro.sim import Simulator
from repro.transport.chunkfetch import ChunkFetcher
from repro.transport.reliable import TransportEndpoint
from repro.xia.dag import DagAddress

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.nodes import Host
    from repro.xcache.publisher import PublishedContent


class EndToEndClient:
    """Single byte-stream download from the origin."""

    def __init__(
        self,
        sim: Simulator,
        host: "Host",
        endpoint: TransportEndpoint,
        controller: AssociationController,
        scanner: Scanner,
        config: Optional[SoftStageConfig] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.endpoint = endpoint
        self.controller = controller
        self.config = config or SoftStageConfig()
        self.handoff_manager = HandoffManager(
            sim, controller, scanner, policy=RssGreedyPolicy(), config=self.config
        )
        stream_config = endpoint.config.with_(
            verify_rate=float("inf"), per_chunk_overhead=0.0
        )
        self.fetcher = ChunkFetcher(
            sim, endpoint, config=stream_config,
            wait_for_connectivity=controller.wait_attached,
        )
        controller.on_attach(self._on_attach)

    def _on_attach(self, association: Association) -> None:
        new_dag = DagAddress.host(self.host.hid, association.ap.nid)
        self.endpoint.migrate_receivers(new_dag)

    def download(self, content: "PublishedContent"):
        """Process: stream the whole object as one session.

        Requires the content to be published as a single chunk
        (``chunk_size == total_bytes``).
        """
        started = self.sim.now
        outcome = yield self.sim.process(
            self.fetcher.fetch(content.addresses[0])
        )
        return DownloadResult(
            content_name=content.name,
            bytes_received=outcome.bytes_received,
            duration=self.sim.now - started,
            chunks_completed=1,
            chunks_total=1,
            chunks_from_edge=0,
            chunks_from_origin=1,
            fallbacks=0,
            handoffs=self.handoff_manager.handoffs,
            staging_signals=0,
            outcomes=[outcome],
        )
