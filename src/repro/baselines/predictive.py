"""EdgeBuffer-style predictive staging (the approach §III-B argues against).

A :class:`MobilityPredictor` guesses which network the client will
visit next; :class:`PredictiveStagingPolicy` pre-stages upcoming
chunks into the *predicted* network's VNF before the client gets
there.  When the prediction is right this is as good as (or slightly
better than) reactive staging; when it is wrong, chunks sit in the
wrong edge cache and must be fetched cross-network or re-staged — the
fragility the paper's reactive design avoids.  ``accuracy`` sweeps the
spectrum for the ablation bench.

The policy is a pure :class:`~repro.core.policy.StagingPolicy`: it
never polls (``decide`` returns nothing) and acts only on the attach
lifecycle hook, which is exactly the event prediction-driven schemes
key on.  :class:`PredictiveStagingClient` mounts it on a (non-polling)
StagingCoordinator and keeps its own sequential download loop.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Optional, Sequence, TYPE_CHECKING

from repro.core.client import DownloadResult
from repro.core.config import SoftStageConfig
from repro.core.coordinator import StagingCoordinator
from repro.core.handoff import HandoffManager, RssGreedyPolicy
from repro.core.network_sensor import NetworkSensor
from repro.core.policy import StagingAction, StagingObservation, StagingPolicy
from repro.core.profile import ChunkProfile
from repro.core.states import StagingState
from repro.core.tracker import StagingTracker
from repro.mobility.association import AccessPointInfo, Association, AssociationController
from repro.mobility.scanner import Scanner
from repro.sim import Simulator
from repro.transport.chunkfetch import ChunkFetcher, FetchOutcome
from repro.transport.reliable import TransportEndpoint
from repro.xia.dag import DagAddress

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.nodes import Host
    from repro.xcache.publisher import PublishedContent


#: Default prediction accuracy for registry-built policies — the
#: "pretty good but not perfect" regime the ablation bench centres on.
DEFAULT_PREDICTOR_ACCURACY = 0.7

#: Predictive signals sent toward networks we never reached go stale
#: slower than reactive ones: the scheme *expects* confirmations to
#: arrive only after the client moves (the pre-framework baseline's
#: hardcoded 5.0 s timeout).
PREDICTIVE_SIGNAL_TIMEOUT = 5.0


class MobilityPredictor:
    """Predicts the next network with configurable accuracy.

    With probability ``accuracy`` it names the network the client will
    actually join next (we let the round-robin coverage make "next"
    well defined); otherwise it names a uniformly random *other*
    network — modeling the AP-availability churn the paper cites as
    what breaks layer-2 prediction in practice.
    """

    def __init__(
        self,
        access_points: Sequence[AccessPointInfo],
        accuracy: float,
        rng: random.Random,
    ) -> None:
        self.access_points = list(access_points)
        self.accuracy = accuracy
        self.rng = rng
        self.predictions = 0

    def predict_next(self, current_name: Optional[str]) -> AccessPointInfo:
        self.predictions += 1
        names = [info.name for info in self.access_points]
        if current_name in names and len(names) > 1:
            true_next = self.access_points[
                (names.index(current_name) + 1) % len(names)
            ]
        else:
            true_next = self.access_points[0]
        if self.rng.random() < self.accuracy or len(names) == 1:
            return true_next
        others = [info for info in self.access_points if info is not true_next]
        return others[self.rng.randrange(len(others))]


class PredictiveStagingPolicy(StagingPolicy):
    """Stage a fixed window into wherever the predictor points.

    On every association it asks the predictor which network comes
    *after* this one, forgets stale requests (signals sent toward a
    network the client never reached), and stages the next
    ``stage_window`` chunks there.  Between attaches it does nothing —
    prediction-driven staging has no reactive feedback loop, which is
    precisely the contrast with :class:`ReactiveEq1Policy`.
    """

    name = "predictive"

    def __init__(
        self, predictor: MobilityPredictor, stage_window: int = 8
    ) -> None:
        self.predictor = predictor
        self.stage_window = stage_window

    def decide(self, obs: StagingObservation) -> list[StagingAction]:
        return []

    def on_attach(
        self, obs: StagingObservation, network: str
    ) -> list[StagingAction]:
        # On every join, pre-stage the upcoming window into the network
        # the predictor says comes *after* this one.
        predicted = self.predictor.predict_next(network)
        actions: list[StagingAction] = []
        if obs.stale_cids:
            actions.append(StagingAction.cancel(obs.stale_cids))
        actions.append(
            StagingAction.stage(
                self.stage_window,
                target=predicted.name,
                label=f"predict:{predicted.name}",
            )
        )
        return actions

    def prestage_count(self, obs: StagingObservation) -> int:
        return self.stage_window


class PredictiveStagingClient:
    """Downloads with prediction-driven (rather than reactive) staging."""

    def __init__(
        self,
        sim: Simulator,
        host: "Host",
        endpoint: TransportEndpoint,
        controller: AssociationController,
        scanner: Scanner,
        predictor: MobilityPredictor,
        config: Optional[SoftStageConfig] = None,
        stage_window: int = 8,
    ) -> None:
        self.sim = sim
        self.host = host
        self.endpoint = endpoint
        self.controller = controller
        self.config = dataclasses.replace(
            config or SoftStageConfig(),
            staging_signal_timeout=PREDICTIVE_SIGNAL_TIMEOUT,
        )
        self.predictor = predictor
        self.stage_window = stage_window
        self.profile = ChunkProfile(ewma_alpha=self.config.ewma_alpha)
        self.tracker = StagingTracker(sim, host, self.profile)
        self.handoff_manager = HandoffManager(
            sim, controller, scanner, policy=RssGreedyPolicy(), config=self.config
        )
        self.fetcher = ChunkFetcher(
            sim, endpoint, wait_for_connectivity=controller.wait_attached
        )
        # Transport migration runs before the policy's attach hook (the
        # coordinator registers its relay below), matching the old
        # migrate-then-predict order.
        controller.on_attach(self._on_attach)
        self.policy = PredictiveStagingPolicy(predictor, stage_window)
        self.sensor = NetworkSensor(sim, scanner, controller)
        # Never started: the policy is entirely event-driven, so the
        # coordinator serves purely as its observation builder and
        # action executor.
        self.coordinator = StagingCoordinator(
            sim, self.profile, self.tracker, self.sensor, self.config,
            policy=self.policy,
        )
        self.wrong_network_fetches = 0
        self.chunks_from_edge = 0
        self.chunks_from_origin = 0

    # -- mobility plumbing -------------------------------------------------------

    def _on_attach(self, association: Association) -> None:
        new_dag = DagAddress.host(self.host.hid, association.ap.nid)
        self.endpoint.migrate_receivers(new_dag)

    # -- download ----------------------------------------------------------------

    def download(self, content: "PublishedContent", deadline: Optional[float] = None):
        """Process: sequential chunk download with predictive staging."""
        self.profile.register_content(content)
        started = self.sim.now
        outcomes: list[FetchOutcome] = []
        bytes_received = 0
        for chunk in content.chunks:
            if deadline is not None and self.sim.now >= deadline:
                break
            record = self.profile.get(chunk.cid)
            fetch = self.sim.process(self.fetcher.fetch(record.best_dag))
            if deadline is None:
                outcome = yield fetch
            else:
                result = yield self.sim.any_of(
                    [fetch, self.sim.timeout(max(deadline - self.sim.now, 0.0))]
                )
                if fetch not in result:
                    break
                outcome = result[fetch]
            latency = self.sim.now - started
            origin_hid = record.raw_dag.fallback_hid
            from_edge = (
                outcome.served_by_hid is not None
                and outcome.served_by_hid != origin_hid
            )
            self.profile.observe_fetch(record, latency, from_edge=from_edge)
            if from_edge:
                self.chunks_from_edge += 1
                current = self.controller.current
                if (
                    current is not None
                    and outcome.served_by_nid is not None
                    and outcome.served_by_nid != current.ap.nid
                ):
                    self.wrong_network_fetches += 1
            else:
                self.chunks_from_origin += 1
                if record.staging_state is StagingState.BLANK:
                    record.staging_state = StagingState.DONE
            outcomes.append(outcome)
            bytes_received += outcome.bytes_received
        return DownloadResult(
            content_name=content.name,
            bytes_received=bytes_received,
            duration=self.sim.now - started,
            chunks_completed=len(outcomes),
            chunks_total=len(content.chunks),
            chunks_from_edge=self.chunks_from_edge,
            chunks_from_origin=self.chunks_from_origin,
            fallbacks=0,
            handoffs=self.handoff_manager.handoffs,
            staging_signals=self.tracker.signals_sent,
            outcomes=outcomes,
        )
