"""Comparison baselines.

- Xftp (no staging) lives in :mod:`repro.apps.ftp` — it is the paper's
  primary baseline and shares the application layer;
- :mod:`repro.baselines.predictive` — an EdgeBuffer-style *predictive*
  staging client: content is pre-staged into the network the predictor
  expects the client to visit next.  The paper's §III-B argument is
  that prediction accuracy is fragile; the reactive-vs-predictive
  ablation bench quantifies it;
- :mod:`repro.baselines.endtoend` — a host-based byte-stream download
  (no chunks at all), the pre-ICN way.
"""

from repro.baselines.predictive import MobilityPredictor, PredictiveStagingClient
from repro.baselines.endtoend import EndToEndClient

__all__ = [
    "EndToEndClient",
    "MobilityPredictor",
    "PredictiveStagingClient",
]
