"""The XIA forwarding engine and router device.

Routers forward packets by walking the destination DAG: try the
highest-priority candidate XID the packet has not yet satisfied; a CID
can be served from the local XCache, an NID matches either this
network (mark visited and continue) or a route toward another network,
an HID is either this node, a locally-attached host, or unroutable
here, and an SID is a locally-registered service (e.g. the Staging
VNF).  Candidates that cannot be acted on fall through to the next —
this is XIA's fallback semantics, and is what lets a CID request reach
the origin server when no cache on the path holds the chunk.

The per-hop walk is cached: for a given (destination DAG, visited
bitmask) pair a router always reaches the same terminal action, so
:class:`XIARouter` compiles the walk once into a *decision* and replays
it on every later packet of the flow (see DESIGN.md §10).  The only
data-dependent step — does the local XCache hold this CID right now? —
is kept out of the cached part and re-checked per packet.  Decisions
are invalidated whenever anything they were compiled from changes:
route table edits, service registration, and store/handler attachment.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.net.link import Port
from repro.net.nodes import Host
from repro.xia.ids import PrincipalType, XID
from repro.xia.packet import PacketType

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.processing import ProcessingModel
    from repro.sim import Simulator
    from repro.xcache.store import ContentStore
    from repro.xia.packet import Packet


class ForwardingEngine:
    """The route table for one router.

    One dict keyed by XID serves every routable principal type (the
    XID value embeds its type, so NIDs and HIDs cannot collide); the
    old per-principal ``nid_routes``/``hid_routes`` attributes remain
    as read-only filtered views.  Every mutation fires :attr:`on_change`
    so the owning router can invalidate its forwarding-decision cache.
    """

    def __init__(self) -> None:
        self.routes: dict[XID, Port] = {}
        self._default_port: Optional[Port] = None
        #: Called after any mutation (route add/remove, default port).
        self.on_change: Optional[Callable[[], None]] = None

    def _changed(self) -> None:
        callback = self.on_change
        if callback is not None:
            callback()

    def set_nid_route(self, nid: XID, port: Port) -> None:
        self._expect(nid, PrincipalType.NID)
        self.routes[nid] = port
        self._changed()

    def set_hid_route(self, hid: XID, port: Port) -> None:
        self._expect(hid, PrincipalType.HID)
        self.routes[hid] = port
        self._changed()

    def remove_hid_route(self, hid: XID) -> None:
        if self.routes.pop(hid, None) is not None:
            self._changed()

    @property
    def default_port(self) -> Optional[Port]:
        return self._default_port

    @default_port.setter
    def default_port(self, port: Optional[Port]) -> None:
        self._default_port = port
        self._changed()

    def port_for(self, xid: XID) -> Optional[Port]:
        port = self.routes.get(xid)
        if port is None and xid.principal_type is PrincipalType.NID:
            return self._default_port
        return port

    # -- compatibility views -------------------------------------------------

    @property
    def nid_routes(self) -> dict[XID, Port]:
        """Snapshot of the NID entries (read-only compatibility view)."""
        return {
            xid: port for xid, port in self.routes.items()
            if xid.principal_type is PrincipalType.NID
        }

    @property
    def hid_routes(self) -> dict[XID, Port]:
        """Snapshot of the HID entries (read-only compatibility view)."""
        return {
            xid: port for xid, port in self.routes.items()
            if xid.principal_type is PrincipalType.HID
        }

    @staticmethod
    def _expect(xid: XID, principal_type: PrincipalType) -> None:
        if xid.principal_type is not principal_type:
            raise ConfigurationError(f"expected {principal_type.value}, got {xid!r}")


# Decision kinds (terminal actions of the candidate walk).
_FORWARD = 0   # arg: egress Port
_LOCAL = 1     # arg: own-HID visited bit
_SID = 2       # arg: the SID whose handler takes the packet
_DROP = 3      # arg: None

#: Decisions per router before the cache is cleared wholesale.  A
#: router sees a handful of flows × a handful of masks each; the cap
#: only guards against adversarial DAG churn.
DECISION_CACHE_LIMIT = 4096


class XIARouter(Host):
    """An XIA router: forwarding engine + optional XCache + services.

    Routers are also hosts (they have an HID and terminate transport
    sessions) because XCache runs *on* them: a chunk served from the
    router's cache is a transport session between the router and the
    client.
    """

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        hid: XID,
        nid: XID,
        processing: Optional["ProcessingModel"] = None,
        content_store: Optional["ContentStore"] = None,
    ) -> None:
        super().__init__(sim, name, hid, processing=processing)
        if nid.principal_type is not PrincipalType.NID:
            raise ConfigurationError(f"router NID expected, got {nid!r}")
        self.nid = nid
        self.engine = ForwardingEngine()
        self.engine.on_change = self._invalidate_decisions
        self._content_store: Optional["ContentStore"] = content_store
        self._cid_request_handler: Optional[
            Callable[["Packet", Port], None]
        ] = None
        #: Locally registered services (SID -> handler), e.g. Staging VNF.
        self.services: dict[XID, Callable[["Packet", Port], None]] = {}
        #: (dst DAG, visited mask) -> compiled terminal decision.
        self._decisions: dict[tuple, tuple] = {}
        self.forwarded_packets = 0
        self.dropped_unroutable = 0

    # -- decision cache ------------------------------------------------------

    def _invalidate_decisions(self) -> None:
        self._decisions.clear()

    @property
    def content_store(self) -> Optional["ContentStore"]:
        return self._content_store

    @content_store.setter
    def content_store(self, store: Optional["ContentStore"]) -> None:
        # Attaching/removing a store changes whether CID candidates are
        # checked at all, which is baked into compiled decisions.
        self._content_store = store
        self._decisions.clear()

    @property
    def cid_request_handler(self):
        """Handler for CID requests that hit the local store."""
        return self._cid_request_handler

    @cid_request_handler.setter
    def cid_request_handler(self, handler) -> None:
        self._cid_request_handler = handler
        self._decisions.clear()

    # -- service registry ---------------------------------------------------

    def register_service(
        self, sid: XID, handler: Callable[["Packet", Port], None]
    ) -> None:
        if sid.principal_type is not PrincipalType.SID:
            raise ConfigurationError(f"expected a SID, got {sid!r}")
        self.services[sid] = handler
        self._decisions.clear()

    # -- sending (locally originated packets) -----------------------------------

    def send(self, packet: "Packet", port: Optional[Port] = None) -> None:
        """Route a locally-originated packet out the right port.

        Unlike plain hosts, a router picks the egress by consulting its
        own forwarding engine (cache responses leave toward whichever
        network the client is in).
        """
        if port is not None:
            port.send(packet)
            return
        out = self._route(packet)
        if out is None:
            self.dropped_unroutable += 1
            return
        out.send(packet)

    def _route(self, packet: "Packet") -> Optional[Port]:
        plan = packet.dst.plan
        mask = packet.visited_mask
        candidates = plan.candidates(mask)
        if self.nid in candidates:
            mask |= plan.bit_of[self.nid]
            packet.visited_mask = mask
            candidates = plan.candidates(mask)
        for candidate in candidates:
            principal = candidate.principal_type
            if principal in (PrincipalType.HID, PrincipalType.NID):
                if candidate == self.hid:
                    continue
                out = self.engine.port_for(candidate)
                if out is not None:
                    return out
        return None

    # -- forwarding ------------------------------------------------------------

    def handle_packet(self, packet: "Packet", port: Port) -> None:
        packet.hop_count += 1
        trace = packet.trace
        if trace is not None:
            trace.append(self.name)

        dst = packet.dst
        mask = packet.visited_mask
        key = (dst, mask)
        decision = self._decisions.get(key)
        if decision is None:
            self.sim.fwd_cache_misses += 1
            decision = self._compile_decision(dst, mask)
            if len(self._decisions) >= DECISION_CACHE_LIMIT:
                self._decisions.clear()
            self._decisions[key] = decision
        else:
            self.sim.fwd_cache_hits += 1

        kind, pre_mask, arg, cid_steps = decision
        if pre_mask:
            packet.visited_mask = mask | pre_mask
        if cid_steps is not None and packet.ptype is PacketType.CHUNK_REQUEST:
            # The one data-dependent step: is the chunk here *now*?
            store = self._content_store
            for cid, bit in cid_steps:
                if store.has(cid):
                    packet.visited_mask |= bit
                    self._cid_request_handler(packet, port)
                    return
        if kind == _FORWARD:
            self.forwarded_packets += 1
            arg.send(packet)
        elif kind == _LOCAL:
            packet.visited_mask |= arg
            self._deliver_local(packet, port)
        elif kind == _SID:
            self.services[arg](packet, port)
        else:
            self.dropped_unroutable += 1

    def _compile_decision(self, dst, mask: int) -> tuple:
        """Run the candidate walk once and record its terminal action.

        Mirrors the historical per-packet loop exactly: entering this
        router marks its NID visited when the NID is a live candidate;
        then candidates are tried in priority order — CID candidates
        become re-checked *steps* (their store lookup cannot be
        cached), the first actionable SID/HID/NID candidate becomes the
        terminal.  CID candidates at lower priority than the terminal
        are unreachable and are not recorded.
        """
        plan = dst.plan
        bit_of = plan.bit_of
        pre_mask = 0
        if self.nid in plan.candidates(mask):
            pre_mask = bit_of[self.nid]
            mask |= pre_mask
        cid_steps: list[tuple[XID, int]] = []
        check_cids = (
            self._content_store is not None
            and self._cid_request_handler is not None
        )
        steps = None
        for candidate in plan.candidates(mask):
            principal = candidate.principal_type
            if principal is PrincipalType.CID:
                if check_cids:
                    cid_steps.append((candidate, bit_of[candidate]))
                    steps = tuple(cid_steps)
            elif principal is PrincipalType.SID:
                if candidate in self.services:
                    return (_SID, pre_mask, candidate, steps)
            elif principal is PrincipalType.HID:
                if candidate == self.hid:
                    return (_LOCAL, pre_mask, bit_of[candidate], steps)
                out = self.engine.port_for(candidate)
                if out is not None:
                    return (_FORWARD, pre_mask, out, steps)
            elif principal is PrincipalType.NID:
                # Our own NID was folded into pre_mask above; anything
                # else routes toward that network (or the default).
                out = self.engine.port_for(candidate)
                if out is not None:
                    return (_FORWARD, pre_mask, out, steps)
        return (_DROP, pre_mask, None, steps)

    def _deliver_local(self, packet: "Packet", port: Port) -> None:
        """The packet is addressed to this router itself."""
        if packet.session_id is not None:
            handler = self._session_handlers.get(packet.session_id)
            if handler is not None:
                handler(packet, port)
                return
        handler = self._type_handlers.get(packet.ptype)
        if handler is not None:
            handler(packet, port)
            return
        self.dropped_unhandled += 1


class AccessPoint(Host):
    """A layer-2 bridge between a wireless port and a wired uplink.

    The paper uses COTS APs that bridge the client onto the edge
    network; XIA "runs natively on any layer-2 device".  The AP does no
    XIA processing: packets from the wireless side go out the uplink
    and vice versa.
    """

    def __init__(self, sim: "Simulator", name: str, hid: XID) -> None:
        super().__init__(sim, name, hid)
        self.bridged_packets = 0

    def handle_packet(self, packet: "Packet", port: Port) -> None:
        trace = packet.trace
        if trace is not None:
            trace.append(self.name)
        for other in self.ports:
            if other is not port:
                if other.is_up:
                    self.bridged_packets += 1
                    other.send(packet)
                return
