"""The XIA forwarding engine and router device.

Routers forward packets by walking the destination DAG: try the
highest-priority candidate XID the packet has not yet satisfied; a CID
can be served from the local XCache, an NID matches either this
network (mark visited and continue) or a route toward another network,
an HID is either this node, a locally-attached host, or unroutable
here, and an SID is a locally-registered service (e.g. the Staging
VNF).  Candidates that cannot be acted on fall through to the next —
this is XIA's fallback semantics, and is what lets a CID request reach
the origin server when no cache on the path holds the chunk.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.net.nodes import _trace_enabled
from repro.net.link import Port
from repro.net.nodes import Host
from repro.xia.ids import PrincipalType, XID

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.processing import ProcessingModel
    from repro.sim import Simulator
    from repro.xcache.store import ContentStore
    from repro.xia.packet import Packet


class ForwardingEngine:
    """Route tables for one router, keyed by principal type."""

    def __init__(self) -> None:
        self.nid_routes: dict[XID, Port] = {}
        self.hid_routes: dict[XID, Port] = {}
        self.default_port: Optional[Port] = None

    def set_nid_route(self, nid: XID, port: Port) -> None:
        self._expect(nid, PrincipalType.NID)
        self.nid_routes[nid] = port

    def set_hid_route(self, hid: XID, port: Port) -> None:
        self._expect(hid, PrincipalType.HID)
        self.hid_routes[hid] = port

    def remove_hid_route(self, hid: XID) -> None:
        self.hid_routes.pop(hid, None)

    def port_for(self, xid: XID) -> Optional[Port]:
        if xid.principal_type is PrincipalType.NID:
            return self.nid_routes.get(xid, self.default_port)
        if xid.principal_type is PrincipalType.HID:
            return self.hid_routes.get(xid)
        return None

    @staticmethod
    def _expect(xid: XID, principal_type: PrincipalType) -> None:
        if xid.principal_type is not principal_type:
            raise ConfigurationError(f"expected {principal_type.value}, got {xid!r}")


class XIARouter(Host):
    """An XIA router: forwarding engine + optional XCache + services.

    Routers are also hosts (they have an HID and terminate transport
    sessions) because XCache runs *on* them: a chunk served from the
    router's cache is a transport session between the router and the
    client.
    """

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        hid: XID,
        nid: XID,
        processing: Optional["ProcessingModel"] = None,
        content_store: Optional["ContentStore"] = None,
    ) -> None:
        super().__init__(sim, name, hid, processing=processing)
        if nid.principal_type is not PrincipalType.NID:
            raise ConfigurationError(f"router NID expected, got {nid!r}")
        self.nid = nid
        self.engine = ForwardingEngine()
        self.content_store = content_store
        #: Handler for CID requests that hit the local store.
        self.cid_request_handler: Optional[Callable[["Packet", Port], None]] = None
        #: Locally registered services (SID -> handler), e.g. Staging VNF.
        self.services: dict[XID, Callable[["Packet", Port], None]] = {}
        self.forwarded_packets = 0
        self.dropped_unroutable = 0

    # -- service registry ---------------------------------------------------

    def register_service(
        self, sid: XID, handler: Callable[["Packet", Port], None]
    ) -> None:
        if sid.principal_type is not PrincipalType.SID:
            raise ConfigurationError(f"expected a SID, got {sid!r}")
        self.services[sid] = handler

    # -- sending (locally originated packets) -----------------------------------

    def send(self, packet: "Packet", port: Optional[Port] = None) -> None:
        """Route a locally-originated packet out the right port.

        Unlike plain hosts, a router picks the egress by consulting its
        own forwarding engine (cache responses leave toward whichever
        network the client is in).
        """
        if port is not None:
            port.send(packet)
            return
        out = self._route(packet)
        if out is None:
            self.dropped_unroutable += 1
            return
        out.send(packet)

    def _route(self, packet: "Packet") -> Optional[Port]:
        if self.nid in packet.dst.next_candidates(packet.visited):
            packet.mark_visited(self.nid)
        for candidate in packet.dst.next_candidates(packet.visited):
            principal = candidate.principal_type
            if principal in (PrincipalType.HID, PrincipalType.NID):
                if candidate == self.hid:
                    continue
                out = self.engine.port_for(candidate)
                if out is not None:
                    return out
        return None

    # -- forwarding ------------------------------------------------------------

    def handle_packet(self, packet: "Packet", port: Port) -> None:
        packet.hop_count += 1
        if _trace_enabled():
            packet.trace.append(self.name)
        # Entering this router means entering its network.
        if self.nid in packet.dst.next_candidates(packet.visited):
            packet.mark_visited(self.nid)

        for candidate in packet.dst.next_candidates(packet.visited):
            principal = candidate.principal_type
            if principal is PrincipalType.CID:
                if self._try_serve_cid(candidate, packet, port):
                    return
            elif principal is PrincipalType.SID:
                handler = self.services.get(candidate)
                if handler is not None:
                    handler(packet, port)
                    return
            elif principal is PrincipalType.HID:
                if candidate == self.hid:
                    packet.mark_visited(candidate)
                    self._deliver_local(packet, port)
                    return
                out = self.engine.port_for(candidate)
                if out is not None:
                    self._forward(packet, out)
                    return
            elif principal is PrincipalType.NID:
                # Our own NID was marked visited above; anything else
                # routes toward that network (or the default).
                out = self.engine.port_for(candidate)
                if out is not None:
                    self._forward(packet, out)
                    return
        self.dropped_unroutable += 1

    def _try_serve_cid(self, cid: XID, packet: "Packet", port: Port) -> bool:
        if self.content_store is None or self.cid_request_handler is None:
            return False
        from repro.xia.packet import PacketType

        # Only *requests* are answered from the cache; transport data
        # packets of an ongoing chunk transfer carry session ids and are
        # routed to their endpoints by HID.
        if packet.ptype is not PacketType.CHUNK_REQUEST:
            return False
        if not self.content_store.has(cid):
            return False
        packet.mark_visited(cid)
        self.cid_request_handler(packet, port)
        return True

    def _deliver_local(self, packet: "Packet", port: Port) -> None:
        """The packet is addressed to this router itself."""
        if packet.session_id is not None:
            handler = self._session_handlers.get(packet.session_id)
            if handler is not None:
                handler(packet, port)
                return
        handler = self._type_handlers.get(packet.ptype)
        if handler is not None:
            handler(packet, port)
            return
        self.dropped_unhandled += 1

    def _forward(self, packet: "Packet", out: Port) -> None:
        self.forwarded_packets += 1
        out.send(packet)


class AccessPoint(Host):
    """A layer-2 bridge between a wireless port and a wired uplink.

    The paper uses COTS APs that bridge the client onto the edge
    network; XIA "runs natively on any layer-2 device".  The AP does no
    XIA processing: packets from the wireless side go out the uplink
    and vice versa.
    """

    def __init__(self, sim: "Simulator", name: str, hid: XID) -> None:
        super().__init__(sim, name, hid)
        self.bridged_packets = 0

    def handle_packet(self, packet: "Packet", port: Port) -> None:
        if _trace_enabled():
            packet.trace.append(self.name)
        for other in self.ports:
            if other is not port:
                if other.is_up:
                    self.bridged_packets += 1
                    other.send(packet)
                return
