"""The Network Joining Protocol (NetJoin) advertisements.

XIA's NetJoin lets an access network advertise its presence *and any
usable VNF information* in its beacon messages — this is how SoftStage
clients discover Staging VNFs without contacting anything (§III-C,
footnote 2).  We model the beacon payload as a
:class:`NetworkAdvertisement` carried alongside RSS in scan results;
the :class:`AdvertisementDirectory` is the per-testbed registry the
scanning machinery draws from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.xia.ids import PrincipalType, XID


@dataclass(frozen=True)
class NetworkAdvertisement:
    """One access network's NetJoin beacon payload."""

    #: SSID-level name the client sees.
    network_name: str
    nid: XID
    #: HID of the gateway/XCache router of this network.
    gateway_hid: XID
    #: SID of the staging VNF, when one is deployed.
    vnf_sid: Optional[XID] = None

    def __post_init__(self) -> None:
        if self.nid.principal_type is not PrincipalType.NID:
            raise ConfigurationError(f"advertisement NID expected, got {self.nid!r}")
        if self.gateway_hid.principal_type is not PrincipalType.HID:
            raise ConfigurationError(
                f"advertisement gateway HID expected, got {self.gateway_hid!r}"
            )
        if (
            self.vnf_sid is not None
            and self.vnf_sid.principal_type is not PrincipalType.SID
        ):
            raise ConfigurationError(
                f"advertisement VNF SID expected, got {self.vnf_sid!r}"
            )

    @property
    def has_vnf(self) -> bool:
        return self.vnf_sid is not None


class AdvertisementDirectory:
    """Registry of NetJoin advertisements, keyed by AP name."""

    def __init__(self) -> None:
        self._by_ap: dict[str, NetworkAdvertisement] = {}

    def announce(self, ap_name: str, advertisement: NetworkAdvertisement) -> None:
        if ap_name in self._by_ap:
            raise ConfigurationError(f"AP {ap_name!r} already announces")
        self._by_ap[ap_name] = advertisement

    def lookup(self, ap_name: str) -> Optional[NetworkAdvertisement]:
        return self._by_ap.get(ap_name)

    def __len__(self) -> int:
        return len(self._by_ap)

    def __contains__(self, ap_name: str) -> bool:
        return ap_name in self._by_ap
