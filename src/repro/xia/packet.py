"""XIA packets.

A packet carries a destination DAG, a source DAG, a principal-specific
type, and an opaque payload.  Because this is a simulation, payloads
are Python objects and ``size_bytes`` declares how big the packet is on
the wire (headers included).

Two fast-path mechanisms live here (see DESIGN.md §10):

- the visited set a router updates while walking the destination DAG
  is an integer bitmask over the DAG's node indices
  (:attr:`Packet.visited_mask`), with :attr:`Packet.visited` /
  :meth:`Packet.mark_visited` kept as set-based shims;
- a module-level packet free list mirrored on
  ``Simulator.pooled_event``: transports draw DATA/ACK/request packets
  from :meth:`Packet.acquire` and hand them back with
  :meth:`Packet.release` at end of life, so a steady-state transfer
  allocates no packet objects.  ``set_packet_poison(True)`` turns
  recycling into quarantine-and-poison, making any use-after-release
  raise instead of silently reading recycled state.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional

from repro.errors import PacketLifecycleError
from repro.xia.dag import DagAddress
from repro.xia.ids import XID

#: XIA header size used for on-wire accounting.  The real header is
#: variable-length (it serializes two DAGs); 64 bytes is the common case
#: for the shapes SoftStage uses and close to the prototype's figure.
XIA_HEADER_BYTES = 64

_packet_ids = itertools.count(1)

#: When True, packets record the name of every device they traverse in
#: ``packet.trace`` — invaluable in tests, too slow for big sweeps.
#: Read at packet *creation*: the per-hop path only tests whether the
#: packet carries a trace list, so the flag check is hoisted out of
#: the forwarding loop while toggles after import are still honored
#: for every packet created afterwards.
TRACE_PACKETS = False


def set_trace_packets(enabled: bool) -> None:
    """Toggle per-packet traversal tracing for packets created next."""
    global TRACE_PACKETS
    TRACE_PACKETS = bool(enabled)


class PacketType(enum.Enum):
    """Packet kinds used by the transports and the control plane."""

    DATA = "data"
    ACK = "ack"
    SYN = "syn"
    SYN_ACK = "syn-ack"
    FIN = "fin"
    CHUNK_REQUEST = "chunk-request"
    CHUNK_RESPONSE = "chunk-response"
    STAGE_REQUEST = "stage-request"
    STAGE_RESPONSE = "stage-response"
    MIGRATE = "migrate"
    MIGRATE_ACK = "migrate-ack"
    BEACON = "beacon"
    CONTROL = "control"


class _Poison:
    """Sentinel installed on released packets in poison mode.

    Any attribute access raises, so a transport touching a recycled
    packet fails loudly at the exact use site instead of reading
    whatever the next flow wrote into the object.
    """

    __slots__ = ()

    def __getattr__(self, name: str):
        raise PacketLifecycleError(
            f"use-after-release: read .{name} of a recycled packet "
            "(poison mode)"
        )

    def __getitem__(self, key):
        raise PacketLifecycleError(
            f"use-after-release: read [{key!r}] of a recycled packet "
            "(poison mode)"
        )

    def __iter__(self):
        raise PacketLifecycleError(
            "use-after-release: iterated a recycled packet field "
            "(poison mode)"
        )

    def __bool__(self) -> bool:
        raise PacketLifecycleError(
            "use-after-release: truth-tested a recycled packet field "
            "(poison mode)"
        )

    def _no_compare(self, other):
        raise PacketLifecycleError(
            "use-after-release: compared a recycled packet field "
            "(poison mode)"
        )

    __lt__ = __le__ = __gt__ = __ge__ = _no_compare

    def __repr__(self) -> str:
        return "<poisoned>"


_POISON: Any = _Poison()

# -- the free list -----------------------------------------------------------

_pool: list["Packet"] = []
#: Free-list size cap: beyond this, released packets go to the GC.  The
#: working set is bounded by packets in flight (cwnd + ACK clock), so
#: the cap only matters after pathological bursts.
POOL_LIMIT = 1024

#: When True, ``release`` poisons and quarantines instead of recycling
#: (deterministic use-after-release detection; debug only).
POISON_RECYCLED = False

#: When True, ``acquire`` always allocates (parity testing).
POOL_DISABLED = False

pool_reuses = 0
pool_allocs = 0
pool_releases = 0


def set_packet_poison(enabled: bool) -> None:
    """Debug mode: poison released packets instead of recycling them."""
    global POISON_RECYCLED
    POISON_RECYCLED = bool(enabled)


def set_packet_pool(enabled: bool) -> None:
    """Disable/enable recycling (releases drop to the GC when off)."""
    global POOL_DISABLED
    POOL_DISABLED = not enabled
    if POOL_DISABLED:
        _pool.clear()


def packet_pool_stats() -> dict[str, int]:
    """Free-list telemetry (module-wide; per-process, like the pool)."""
    return {
        "reuses": pool_reuses,
        "allocs": pool_allocs,
        "releases": pool_releases,
        "size": len(_pool),
    }


class Packet:
    """A single XIA packet in flight."""

    __slots__ = (
        "packet_id",
        "ptype",
        "dst",
        "src",
        "payload",
        "size_bytes",
        "session_id",
        "seq",
        "visited_mask",
        "hop_count",
        "created_at",
        "trace",
        "_pooled",
        "_released",
    )

    def __init__(
        self,
        ptype: PacketType,
        dst: DagAddress,
        src: DagAddress,
        payload: Any = None,
        size_bytes: int = XIA_HEADER_BYTES,
        session_id: Optional[int] = None,
        seq: int = 0,
        created_at: float = 0.0,
    ) -> None:
        if size_bytes < XIA_HEADER_BYTES:
            size_bytes = XIA_HEADER_BYTES
        self.packet_id = next(_packet_ids)
        self.ptype = ptype
        self.dst = dst
        self.src = src
        self.payload = payload
        self.size_bytes = int(size_bytes)
        self.session_id = session_id
        self.seq = seq
        #: Bitmask over ``dst.plan`` node indices: XIDs already
        #: satisfied along the DAG (updated by routers).
        self.visited_mask = 0
        self.hop_count = 0
        self.created_at = created_at
        #: Node names traversed (``None`` unless TRACE_PACKETS was set
        #: when the packet was created).
        self.trace: Optional[list[str]] = [] if TRACE_PACKETS else None
        self._pooled = False
        self._released = False

    # -- free list -----------------------------------------------------------

    @classmethod
    def acquire(
        cls,
        ptype: PacketType,
        dst: DagAddress,
        src: DagAddress,
        payload: Any = None,
        size_bytes: int = XIA_HEADER_BYTES,
        session_id: Optional[int] = None,
        seq: int = 0,
        created_at: float = 0.0,
    ) -> "Packet":
        """A packet from the free list (or a fresh one).

        Mirrors ``Simulator.pooled_event``: only for packets whose end
        of life is explicit — the transports release DATA/ACK/request
        packets in their receive handlers.  Recycled packets get a
        fresh ``packet_id``, so id-based bookkeeping never sees reuse.
        """
        global pool_reuses, pool_allocs
        if _pool and not POOL_DISABLED:
            packet = _pool.pop()
            pool_reuses += 1
            if size_bytes < XIA_HEADER_BYTES:
                size_bytes = XIA_HEADER_BYTES
            packet.packet_id = next(_packet_ids)
            packet.ptype = ptype
            packet.dst = dst
            packet.src = src
            packet.payload = payload
            packet.size_bytes = int(size_bytes)
            packet.session_id = session_id
            packet.seq = seq
            packet.visited_mask = 0
            packet.hop_count = 0
            packet.created_at = created_at
            packet.trace = [] if TRACE_PACKETS else None
            packet._released = False
            return packet
        pool_allocs += 1
        packet = cls(
            ptype, dst, src, payload=payload, size_bytes=size_bytes,
            session_id=session_id, seq=seq, created_at=created_at,
        )
        packet._pooled = True
        return packet

    def release(self) -> None:
        """Hand the packet back to the free list (end of life).

        No-op for packets built with the plain constructor — tests and
        one-shot control-plane senders keep full ownership of those.
        Double release of a pooled packet raises.  In poison mode the
        packet is scrubbed and quarantined instead of recycled.
        """
        global pool_releases
        if not self._pooled:
            return
        if self._released:
            raise PacketLifecycleError(
                f"packet #{self.packet_id} released twice"
            )
        self._released = True
        pool_releases += 1
        if POISON_RECYCLED:
            # ptype stays intact so the demux still routes the stale
            # packet to a real handler, which then trips on its first
            # data-field read — the realistic use-after-release shape.
            self.dst = _POISON
            self.src = _POISON
            self.payload = _POISON
            self.session_id = _POISON
            self.seq = _POISON
            self.trace = None
            return
        if POOL_DISABLED or len(_pool) >= POOL_LIMIT:
            return
        # Drop references so a pooled packet pins neither chunks nor
        # addresses (payload dicts are owned by their senders).
        self.dst = None  # type: ignore[assignment]
        self.src = None  # type: ignore[assignment]
        self.payload = None
        self.trace = None
        _pool.append(self)

    # -- visited-set shims ---------------------------------------------------

    @property
    def visited(self) -> frozenset[XID]:
        """XIDs already satisfied along the DAG, as a set (shim over
        :attr:`visited_mask`; membership is relative to ``dst``'s DAG,
        the only thing the forwarding walk ever tests against)."""
        mask = self.visited_mask
        if not mask:
            return frozenset()
        return self.dst.plan.visited_xids(mask)

    @visited.setter
    def visited(self, xids) -> None:
        self.visited_mask = self.dst.plan.mask_of(xids)

    def mark_visited(self, xid: XID) -> None:
        bit = self.dst.plan.bit_of.get(xid)
        if bit:
            self.visited_mask |= bit

    def reply_template(self) -> tuple[DagAddress, DagAddress]:
        """(dst, src) for a reply to this packet."""
        return self.src, self.dst

    def __repr__(self) -> str:
        if self._released:
            return f"<Packet #{self.packet_id} released>"
        return (
            f"<Packet #{self.packet_id} {self.ptype.value} "
            f"{self.size_bytes}B seq={self.seq} sess={self.session_id} "
            f"dst={self.dst.intent.short}>"
        )
