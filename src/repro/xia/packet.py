"""XIA packets.

A packet carries a destination DAG, a source DAG, a principal-specific
type, and an opaque payload.  Because this is a simulation, payloads
are Python objects and ``size_bytes`` declares how big the packet is on
the wire (headers included).
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional

from repro.xia.dag import DagAddress
from repro.xia.ids import XID

#: XIA header size used for on-wire accounting.  The real header is
#: variable-length (it serializes two DAGs); 64 bytes is the common case
#: for the shapes SoftStage uses and close to the prototype's figure.
XIA_HEADER_BYTES = 64

_packet_ids = itertools.count(1)

#: When True, packets record the name of every device they traverse in
#: ``packet.trace`` — invaluable in tests, too slow for big sweeps.
TRACE_PACKETS = False


class PacketType(enum.Enum):
    """Packet kinds used by the transports and the control plane."""

    DATA = "data"
    ACK = "ack"
    SYN = "syn"
    SYN_ACK = "syn-ack"
    FIN = "fin"
    CHUNK_REQUEST = "chunk-request"
    CHUNK_RESPONSE = "chunk-response"
    STAGE_REQUEST = "stage-request"
    STAGE_RESPONSE = "stage-response"
    MIGRATE = "migrate"
    MIGRATE_ACK = "migrate-ack"
    BEACON = "beacon"
    CONTROL = "control"


class Packet:
    """A single XIA packet in flight."""

    __slots__ = (
        "packet_id",
        "ptype",
        "dst",
        "src",
        "payload",
        "size_bytes",
        "session_id",
        "seq",
        "visited",
        "hop_count",
        "created_at",
        "trace",
    )

    def __init__(
        self,
        ptype: PacketType,
        dst: DagAddress,
        src: DagAddress,
        payload: Any = None,
        size_bytes: int = XIA_HEADER_BYTES,
        session_id: Optional[int] = None,
        seq: int = 0,
        created_at: float = 0.0,
    ) -> None:
        if size_bytes < XIA_HEADER_BYTES:
            size_bytes = XIA_HEADER_BYTES
        self.packet_id = next(_packet_ids)
        self.ptype = ptype
        self.dst = dst
        self.src = src
        self.payload = payload
        self.size_bytes = int(size_bytes)
        self.session_id = session_id
        self.seq = seq
        #: XIDs already satisfied along the DAG (updated by routers).
        self.visited: frozenset[XID] = frozenset()
        self.hop_count = 0
        self.created_at = created_at
        #: Node names traversed, for debugging and tests.
        self.trace: list[str] = []

    def mark_visited(self, xid: XID) -> None:
        self.visited = self.visited | {xid}

    def reply_template(self) -> tuple[DagAddress, DagAddress]:
        """(dst, src) for a reply to this packet."""
        return self.src, self.dst

    def __repr__(self) -> str:
        return (
            f"<Packet #{self.packet_id} {self.ptype.value} "
            f"{self.size_bytes}B seq={self.seq} sess={self.session_id} "
            f"dst={self.dst.intent.short}>"
        )
