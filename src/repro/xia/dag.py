"""DAG addresses with fallback semantics.

An XIA address is a directed acyclic graph whose sink is the *intent*
(the principal the sender ultimately wants to reach) and whose other
paths encode *fallbacks*: ways of reaching the intent when a router
cannot act on it directly.  SoftStage only needs the restricted shape
the paper writes as ``CID | NID : HID`` — "forward on the CID if you
can, otherwise route to network NID, then host HID, which can serve the
CID".  We represent that as an intent plus an ordered tuple of
*routes*, each route being a sequence of waypoint XIDs that ends,
implicitly, at the intent.  Route priority is positional: earlier
routes are preferred (direct-to-intent first).

The textual form uses ``|`` between alternatives and ``->`` between
waypoints of one route, e.g.::

    CID:ab... | NID:cd... -> HID:ef...
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Set

from repro.errors import AddressError
from repro.xia.ids import PrincipalType, XID


class DagNode:
    """A node of the address DAG: an XID plus its outgoing priority.

    Exposed mainly for introspection/pretty-printing; forwarding logic
    works on :class:`DagAddress` directly.
    """

    __slots__ = ("xid", "route_index", "position")

    def __init__(self, xid: XID, route_index: int, position: int) -> None:
        self.xid = xid
        self.route_index = route_index
        self.position = position

    def __repr__(self) -> str:
        return f"<DagNode {self.xid!r} route={self.route_index} pos={self.position}>"


class DagPlan:
    """A :class:`DagAddress` compiled for the forwarding fast path.

    Routers walk the same tiny DAG for every packet of a flow, so the
    plan assigns each distinct node a bit index once and memoizes the
    candidate walk per visited *bitmask*: after the first packet with a
    given mask, ``candidates(mask)`` is a single dict lookup instead of
    a per-route scan with set membership tests.  Plans are compiled
    lazily (first use) and cached on the address itself — addresses are
    immutable, so a plan can never go stale.
    """

    __slots__ = ("address", "bit_of", "node_order", "full_mask",
                 "_candidates_by_mask")

    def __init__(self, address: "DagAddress") -> None:
        self.address = address
        bit_of: dict[XID, int] = {}
        order: list[XID] = []
        for route in address.routes:
            for waypoint in route:
                if waypoint not in bit_of:
                    bit_of[waypoint] = 1 << len(order)
                    order.append(waypoint)
        if address.intent not in bit_of:
            bit_of[address.intent] = 1 << len(order)
            order.append(address.intent)
        #: XID -> its bit in a visited mask.
        self.bit_of = bit_of
        #: Nodes in bit order (bit ``1 << i`` is ``node_order[i]``).
        self.node_order = tuple(order)
        #: Mask with every node bit set.
        self.full_mask = (1 << len(order)) - 1
        self._candidates_by_mask: dict[int, tuple[XID, ...]] = {}

    def mask_of(self, visited: Iterable[XID]) -> int:
        """The bitmask for an iterable of visited XIDs.

        XIDs outside the DAG are ignored: they can never match a
        waypoint during the candidate walk, so they cannot change the
        forwarding decision.
        """
        mask = 0
        bit_of = self.bit_of
        for xid in visited:
            bit = bit_of.get(xid)
            if bit:
                mask |= bit
        return mask

    def visited_xids(self, mask: int) -> frozenset:
        """The set of DAG nodes a visited mask stands for."""
        bit_of = self.bit_of
        return frozenset(x for x in self.node_order if bit_of[x] & mask)

    def candidates(self, mask: int) -> tuple[XID, ...]:
        """Priority-ordered forwarding candidates for a visited mask.

        Memoized: the walk runs once per distinct mask over the life
        of the plan, then becomes a table lookup.
        """
        cached = self._candidates_by_mask.get(mask)
        if cached is None:
            cached = self._candidates_by_mask[mask] = self._walk(mask)
        return cached

    def _walk(self, mask: int) -> tuple[XID, ...]:
        address = self.address
        bit_of = self.bit_of
        candidates: list[XID] = []
        seen = 0
        for route in address.routes:
            candidate = address.intent
            for waypoint in route:
                if not (bit_of[waypoint] & mask):
                    candidate = waypoint
                    break
            bit = bit_of[candidate]
            if not (seen & bit):
                seen |= bit
                candidates.append(candidate)
        return tuple(candidates)

    def __repr__(self) -> str:
        return (
            f"<DagPlan nodes={len(self.node_order)} "
            f"masks={len(self._candidates_by_mask)} for {self.address!r}>"
        )


class DagAddress:
    """An XIA DAG address: an intent plus prioritized fallback routes."""

    __slots__ = ("intent", "routes", "_hash", "_plan")

    def __init__(
        self,
        intent: XID,
        routes: Sequence[Sequence[XID]] = ((),),
    ) -> None:
        if not isinstance(intent, XID):
            raise AddressError(f"intent must be an XID, got {intent!r}")
        normalized = tuple(tuple(route) for route in routes)
        if not normalized:
            normalized = ((),)
        for route in normalized:
            for waypoint in route:
                if not isinstance(waypoint, XID):
                    raise AddressError(f"waypoint must be an XID, got {waypoint!r}")
                if waypoint == intent:
                    raise AddressError("a route must not contain the intent itself")
        object.__setattr__(self, "intent", intent)
        object.__setattr__(self, "routes", normalized)
        object.__setattr__(self, "_hash", hash((intent, normalized)))
        object.__setattr__(self, "_plan", None)

    def __setattr__(self, name, value):
        raise AttributeError("DagAddress is immutable")

    # -- constructors ------------------------------------------------------

    @classmethod
    def content(cls, cid: XID, nid: XID, hid: XID) -> "DagAddress":
        """The paper's ``CID | NID : HID`` shape."""
        cls._expect(cid, PrincipalType.CID)
        cls._expect(nid, PrincipalType.NID)
        cls._expect(hid, PrincipalType.HID)
        return cls(cid, routes=((), (nid, hid)))

    @classmethod
    def host(cls, hid: XID, nid: Optional[XID] = None) -> "DagAddress":
        """Host-based addressing, ``NID : HID`` (the IP equivalent)."""
        cls._expect(hid, PrincipalType.HID)
        if nid is None:
            return cls(hid)
        cls._expect(nid, PrincipalType.NID)
        return cls(hid, routes=((nid,),))

    @classmethod
    def service(cls, sid: XID, nid: XID, hid: XID) -> "DagAddress":
        """Service addressing with a host fallback, ``SID | NID : HID``."""
        cls._expect(sid, PrincipalType.SID)
        return cls(sid, routes=((), (nid, hid)))

    @staticmethod
    def _expect(xid: XID, principal_type: PrincipalType) -> None:
        if xid.principal_type is not principal_type:
            raise AddressError(
                f"expected a {principal_type.value}, got {xid!r}"
            )

    # -- accessors ----------------------------------------------------------

    @property
    def fallback_nid(self) -> Optional[XID]:
        """The NID of the last-resort route, if any."""
        for route in reversed(self.routes):
            for waypoint in route:
                if waypoint.principal_type is PrincipalType.NID:
                    return waypoint
        return None

    @property
    def fallback_hid(self) -> Optional[XID]:
        """The HID of the last-resort route, if any."""
        for route in reversed(self.routes):
            for waypoint in reversed(route):
                if waypoint.principal_type is PrincipalType.HID:
                    return waypoint
        return None

    def nodes(self) -> list[DagNode]:
        """All DAG nodes (intent last), for introspection."""
        result = [
            DagNode(waypoint, route_index, position)
            for route_index, route in enumerate(self.routes)
            for position, waypoint in enumerate(route)
        ]
        result.append(DagNode(self.intent, -1, -1))
        return result

    def replace_fallback(self, nid: XID, hid: XID) -> "DagAddress":
        """Return a new address whose fallback path is ``NID -> HID``.

        This is exactly what the Staging VNF does when a chunk has been
        staged: the CID intent is kept, but the fallback now points at
        the edge network's XCache instead of the origin server
        (Table I, "New DAG").
        """
        self._expect(nid, PrincipalType.NID)
        self._expect(hid, PrincipalType.HID)
        has_direct = any(len(route) == 0 for route in self.routes)
        routes: list[tuple[XID, ...]] = [()] if has_direct else []
        routes.append((nid, hid))
        return DagAddress(self.intent, routes=tuple(routes))

    # -- forwarding support ---------------------------------------------------

    @property
    def plan(self) -> DagPlan:
        """The compiled traversal plan (built on first access)."""
        plan = self._plan
        if plan is None:
            plan = DagPlan(self)
            object.__setattr__(self, "_plan", plan)
        return plan

    def next_candidates(self, visited: Set[XID] = frozenset()) -> list[XID]:
        """XIDs a router should try, in priority order.

        For each route (most preferred first) the candidate is the first
        waypoint not yet *visited*; once all of a route's waypoints are
        visited the candidate is the intent itself.  Duplicates are
        dropped, keeping the highest priority occurrence.

        This is the set-based shim over :attr:`plan`; the per-hop path
        works on visited bitmasks via :meth:`DagPlan.candidates`.
        """
        plan = self.plan
        mask = plan.mask_of(visited) if visited else 0
        return list(plan.candidates(mask))

    # -- text codec -------------------------------------------------------------

    def to_string(self) -> str:
        parts = []
        for route in self.routes:
            if not route:
                parts.append(repr(self.intent))
            else:
                steps = " -> ".join(repr(waypoint) for waypoint in route)
                parts.append(f"{steps} -> {self.intent!r}")
        return " | ".join(parts)

    @classmethod
    def parse(cls, text: str) -> "DagAddress":
        """Inverse of :meth:`to_string`."""
        alternatives = [part.strip() for part in text.split("|")]
        if not alternatives or not alternatives[0]:
            raise AddressError(f"empty DAG address: {text!r}")
        intent: Optional[XID] = None
        routes: list[tuple[XID, ...]] = []
        for alternative in alternatives:
            steps = [XID.parse(step.strip()) for step in alternative.split("->")]
            if not steps:
                raise AddressError(f"empty alternative in {text!r}")
            this_intent = steps[-1]
            if intent is None:
                intent = this_intent
            elif this_intent != intent:
                raise AddressError(
                    f"alternatives disagree on the intent in {text!r}"
                )
            routes.append(tuple(steps[:-1]))
        assert intent is not None
        return cls(intent, routes=tuple(routes))

    # -- value semantics -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DagAddress)
            and self.intent == other.intent
            and self.routes == other.routes
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"<DagAddress {self.to_string()}>"


def visited_union(visited: Iterable[XID], *extra: XID) -> frozenset:
    """Convenience: extend a visited-set immutably."""
    return frozenset(visited) | set(extra)
