"""eXpressive Internet Architecture (XIA) substrate.

Implements the pieces of XIA that SoftStage builds on:

- self-certifying identifiers (:mod:`repro.xia.ids`): CID, HID, NID, SID;
- DAG addresses with fallback semantics (:mod:`repro.xia.dag`) including
  the paper's ``CID|NID:HID`` shorthand;
- packets (:mod:`repro.xia.packet`);
- the per-principal forwarding engine and route tables
  (:mod:`repro.xia.router`, :mod:`repro.xia.routing`);
- the Network Joining Protocol beacons used for VNF discovery
  (:mod:`repro.xia.netjoin`).

XIA's *active session migration* (Snoeren-style re-binding of live
transport sessions after a move) is implemented inside the transport —
see :meth:`repro.transport.reliable.ReceiverSession.migrate` and
:meth:`repro.transport.reliable.TransportEndpoint.migrate_receivers`.
"""

from repro.xia.ids import CID, HID, NID, SID, XID, PrincipalType
from repro.xia.dag import DagAddress, DagNode
from repro.xia.packet import Packet, PacketType

__all__ = [
    "CID",
    "DagAddress",
    "DagNode",
    "HID",
    "NID",
    "Packet",
    "PacketType",
    "PrincipalType",
    "SID",
    "XID",
]
