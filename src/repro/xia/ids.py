"""XIA identifiers (XIDs).

XIA addresses name *principals*: hosts (HID), networks (NID), content
(CID) and services (SID).  All XIDs are 160-bit self-certifying
identifiers.  A CID is the SHA-1 hash of the chunk payload, so any
receiver can verify integrity; HIDs and SIDs are hashes of the owner's
public key, enabling AIP-style accountability.  We reproduce those
derivations faithfully (over public-key *surrogate* byte strings — the
cryptographic strength of the keys is irrelevant to the evaluation).
"""

from __future__ import annotations

import enum
import hashlib
from typing import Any

from repro.errors import AddressError

_XID_BYTES = 20  # 160-bit identifiers, as in XIA


class PrincipalType(enum.Enum):
    """The XIA principal types used by SoftStage."""

    CID = "CID"
    HID = "HID"
    NID = "NID"
    SID = "SID"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class XID:
    """An immutable 160-bit XIA identifier of a given principal type.

    Instances are interned-friendly value objects: equality and hashing
    are by ``(type, id_bytes)``.
    """

    __slots__ = ("principal_type", "id_bytes", "_hash")

    def __init__(self, principal_type: PrincipalType, id_bytes: bytes) -> None:
        if not isinstance(principal_type, PrincipalType):
            raise AddressError(f"bad principal type: {principal_type!r}")
        if len(id_bytes) != _XID_BYTES:
            raise AddressError(
                f"XID must be {_XID_BYTES} bytes, got {len(id_bytes)}"
            )
        object.__setattr__(self, "principal_type", principal_type)
        object.__setattr__(self, "id_bytes", bytes(id_bytes))
        object.__setattr__(self, "_hash", hash((principal_type, id_bytes)))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("XID is immutable")

    @property
    def hex(self) -> str:
        return self.id_bytes.hex()

    @property
    def short(self) -> str:
        """First 8 hex digits — convenient for logs."""
        return self.hex[:8]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, XID)
            and self.principal_type is other.principal_type
            and self.id_bytes == other.id_bytes
        )

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "XID") -> bool:
        if not isinstance(other, XID):
            return NotImplemented
        return (self.principal_type.value, self.id_bytes) < (
            other.principal_type.value,
            other.id_bytes,
        )

    def __repr__(self) -> str:
        return f"{self.principal_type.value}:{self.hex}"

    # -- parsing ---------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "XID":
        """Parse the ``TYPE:hex`` representation produced by ``repr``."""
        try:
            type_name, _, hex_part = text.partition(":")
            principal_type = PrincipalType(type_name)
            id_bytes = bytes.fromhex(hex_part)
        except (ValueError, KeyError) as exc:
            raise AddressError(f"cannot parse XID from {text!r}") from exc
        return cls(principal_type, id_bytes)


def _sha1(data: bytes) -> bytes:
    return hashlib.sha1(data).digest()


def CID(content: bytes) -> XID:
    """Content identifier: SHA-1 hash of the chunk payload."""
    return XID(PrincipalType.CID, _sha1(content))


def HID(public_key: bytes | str) -> XID:
    """Host identifier: hash of the host's public key (surrogate)."""
    if isinstance(public_key, str):
        public_key = public_key.encode("utf-8")
    return XID(PrincipalType.HID, _sha1(b"HID|" + public_key))


def NID(network_name: bytes | str) -> XID:
    """Network identifier (the XIA analogue of an IP prefix)."""
    if isinstance(network_name, str):
        network_name = network_name.encode("utf-8")
    return XID(PrincipalType.NID, _sha1(b"NID|" + network_name))


def SID(service_key: bytes | str) -> XID:
    """Service identifier: hash of the service's public key (surrogate)."""
    if isinstance(service_key, str):
        service_key = service_key.encode("utf-8")
    return XID(PrincipalType.SID, _sha1(b"SID|" + service_key))
