"""Small shared utilities: units, validation, logging."""

from repro.util.units import (
    GB,
    KB,
    MB,
    bits,
    bytes_to_mbit,
    gbps,
    kbps,
    mbit_to_bytes,
    mbps,
    ms,
    seconds_to_ms,
    us,
)
from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
)

__all__ = [
    "GB",
    "KB",
    "MB",
    "bits",
    "bytes_to_mbit",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "gbps",
    "kbps",
    "mbit_to_bytes",
    "mbps",
    "ms",
    "seconds_to_ms",
    "us",
]
