"""Unit helpers.

Conventions used throughout the library:

- time is in **seconds** (floats),
- data sizes are in **bytes** (ints where exactness matters),
- rates are in **bits per second**.

These helpers make call sites read like the paper: ``mbps(60)``,
``2 * MB``, ``ms(20)``.
"""

from __future__ import annotations

#: Data size multipliers (SI decimal, matching how the paper and
#: networking literature quote file/chunk sizes such as "64 MB").
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000


def kbps(value: float) -> float:
    """Kilobits per second -> bits per second."""
    return value * 1e3


def mbps(value: float) -> float:
    """Megabits per second -> bits per second."""
    return value * 1e6


def gbps(value: float) -> float:
    """Gigabits per second -> bits per second."""
    return value * 1e9


def ms(value: float) -> float:
    """Milliseconds -> seconds."""
    return value * 1e-3


def us(value: float) -> float:
    """Microseconds -> seconds."""
    return value * 1e-6


def bits(num_bytes: float) -> float:
    """Bytes -> bits."""
    return num_bytes * 8


def bytes_to_mbit(num_bytes: float) -> float:
    """Bytes -> megabits."""
    return num_bytes * 8 / 1e6


def mbit_to_bytes(num_mbit: float) -> float:
    """Megabits -> bytes."""
    return num_mbit * 1e6 / 8


def seconds_to_ms(seconds: float) -> float:
    """Seconds -> milliseconds."""
    return seconds * 1e3
