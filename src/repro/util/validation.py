"""Argument validation helpers raising :class:`ConfigurationError`."""

from __future__ import annotations

from repro.errors import ConfigurationError


def check_positive(name: str, value: float) -> float:
    """Return ``value`` if strictly positive, else raise."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Return ``value`` if >= 0, else raise."""
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Return ``value`` if within [0, 1], else raise."""
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value!r}")
    return value
