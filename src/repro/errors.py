"""Exception hierarchy shared across the reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A component was configured with invalid or inconsistent values."""


class AddressError(ReproError):
    """Malformed or unroutable XIA address."""


class RoutingError(ReproError):
    """No route exists for a destination."""


class TransportError(ReproError):
    """A transport-level failure (reset, too many retries, migration)."""


class ConnectionLost(TransportError):
    """The underlying connectivity vanished mid-transfer."""


class CacheMiss(ReproError):
    """A requested chunk is not present in a content store."""


class ChunkIntegrityError(ReproError):
    """A chunk's payload does not hash to its CID."""


class StagingError(ReproError):
    """The staging control plane failed (no VNF, bad request, overload)."""


class VnfUnavailable(StagingError):
    """No Staging VNF is deployed or reachable in the edge network."""


class TraceFormatError(ReproError):
    """A connectivity/mobility trace file is malformed."""


class PacketLifecycleError(ReproError):
    """A recycled packet was touched after release (see xia.packet)."""
