"""Client association state over the packet-level network.

The client owns one wireless "data" radio.  Physically we pre-create a
(down) wireless link from a dedicated client port to every AP; being
*associated* to an AP means that link is up, the client's HID is
routed in that edge network, and the client's data interface is that
port.  The Table III note applies: layer-2 (re)association overhead is
assumed optimized to near-zero, so ``join_overhead`` defaults to 0 —
the cost of moving is paid by *transport session migration*, which the
applications trigger on the attach notification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.net.link import Port
from repro.net.nodes import Device, Host
from repro.net.topology import Network
from repro.sim import Simulator
from repro.xia.ids import XID


@dataclass(frozen=True)
class AccessPointInfo:
    """Everything the client side needs to know to join one AP."""

    name: str
    device: Device
    nid: XID
    client_port_index: int
    #: SID of the staging VNF advertised via NetJoin beacons (None when
    #: the edge network has no VNF deployed — the fault-tolerance case).
    vnf_sid: Optional[XID] = None
    #: HID of the edge network's XCache router (beacon payload).
    cache_hid: Optional[XID] = None


@dataclass(frozen=True)
class Association:
    """The client's current attachment."""

    ap: AccessPointInfo
    since: float


class AssociationController:
    """Owns the client's single data-radio association."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        client: Host,
        access_points: dict[str, AccessPointInfo],
        join_overhead: float = 0.0,
    ) -> None:
        if not access_points:
            raise ConfigurationError("no access points registered")
        self.sim = sim
        self.network = network
        self.client = client
        self.access_points = access_points
        self.join_overhead = join_overhead
        self.current: Optional[Association] = None
        self.associations = 0
        self.disassociations = 0
        self._on_attach: list[Callable[[Association], None]] = []
        self._on_detach: list[Callable[[Association], None]] = []
        self._attach_waiters: list = []
        self._joining = False
        # All access links start down.
        for info in access_points.values():
            port = client.port(info.client_port_index)
            if port.link is not None:
                port.link.set_up(False)

    # -- listeners ----------------------------------------------------------

    def on_attach(self, callback: Callable[[Association], None]) -> None:
        self._on_attach.append(callback)

    def on_detach(self, callback: Callable[[Association], None]) -> None:
        self._on_detach.append(callback)

    # -- state ---------------------------------------------------------------

    @property
    def is_associated(self) -> bool:
        return self.current is not None

    @property
    def is_joining(self) -> bool:
        """True while an associate() is in flight."""
        return self._joining

    def wait_attached(self):
        """None when associated; otherwise an event firing on attach.

        Matches the ``wait_for_connectivity`` hook of
        :class:`~repro.transport.chunkfetch.ChunkFetcher`.
        """
        if self.current is not None:
            return None
        event = self.sim.event(name="wait-attached")
        self._attach_waiters.append(event)
        return event

    @property
    def current_ap_name(self) -> Optional[str]:
        return self.current.ap.name if self.current else None

    def client_port(self, info: AccessPointInfo) -> Port:
        return self.client.port(info.client_port_index)

    # -- transitions -----------------------------------------------------------

    def associate(self, ap_name: str):
        """Process: join ``ap_name`` (leaving any current AP first)."""
        info = self.access_points.get(ap_name)
        if info is None:
            raise ConfigurationError(f"unknown AP {ap_name!r}")
        if self._joining:
            return self.current
        if self.current is not None:
            if self.current.ap.name == ap_name:
                return self.current
            self._detach()
        self._joining = True
        try:
            if self.join_overhead > 0:
                yield self.sim.timeout(self.join_overhead)
            else:
                yield self.sim.timeout(0.0)
            self.network.attach_client(
                self.client, self.client_port(info), info.device, info.nid
            )
            self.client.set_active_port(info.client_port_index)
            self.current = Association(ap=info, since=self.sim.now)
            self.associations += 1
        finally:
            self._joining = False
        for callback in list(self._on_attach):
            callback(self.current)
        waiters, self._attach_waiters = self._attach_waiters, []
        for waiter in waiters:
            if not waiter.triggered:
                waiter.succeed(self.current)
        return self.current

    def disassociate(self) -> None:
        """Drop the current association (coverage lost or forced)."""
        if self.current is not None:
            self._detach()

    def _detach(self) -> None:
        association = self.current
        self.current = None
        info = association.ap
        self.network.detach_client(
            self.client, self.client_port(info), info.nid
        )
        self.disassociations += 1
        for callback in list(self._on_detach):
            callback(association)

    def __repr__(self) -> str:
        return f"<AssociationController current={self.current_ap_name}>"
