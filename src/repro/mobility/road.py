"""A 1-D road model: AP placement + vehicle speed -> coverage.

This turns geometry into the coverage timelines the rest of the system
consumes: APs sit at positions along a road, the vehicle drives at a
constant speed, and an AP is audible while the mean RSS exceeds the
client sensitivity.  Each drive-by is discretized into short coverage
windows whose RSS follows the path-loss model, so RSS-based handoff
policies see realistic rise-and-fall signal shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.mobility.coverage import Coverage, CoverageWindow
from repro.mobility.rss import PathLossModel
from repro.util.validation import check_positive


@dataclass(frozen=True)
class RoadsideAp:
    """An AP at ``position`` meters along the road."""

    name: str
    position: float
    #: Lateral offset from the road, meters (defines minimum distance).
    offset: float = 10.0


class RoadModel:
    """Constant-speed drive past roadside APs."""

    def __init__(
        self,
        aps: Sequence[RoadsideAp],
        speed_mps: float,
        path_loss: PathLossModel | None = None,
        sensitivity_dbm: float = -85.0,
        window_resolution: float = 1.0,
    ) -> None:
        if not aps:
            raise ConfigurationError("need at least one roadside AP")
        check_positive("speed_mps", speed_mps)
        check_positive("window_resolution", window_resolution)
        self.aps = list(aps)
        self.speed = speed_mps
        self.path_loss = path_loss or PathLossModel()
        self.sensitivity = sensitivity_dbm
        self.resolution = window_resolution

    def _distance(self, ap: RoadsideAp, time: float) -> float:
        along = abs(self.speed * time - ap.position)
        return max((along**2 + ap.offset**2) ** 0.5, 0.1)

    def coverage(self, duration: float) -> Coverage:
        """Discretized coverage windows for a drive of ``duration``."""
        check_positive("duration", duration)
        in_range = self.path_loss.range_for_rss(self.sensitivity)
        windows: list[CoverageWindow] = []
        for ap in self.aps:
            # Solve |v t - x|^2 + offset^2 <= range^2 for t.
            if in_range <= ap.offset:
                continue
            half = (in_range**2 - ap.offset**2) ** 0.5
            enter = max((ap.position - half) / self.speed, 0.0)
            leave = min((ap.position + half) / self.speed, duration)
            if leave <= enter:
                continue
            # Discretize into resolution-sized RSS segments.
            cursor = enter
            while cursor < leave:
                segment_end = min(cursor + self.resolution, leave)
                rss_start = self.path_loss.rss_dbm(self._distance(ap, cursor))
                rss_end = self.path_loss.rss_dbm(self._distance(ap, segment_end))
                windows.append(
                    CoverageWindow(ap.name, cursor, segment_end, rss_start, rss_end)
                )
                cursor = segment_end
        return Coverage(windows)

    def encounter_time(self, ap: RoadsideAp) -> float:
        """Duration the given AP stays above sensitivity."""
        in_range = self.path_loss.range_for_rss(self.sensitivity)
        if in_range <= ap.offset:
            return 0.0
        half = (in_range**2 - ap.offset**2) ** 0.5
        return 2 * half / self.speed
