"""Cabernet-derived connectivity statistics and synthetic V2I traces.

The paper profiles its emulation on the Cabernet dataset [Eriksson et
al., MobiCom'08]: urban vehicular WiFi with a *median 4 s / mean 10 s*
AP connection time and *median 32 s / mean 126 s* between encounters
(§II-A), and the 25th/50th/75th percentiles it uses for Table III:
encounter 3-12 s, disconnection 8-100 s, packet loss 20-40%.

We encode those published statistics as lognormal distributions (the
standard fit for heavy-tailed encounter processes) and provide a
generator of synthetic connectivity traces matching them.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.mobility.traces import ConnectivityTrace
from repro.util.validation import check_positive


def lognormal_params(median: float, mean: float) -> tuple[float, float]:
    """(mu, sigma) of a lognormal with the given median and mean."""
    check_positive("median", median)
    check_positive("mean", mean)
    if mean <= median:
        raise ValueError("lognormal requires mean > median")
    mu = math.log(median)
    sigma = math.sqrt(2 * math.log(mean / median))
    return mu, sigma


@dataclass(frozen=True)
class CabernetDistributions:
    """The published Cabernet statistics, as used by the paper."""

    # §II-A: connection time with APs at urban vehicular speeds.
    encounter_median: float = 4.0
    encounter_mean: float = 10.0
    # §II-A: time between successive encounters.
    disconnection_median: float = 32.0
    disconnection_mean: float = 126.0

    # Table III percentile values (25th/50th/75th).
    ENCOUNTER_PERCENTILES = (3.0, 4.0, 12.0)
    DISCONNECTION_PERCENTILES = (8.0, 32.0, 100.0)
    LOSS_PERCENTILES = (0.22, 0.27, 0.37)

    def encounter_params(self) -> tuple[float, float]:
        return lognormal_params(self.encounter_median, self.encounter_mean)

    def disconnection_params(self) -> tuple[float, float]:
        return lognormal_params(self.disconnection_median, self.disconnection_mean)


class CabernetTraceGenerator:
    """Synthesizes V2I connectivity traces from the Cabernet statistics."""

    def __init__(
        self,
        rng: random.Random,
        distributions: CabernetDistributions | None = None,
        min_encounter: float = 1.0,
        max_encounter: float = 120.0,
        min_gap: float = 2.0,
        max_gap: float = 600.0,
    ) -> None:
        self.rng = rng
        self.dist = distributions or CabernetDistributions()
        self.min_encounter = min_encounter
        self.max_encounter = max_encounter
        self.min_gap = min_gap
        self.max_gap = max_gap

    def _clamped_lognormal(self, mu: float, sigma: float, lo: float, hi: float) -> float:
        return min(max(self.rng.lognormvariate(mu, sigma), lo), hi)

    def sample_encounter(self) -> float:
        mu, sigma = self.dist.encounter_params()
        return self._clamped_lognormal(mu, sigma, self.min_encounter, self.max_encounter)

    def sample_gap(self) -> float:
        mu, sigma = self.dist.disconnection_params()
        return self._clamped_lognormal(mu, sigma, self.min_gap, self.max_gap)

    def generate(self, duration: float, start_connected: bool = False) -> ConnectivityTrace:
        """A synthetic drive of ``duration`` seconds."""
        check_positive("duration", duration)
        intervals = []
        cursor = 0.0 if start_connected else min(self.sample_gap(), duration)
        while cursor < duration:
            encounter = min(self.sample_encounter(), duration - cursor)
            if encounter > 0:
                intervals.append((cursor, cursor + encounter))
            cursor += encounter + self.sample_gap()
        return ConnectivityTrace(intervals, duration)
