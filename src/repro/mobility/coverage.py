"""Coverage timelines: when each AP is audible and how strongly.

A :class:`Coverage` is a set of :class:`CoverageWindow` intervals, one
per (AP, visibility period), with linearly interpolated RSS.  Builders
construct the paper's evaluation patterns:

- :func:`alternating_coverage` — the Fig. 6 micro-benchmark pattern:
  the client "stays *Encounter Time* in each network, and disconnects
  from it for *Disconnection Time* before joining the other one";
- :func:`overlapping_coverage` — the §IV-D handoff pattern: 12 s
  encounters whose coverage overlaps the next network's by 3 s.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.errors import ConfigurationError
from repro.util.validation import check_non_negative, check_positive

#: A comfortable indoor/roadside RSS in dBm, used when the scenario
#: does not care about signal dynamics.
DEFAULT_RSS_DBM = -55.0


@dataclass(frozen=True)
class CoverageWindow:
    """One contiguous period during which an AP is audible."""

    ap: str
    start: float
    end: float
    rss_start: float = DEFAULT_RSS_DBM
    rss_end: float = DEFAULT_RSS_DBM

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigurationError(
                f"window end {self.end} must be after start {self.start}"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    def contains(self, time: float) -> bool:
        return self.start <= time < self.end

    def rss_at(self, time: float) -> float:
        if not self.contains(time):
            raise ValueError(f"t={time} outside window [{self.start}, {self.end})")
        fraction = (time - self.start) / self.duration
        return self.rss_start + fraction * (self.rss_end - self.rss_start)


class Coverage:
    """A queryable set of coverage windows."""

    def __init__(self, windows: Iterable[CoverageWindow]) -> None:
        self.windows = sorted(windows, key=lambda w: (w.start, w.ap))

    def visible_at(self, time: float) -> dict[str, float]:
        """Map of AP name -> RSS for APs audible at ``time``."""
        return {
            window.ap: window.rss_at(time)
            for window in self.windows
            if window.contains(time)
        }

    def change_times(self) -> list[float]:
        """Sorted unique times at which the visible set changes."""
        times = {window.start for window in self.windows}
        times.update(window.end for window in self.windows)
        return sorted(times)

    def end_time(self) -> float:
        return max((window.end for window in self.windows), default=0.0)

    def windows_for(self, ap: str) -> list[CoverageWindow]:
        return [window for window in self.windows if window.ap == ap]

    def connected_fraction(self, until: Optional[float] = None) -> float:
        """Fraction of [0, until) during which *any* AP is audible."""
        horizon = until if until is not None else self.end_time()
        if horizon <= 0:
            return 0.0
        events: list[tuple[float, int]] = []
        for window in self.windows:
            events.append((min(window.start, horizon), +1))
            events.append((min(window.end, horizon), -1))
        events.sort()
        covered = 0.0
        active = 0
        last = 0.0
        for time, delta in events:
            if active > 0:
                covered += time - last
            active += delta
            last = time
        return covered / horizon

    def __len__(self) -> int:
        return len(self.windows)

    def __repr__(self) -> str:
        return f"<Coverage {len(self.windows)} windows until {self.end_time():.1f}s>"


def alternating_coverage(
    aps: Sequence[str],
    encounter_time: float,
    disconnection_time: float,
    total_time: float,
    rss: float = DEFAULT_RSS_DBM,
) -> Coverage:
    """The Fig. 6 pattern: E seconds on AP_i, D seconds dark, repeat."""
    check_positive("encounter_time", encounter_time)
    check_non_negative("disconnection_time", disconnection_time)
    check_positive("total_time", total_time)
    if not aps:
        raise ConfigurationError("need at least one AP")
    windows = []
    ap_cycle = itertools.cycle(aps)
    start = 0.0
    while start < total_time:
        ap = next(ap_cycle)
        windows.append(
            CoverageWindow(ap, start, start + encounter_time, rss, rss)
        )
        start += encounter_time + disconnection_time
    return Coverage(windows)


def overlapping_coverage(
    aps: Sequence[str],
    encounter_time: float,
    overlap_time: float,
    total_time: float,
    rss_peak: float = DEFAULT_RSS_DBM,
    rss_edge: float = -80.0,
) -> Coverage:
    """The §IV-D handoff pattern: consecutive networks overlap.

    Each AP's window lasts ``encounter_time``; the next AP's window
    begins ``overlap_time`` before the current one ends.  RSS ramps up
    from ``rss_edge`` to ``rss_peak`` over the first overlap and back
    down over the last, so an RSS-greedy policy naturally switches
    inside the overlap.
    """
    check_positive("encounter_time", encounter_time)
    check_positive("overlap_time", overlap_time)
    if overlap_time >= encounter_time:
        raise ConfigurationError("overlap must be shorter than the encounter")
    if len(aps) < 2:
        raise ConfigurationError("overlap pattern needs at least two APs")
    windows = []
    ap_cycle = itertools.cycle(aps)
    start = 0.0
    count = math.ceil(total_time / (encounter_time - overlap_time)) + 1
    for _ in range(count):
        ap = next(ap_cycle)
        end = start + encounter_time
        ramp = overlap_time
        # Piecewise: ramp-up, plateau, ramp-down.
        windows.append(CoverageWindow(ap, start, start + ramp, rss_edge, rss_peak))
        if end - ramp > start + ramp:
            windows.append(
                CoverageWindow(ap, start + ramp, end - ramp, rss_peak, rss_peak)
            )
        windows.append(CoverageWindow(ap, end - ramp, end, rss_peak, rss_edge))
        start = end - overlap_time
        if start >= total_time:
            break
    return Coverage(windows)
