"""The scanning loop: what the client's second radio can hear.

SoftStage dedicates a *sensor* interface to scanning so the data radio
never leaves its channel (§II-B "Multi-homing").  The scanner samples
the coverage timeline periodically **and** exactly at coverage-change
instants, merges in each network's NetJoin advertisement (NID, VNF
SID, cache HID), enforces physics (an AP whose coverage ended takes
the association down with it) and notifies listeners — the SoftStage
Network Sensor, or the baseline's greedy policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.mobility.association import AccessPointInfo, AssociationController
from repro.mobility.coverage import Coverage
from repro.sim import Simulator
from repro.xia.ids import XID


@dataclass(frozen=True)
class VisibleNetwork:
    """One scan result entry (a heard beacon + NetJoin payload)."""

    ap: AccessPointInfo
    rss: float

    @property
    def name(self) -> str:
        return self.ap.name

    @property
    def nid(self) -> XID:
        return self.ap.nid

    @property
    def has_vnf(self) -> bool:
        return self.ap.vnf_sid is not None


ScanListener = Callable[[list[VisibleNetwork]], None]


class Scanner:
    """Drives scans off a coverage timeline."""

    def __init__(
        self,
        sim: Simulator,
        coverage: Coverage,
        controller: AssociationController,
        scan_interval: float = 0.5,
        horizon: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.coverage = coverage
        self.controller = controller
        self.scan_interval = scan_interval
        self.horizon = horizon if horizon is not None else coverage.end_time()
        self._listeners: list[ScanListener] = []
        self.scans = 0
        self._started = False

    def subscribe(self, listener: ScanListener) -> None:
        self._listeners.append(listener)

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.sim.process(self._periodic_loop())
        self.sim.process(self._edge_loop())

    # -- scan mechanics ------------------------------------------------------

    def visible_now(self) -> list[VisibleNetwork]:
        result = []
        for ap_name, rss in self.coverage.visible_at(self.sim.now).items():
            info = self.controller.access_points.get(ap_name)
            if info is not None:
                result.append(VisibleNetwork(ap=info, rss=rss))
        result.sort(key=lambda v: v.rss, reverse=True)
        return result

    def _scan_once(self) -> None:
        self.scans += 1
        visible = self.visible_now()
        self._enforce_coverage(visible)
        for listener in list(self._listeners):
            listener(visible)

    def _enforce_coverage(self, visible: list[VisibleNetwork]) -> None:
        current = self.controller.current
        if current is None:
            return
        if all(v.name != current.ap.name for v in visible):
            self.controller.disassociate()

    # -- driving processes ----------------------------------------------------

    def _periodic_loop(self):
        while self.sim.now < self.horizon:
            self._scan_once()
            yield self.sim.timeout(self.scan_interval)

    def _edge_loop(self):
        """Wake exactly when the visible set changes."""
        for change_at in self.coverage.change_times():
            if change_at > self.horizon:
                break
            if change_at > self.sim.now:
                yield self.sim.timeout(change_at - self.sim.now)
            self._scan_once()
