"""Vehicular mobility and connectivity models.

The paper's evaluation is driven entirely by *when the client can talk
to which access point and how well*.  This package provides:

- :mod:`repro.mobility.coverage` — coverage timelines: per-AP windows
  of visibility with RSS, plus builders for the paper's scenarios
  (alternating encounters, overlapping coverage);
- :mod:`repro.mobility.association` — the client's layer-2/3
  association state machine over the packet-level network;
- :mod:`repro.mobility.scanner` — the scanning loop feeding handoff
  policies (the SoftStage Network Sensor subscribes to it);
- :mod:`repro.mobility.rss` — log-distance path-loss RSS model;
- :mod:`repro.mobility.road` — a 1-D road with placed APs generating
  coverage from geometry;
- :mod:`repro.mobility.cabernet` — Cabernet-measurement distributions
  (encounter/disconnection/loss percentiles from the paper) and a
  synthetic V2I connectivity generator;
- :mod:`repro.mobility.wardriving` — synthesized Beijing wardriving
  traces matching Fig. 7(a)'s connectivity patterns;
- :mod:`repro.mobility.traces` — on-disk trace I/O.
"""

from repro.mobility.coverage import (
    Coverage,
    CoverageWindow,
    alternating_coverage,
    overlapping_coverage,
)
from repro.mobility.association import AccessPointInfo, Association, AssociationController
from repro.mobility.scanner import Scanner, VisibleNetwork
from repro.mobility.cabernet import CabernetDistributions, CabernetTraceGenerator
from repro.mobility.traces import ConnectivityTrace
from repro.mobility.wardriving import WardrivingSynthesizer

__all__ = [
    "AccessPointInfo",
    "Association",
    "AssociationController",
    "CabernetDistributions",
    "CabernetTraceGenerator",
    "ConnectivityTrace",
    "Coverage",
    "CoverageWindow",
    "Scanner",
    "VisibleNetwork",
    "WardrivingSynthesizer",
    "alternating_coverage",
    "overlapping_coverage",
]
