"""Synthetic Beijing wardriving traces (Fig. 7(a)).

The paper wardrives popular Beijing street blocks, keeps only
cellular-operator APs, and observes two regimes: "network coverage
either reaches above 80%, or less than 2%".  The trace-driven
experiment uses two traces from the high-coverage regime with
*different connectivity patterns*.  We synthesize both:

- ``trace 1`` — dense small cells: long encounters (20-60 s) with
  short gaps (2-10 s), coverage ≈ 85%;
- ``trace 2`` — clustered deployment: alternating well-covered
  stretches and streets with repeated medium gaps, coverage ≈ 80% with
  a choppier rhythm (many short encounters).
"""

from __future__ import annotations

import random

from repro.mobility.traces import ConnectivityTrace
from repro.util.validation import check_positive


class WardrivingSynthesizer:
    """Generates the two Fig. 7(a)-style high-coverage traces."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng

    def trace_one(self, duration: float = 300.0) -> ConnectivityTrace:
        """Dense small cells: medium encounters, short gaps (~85%)."""
        check_positive("duration", duration)
        intervals = []
        cursor = self.rng.uniform(0.0, 3.0)
        while cursor < duration:
            encounter = self.rng.uniform(4.0, 12.0)
            end = min(cursor + encounter, duration)
            intervals.append((cursor, end))
            cursor = end + self.rng.uniform(1.0, 3.5)
        return ConnectivityTrace(intervals, duration)

    def trace_two(self, duration: float = 300.0) -> ConnectivityTrace:
        """Clustered coverage: bursts of short encounters, medium gaps
        between covered stretches (~80%, choppier rhythm)."""
        check_positive("duration", duration)
        intervals = []
        cursor = self.rng.uniform(0.0, 3.0)
        while cursor < duration:
            # A covered stretch: several back-to-back APs with tiny gaps.
            burst_aps = self.rng.randint(3, 6)
            for _ in range(burst_aps):
                if cursor >= duration:
                    break
                encounter = self.rng.uniform(3.0, 8.0)
                end = min(cursor + encounter, duration)
                intervals.append((cursor, end))
                cursor = end + self.rng.uniform(0.8, 2.0)
            # Then a street with no operator APs.
            cursor += self.rng.uniform(5.0, 12.0)
        return ConnectivityTrace(intervals, duration)
