"""Received-signal-strength modeling (log-distance path loss)."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from repro.util.validation import check_positive


@dataclass(frozen=True)
class PathLossModel:
    """Log-distance path loss with optional log-normal shadowing.

    ``rss(d) = tx_power_dbm - pl_d0 - 10 n log10(d / d0) [- shadowing]``
    """

    tx_power_dbm: float = 20.0
    #: Path loss at the reference distance, dB.
    pl_d0: float = 40.0
    #: Reference distance, meters.
    d0: float = 1.0
    #: Path-loss exponent (urban street canyon ~ 2.7-3.5).
    exponent: float = 3.0
    #: Shadowing standard deviation, dB (0 disables).
    shadowing_sigma: float = 0.0

    def rss_dbm(self, distance: float, rng: Optional[random.Random] = None) -> float:
        check_positive("distance", distance)
        distance = max(distance, self.d0)
        rss = (
            self.tx_power_dbm
            - self.pl_d0
            - 10 * self.exponent * math.log10(distance / self.d0)
        )
        if self.shadowing_sigma > 0 and rng is not None:
            rss += rng.gauss(0.0, self.shadowing_sigma)
        return rss

    def range_for_rss(self, rss_threshold_dbm: float) -> float:
        """Distance at which mean RSS crosses the threshold."""
        exponent_term = (
            self.tx_power_dbm - self.pl_d0 - rss_threshold_dbm
        ) / (10 * self.exponent)
        return self.d0 * 10**exponent_term
