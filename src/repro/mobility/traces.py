"""Connectivity traces: binary on/off timelines and their file format.

A trace records the periods during which the vehicle had usable WiFi
coverage (Fig. 7(a) plots exactly this: 1 = connected, 0 = not).  The
on-disk format is a plain text file::

    # softstage-trace v1
    # duration <seconds>
    <start> <end>
    <start> <end>
    ...

with one connected interval per line.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import TraceFormatError
from repro.mobility.coverage import Coverage, CoverageWindow, DEFAULT_RSS_DBM

_MAGIC = "# softstage-trace v1"


class ConnectivityTrace:
    """An ordered list of non-overlapping connected intervals."""

    def __init__(
        self, intervals: Iterable[tuple[float, float]], duration: float
    ) -> None:
        self.intervals = sorted((float(a), float(b)) for a, b in intervals)
        self.duration = float(duration)
        last_end = 0.0
        for start, end in self.intervals:
            if start < last_end:
                raise TraceFormatError(
                    f"overlapping/unsorted interval ({start}, {end})"
                )
            if end <= start:
                raise TraceFormatError(f"empty interval ({start}, {end})")
            if end > self.duration + 1e-9:
                raise TraceFormatError(
                    f"interval ({start}, {end}) exceeds duration {self.duration}"
                )
            last_end = end

    # -- stats ---------------------------------------------------------------

    @property
    def connected_time(self) -> float:
        return sum(end - start for start, end in self.intervals)

    @property
    def coverage_fraction(self) -> float:
        return self.connected_time / self.duration if self.duration else 0.0

    def encounter_durations(self) -> list[float]:
        return [end - start for start, end in self.intervals]

    def gap_durations(self) -> list[float]:
        gaps = []
        cursor = 0.0
        for start, end in self.intervals:
            if start > cursor:
                gaps.append(start - cursor)
            cursor = end
        if cursor < self.duration:
            gaps.append(self.duration - cursor)
        return gaps

    def connected_at(self, time: float) -> bool:
        return any(start <= time < end for start, end in self.intervals)

    # -- conversion -----------------------------------------------------------

    def to_coverage(
        self, aps: Sequence[str], rss: float = DEFAULT_RSS_DBM
    ) -> Coverage:
        """Map intervals onto APs round-robin (successive encounters on
        a drive are different APs, so staged content stays behind)."""
        if not aps:
            raise TraceFormatError("need at least one AP name")
        windows = [
            CoverageWindow(aps[i % len(aps)], start, end, rss, rss)
            for i, (start, end) in enumerate(self.intervals)
        ]
        return Coverage(windows)

    # -- file I/O ----------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        lines = [_MAGIC, f"# duration {self.duration}"]
        lines += [f"{start} {end}" for start, end in self.intervals]
        Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "ConnectivityTrace":
        text = Path(path).read_text(encoding="utf-8")
        lines = [line.strip() for line in text.splitlines() if line.strip()]
        if not lines or lines[0] != _MAGIC:
            raise TraceFormatError(f"{path}: missing trace header")
        duration = None
        intervals = []
        for line in lines[1:]:
            if line.startswith("# duration"):
                try:
                    duration = float(line.split()[-1])
                except ValueError as exc:
                    raise TraceFormatError(f"bad duration line: {line!r}") from exc
            elif line.startswith("#"):
                continue
            else:
                parts = line.split()
                if len(parts) != 2:
                    raise TraceFormatError(f"bad interval line: {line!r}")
                try:
                    intervals.append((float(parts[0]), float(parts[1])))
                except ValueError as exc:
                    raise TraceFormatError(f"bad interval line: {line!r}") from exc
        if duration is None:
            raise TraceFormatError(f"{path}: missing duration")
        return cls(intervals, duration)

    def __repr__(self) -> str:
        return (
            f"<ConnectivityTrace {len(self.intervals)} encounters, "
            f"{self.coverage_fraction:.0%} coverage over {self.duration:.0f}s>"
        )
