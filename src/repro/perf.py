"""Persistent performance trajectory: ``BENCH_*.json`` recorders.

Every perf-sensitive harness (the kernel microbench, the parallel
sweep bench) appends its measured numbers to a small JSON file —
``BENCH_kernel.json``, ``BENCH_sweep.json`` — so the repository keeps
a *trajectory* of how fast the simulator is, and future changes can
assert "no regression" against a recorded baseline instead of a
guessed constant.

Wall-clock numbers are only comparable on the same machine, so every
entry carries a coarse machine :func:`fingerprint` (platform, CPU
count, Python version) and :func:`baseline` only consults entries
recorded on a matching machine.  Deterministic metrics (heap pushes
per packet, event counts) are machine-independent and can be checked
against any entry.

Usage::

    from repro import perf

    perf.record("kernel", {"events_per_sec": 1.3e6, "pushes_per_packet": 2.0})
    ok, base = perf.check_regression("kernel", "events_per_sec",
                                     current=1.1e6, allowed_drop=0.30)
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Optional

#: Entries kept per BENCH file (oldest dropped first).
HISTORY_LIMIT = 50


def fingerprint() -> str:
    """A coarse machine identity wall-clock numbers are comparable on."""
    return (
        f"{platform.system().lower()}-{platform.machine()}"
        f"-cpu{os.cpu_count() or 1}"
        f"-py{sys.version_info.major}.{sys.version_info.minor}"
    )


def bench_path(kind: str, directory: Optional[str] = None) -> str:
    """Where ``BENCH_{kind}.json`` lives (``REPRO_BENCH_DIR`` or cwd)."""
    directory = directory or os.environ.get("REPRO_BENCH_DIR") or "."
    return os.path.join(directory, f"BENCH_{kind}.json")


def load(kind: str, directory: Optional[str] = None) -> dict:
    """The recorded trajectory (``{"kind": ..., "entries": [...]}``)."""
    path = bench_path(kind, directory)
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
    except (FileNotFoundError, json.JSONDecodeError):
        return {"kind": kind, "entries": []}
    payload.setdefault("entries", [])
    return payload


def record(
    kind: str,
    metrics: dict,
    label: str = "",
    directory: Optional[str] = None,
) -> dict:
    """Append one measurement entry and rewrite ``BENCH_{kind}.json``.

    ``metrics`` must be JSON-serialisable (numbers, strings).  Returns
    the full payload after the append.
    """
    payload = load(kind, directory)
    payload["kind"] = kind
    payload["entries"].append(
        {
            "label": label,
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
            "machine": fingerprint(),
            "metrics": dict(metrics),
        }
    )
    payload["entries"] = payload["entries"][-HISTORY_LIMIT:]
    path = bench_path(kind, directory)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def baseline(
    kind: str,
    metric: str,
    directory: Optional[str] = None,
    same_machine: bool = True,
    mode: str = "max",
) -> Optional[float]:
    """The reference value of ``metric`` from the recorded trajectory.

    ``mode="max"`` (the default) takes the best value ever recorded —
    the strictest regression reference for higher-is-better metrics;
    ``mode="min"`` is the mirror for lower-is-better metrics;
    ``mode="latest"`` takes the most recent entry.  With
    ``same_machine=True`` only entries whose
    fingerprint matches this machine count (use for wall-clock
    metrics); pass ``False`` for deterministic metrics like heap
    pushes per packet.  Returns ``None`` when no eligible entry holds
    the metric — i.e. no baseline exists yet.
    """
    entries = load(kind, directory)["entries"]
    me = fingerprint()
    values = [
        entry["metrics"][metric]
        for entry in entries
        if metric in entry.get("metrics", {})
        and (not same_machine or entry.get("machine") == me)
    ]
    if not values:
        return None
    if mode == "max":
        return max(values)
    if mode == "min":
        return min(values)
    return values[-1]


def check_regression(
    kind: str,
    metric: str,
    current: float,
    allowed_drop: float = 0.30,
    directory: Optional[str] = None,
    same_machine: bool = True,
    higher_is_better: bool = True,
) -> tuple[bool, Optional[float]]:
    """Whether ``current`` is within ``allowed_drop`` of the baseline.

    Returns ``(ok, baseline_value)``.  With no recorded baseline the
    check trivially passes (``(True, None)``) — the caller should then
    :func:`record` the first entry.
    """
    base = baseline(
        kind,
        metric,
        directory,
        same_machine=same_machine,
        mode="max" if higher_is_better else "min",
    )
    if base is None or base == 0:
        return True, base
    if higher_is_better:
        return current >= base * (1.0 - allowed_drop), base
    return current <= base * (1.0 + allowed_drop), base
