"""A lightweight simulator profiler.

Answers "where does the wall-clock go?" for a simulation run without
external tooling: per-handler-class callback time, event-queue depth,
and heap-op counters, collected by the kernel itself (see
``Simulator.step``) at the cost of two ``perf_counter()`` calls per
step while installed — and a single ``is None`` check when not.

Keys are intentionally coarse so the table stays readable at any
scale: processes profile under ``process:<generator name>`` (e.g.
``process:download``, ``process:_stage_one``) and plain events under
``event:<class name>`` (``event:Timeout``, ``event:Event``...).

With ``sample_interval`` set, the profiler also emits a deterministic
:class:`~repro.obs.events.ProfilerSample` (queue depth + step count)
through the simulator's probe every N steps, so queue-depth evolution
lands in JSONL traces next to everything else — wall-clock numbers
deliberately stay out of the event stream to keep traces replay-exact.

Usage::

    profiler = SimProfiler(sim).install()
    sim.run(until=...)
    print(profiler.render())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.events import ProfilerSample
from repro.sim.core import Event, Simulator
from repro.sim.process import Process
from repro.xia import packet as packet_mod


@dataclass(frozen=True)
class HandlerStats:
    """Aggregate wall-clock cost of one handler class."""

    key: str
    calls: int
    total_s: float

    @property
    def mean_us(self) -> float:
        return self.total_s / self.calls * 1e6 if self.calls else 0.0


class SimProfiler:
    """Kernel-fed wall-clock and queue profiler for one simulator."""

    def __init__(
        self,
        sim: Simulator,
        sample_interval: int = 0,
    ) -> None:
        self.sim = sim
        #: Emit a ProfilerSample through ``sim.probe`` every N steps
        #: (0 disables sampling).
        self.sample_interval = int(sample_interval)
        self.steps = 0
        self.max_depth = 0
        self._depth_sum = 0
        self._by_key: dict[str, list] = {}  # key -> [total_s, calls]
        self._pushes_at_install = 0
        self._pool_reuses_at_install = 0
        self._pool_allocs_at_install = 0
        self._fwd_hits_at_install = 0
        self._fwd_misses_at_install = 0
        self._pkt_reuses_at_install = 0
        self._pkt_allocs_at_install = 0
        self._installed = False

    # -- wiring ------------------------------------------------------------

    def install(self) -> "SimProfiler":
        if self.sim._profiler is not None and self.sim._profiler is not self:
            raise RuntimeError("another profiler is already installed")
        self.sim._profiler = self
        self._pushes_at_install = self.sim.heap_pushes
        self._pool_reuses_at_install = self.sim.pool_reuses
        self._pool_allocs_at_install = self.sim.pool_allocs
        self._fwd_hits_at_install = self.sim.fwd_cache_hits
        self._fwd_misses_at_install = self.sim.fwd_cache_misses
        # The packet free list is module-wide (unlike the per-simulator
        # event pool), so the snapshot isolates this run's share.
        self._pkt_reuses_at_install = packet_mod.pool_reuses
        self._pkt_allocs_at_install = packet_mod.pool_allocs
        self._installed = True
        return self

    def uninstall(self) -> None:
        if self.sim._profiler is self:
            self.sim._profiler = None
        self._installed = False

    def __enter__(self) -> "SimProfiler":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()

    # -- kernel callback ---------------------------------------------------

    def record_step(self, event: Event, elapsed: float, depth: int) -> None:
        """Called by ``Simulator.step`` after each callback batch."""
        if isinstance(event, Process):
            key = f"process:{event.name or 'anonymous'}"
        else:
            key = f"event:{event.name.split('(')[0] or type(event).__name__}"
        cell = self._by_key.get(key)
        if cell is None:
            cell = self._by_key[key] = [0.0, 0]
        cell[0] += elapsed
        cell[1] += 1
        self.steps += 1
        self._depth_sum += depth
        if depth > self.max_depth:
            self.max_depth = depth
        interval = self.sample_interval
        if interval and self.steps % interval == 0:
            probe = self.sim.probe
            if probe.active:
                probe.emit(ProfilerSample(depth=depth, steps=self.steps))

    # -- results -----------------------------------------------------------

    @property
    def heap_pushes(self) -> int:
        """Events pushed onto the queue since :meth:`install`."""
        return self.sim.heap_pushes - self._pushes_at_install

    @property
    def heap_pops(self) -> int:
        """Events popped (= steps profiled)."""
        return self.steps

    @property
    def mean_depth(self) -> float:
        return self._depth_sum / self.steps if self.steps else 0.0

    @property
    def pool_reuses(self) -> int:
        """Pooled-event acquisitions served allocation-free since install."""
        return self.sim.pool_reuses - self._pool_reuses_at_install

    @property
    def pool_allocs(self) -> int:
        """Pooled-event acquisitions that had to allocate since install."""
        return self.sim.pool_allocs - self._pool_allocs_at_install

    @property
    def pool_reuse_rate(self) -> float:
        """Fraction of pooled-event acquisitions served from the free list."""
        total = self.pool_reuses + self.pool_allocs
        return self.pool_reuses / total if total else 0.0

    @property
    def fwd_cache_hits(self) -> int:
        """Forwarding decisions replayed from a router cache since install."""
        return self.sim.fwd_cache_hits - self._fwd_hits_at_install

    @property
    def fwd_cache_misses(self) -> int:
        """Forwarding decisions compiled (cache misses) since install."""
        return self.sim.fwd_cache_misses - self._fwd_misses_at_install

    @property
    def fwd_cache_hit_rate(self) -> float:
        """Fraction of per-hop forwarding decisions served from cache."""
        total = self.fwd_cache_hits + self.fwd_cache_misses
        return self.fwd_cache_hits / total if total else 0.0

    @property
    def packet_pool_reuses(self) -> int:
        """Packet acquisitions served from the free list since install."""
        return packet_mod.pool_reuses - self._pkt_reuses_at_install

    @property
    def packet_pool_allocs(self) -> int:
        """Packet acquisitions that had to allocate since install."""
        return packet_mod.pool_allocs - self._pkt_allocs_at_install

    @property
    def packet_pool_reuse_rate(self) -> float:
        """Fraction of packet acquisitions served allocation-free."""
        total = self.packet_pool_reuses + self.packet_pool_allocs
        return self.packet_pool_reuses / total if total else 0.0

    def stats(self) -> list[HandlerStats]:
        """Per-key stats, most expensive first (ties by key name)."""
        rows = [
            HandlerStats(key=key, calls=calls, total_s=total)
            for key, (total, calls) in self._by_key.items()
        ]
        rows.sort(key=lambda r: (-r.total_s, r.key))
        return rows

    def report(self) -> dict[str, object]:
        """A flat snapshot (JSON-friendly) of everything measured."""
        out: dict[str, object] = {
            "steps": self.steps,
            "heap_pushes": self.heap_pushes,
            "heap_pops": self.heap_pops,
            "queue_depth_max": self.max_depth,
            "queue_depth_mean": self.mean_depth,
            "pool_reuses": self.pool_reuses,
            "pool_allocs": self.pool_allocs,
            "pool_reuse_rate": self.pool_reuse_rate,
            "fwd_cache_hits": self.fwd_cache_hits,
            "fwd_cache_misses": self.fwd_cache_misses,
            "fwd_cache_hit_rate": self.fwd_cache_hit_rate,
            "packet_pool_reuses": self.packet_pool_reuses,
            "packet_pool_allocs": self.packet_pool_allocs,
            "packet_pool_reuse_rate": self.packet_pool_reuse_rate,
        }
        for row in self.stats():
            out[f"wall.{row.key}.total_s"] = row.total_s
            out[f"wall.{row.key}.calls"] = row.calls
        return out

    def render(self, title: str = "Simulator profile", top: Optional[int] = 15) -> str:
        """A fixed-width table of the hottest handler classes."""
        rows = self.stats()
        total = sum(r.total_s for r in rows) or 1.0
        header = (
            f"{'handler':>28} | {'calls':>9} | {'total (ms)':>10} | "
            f"{'mean (µs)':>9} | {'share':>6}"
        )
        rule = "-" * len(header)
        lines = [
            title,
            rule,
            f"steps={self.steps}  heap pushes={self.heap_pushes}  "
            f"pops={self.heap_pops}  queue depth mean={self.mean_depth:.1f} "
            f"max={self.max_depth}",
            f"event pool: {self.pool_reuses} reused / {self.pool_allocs} "
            f"allocated ({self.pool_reuse_rate:.1%} allocation-free)",
            f"packet pool: {self.packet_pool_reuses} reused / "
            f"{self.packet_pool_allocs} allocated "
            f"({self.packet_pool_reuse_rate:.1%} allocation-free)",
            f"forwarding cache: {self.fwd_cache_hits} hits / "
            f"{self.fwd_cache_misses} misses "
            f"({self.fwd_cache_hit_rate:.1%} hit rate)",
            rule,
            header,
            rule,
        ]
        shown = rows if top is None else rows[:top]
        for row in shown:
            lines.append(
                f"{row.key:>28} | {row.calls:>9} | {row.total_s * 1e3:>10.2f} | "
                f"{row.mean_us:>9.2f} | {row.total_s / total:>6.1%}"
            )
        if top is not None and len(rows) > top:
            rest = sum(r.total_s for r in rows[top:])
            lines.append(
                f"{f'... {len(rows) - top} more':>28} | {'':>9} | "
                f"{rest * 1e3:>10.2f} | {'':>9} | {rest / total:>6.1%}"
            )
        lines.append(rule)
        return "\n".join(lines)

    def __repr__(self) -> str:
        state = "installed" if self._installed else "detached"
        return f"<SimProfiler {state} steps={self.steps} keys={len(self._by_key)}>"
