"""Composite and timed events: timeouts, AnyOf/AllOf, conditions."""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.sim.core import Event, Simulator


class Timeout(Event):
    """An event that fires a fixed delay after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: Simulator, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        super().__init__(sim, name=f"timeout({delay})")
        self.delay = delay
        self._ok = True
        self._value = value
        sim.schedule(self, delay=delay)


class Condition(Event):
    """Fires when ``evaluate(events, n_fired)`` returns True.

    The value is a dict mapping each *fired* constituent event to its
    value, in firing order.
    """

    __slots__ = ("_events", "_evaluate", "_fired_count")

    def __init__(
        self,
        sim: Simulator,
        evaluate: Callable[[Sequence[Event], int], bool],
        events: Sequence[Event],
    ) -> None:
        super().__init__(sim, name=evaluate.__name__)
        self._events = tuple(events)
        self._evaluate = evaluate
        self._fired_count = 0

        for event in self._events:
            if event.sim is not sim:
                raise ValueError("all events must belong to the same simulator")

        if not self._events:
            self.succeed({})
            return

        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect_values(self) -> dict[Event, Any]:
        return {
            event: event.value
            for event in self._events
            if event.processed and event.ok
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._fired_count += 1
        if not event._ok:
            self.fail(event._value)
        elif self._evaluate(self._events, self._fired_count):
            self.succeed(self._collect_values())

    @staticmethod
    def all_events(events: Sequence[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_event(events: Sequence[Event], count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Fires when every constituent event has fired."""

    __slots__ = ()

    def __init__(self, sim: Simulator, events: Sequence[Event]) -> None:
        super().__init__(sim, Condition.all_events, events)


class AnyOf(Condition):
    """Fires when the first constituent event fires."""

    __slots__ = ()

    def __init__(self, sim: Simulator, events: Sequence[Event]) -> None:
        super().__init__(sim, Condition.any_event, events)
