"""Event loop and event primitives for the simulation kernel.

The kernel is intentionally small: a binary-heap event queue keyed on
``(time, priority, sequence)`` and an :class:`Event` type that carries
callbacks.  Processes (see :mod:`repro.sim.process`) are generators that
yield events; the simulator resumes them when the yielded event fires.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, Iterable, Optional

from repro.obs.probe import Probe

#: Scheduling priorities.  Lower values run earlier at the same timestamp.
URGENT = 0
NORMAL = 1

#: Lazily bound Timeout class (resolved on first ``Simulator.timeout``;
#: a module-level import would be circular).
_Timeout = None


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Simulator.run` early."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


PENDING = object()  #: sentinel: event value not yet set


class Event:
    """A happening at a point in simulated time.

    An event starts *untriggered*.  Calling :meth:`succeed` or
    :meth:`fail` schedules it; once the simulator pops it off the queue
    it becomes *processed* and its callbacks run.  Callbacks receive the
    event itself.
    """

    __slots__ = (
        "sim", "callbacks", "_value", "_ok", "_scheduled", "_processed",
        "_pooled", "name",
    )

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._processed = False
        #: True for events from :meth:`Simulator.pooled_event`: the
        #: kernel recycles them onto the free list after their
        #: callbacks run.
        self._pooled = False
        self.name = name

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is (or was) scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"event {self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, for failed events)."""
        if self._value is PENDING:
            raise SimulationError(f"event {self!r} has no value yet")
        return self._value

    # -- triggering ----------------------------------------------------

    def succeed(
        self, value: Any = None, delay: float = 0.0, priority: int = NORMAL
    ) -> "Event":
        """Schedule the event to fire successfully after ``delay``.

        ``priority`` orders same-timestamp events (``URGENT`` runs
        before ``NORMAL``), mirroring :meth:`Simulator.schedule`.
        """
        if self._value is not PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        self._ok = True
        self._value = value
        # Inlined Simulator.schedule (one call frame per event matters
        # on the packet path — keep the two in sync).
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        if self._scheduled:
            raise SimulationError(f"event {self!r} already scheduled")
        self._scheduled = True
        sim = self.sim
        sim._seq += 1
        heapq.heappush(sim._queue, (sim._now + delay, priority, sim._seq, self))
        return self

    def fail(
        self,
        exception: BaseException,
        delay: float = 0.0,
        priority: int = NORMAL,
    ) -> "Event":
        """Schedule the event to fire as a failure carrying ``exception``."""
        if self._value is not PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        # Inlined Simulator.schedule — see succeed().
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        if self._scheduled:
            raise SimulationError(f"event {self!r} already scheduled")
        self._scheduled = True
        sim = self.sim
        sim._seq += 1
        heapq.heappush(sim._queue, (sim._now + delay, priority, sim._seq, self))
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror another event's outcome (used for chaining)."""
        if event._value is PENDING:
            raise SimulationError(
                f"cannot mirror {event!r}: the source event has not been triggered"
            )
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def __repr__(self) -> str:
        label = self.name or self.__class__.__name__
        state = (
            "processed" if self._processed
            else "scheduled" if self._scheduled
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{label} {state} at {id(self):#x}>"


class Simulator:
    """The event loop.

    Parameters
    ----------
    initial_time:
        Starting value of :attr:`now` (seconds).
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process = None  # set by Process while running
        #: Instrumentation handle (see :mod:`repro.obs`): every layer
        #: holding a simulator reference publishes through this.
        self.probe = Probe(self)
        self._step_hooks: list[Callable[[float, Event], None]] = []
        #: Optional :class:`repro.sim.profiler.SimProfiler`; when set,
        #: the kernel wall-clocks every step's callback batch.  Costs
        #: one ``is None`` check per step when off.
        self._profiler = None
        #: Free list for fire-and-forget events (see :meth:`pooled_event`).
        self._event_pool: list[Event] = []
        #: Pool telemetry: acquisitions served from the free list vs.
        #: fresh allocations (read by the profiler and the benches).
        self.pool_reuses = 0
        self.pool_allocs = 0
        #: Forwarding-decision cache telemetry, incremented by every
        #: :class:`repro.xia.router.XIARouter` driven by this simulator
        #: (read by the profiler and the benches).
        self.fwd_cache_hits = 0
        self.fwd_cache_misses = 0
        #: Total events popped and processed (heap-op counter; the
        #: push-side twin is :attr:`heap_pushes`).
        self.steps_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self):
        """The process currently executing, if any."""
        return self._active_process

    # -- scheduling ----------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Place a triggered event on the queue ``delay`` seconds ahead."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        if event._scheduled:
            raise SimulationError(f"event {event!r} already scheduled")
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    # -- kernel hooks ---------------------------------------------------

    def add_step_hook(self, hook: Callable[[float, Event], None]) -> None:
        """Call ``hook(time, event)`` for every event the kernel pops.

        Intended for profilers and debuggers; the per-step cost with no
        hooks installed is a single truthiness check.
        """
        self._step_hooks.append(hook)

    def remove_step_hook(self, hook: Callable[[float, Event], None]) -> None:
        self._step_hooks.remove(hook)

    @property
    def heap_pushes(self) -> int:
        """Total events ever pushed onto the queue (heap-op counter)."""
        return self._seq

    def step(self) -> None:
        """Process exactly one event.

        This is the single-step (debugger/test) entry point; the hot
        path is the manually inlined copy of this body in :meth:`run`.
        Keep the two in sync.
        """
        if not self._queue:
            raise SimulationError("no scheduled events")
        when, _priority, _seq, event = heapq.heappop(self._queue)
        self._now = when
        if self._step_hooks:
            for hook in self._step_hooks:
                hook(when, event)
        callbacks = event.callbacks
        event.callbacks = None  # marks the event as being processed
        event._processed = True
        profiler = self._profiler
        if profiler is None:
            for callback in callbacks:
                callback(event)
        else:
            started = perf_counter()
            for callback in callbacks:
                callback(event)
            profiler.record_step(
                event, perf_counter() - started, len(self._queue)
            )
        self.steps_processed += 1
        if event._pooled:
            self._recycle(event)

    def _recycle(self, event: Event) -> None:
        """Reset a processed pooled event and return it to the free list."""
        event._value = PENDING
        event._ok = None
        event._scheduled = False
        event._processed = False
        event.callbacks = []
        self._event_pool.append(event)

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, a timestamp, or an event fires.

        Returns the value of ``until`` when ``until`` is an event.
        """
        stop_at = float("inf")
        stop_is_timestamp = False
        if isinstance(until, Event):
            if until.callbacks is None:
                # Already processed: return its value immediately.
                return until.value if until.ok else _reraise(until.value)
            until.callbacks.append(_stop_simulation)
        elif until is not None:
            stop_at = float(until)
            stop_is_timestamp = True
            if stop_at < self._now:
                raise ValueError(
                    f"until ({stop_at}) must not be in the past (now={self._now})"
                )

        # The kernel hot loop: step() inlined, with the queue, pool and
        # heappop bound to locals.  A million-event run spends most of
        # its wall-clock right here, so the per-step overhead beyond
        # the callbacks themselves must stay at a handful of opcodes.
        queue = self._queue
        pool = self._event_pool
        heappop = heapq.heappop
        steps = 0
        try:
            while queue and queue[0][0] <= stop_at:
                when, _priority, _seq, event = heappop(queue)
                self._now = when
                if self._step_hooks:
                    for hook in self._step_hooks:
                        hook(when, event)
                callbacks = event.callbacks
                event.callbacks = None  # marks the event as being processed
                event._processed = True
                profiler = self._profiler
                if profiler is None:
                    for callback in callbacks:
                        callback(event)
                else:
                    started = perf_counter()
                    for callback in callbacks:
                        callback(event)
                    profiler.record_step(
                        event, perf_counter() - started, len(queue)
                    )
                steps += 1
                if event._pooled:
                    event._value = PENDING
                    event._ok = None
                    event._scheduled = False
                    event._processed = False
                    event.callbacks = []
                    pool.append(event)
        except StopSimulation as stop:
            steps += 1  # the step whose callback stopped the run did run
            return stop.value
        finally:
            if steps:
                self.steps_processed += steps
        if stop_is_timestamp:
            self._now = stop_at
        if isinstance(until, Event) and not until.triggered:
            raise SimulationError("run() finished but the until-event never fired")
        return None

    # -- event factories -----------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered event."""
        return Event(self, name=name)

    def pooled_event(self, name: str = "") -> Event:
        """An :class:`Event` drawn from the kernel free list.

        Pooled events are for **fire-and-forget** dispatch: trigger
        one with callbacks attached and let it go.  The kernel resets
        and reuses the object right after its callbacks run, so
        holding a reference past processing — yielding it from a
        process, storing it, chaining it into AnyOf/AllOf — is
        undefined behaviour.  The hot packet path (``tx-done``,
        ``arrival``, ``cpu``, process bootstrap) runs entirely on
        pooled events, making a steady-state simulation allocation-free
        per event.
        """
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.name = name
            self.pool_reuses += 1
            return event
        event = Event(self, name=name)
        event._pooled = True
        self.pool_allocs += 1
        return event

    def timeout(self, delay: float, value: Any = None) -> "Event":
        """An event that fires ``delay`` seconds from now."""
        global _Timeout
        if _Timeout is None:
            from repro.sim.primitives import Timeout as _Timeout  # noqa: PLW0603
        return _Timeout(self, delay, value=value)

    def process(self, generator) -> "Event":
        """Start ``generator`` as a process; returns its Process event."""
        from repro.sim.process import Process

        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> "Event":
        from repro.sim.primitives import AnyOf

        return AnyOf(self, list(events))

    def all_of(self, events: Iterable[Event]) -> "Event":
        from repro.sim.primitives import AllOf

        return AllOf(self, list(events))

    def __repr__(self) -> str:
        return f"<Simulator now={self._now:.6f} pending={len(self._queue)}>"


def _stop_simulation(event: Event) -> None:
    if event.ok:
        raise StopSimulation(event.value)
    raise event.value


def _reraise(exc: BaseException) -> Any:
    raise exc
