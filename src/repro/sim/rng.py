"""Seeded, named random-number substreams.

Every stochastic component (each link's loss process, each mobility
model, each workload generator) draws from its own named substream so
that experiments are reproducible and changing one component's draws
does not perturb another's.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """A factory of independent :class:`random.Random` substreams.

    Substreams are derived deterministically from ``(root_seed, name)``
    so the same name always yields the same sequence for a given root
    seed, regardless of creation order.
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the substream called ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(
                f"{self.root_seed}:{name}".encode("utf-8")
            ).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child factory with an independent seed space."""
        digest = hashlib.sha256(
            f"{self.root_seed}/child:{name}".encode("utf-8")
        ).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:
        return f"<RandomStreams seed={self.root_seed} streams={len(self._streams)}>"
