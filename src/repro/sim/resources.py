"""Shared resources: capacity-limited resources, stores, containers.

These follow the SimPy idioms: ``request()``/``release()`` pairs return
events a process yields on, and ``with`` blocks are supported for
resources.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from repro.sim.core import Event, PENDING, SimulationError, Simulator


class _Request(Event):
    """A pending resource acquisition; usable as a context manager."""

    __slots__ = ("resource", "_fast")

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.sim, name="request")
        self.resource = resource
        #: True for tokens granted synchronously by ``try_acquire``:
        #: they never touch the event queue and are recycled by the
        #: resource on release.
        self._fast = False

    def __enter__(self) -> "_Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request from the wait queue."""
        self.resource._cancel(self)


class Resource:
    """A resource with ``capacity`` slots and a FIFO wait queue."""

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self._users: list[_Request] = []
        self._waiting: Deque[_Request] = deque()
        self._token_pool: list[_Request] = []

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self) -> _Request:
        """Acquire a slot; yield the returned event to wait for it."""
        req = _Request(self)
        if len(self._users) < self.capacity:
            self._users.append(req)
            req.succeed()
        else:
            self._waiting.append(req)
        return req

    def try_acquire(self) -> Optional[_Request]:
        """Grant a slot synchronously if one is free and nobody waits.

        The fast path for uncontended acquisition: no event-loop turn,
        no heap push — the returned token is already processed, so a
        process that yields it resumes immediately.  Hand it back with
        :meth:`release` (or a ``with`` block) exactly like a request.
        Returns ``None`` under contention; fall back to
        :meth:`request` then.
        """
        if self._waiting or len(self._users) >= self.capacity:
            return None
        pool = self._token_pool
        if pool:
            req = pool.pop()
        else:
            req = _Request(self)
            req._fast = True
        req._ok = True
        req._value = None
        req._processed = True
        req.callbacks = None
        self._users.append(req)
        return req

    def release(self, request: _Request) -> None:
        """Give a slot back and grant it to the next waiter."""
        try:
            self._users.remove(request)
        except ValueError:
            # Releasing an ungranted request is a cancel.
            self._cancel(request)
            return
        if request._fast:
            request._value = PENDING
            request._ok = None
            request._processed = False
            self._token_pool.append(request)
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.append(nxt)
            nxt.succeed()

    def _cancel(self, request: _Request) -> None:
        try:
            self._waiting.remove(request)
        except ValueError:
            pass


class Store:
    """An unbounded-or-bounded FIFO queue of Python objects."""

    def __init__(self, sim: Simulator, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[tuple[Event, Optional[Callable[[Any], bool]]]] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    @property
    def items(self) -> list[Any]:
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        """Add ``item``; the returned event fires once it is stored."""
        event = Event(self.sim, name="store-put")
        if len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
            self._serve_getters()
        else:
            self._putters.append((event, item))
        return event

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> Event:
        """Remove and return the first item (matching ``predicate``)."""
        event = Event(self.sim, name="store-get")
        item = self._pop_matching(predicate)
        if item is not _NOTHING:
            event.succeed(item)
            self._serve_putters()
        else:
            self._getters.append((event, predicate))
        return event

    def _pop_matching(self, predicate):
        if predicate is None:
            if self._items:
                return self._items.popleft()
            return _NOTHING
        for index, item in enumerate(self._items):
            if predicate(item):
                del self._items[index]
                return item
        return _NOTHING

    def _serve_getters(self) -> None:
        served = True
        while served and self._getters:
            served = False
            for index, (event, predicate) in enumerate(self._getters):
                item = self._pop_matching(predicate)
                if item is not _NOTHING:
                    del self._getters[index]
                    event.succeed(item)
                    served = True
                    break

    def _serve_putters(self) -> None:
        while self._putters and len(self._items) < self.capacity:
            event, item = self._putters.popleft()
            self._items.append(item)
            event.succeed()
        if self._putters:
            return
        self._serve_getters()


_NOTHING = object()


class Container:
    """A continuous quantity (e.g. bytes of buffer) with put/get."""

    def __init__(
        self,
        sim: Simulator,
        capacity: float = float("inf"),
        initial: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= initial <= capacity:
            raise ValueError("initial level must lie within [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self._level = float(initial)
        self._getters: Deque[tuple[Event, float]] = deque()
        self._putters: Deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        event = Event(self.sim, name="container-put")
        self._putters.append((event, amount))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        event = Event(self.sim, name="container-get")
        self._getters.append((event, amount))
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                event, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    event.succeed()
                    progressed = True
            if self._getters:
                event, amount = self._getters[0]
                if amount <= self._level:
                    self._getters.popleft()
                    self._level -= amount
                    event.succeed(amount)
                    progressed = True
