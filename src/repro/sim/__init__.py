"""Discrete-event simulation kernel.

This package is a self-contained, generator-based discrete-event
simulator in the style of SimPy, built from scratch for this
reproduction.  Every other subsystem (network links, transports, the
SoftStage control plane) is expressed as processes scheduled by a
:class:`Simulator`.

Quick example::

    from repro.sim import Simulator

    sim = Simulator()

    def hello(sim):
        yield sim.timeout(1.0)
        print("hello at", sim.now)

    sim.process(hello(sim))
    sim.run()
"""

from repro.sim.core import (
    Event,
    Simulator,
    SimulationError,
    StopSimulation,
)
from repro.sim.process import Interrupt, Process
from repro.sim.primitives import AllOf, AnyOf, Condition, Timeout
from repro.sim.resources import Container, Resource, Store
from repro.sim.rng import RandomStreams
from repro.sim.monitor import Monitor, TimeSeries
from repro.sim.profiler import SimProfiler

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Container",
    "Event",
    "Interrupt",
    "Monitor",
    "Process",
    "RandomStreams",
    "Resource",
    "SimProfiler",
    "Simulator",
    "SimulationError",
    "StopSimulation",
    "Store",
    "TimeSeries",
    "Timeout",
]
