"""Generator-based processes.

A process wraps a generator that yields :class:`~repro.sim.core.Event`
instances.  When a yielded event fires, the process resumes with the
event's value (or the event's exception is thrown into the generator).
A :class:`Process` is itself an event that fires when the generator
returns, carrying the generator's return value.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.obs.events import ProcessFailed
from repro.sim.core import Event, PENDING, SimulationError, Simulator, URGENT


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]


class Process(Event):
    """A running generator, resumable on events, itself an event."""

    __slots__ = ("_generator", "_target")

    def __init__(self, sim: Simulator, generator: Generator, name: str = "") -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(sim, name=name or getattr(generator, "__name__", ""))
        self._generator = generator
        self._target: Optional[Event] = None
        # Kick the process off via an immediate initialization event —
        # pooled and fire-and-forget, nobody else ever sees it.
        init = sim.pooled_event("process-init")
        init.callbacks.append(self._resume)
        init.succeed(priority=URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the wrapped generator has not finished."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process as soon as possible."""
        if self.triggered:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self.sim.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        interrupt_event = self.sim.pooled_event("interrupt")
        interrupt_event.callbacks.append(self._resume_interrupt)
        interrupt_event.fail(Interrupt(cause), priority=URGENT)

    # -- internal --------------------------------------------------------

    def _resume_interrupt(self, event: Event) -> None:
        if self.triggered:
            return  # process ended before the interrupt was delivered
        # Detach from whatever we were waiting on; the target may fire
        # later, which must then be ignored.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._resume(event)

    def _resume(self, event: Event) -> None:
        self._target = None
        active_before = self.sim._active_process
        self.sim._active_process = self
        try:
            while True:
                try:
                    if event._ok:
                        yielded = self._generator.send(event._value)
                    else:
                        yielded = self._generator.throw(event._value)
                except StopIteration as stop:
                    self.succeed(stop.value)
                    return
                except BaseException as exc:
                    if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                        raise
                    probe = self.sim.probe
                    if probe.active:
                        probe.emit(
                            ProcessFailed(
                                process=self.name or "process", error=repr(exc)
                            )
                        )
                    self.fail(exc)
                    return

                if not isinstance(yielded, Event):
                    msg = f"process yielded a non-event: {yielded!r}"
                    event = Event(self.sim, name="bad-yield")
                    event._ok = False
                    event._value = SimulationError(msg)
                    continue
                if yielded.sim is not self.sim:
                    raise SimulationError("yielded an event from a different simulator")

                if yielded.callbacks is not None:
                    # Not yet processed: wait for it.
                    yielded.callbacks.append(self._resume)
                    self._target = yielded
                    return
                # Already processed: continue immediately with its outcome.
                event = yielded
        finally:
            self.sim._active_process = active_before
