"""Measurement probes: time series and scalar monitors."""

from __future__ import annotations

import math
from typing import Iterable, Optional


class TimeSeries:
    """An append-only series of ``(time, value)`` samples."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"non-monotonic sample time {time} < {self.times[-1]} in {self.name!r}"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    def time_average(self, until: Optional[float] = None) -> float:
        """Time-weighted mean over ``[times[0], until]``, as a step function.

        ``until`` defaults to the last sample time.  The series is not
        defined before its first sample, so ``until`` earlier than
        ``times[0]`` raises :class:`ValueError` (it used to silently
        extrapolate the first value backwards); ``until`` equal to
        ``times[0]`` — a zero-width window — returns the first value.
        An ``until`` inside the series integrates only up to it.
        """
        if not self.values:
            raise ValueError(f"empty time series {self.name!r}")
        end = self.times[-1] if until is None else until
        first = self.times[0]
        if end < first:
            raise ValueError(
                f"until={end} precedes the first sample t={first} "
                f"in {self.name!r}"
            )
        if end == first:
            return self.values[0]
        total = 0.0
        for i, start in enumerate(self.times):
            if start >= end:
                break
            stop = self.times[i + 1] if i + 1 < len(self.times) else end
            total += self.values[i] * (min(stop, end) - start)
        return total / (end - first)

    def value_at(self, time: float) -> float:
        """Step-function value at ``time`` (last sample at or before it).

        The series is undefined before its first sample: ``time``
        earlier than ``times[0]`` (or an empty series) raises
        :class:`ValueError` rather than extrapolating backwards.
        """
        if not self.times or time < self.times[0]:
            raise ValueError(f"no sample at or before t={time} in {self.name!r}")
        # Binary search for rightmost sample <= time.
        lo, hi = 0, len(self.times) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.times[mid] <= time:
                lo = mid
            else:
                hi = mid - 1
        return self.values[lo]


class Monitor:
    """Streaming scalar statistics (count/mean/variance/min/max)."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError(f"monitor {self.name!r} has no observations")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:
        if self.count == 0:
            return f"<Monitor {self.name!r} empty>"
        return (
            f"<Monitor {self.name!r} n={self.count} mean={self.mean:.4g} "
            f"min={self.minimum:.4g} max={self.maximum:.4g}>"
        )
