"""Measurement probes: time series and scalar monitors."""

from __future__ import annotations

import math
from typing import Iterable, Optional


class TimeSeries:
    """An append-only series of ``(time, value)`` samples."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"non-monotonic sample time {time} < {self.times[-1]} in {self.name!r}"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    def time_average(self, until: Optional[float] = None) -> float:
        """Time-weighted mean, treating the series as a step function."""
        if not self.values:
            raise ValueError(f"empty time series {self.name!r}")
        end = self.times[-1] if until is None else until
        if len(self.values) == 1 or end <= self.times[0]:
            return self.values[0]
        total = 0.0
        for i in range(len(self.times) - 1):
            total += self.values[i] * (self.times[i + 1] - self.times[i])
        total += self.values[-1] * (end - self.times[-1])
        return total / (end - self.times[0])

    def value_at(self, time: float) -> float:
        """Step-function value at ``time`` (last sample at or before it)."""
        if not self.times or time < self.times[0]:
            raise ValueError(f"no sample at or before t={time} in {self.name!r}")
        # Binary search for rightmost sample <= time.
        lo, hi = 0, len(self.times) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.times[mid] <= time:
                lo = mid
            else:
                hi = mid - 1
        return self.values[lo]


class Monitor:
    """Streaming scalar statistics (count/mean/variance/min/max)."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError(f"monitor {self.name!r} has no observations")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:
        if self.count == 0:
            return f"<Monitor {self.name!r} empty>"
        return (
            f"<Monitor {self.name!r} n={self.count} mean={self.mean:.4g} "
            f"min={self.minimum:.4g} max={self.maximum:.4g}>"
        )
