"""Measurement probes: time series and scalar monitors."""

from __future__ import annotations

import math
from typing import Iterable, Optional


class TimeSeries:
    """An append-only series of ``(time, value)`` samples.

    ``max_samples`` (>= 2) bounds memory for long fleet runs: once the
    series exceeds the cap, the two *oldest* samples are folded into
    one carrying their time-weighted mean.  Folding is exact for the
    step-function integral — :meth:`time_average` over any window
    reaching past the folded region returns the same value as the
    uncapped series — because the folded sample's value times its span
    equals the two originals' contributions.  What folding gives up is
    *point* resolution: :meth:`value_at` inside the folded prefix
    returns the blended value instead of the original step, and the
    fold positions are quantized to surviving sample times.  Recent
    samples (the usual query target) are always exact.
    """

    def __init__(self, name: str = "",
                 max_samples: Optional[int] = None) -> None:
        if max_samples is not None and max_samples < 2:
            raise ValueError(
                f"max_samples must be >= 2 (folding needs a survivor), "
                f"got {max_samples}"
            )
        self.name = name
        self.max_samples = max_samples
        #: Oldest-pair folds performed (0 = the series is verbatim).
        self.folded = 0
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"non-monotonic sample time {time} < {self.times[-1]} in {self.name!r}"
            )
        self.times.append(time)
        self.values.append(value)
        if self.max_samples is not None:
            while len(self.times) > self.max_samples and len(self.times) >= 3:
                self._fold_oldest_pair()

    def _fold_oldest_pair(self) -> None:
        """Merge samples 0 and 1, preserving the step integral.

        The pair ``(t0, v0), (t1, v1)`` covers ``[t0, t2)`` (``t2`` =
        the third sample's time).  Replacing it with one sample at
        ``t0`` whose value is the pair's time-weighted mean keeps
        ``integral([t0, t2))`` — and therefore every
        :meth:`time_average` window extending past ``t2`` — exact.
        """
        t0, t1, t2 = self.times[0], self.times[1], self.times[2]
        width = t2 - t0
        if width <= 0:
            merged = self.values[1]  # zero-width: keep the later value
        else:
            merged = (
                self.values[0] * (t1 - t0) + self.values[1] * (t2 - t1)
            ) / width
        self.times[0:2] = [t0]
        self.values[0:2] = [merged]
        self.folded += 1

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    def time_average(self, until: Optional[float] = None) -> float:
        """Time-weighted mean over ``[times[0], until]``, as a step function.

        ``until`` defaults to the last sample time.  The series is not
        defined before its first sample, so ``until`` earlier than
        ``times[0]`` raises :class:`ValueError` (it used to silently
        extrapolate the first value backwards); ``until`` equal to
        ``times[0]`` — a zero-width window — returns the first value.
        An ``until`` inside the series integrates only up to it.
        """
        if not self.values:
            raise ValueError(f"empty time series {self.name!r}")
        end = self.times[-1] if until is None else until
        first = self.times[0]
        if end < first:
            raise ValueError(
                f"until={end} precedes the first sample t={first} "
                f"in {self.name!r}"
            )
        if end == first:
            return self.values[0]
        total = 0.0
        for i, start in enumerate(self.times):
            if start >= end:
                break
            stop = self.times[i + 1] if i + 1 < len(self.times) else end
            total += self.values[i] * (min(stop, end) - start)
        return total / (end - first)

    def value_at(self, time: float) -> float:
        """Step-function value at ``time`` (last sample at or before it).

        The series is undefined before its first sample: ``time``
        earlier than ``times[0]`` (or an empty series) raises
        :class:`ValueError` rather than extrapolating backwards.
        """
        if not self.times or time < self.times[0]:
            raise ValueError(f"no sample at or before t={time} in {self.name!r}")
        # Binary search for rightmost sample <= time.
        lo, hi = 0, len(self.times) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.times[mid] <= time:
                lo = mid
            else:
                hi = mid - 1
        return self.values[lo]


class Monitor:
    """Streaming scalar statistics (count/mean/variance/min/max)."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError(f"monitor {self.name!r} has no observations")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:
        if self.count == 0:
            return f"<Monitor {self.name!r} empty>"
        return (
            f"<Monitor {self.name!r} n={self.count} mean={self.mean:.4g} "
            f"min={self.minimum:.4g} max={self.maximum:.4g}>"
        )
