"""Fig. 7: trace-driven mobile experiments.

Two synthesized Beijing-wardriving connectivity traces (Fig. 7(a)'s
high-coverage patterns); the client downloads a stream of content
objects for the duration of the trace, and we count how much content
each system completes — the paper's result: "with SoftStage, the
mobile client can download almost twice the content objects in the
same networking environment" (Fig. 7(b)).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Sequence

from repro.experiments.params import MicrobenchParams
from repro.experiments.runner import run_download
from repro.mobility.traces import ConnectivityTrace
from repro.mobility.wardriving import WardrivingSynthesizer
from repro.sim import RandomStreams
from repro.util import MB

#: Paper's Fig. 7(b): SoftStage downloads ~2x the objects.
PAPER_OBJECT_RATIO = 2.0


@dataclass
class TraceResult:
    trace_name: str
    coverage_fraction: float
    xftp_chunks: float
    softstage_chunks: float
    xftp_bytes: float
    softstage_bytes: float

    @property
    def object_ratio(self) -> float:
        if self.xftp_chunks == 0:
            return float("inf")
        return self.softstage_chunks / self.xftp_chunks


def synthesize_traces(seed: int = 7, duration: float = 300.0):
    """The two Fig. 7(a) traces."""
    streams = RandomStreams(seed)
    synthesizer = WardrivingSynthesizer(streams.stream("wardriving"))
    return {
        "trace-1": synthesizer.trace_one(duration),
        "trace-2": synthesizer.trace_two(duration),
    }


def run_trace(
    trace_name: str,
    trace: ConnectivityTrace,
    seeds: Sequence[int] = (0, 1, 2),
    chunk_size: int = 2 * MB,
    segment_scale: int = 1,
) -> TraceResult:
    """Run both systems against one connectivity trace.

    The download target is sized so that neither system can finish
    within the trace — we measure completed objects at the deadline.

    Unlike the controlled micro-benchmarks, the paper's trace runs hit
    real content servers across a metropolitan operator network, so the
    Internet RTT here is a realistic 50 ms rather than the testbed's
    idealized 20 ms default.
    """
    from repro.util import ms

    file_size = 512 * MB  # effectively unbounded within the trace
    params = MicrobenchParams(
        file_size=file_size, chunk_size=chunk_size, internet_latency=ms(50)
    )
    deadline = trace.duration
    xftp_chunks, softstage_chunks = [], []
    xftp_bytes, softstage_bytes = [], []
    for seed in seeds:
        coverage = trace.to_coverage(["ap-A", "ap-B"])
        xftp = run_download(
            "xftp", params=params, seed=seed, coverage=coverage,
            deadline=deadline, segment_scale=segment_scale,
        )
        coverage = trace.to_coverage(["ap-A", "ap-B"])
        softstage = run_download(
            "softstage", params=params, seed=seed, coverage=coverage,
            deadline=deadline, segment_scale=segment_scale,
        )
        xftp_chunks.append(xftp.download.chunks_completed)
        softstage_chunks.append(softstage.download.chunks_completed)
        xftp_bytes.append(xftp.download.bytes_received)
        softstage_bytes.append(softstage.download.bytes_received)
    return TraceResult(
        trace_name=trace_name,
        coverage_fraction=trace.coverage_fraction,
        xftp_chunks=statistics.mean(xftp_chunks),
        softstage_chunks=statistics.mean(softstage_chunks),
        xftp_bytes=statistics.mean(xftp_bytes),
        softstage_bytes=statistics.mean(softstage_bytes),
    )


def run_all(
    seeds: Sequence[int] = (0, 1, 2),
    trace_seed: int = 7,
    duration: float = 300.0,
    segment_scale: int = 1,
) -> list[TraceResult]:
    return [
        run_trace(name, trace, seeds=seeds, segment_scale=segment_scale)
        for name, trace in synthesize_traces(trace_seed, duration).items()
    ]
