"""Parallel sweep execution: fan seed×system×point runs across cores.

A Fig. 6 sweep is embarrassingly parallel — every ``run_download`` is
an isolated simulator with its own seed — so the sweep drivers hand
their run list to :func:`run_tasks`, which fans it over a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Determinism is the contract: a parallel sweep must be **byte-identical**
to the sequential one.  Three properties deliver that:

- every run is fully described by a picklable, frozen
  :class:`SweepTask` (parameters + seed + system), and workers build
  their simulators from scratch — no shared state;
- :meth:`~concurrent.futures.Executor.map` yields results in task
  order regardless of completion order, so downstream aggregation
  sees the same sequence as a sequential loop;
- the returned :class:`RunSummary` compares by simulation outcome
  only — ``wall_seconds`` is measured but excluded from equality, so
  summary comparison is exactly "did the simulation do the same
  thing".

When a worker pool cannot be set up at all (no ``fork``/``spawn``
support, resource limits), :func:`run_tasks` degrades to an
in-process sequential loop with identical results.  Errors *inside* a
run are not swallowed — a deterministic failure reproduces identically
in either mode.
"""

from __future__ import annotations

import statistics
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.experiments.params import MicrobenchParams


@dataclass(frozen=True)
class SweepTask:
    """One fully-specified run: everything a worker needs, picklable."""

    system: str
    params: MicrobenchParams
    seed: int
    segment_scale: int = 1
    #: Staging-policy registry name ("" / None = system default).
    #: A name rather than a policy object keeps the task picklable.
    policy: Optional[str] = None
    #: Fold this run's telemetry into fixed-memory sketches
    #: (:mod:`repro.obs.sketch`); they come back serialized on the
    #: summary and merge across the whole sweep.
    sketches: bool = False

    def label(self) -> str:
        if self.policy:
            return f"{self.system}-{self.policy}-seed{self.seed}"
        return f"{self.system}-seed{self.seed}"


@dataclass(frozen=True)
class RunSummary:
    """The picklable outcome of one run.

    Carries the simulation-determined figures the sweep tables need.
    ``wall_seconds`` is host-dependent telemetry and deliberately
    excluded from equality — two summaries are equal iff the
    *simulations* agreed.
    """

    system: str
    seed: int
    download_time: float
    bytes_received: int
    chunks_completed: int
    chunks_from_edge: int
    chunks_from_origin: int
    fallbacks: int
    handoffs: int
    staging_signals: int
    policy: str = ""
    wall_seconds: float = field(compare=False, default=0.0)
    #: Serialized sketch set (``SweepTask.sketches=True``), JSON-shaped
    #: so the summary stays picklable.  Excluded from equality like
    #: ``wall_seconds``: the sketches are *derived* telemetry, and the
    #: determinism contract is over simulation outcomes.
    sketches: Optional[dict] = field(compare=False, default=None)

    def as_record(self) -> tuple[str, dict]:
        """``(run_id, metrics)`` in run-registry shape.

        The same identity scheme as :func:`repro.experiments.runner.
        run_download` (``{system}-seed{seed}``, with the policy name
        infixed when one was set), so sweep records and instrumented
        single runs diff against each other.
        """
        run_id = (
            f"{self.system}-{self.policy}-seed{self.seed}"
            if self.policy
            else f"{self.system}-seed{self.seed}"
        )
        return run_id, {
            "download_time": self.download_time,
            "bytes_received": self.bytes_received,
            "chunks_completed": self.chunks_completed,
            "chunks_from_edge": self.chunks_from_edge,
            "chunks_from_origin": self.chunks_from_origin,
            "fallbacks": self.fallbacks,
            "handoffs": self.handoffs,
            "staging_signals": self.staging_signals,
        }


def execute_task(task: SweepTask) -> RunSummary:
    """Run one task to completion (module-level: pool workers import it)."""
    from repro.experiments.runner import run_download

    started = time.perf_counter()
    result = run_download(
        task.system,
        params=task.params,
        seed=task.seed,
        segment_scale=task.segment_scale,
        policy=task.policy or None,
        sketches=task.sketches,
    )
    download = result.download
    return RunSummary(
        system=task.system,
        seed=task.seed,
        download_time=result.download_time,
        bytes_received=download.bytes_received,
        chunks_completed=download.chunks_completed,
        chunks_from_edge=download.chunks_from_edge,
        chunks_from_origin=download.chunks_from_origin,
        fallbacks=download.fallbacks,
        handoffs=download.handoffs,
        staging_signals=download.staging_signals,
        policy=result.policy,
        wall_seconds=time.perf_counter() - started,
        sketches=(
            result.sketches.to_json() if result.sketches is not None
            else None
        ),
    )


def publish_summary(hub, summary: RunSummary) -> None:
    """Forward one finished run to a telemetry hub as a ``run`` item.

    Workers are separate processes and cannot share a hub; the parent
    is the single writer, forwarding each :class:`RunSummary` as
    ``pool.map`` yields it (task order), so live consumers see the
    same deterministic sequence a sequential sweep produces.
    """
    run_id, metrics = summary.as_record()
    hub.publish("run", {
        "run": run_id,
        "state": "finished",
        "system": summary.system,
        "policy": summary.policy,
        "seed": summary.seed,
        "wall_seconds": summary.wall_seconds,
        **metrics,
    })


def run_tasks(
    tasks: Sequence[SweepTask],
    jobs: int = 1,
    chunksize: int = 1,
    hub=None,
) -> list[RunSummary]:
    """Execute ``tasks``, in order, on up to ``jobs`` processes.

    Results always come back in task order.  ``jobs <= 1`` (or a
    single task) runs sequentially in-process.  A pool that cannot be
    brought up or dies from infrastructure failure (``OSError``,
    :class:`~concurrent.futures.BrokenExecutor`) falls back to the
    sequential path; exceptions raised *by a task* propagate in both
    modes.

    ``hub`` (a :class:`~repro.obs.stream.TelemetryHub`) receives one
    ``run`` item per completed task via :func:`publish_summary` — the
    parent forwards as results stream back, in task order, in both
    the pooled and sequential modes.
    """
    summaries: list[RunSummary] = []

    def _collect(stream) -> list[RunSummary]:
        for summary in stream:
            if hub is not None:
                publish_summary(hub, summary)
            summaries.append(summary)
        return summaries

    if jobs <= 1 or len(tasks) < 2:
        return _collect(execute_task(task) for task in tasks)
    workers = min(jobs, len(tasks))
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return _collect(pool.map(execute_task, tasks, chunksize=chunksize))
    except (OSError, BrokenExecutor):
        # Pool infrastructure failed (fork limits, dead worker...):
        # same results, one process.  Don't double-publish tasks that
        # already streamed back before the pool died.
        already = len(summaries)
        return _collect(execute_task(task) for task in tasks[already:])


def merge_summary_sketches(summaries: Iterable[RunSummary]) -> dict:
    """One sketch set folding every summary's sketches together.

    Workers fold their own runs into bounded sketches; the parent
    merges the serialized sets name-wise (mergeability is the
    sketches' contract — see :mod:`repro.obs.sketch`), producing a
    sweep-wide distribution summary whose size is independent of the
    number of runs.  Returns the *serialized* merged set.
    """
    from repro.obs.sketch import (
        load_sketches,
        merge_sketch_sets,
        serialize_sketches,
    )

    merged: dict = {}
    for summary in summaries:
        if summary.sketches:
            merge_sketch_sets(merged, load_sketches(summary.sketches))
    return serialize_sketches(merged)


def mean_times(
    summaries: Iterable[RunSummary],
) -> tuple[Optional[float], Optional[float]]:
    """(mean xftp, mean softstage) download time over ``summaries``."""
    xftp = [s.download_time for s in summaries if s.system == "xftp"]
    soft = [s.download_time for s in summaries if s.system == "softstage"]
    return (
        statistics.mean(xftp) if xftp else None,
        statistics.mean(soft) if soft else None,
    )
