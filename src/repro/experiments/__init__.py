"""Experiment harness: one driver per paper table/figure.

- :mod:`repro.experiments.calibration` — every constant standing in
  for physical hardware, with its calibration story;
- :mod:`repro.experiments.params` — Table III parameter registry;
- :mod:`repro.experiments.scenario` — the Fig. 4 testbed builder;
- :mod:`repro.experiments.runner` — run one (system, scenario) pair
  and collect metrics;
- :mod:`repro.experiments.microbench` — Fig. 6(a)-(f) sweeps;
- :mod:`repro.experiments.xia_benchmark` — Fig. 5;
- :mod:`repro.experiments.handoff` — §IV-D handoff policies;
- :mod:`repro.experiments.tracedriven` — Fig. 7;
- :mod:`repro.experiments.report` — text rendering of tables/series.
"""

from repro.experiments.params import MicrobenchParams, PARAMETER_TABLE
from repro.experiments.scenario import TestbedScenario
from repro.experiments.runner import ExperimentResult, run_download

__all__ = [
    "ExperimentResult",
    "MicrobenchParams",
    "PARAMETER_TABLE",
    "TestbedScenario",
    "run_download",
]
