"""Running one experiment: build scenario, run download, collect metrics.

Pass ``instrument=True`` (or a ``trace_path``) to attach the
cross-layer instrumentation for free: a
:class:`~repro.metrics.collector.MetricsCollector` subscribed to the
scenario simulator's event bus, and optionally a JSONL
:class:`~repro.obs.trace.TraceExporter` whose output
:func:`~repro.obs.trace.replay_trace` turns back into an identical
metrics report offline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.client import DownloadResult
from repro.core.handoff import HandoffPolicy
from repro.errors import ConfigurationError
from repro.experiments.params import MicrobenchParams
from repro.experiments.scenario import TestbedScenario
from repro.metrics.collector import MetricsCollector
from repro.mobility.coverage import Coverage
from repro.obs.trace import TraceExporter


@dataclass
class ExperimentResult:
    """One (system, parameter-point, seed) measurement."""

    system: str
    seed: int
    download: DownloadResult
    #: Simulated seconds to finish (or reach the deadline).
    download_time: float
    #: Bus-fed collector (only when the run was instrumented).
    metrics: Optional[MetricsCollector] = field(default=None, repr=False)
    #: JSONL trace location (only when ``trace_path`` was given).
    trace_path: Optional[str] = None

    @property
    def throughput_bps(self) -> float:
        return self.download.throughput_bps


def run_download(
    system: str,
    params: Optional[MicrobenchParams] = None,
    seed: int = 0,
    coverage: Optional[Coverage] = None,
    deadline: Optional[float] = None,
    handoff_policy: Optional[HandoffPolicy] = None,
    with_vnf: bool = True,
    num_edges: int = 2,
    segment_scale: int = 1,
    instrument: bool = False,
    trace_path: Optional[str] = None,
) -> ExperimentResult:
    """Build a fresh testbed and run one full download.

    ``system`` is ``"softstage"`` or ``"xftp"``.  ``segment_scale`` > 1
    runs the transport in coarse-grained segment mode (see
    :meth:`repro.transport.config.TransportConfig.scaled`).

    ``instrument=True`` subscribes a :class:`MetricsCollector` to the
    run's event bus and returns it on the result; ``trace_path``
    additionally writes every event as JSONL (and implies
    ``instrument=True``).
    """
    from repro.transport.config import XIA_CHUNK

    scenario = TestbedScenario(
        params=params,
        seed=seed,
        num_edges=num_edges,
        coverage=coverage,
        with_vnf=with_vnf,
        transport_config=XIA_CHUNK.scaled(segment_scale),
    )
    collector: Optional[MetricsCollector] = None
    exporter: Optional[TraceExporter] = None
    if instrument or trace_path is not None:
        collector = MetricsCollector(scenario.sim).attach(scenario.sim.probe.bus)
        if trace_path is not None:
            exporter = TraceExporter(trace_path).attach(scenario.sim.probe.bus)
    try:
        content = scenario.publish_default_content()
        if system == "softstage":
            client = scenario.make_softstage_client(handoff_policy=handoff_policy)
        elif system == "xftp":
            client = scenario.make_xftp_client()
        else:
            raise ConfigurationError(f"unknown system {system!r}")
        process = scenario.sim.process(client.download(content, deadline=deadline))
        download: DownloadResult = scenario.sim.run(until=process)
    finally:
        if exporter is not None:
            exporter.close()
    return ExperimentResult(
        system=system,
        seed=seed,
        download=download,
        download_time=download.duration,
        metrics=collector,
        trace_path=exporter.path if exporter is not None else None,
    )


def gain(xftp_time: float, softstage_time: float) -> float:
    """The paper's headline metric: Xftp time / SoftStage time."""
    if softstage_time <= 0:
        raise ConfigurationError("softstage_time must be positive")
    return xftp_time / softstage_time
