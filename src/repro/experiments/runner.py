"""Running one experiment: build scenario, run download, collect metrics.

Pass ``instrument=True`` (or a ``trace_path``) to attach the
cross-layer instrumentation for free: a
:class:`~repro.metrics.collector.MetricsCollector` subscribed to the
scenario simulator's event bus, and optionally a JSONL
:class:`~repro.obs.trace.TraceExporter` whose output
:func:`~repro.obs.trace.replay_trace` turns back into an identical
metrics report offline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import IO, Optional, Union

from repro.core.client import DownloadResult
from repro.core.handoff import HandoffPolicy
from repro.core.policy import StagingPolicy, make_policy, policy_name
from repro.errors import ConfigurationError
from repro.experiments.params import MicrobenchParams
from repro.experiments.scenario import TestbedScenario
from repro.metrics.collector import MetricsCollector
from repro.mobility.coverage import Coverage
from repro.obs.flight import (
    DEFAULT_PERIOD,
    GaugeSampler,
    InvariantAuditor,
    install_flight_recorder,
)
from repro.obs.sketch import SketchRecorder
from repro.obs.spans import Span, SpanBuilder
from repro.obs.stream import GaugeFeed, TelemetryHub
from repro.obs.trace import TraceExporter
from repro.obs.wide import WideEventBuilder, WideEventWriter
from repro.sim.profiler import SimProfiler


@dataclass
class ExperimentResult:
    """One (system, parameter-point, seed) measurement."""

    system: str
    seed: int
    download: DownloadResult
    #: Simulated seconds to finish (or reach the deadline).
    download_time: float
    #: The run identity stamped on every trace event of this run.
    run_id: str = ""
    #: Registry name of the staging policy driving the run ("" = the
    #: system's built-in behaviour, i.e. reactive Eq. 1 for softstage).
    policy: str = ""
    #: Bus-fed collector (only when the run was instrumented).
    metrics: Optional[MetricsCollector] = field(default=None, repr=False)
    #: JSONL trace location (only when ``trace_path`` was a path).
    trace_path: Optional[str] = None
    #: Causal spans derived live during the run (``spans=True``).
    spans: Optional[list[Span]] = field(default=None, repr=False)
    #: The kernel profiler, still queryable (``profile=True``).
    profile: Optional[SimProfiler] = field(default=None, repr=False)
    #: The flight-recorder sampler (``gauges=True``).
    sampler: Optional[GaugeSampler] = field(default=None, repr=False)
    #: The invariant auditor, already parity-checked (``audit=True``).
    auditor: Optional[InvariantAuditor] = field(default=None, repr=False)
    #: Wide-event records emitted live (``wide=``/``hub=``/``sketches=``
    #: set).
    wide_records: Optional[list[dict]] = field(default=None, repr=False)
    #: Fixed-memory distribution sketches folded live
    #: (``sketches=True``); ``.to_json()`` serializes for the registry.
    sketches: Optional[SketchRecorder] = field(default=None, repr=False)

    @property
    def throughput_bps(self) -> float:
        return self.download.throughput_bps

    def gauge_timelines(self) -> dict[str, list[tuple[float, float]]]:
        """This run's gauge timelines, stripped of the series prefix."""
        if self.metrics is None:
            return {}
        prefix = f"gauge.{self.run_id}."
        return {
            name[len(prefix):]: points
            for name, points in self.metrics.timelines(prefix).items()
        }


def run_download(
    system: str,
    params: Optional[MicrobenchParams] = None,
    seed: int = 0,
    coverage: Optional[Coverage] = None,
    deadline: Optional[float] = None,
    handoff_policy: Optional[HandoffPolicy] = None,
    with_vnf: bool = True,
    num_edges: int = 2,
    segment_scale: int = 1,
    instrument: bool = False,
    trace_path: Optional[Union[str, IO[str]]] = None,
    spans: bool = False,
    profile: bool = False,
    gauges: bool = False,
    audit: bool = False,
    gauge_period: float = DEFAULT_PERIOD,
    run_id: Optional[str] = None,
    policy: Optional[Union[str, StagingPolicy]] = None,
    hub: Optional[TelemetryHub] = None,
    wide: Optional[Union[str, IO[str], WideEventWriter]] = None,
    sketches: bool = False,
) -> ExperimentResult:
    """Build a fresh testbed and run one full download.

    ``system`` is ``"softstage"``, ``"xftp"`` or ``"endtoend"`` (the
    host-based single-stream baseline, which forces single-chunk
    publishing).  ``segment_scale`` > 1 runs the transport in
    coarse-grained segment mode (see
    :meth:`repro.transport.config.TransportConfig.scaled`).

    ``policy`` (softstage only) selects the staging policy: a registry
    name (``"reactive"``, ``"rich"``, ``"mobility"``, ``"predictive"``)
    or a :class:`~repro.core.policy.StagingPolicy` instance.  ``None``
    keeps the default reactive Eq. 1 behaviour and the historical
    ``"{system}-seed{seed}"`` run identity; a named policy extends it
    to ``"{system}-{policy}-seed{seed}"``.

    ``instrument=True`` subscribes a :class:`MetricsCollector` to the
    run's event bus and returns it on the result; ``trace_path``
    additionally writes every event as JSONL (and implies
    ``instrument=True``) — pass an open file object instead of a path
    to append several runs into one multi-run trace.  ``spans=True``
    attaches a live :class:`~repro.obs.spans.SpanBuilder` and returns
    its finished spans; ``profile=True`` installs a
    :class:`~repro.sim.profiler.SimProfiler` on the kernel.

    ``gauges=True`` installs the flight recorder (standard testbed
    gauge set, sampled every ``gauge_period`` sim-seconds; implies
    ``instrument=True`` so the timelines land in the collector).
    ``audit=True`` attaches a strict :class:`InvariantAuditor` to the
    bus and runs the end-of-run report-parity check (also implies
    ``instrument=True``); the audited run raises
    :class:`~repro.obs.flight.InvariantViolationError` at the first
    conservation violation.  Both are off by default and cost nothing
    when off.

    ``wide`` (a path, open file or :class:`WideEventWriter`) attaches
    a :class:`~repro.obs.wide.WideEventBuilder` and writes one wide
    event per chunk/encounter/gap/handoff as JSONL — byte-identical to
    what ``repro trace wide`` derives from this run's trace offline.
    ``sketches=True`` attaches a
    :class:`~repro.obs.sketch.SketchRecorder`: gauge samples (when
    ``gauges=True``) and wide-event phase latencies fold into
    fixed-memory mergeable sketches returned on the result — the
    bounded fleet-scale alternative to full gauge timelines.  Implies
    a wide-event builder so the phase sketches always populate.

    ``hub`` fans the run's live telemetry out to a
    :class:`~repro.obs.stream.TelemetryHub`: gauge samples (when
    ``gauges=True``), wide events, and ``run`` started/finished
    markers.  Hub delivery never blocks — slow subscribers drop (with
    counters) instead of perturbing the run, so fixed-seed results
    stay bit-identical with subscribers attached.

    Every run gets a distinct identity — ``run_id`` or the derived
    ``"{system}-seed{seed}"`` — stamped on each trace event, so runs
    in the same file (or from different invocations) can be told
    apart and diffed.
    """
    from repro.transport.config import XIA_CHUNK

    if policy is not None and system != "softstage":
        raise ConfigurationError(
            f"staging policies only apply to the softstage system, not {system!r}"
        )
    if system == "endtoend":
        # The end-to-end baseline is a single uninterrupted stream:
        # publish the whole object as one chunk.
        params = params or MicrobenchParams()
        params = params.with_(chunk_size=params.file_size)
    scenario = TestbedScenario(
        params=params,
        seed=seed,
        num_edges=num_edges,
        coverage=coverage,
        with_vnf=with_vnf,
        transport_config=XIA_CHUNK.scaled(segment_scale),
    )
    staging_policy: Optional[StagingPolicy] = None
    if isinstance(policy, str):
        staging_policy = make_policy(
            policy, scenario.softstage_config, scenario
        )
    elif policy is not None:
        staging_policy = policy
    pname = policy_name(staging_policy)
    if run_id is None:
        run_id = (
            f"{system}-{pname}-seed{seed}" if pname else f"{system}-seed{seed}"
        )
    scenario.sim.probe.run_id = run_id
    collector: Optional[MetricsCollector] = None
    exporter: Optional[TraceExporter] = None
    builder: Optional[SpanBuilder] = None
    profiler: Optional[SimProfiler] = None
    sampler: Optional[GaugeSampler] = None
    auditor: Optional[InvariantAuditor] = None
    wide_builder: Optional[WideEventBuilder] = None
    wide_writer: Optional[WideEventWriter] = None
    owns_wide_writer = False
    gauge_feed: Optional[GaugeFeed] = None
    wide_records: Optional[list[dict]] = None
    recorder: Optional[SketchRecorder] = None
    if instrument or trace_path is not None or gauges or audit:
        collector = MetricsCollector(scenario.sim).attach(scenario.sim.probe.bus)
        if trace_path is not None:
            exporter = TraceExporter(trace_path).attach(scenario.sim.probe.bus)
    if spans:
        builder = SpanBuilder(run_id=run_id).attach(scenario.sim.probe.bus)
    if profile:
        profiler = SimProfiler(scenario.sim).install()
    if audit:
        auditor = InvariantAuditor(strict=True).attach(scenario.sim.probe.bus)
    if sketches:
        recorder = SketchRecorder().attach(scenario.sim.probe.bus)
    if wide is not None or hub is not None or sketches:
        wide_records = []
        sinks = [wide_records.append]
        if recorder is not None:
            sinks.append(recorder.feed_wide)
        if wide is not None:
            if isinstance(wide, WideEventWriter):
                wide_writer = wide
            else:
                wide_writer = WideEventWriter(wide)
                owns_wide_writer = wide_writer.path is not None
            sinks.append(wide_writer.write)
        if hub is not None:
            sinks.append(lambda record: hub.publish("wide", record))
        wide_builder = WideEventBuilder(run_id=run_id, sinks=sinks)
        wide_builder.attach(scenario.sim.probe.bus)
    if hub is not None:
        gauge_feed = GaugeFeed(hub).attach(scenario.sim.probe.bus)
        hub.publish("run", {
            "run": run_id, "state": "started",
            "system": system, "policy": pname, "seed": seed,
        })
    try:
        content = scenario.publish_default_content()
        if system == "softstage":
            client = scenario.make_softstage_client(
                handoff_policy=handoff_policy,
                staging_policy=staging_policy,
            )
        elif system == "xftp":
            client = scenario.make_xftp_client()
        elif system == "endtoend":
            client = scenario.make_endtoend_client()
        else:
            raise ConfigurationError(f"unknown system {system!r}")
        if gauges:
            # The staging-pipeline gauges need the manager, which only
            # exists for a SoftStage client.
            sampler = install_flight_recorder(
                scenario,
                manager=getattr(client, "manager", None),
                period=gauge_period,
            )
        if system == "endtoend":
            if deadline is not None:
                raise ConfigurationError(
                    "the endtoend baseline streams one session; deadlines "
                    "are not supported"
                )
            process = scenario.sim.process(client.download(content))
        else:
            process = scenario.sim.process(
                client.download(content, deadline=deadline)
            )
        download: DownloadResult = scenario.sim.run(until=process)
    finally:
        if exporter is not None:
            exporter.close()
        if profiler is not None:
            profiler.uninstall()
        if auditor is not None:
            auditor.detach()
        if gauge_feed is not None:
            gauge_feed.detach()
        if wide_builder is not None:
            wide_builder.detach()
        if recorder is not None:
            recorder.detach()
    if wide_builder is not None:
        # Emit the run-summary wide record (post-run, like the live
        # trace's last events) before anything reads the output.
        wide_builder.finish()
        if wide_writer is not None and owns_wide_writer:
            wide_writer.close()
    if hub is not None:
        hub.publish("run", {
            "run": run_id, "state": "finished",
            "system": system, "policy": pname, "seed": seed,
            "download_time": download.duration,
            "throughput_bps": download.throughput_bps,
            "chunks_completed": download.chunks_completed,
            "chunks_from_edge": download.chunks_from_edge,
        })
    if auditor is not None and collector is not None:
        auditor.check_report_parity(collector.report())
    return ExperimentResult(
        system=system,
        seed=seed,
        download=download,
        download_time=download.duration,
        run_id=run_id,
        policy=pname,
        metrics=collector,
        trace_path=exporter.path if exporter is not None else None,
        spans=builder.finish() if builder is not None else None,
        profile=profiler,
        sampler=sampler,
        auditor=auditor,
        wide_records=wide_records,
        sketches=recorder,
    )


def gain(xftp_time: float, softstage_time: float) -> float:
    """The paper's headline metric: Xftp time / SoftStage time."""
    if softstage_time <= 0:
        raise ConfigurationError("softstage_time must be positive")
    return xftp_time / softstage_time
