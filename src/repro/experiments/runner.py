"""Running one experiment: build scenario, run download, collect metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.client import DownloadResult
from repro.core.handoff import HandoffPolicy
from repro.errors import ConfigurationError
from repro.experiments.params import MicrobenchParams
from repro.experiments.scenario import TestbedScenario
from repro.mobility.coverage import Coverage


@dataclass
class ExperimentResult:
    """One (system, parameter-point, seed) measurement."""

    system: str
    seed: int
    download: DownloadResult
    #: Simulated seconds to finish (or reach the deadline).
    download_time: float

    @property
    def throughput_bps(self) -> float:
        return self.download.throughput_bps


def run_download(
    system: str,
    params: Optional[MicrobenchParams] = None,
    seed: int = 0,
    coverage: Optional[Coverage] = None,
    deadline: Optional[float] = None,
    handoff_policy: Optional[HandoffPolicy] = None,
    with_vnf: bool = True,
    num_edges: int = 2,
    segment_scale: int = 1,
) -> ExperimentResult:
    """Build a fresh testbed and run one full download.

    ``system`` is ``"softstage"`` or ``"xftp"``.  ``segment_scale`` > 1
    runs the transport in coarse-grained segment mode (see
    :meth:`repro.transport.config.TransportConfig.scaled`).
    """
    from repro.transport.config import XIA_CHUNK

    scenario = TestbedScenario(
        params=params,
        seed=seed,
        num_edges=num_edges,
        coverage=coverage,
        with_vnf=with_vnf,
        transport_config=XIA_CHUNK.scaled(segment_scale),
    )
    content = scenario.publish_default_content()
    if system == "softstage":
        client = scenario.make_softstage_client(handoff_policy=handoff_policy)
    elif system == "xftp":
        client = scenario.make_xftp_client()
    else:
        raise ConfigurationError(f"unknown system {system!r}")
    process = scenario.sim.process(client.download(content, deadline=deadline))
    download: DownloadResult = scenario.sim.run(until=process)
    return ExperimentResult(
        system=system,
        seed=seed,
        download=download,
        download_time=download.duration,
    )


def gain(xftp_time: float, softstage_time: float) -> float:
    """The paper's headline metric: Xftp time / SoftStage time."""
    if softstage_time <= 0:
        raise ConfigurationError("softstage_time must be positive")
    return xftp_time / softstage_time
