"""Table III: parameter settings for the experiments.

Defaults and candidate values exactly as the paper lists them; the
micro-benchmarks vary one parameter at a time while keeping the rest
at their defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.util import MB, mbps, ms


@dataclass(frozen=True)
class MicrobenchParams:
    """One point in the Fig. 6 parameter space (Table III)."""

    #: 2 MB ~ a 2-second 720p YouTube clip.
    chunk_size: int = 2 * MB
    #: 75th percentile of Cabernet encounter time (dense small cells).
    encounter_time: float = 12.0
    #: 25th percentile of Cabernet time-between-encounters.
    disconnection_time: float = 8.0
    #: Median wardriving packet loss.
    packet_loss: float = 0.27
    #: Typical moderately-congested WAN bottleneck.
    internet_bandwidth: float = mbps(60)
    #: Typical RTT to a CDN.
    internet_latency: float = ms(20)
    #: The file downloaded by every micro-benchmark.
    file_size: int = 64 * MB

    def with_(self, **changes) -> "MicrobenchParams":
        return replace(self, **changes)


@dataclass(frozen=True)
class ParameterRow:
    """One row of Table III."""

    name: str
    default: object
    note: str
    candidates: tuple


PARAMETER_TABLE: tuple[ParameterRow, ...] = (
    ParameterRow(
        "Chunk Size",
        2 * MB,
        "2 secs' 720p Youtube video clip",
        (0.25 * MB, 0.625 * MB, 1.25 * MB, 4 * MB, 10 * MB),
    ),
    ParameterRow(
        "Encounter Time",
        12.0,
        "Theoretical maximum duration associated with the same SSID",
        (3.0, 4.0),
    ),
    ParameterRow(
        "Disconnection Time",
        8.0,
        "Time between two consecutive encounters",
        (32.0, 100.0),
    ),
    ParameterRow(
        "Packet Loss Rate",
        0.27,
        "Wardriving measurements in vehicular content delivery",
        (0.22, 0.37),
    ),
    ParameterRow(
        "Internet Bandwidth",
        mbps(60),
        "Typical bottleneck bandwidth in WAN with moderate congestion",
        (mbps(15), mbps(30)),
    ),
    ParameterRow(
        "Internet Latency",
        ms(20),
        "Typical RTT to CDN (e.g., web portals, streaming media, etc.)",
        (ms(5), ms(10), ms(50), ms(100)),
    ),
)

#: Chunk sizes of Fig. 6(a) with their QoE meaning (YouTube SDR
#: recommended bit rates: a 2-second clip at each resolution).
CHUNK_SIZE_LADDER: dict[str, int] = {
    "360p": int(0.25 * MB),
    "480p": int(0.625 * MB),
    "720p": int(1.25 * MB),
    "1080p": 2 * MB,
    "1440p": 4 * MB,
    "2160p": 10 * MB,
}


def default_params() -> MicrobenchParams:
    return MicrobenchParams()
