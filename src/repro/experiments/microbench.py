"""Fig. 6 micro-benchmarks: one sweep driver per panel.

Each driver varies one Table III parameter, keeps the rest at their
defaults, downloads the same file with Xftp and with SoftStage, and
reports mean download times over the configured seeds plus the gain
the paper measured for that point.
"""

from __future__ import annotations

import os
import statistics
from dataclasses import dataclass, replace
from typing import IO, Callable, Optional, Sequence

from repro.experiments.params import MicrobenchParams
from repro.experiments.report import GainSeries
from repro.experiments.runner import run_download
from repro.util import MB, mbps, ms


@dataclass(frozen=True)
class BenchProfile:
    """How heavy a bench run should be.

    The paper downloads 64 MB per run; the default profile keeps that.
    ``REPRO_BENCH_QUICK=1`` switches to a light profile for smoke runs,
    and ``REPRO_BENCH_SEEDS=n`` overrides the seed count.
    """

    file_size: int = 64 * MB
    seeds: tuple[int, ...] = (0, 1, 2)
    segment_scale: int = 1
    #: Open file object every run's JSONL trace is appended to (one
    #: multi-run trace; run ids ``"{point}/{system}-seed{n}"`` keep
    #: the runs apart).  ``None`` leaves runs uninstrumented.
    trace_sink: Optional[IO[str]] = None
    #: Worker processes for sweeps (``1`` = sequential).  Tracing
    #: forces the sequential path: a shared open sink cannot cross
    #: process boundaries.
    jobs: int = 1
    #: Staging-policy registry name for the SoftStage runs ("" = the
    #: default reactive Eq. 1 behaviour and historical run ids).
    policy: str = ""

    @classmethod
    def from_env(cls) -> "BenchProfile":
        if os.environ.get("REPRO_BENCH_QUICK"):
            profile = cls(file_size=16 * MB, seeds=(0,), segment_scale=2)
        else:
            profile = cls()
        seeds_override = os.environ.get("REPRO_BENCH_SEEDS")
        if seeds_override:
            profile = cls(
                file_size=profile.file_size,
                seeds=tuple(range(int(seeds_override))),
                segment_scale=profile.segment_scale,
            )
        jobs_override = os.environ.get("REPRO_BENCH_JOBS")
        if jobs_override:
            profile = replace(profile, jobs=max(int(jobs_override), 1))
        return profile


def measure_point(
    params: MicrobenchParams,
    profile: BenchProfile,
    handoff_policy_factory: Optional[Callable] = None,
    run_prefix: str = "",
) -> tuple[float, float]:
    """(mean Xftp time, mean SoftStage time) at one parameter point."""
    params = params.with_(file_size=profile.file_size)
    trace = profile.trace_sink
    staging = profile.policy
    softstage_id = f"softstage-{staging}" if staging else "softstage"
    xftp_times, softstage_times = [], []
    for seed in profile.seeds:
        xftp = run_download(
            "xftp", params=params, seed=seed,
            segment_scale=profile.segment_scale,
            trace_path=trace, run_id=f"{run_prefix}xftp-seed{seed}",
        )
        policy = handoff_policy_factory() if handoff_policy_factory else None
        softstage = run_download(
            "softstage", params=params, seed=seed,
            segment_scale=profile.segment_scale, handoff_policy=policy,
            trace_path=trace, run_id=f"{run_prefix}{softstage_id}-seed{seed}",
            policy=staging or None,
        )
        xftp_times.append(xftp.download_time)
        softstage_times.append(softstage.download_time)
    return statistics.mean(xftp_times), statistics.mean(softstage_times)


def _sweep(
    title: str,
    parameter: str,
    points: Sequence[tuple[str, MicrobenchParams, Optional[float]]],
    profile: Optional[BenchProfile] = None,
) -> GainSeries:
    profile = profile or BenchProfile.from_env()
    if profile.jobs > 1 and profile.trace_sink is None:
        return _sweep_parallel(title, parameter, points, profile)
    series = GainSeries(title=title, parameter=parameter)
    for label, params, paper_gain in points:
        prefix = f"{label.replace(' ', '')}/" if profile.trace_sink else ""
        xftp_time, softstage_time = measure_point(
            params, profile, run_prefix=prefix
        )
        series.add(label, xftp_time, softstage_time, paper_gain)
    return series


def _sweep_parallel(
    title: str,
    parameter: str,
    points: Sequence[tuple[str, MicrobenchParams, Optional[float]]],
    profile: BenchProfile,
) -> GainSeries:
    """The same sweep, fanned over a worker pool.

    Builds the whole point×seed×system run list in the exact order the
    sequential loop would execute it, runs it through
    :func:`repro.experiments.parallel.run_tasks` (which preserves
    order), and aggregates per point — so the resulting series is
    byte-identical to the sequential one.
    """
    from repro.experiments.parallel import SweepTask, run_tasks

    tasks = []
    for _label, params, _paper_gain in points:
        point_params = params.with_(file_size=profile.file_size)
        for seed in profile.seeds:
            for system in ("xftp", "softstage"):
                tasks.append(
                    SweepTask(
                        system=system,
                        params=point_params,
                        seed=seed,
                        segment_scale=profile.segment_scale,
                        policy=(
                            profile.policy or None
                            if system == "softstage"
                            else None
                        ),
                    )
                )
    summaries = iter(run_tasks(tasks, jobs=profile.jobs))
    series = GainSeries(title=title, parameter=parameter)
    for label, _params, paper_gain in points:
        xftp_times, softstage_times = [], []
        for _seed in profile.seeds:
            xftp_times.append(next(summaries).download_time)
            softstage_times.append(next(summaries).download_time)
        series.add(
            label,
            statistics.mean(xftp_times),
            statistics.mean(softstage_times),
            paper_gain,
        )
    return series


# -- the six panels ----------------------------------------------------------

#: Paper-reported gains for the panel endpoints (Fig. 6 text).
PAPER_GAINS = {
    "chunk": {"0.25 MB": 1.59, "10 MB": 1.96},
    "encounter": {"3 s": 1.55, "12 s": 1.77},
    "disconnection": {"8 s": 1.7, "32 s": 1.7, "100 s": 1.7},
    "loss": {"22%": 1.37, "37%": 1.77},
    "bandwidth": {"60 Mbps": 1.77, "15 Mbps": 9.94},
    "latency": {"5 ms": 1.38, "100 ms": 2.3},
}


def sweep_chunk_size(profile: Optional[BenchProfile] = None) -> GainSeries:
    """Fig. 6(a)."""
    base = MicrobenchParams()
    points = [
        (f"{size_mb} MB", base.with_(chunk_size=int(size_mb * MB)),
         PAPER_GAINS["chunk"].get(f"{size_mb} MB"))
        for size_mb in (0.25, 0.625, 1.25, 2, 4, 10)
    ]
    return _sweep("Fig. 6(a): chunk size", "chunk size", points, profile)


def sweep_encounter_time(profile: Optional[BenchProfile] = None) -> GainSeries:
    """Fig. 6(b)."""
    base = MicrobenchParams()
    points = [
        (f"{seconds:g} s", base.with_(encounter_time=float(seconds)),
         PAPER_GAINS["encounter"].get(f"{seconds:g} s"))
        for seconds in (3, 4, 12)
    ]
    return _sweep("Fig. 6(b): encounter time", "encounter", points, profile)


def sweep_disconnection_time(profile: Optional[BenchProfile] = None) -> GainSeries:
    """Fig. 6(c)."""
    base = MicrobenchParams()
    points = [
        (f"{seconds:g} s", base.with_(disconnection_time=float(seconds)),
         PAPER_GAINS["disconnection"].get(f"{seconds:g} s"))
        for seconds in (8, 32, 100)
    ]
    return _sweep(
        "Fig. 6(c): disconnection time", "disconnection", points, profile
    )


def sweep_packet_loss(profile: Optional[BenchProfile] = None) -> GainSeries:
    """Fig. 6(d)."""
    base = MicrobenchParams()
    points = [
        (f"{int(loss * 100)}%", base.with_(packet_loss=loss),
         PAPER_GAINS["loss"].get(f"{int(loss * 100)}%"))
        for loss in (0.22, 0.27, 0.37)
    ]
    return _sweep("Fig. 6(d): packet loss rate", "loss rate", points, profile)


def sweep_internet_bandwidth(profile: Optional[BenchProfile] = None) -> GainSeries:
    """Fig. 6(e)."""
    base = MicrobenchParams()
    points = [
        (f"{bw} Mbps", base.with_(internet_bandwidth=mbps(bw)),
         PAPER_GAINS["bandwidth"].get(f"{bw} Mbps"))
        for bw in (60, 30, 15)
    ]
    return _sweep(
        "Fig. 6(e): Internet bottleneck bandwidth", "bandwidth", points, profile
    )


def sweep_internet_latency(profile: Optional[BenchProfile] = None) -> GainSeries:
    """Fig. 6(f)."""
    base = MicrobenchParams()
    points = [
        (f"{latency} ms", base.with_(internet_latency=ms(latency)),
         PAPER_GAINS["latency"].get(f"{latency} ms"))
        for latency in (5, 10, 20, 50, 100)
    ]
    return _sweep(
        "Fig. 6(f): Internet latency", "latency", points, profile
    )
