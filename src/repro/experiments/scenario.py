"""The evaluation testbed (paper Fig. 4), in one object.

Builds the packet-level topology every §IV experiment runs on::

    server -- origin router == Internet segment == core router
                                                      |
                                   +------------------+---------+
                                 edge A             edge B    (...)
                                 (XCache+VNF)       (XCache+VNF)
                                   |                  |
                                  AP A               AP B
                                   )))               (((
                                        mobile client

The Internet segment carries the configured latency and is shaped to
the target bandwidth *by loss* (the paper's NIC-loss emulation); each
access link is an 802.11n channel with bursty fading at the configured
loss rate; the client owns one wireless port per AP plus the logical
sensor radio (the Scanner).
"""

from __future__ import annotations

from typing import Optional

from repro.apps.ftp import XftpClient
from repro.apps.server import ContentServer
from repro.core.client import SoftStageClient
from repro.core.config import SoftStageConfig
from repro.core.handoff import HandoffPolicy
from repro.core.policy import StagingPolicy
from repro.core.vnf import StagingVNF
from repro.errors import ConfigurationError
from repro.experiments import calibration
from repro.experiments.params import MicrobenchParams
from repro.mobility.association import AccessPointInfo, AssociationController
from repro.mobility.coverage import Coverage, alternating_coverage
from repro.mobility.scanner import Scanner
from repro.net.emulation import BandwidthShaper
from repro.net.link import Link
from repro.net.loss import GilbertElliottLoss
from repro.net.nodes import Host
from repro.net.processing import ProcessingModel
from repro.net.topology import Network
from repro.net.wireless import WirelessLink
from repro.sim import RandomStreams, Simulator
from repro.transport.config import TransportConfig, XIA_CHUNK
from repro.transport.reliable import TransportEndpoint
from repro.xcache.publisher import PublishedContent
from repro.xcache.store import ContentStore
from repro.xia.ids import HID, NID, SID
from repro.xia.netjoin import AdvertisementDirectory, NetworkAdvertisement
from repro.xia.router import AccessPoint, XIARouter


class EdgeNetwork:
    """One edge network: router+XCache(+VNF) and its access point."""

    def __init__(self, name: str, router: XIARouter, ap: AccessPoint, store: ContentStore):
        self.name = name
        self.router = router
        self.ap = ap
        self.store = store
        self.vnf: Optional[StagingVNF] = None
        self.endpoint: Optional[TransportEndpoint] = None


class TestbedScenario:
    """A fully-wired instance of the evaluation testbed."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        params: Optional[MicrobenchParams] = None,
        seed: int = 0,
        num_edges: int = 2,
        coverage: Optional[Coverage] = None,
        total_time: Optional[float] = None,
        with_vnf: bool = True,
        transport_config: Optional[TransportConfig] = None,
        softstage_config: Optional[SoftStageConfig] = None,
    ) -> None:
        self.params = params or MicrobenchParams()
        self.seed = seed
        self.streams = RandomStreams(seed)
        self.sim = Simulator()
        self.sim.probe.run_id = f"seed{seed}"
        self.network = Network(self.sim, self.streams)
        self.with_vnf = with_vnf
        self.transport_config = (transport_config or XIA_CHUNK).with_(
            migration_delay=calibration.MIGRATION_DELAY_S
        )
        self.softstage_config = softstage_config or SoftStageConfig()
        self._client_made = False

        self._build_core(num_edges)
        horizon = total_time if total_time is not None else 24 * 3600.0
        self.coverage = coverage if coverage is not None else alternating_coverage(
            [edge.ap.name for edge in self.edges],
            encounter_time=self.params.encounter_time,
            disconnection_time=self.params.disconnection_time,
            total_time=horizon,
        )
        self._build_client()

    # -- topology ----------------------------------------------------------

    def _router(self, name: str) -> XIARouter:
        return XIARouter(
            self.sim,
            name,
            HID(name),
            NID(f"{name}-net"),
            processing=ProcessingModel(
                self.sim, calibration.ROUTER_FORWARD_COST_S
            ),
        )

    def _build_core(self, num_edges: int) -> None:
        if num_edges < 1:
            raise ConfigurationError("need at least one edge network")
        sim, net, params = self.sim, self.network, self.params

        self.server_host = net.add_device(Host(sim, "server", HID("server")))
        self.origin_router = net.add_device(self._router("origin"))
        self.core_router = net.add_device(self._router("core"))
        net.register_network(self.origin_router.nid, self.origin_router)
        net.register_network(self.core_router.nid, self.core_router)

        net.connect(
            self.server_host,
            self.origin_router,
            Link(sim, "server-origin", calibration.INTERNET_BASE_BPS,
                 calibration.WIRED_HOP_DELAY_S),
        )

        # The Internet segment: latency + loss-shaped bandwidth.  Per
        # the paper's methodology the drop rate is solved at the *raw
        # wired* RTT (the bandwidth targets were measured "without
        # introducing any extra latency"), so the configured Internet
        # latency then punishes long-RTT flows on top.
        shaper_rng = self.streams.stream("internet-shaper")
        reference_rtt = 4 * calibration.WIRED_HOP_DELAY_S + 1.5e-3
        def make_shaper():
            return BandwidthShaper(
                target_bps=params.internet_bandwidth,
                reference_rtt=reference_rtt,
                mss_bytes=self.transport_config.mss_bytes,
                rng=shaper_rng,
            )
        self.internet_link = Link(
            sim,
            "internet",
            calibration.INTERNET_BASE_BPS,
            params.internet_latency / 2,
            loss_a_to_b=make_shaper(),
            loss_b_to_a=make_shaper(),
            queue_bytes=2_000_000,
        )
        net.connect(self.origin_router, self.core_router, self.internet_link)

        # Edge networks.
        self.edges: list[EdgeNetwork] = []
        for index in range(num_edges):
            name = chr(ord("A") + index)
            router = net.add_device(self._router(f"edge-{name}"))
            net.register_network(router.nid, router)
            store = ContentStore(
                capacity_bytes=1_000_000_000,
                probe=sim.probe,
                name=f"xcache-{name}",
            )
            router.content_store = store
            ap = net.add_device(
                AccessPoint(sim, f"ap-{name}", HID(f"ap-{name}"))
            )
            net.connect(
                self.core_router, router,
                Link(sim, f"core-edge{name}", calibration.INTERNET_BASE_BPS,
                     calibration.WIRED_HOP_DELAY_S),
            )
            net.connect(
                router, ap,
                Link(sim, f"edge{name}-ap", calibration.INTERNET_BASE_BPS,
                     calibration.WIRED_HOP_DELAY_S),
            )
            edge = EdgeNetwork(name=f"ap-{name}", router=router, ap=ap, store=store)
            edge.endpoint = TransportEndpoint(sim, router, self.transport_config)
            from repro.transport.chunkfetch import CacheDaemon

            CacheDaemon(sim, router, store, edge.endpoint, unpin_on_serve=True)
            if self.with_vnf:
                edge.vnf = StagingVNF(
                    sim, router, store, edge.endpoint,
                    sid=SID(f"staging-vnf:{name}"),
                )
            self.edges.append(edge)

        net.build_static_routes()
        self.server = ContentServer(
            sim, self.server_host, self.origin_router.nid,
            config=self.transport_config,
        )

    def _build_client(self) -> None:
        sim, net, params = self.sim, self.network, self.params
        self.client_host = net.add_device(Host(sim, "client", HID("client")))
        # NetJoin: every edge network advertises its NID, gateway and
        # (when deployed) staging VNF in its beacons.
        self.netjoin = AdvertisementDirectory()
        for edge in self.edges:
            self.netjoin.announce(
                edge.name,
                NetworkAdvertisement(
                    network_name=edge.name,
                    nid=edge.router.nid,
                    gateway_hid=edge.router.hid,
                    vnf_sid=edge.vnf.sid if edge.vnf is not None else None,
                ),
            )
        access_points: dict[str, AccessPointInfo] = {}
        for index, edge in enumerate(self.edges):
            loss_stream = self.streams.stream(f"wireless-loss-{edge.name}")
            def make_loss():
                if params.packet_loss <= calibration.FADE_GOOD_LOSS:
                    from repro.net.loss import BernoulliLoss

                    return BernoulliLoss(params.packet_loss, loss_stream)
                return GilbertElliottLoss(
                    average_rate=params.packet_loss,
                    rng=loss_stream,
                    good_loss=calibration.FADE_GOOD_LOSS,
                    bad_loss=calibration.FADE_BAD_LOSS,
                    mean_bad_duration=calibration.FADE_MEAN_DURATION_S,
                )
            link = WirelessLink(
                sim,
                f"wifi-{edge.name}",
                mac_rate_bps=calibration.WIRELESS_PHY_BPS,
                delay=calibration.WIRELESS_BASE_DELAY_S,
                loss_up=make_loss(),
                loss_down=make_loss(),
                max_retries=calibration.ARQ_MAX_RETRIES,
                retry_backoff=calibration.ARQ_RETRY_BACKOFF_S,
                frame_overhead=calibration.WIRELESS_FRAME_OVERHEAD_S,
            )
            net.connect(self.client_host, edge.ap, link)
            link.set_up(False)
            advertisement = self.netjoin.lookup(edge.name)
            access_points[edge.name] = AccessPointInfo(
                name=edge.name,
                device=edge.ap,
                nid=advertisement.nid,
                client_port_index=index,
                vnf_sid=advertisement.vnf_sid,
                cache_hid=(
                    advertisement.gateway_hid if advertisement.has_vnf else None
                ),
            )
        self.access_points = access_points
        self.controller = AssociationController(
            sim, net, self.client_host, access_points
        )
        self.scanner = Scanner(sim, self.coverage, self.controller)
        self.client_endpoint = TransportEndpoint(
            sim, self.client_host, self.transport_config
        )

    # -- client factories -------------------------------------------------------

    def _claim_client(self) -> None:
        if self._client_made:
            raise ConfigurationError(
                "one scenario supports a single client application; "
                "build a fresh TestbedScenario per run"
            )
        self._client_made = True

    def make_softstage_client(
        self,
        handoff_policy: Optional[HandoffPolicy] = None,
        staging_policy: Optional[StagingPolicy] = None,
    ) -> SoftStageClient:
        self._claim_client()
        client = SoftStageClient(
            self.sim,
            self.client_host,
            self.client_endpoint,
            self.controller,
            self.scanner,
            config=self.softstage_config,
            handoff_policy=handoff_policy,
            staging_policy=staging_policy,
        )
        self.scanner.start()
        return client

    def make_xftp_client(self) -> XftpClient:
        self._claim_client()
        client = XftpClient(
            self.sim,
            self.client_host,
            self.client_endpoint,
            self.controller,
            self.scanner,
            config=self.softstage_config,
        )
        self.scanner.start()
        return client

    def make_predictive_client(self, accuracy: float, stage_window: int = 8):
        """EdgeBuffer-style predictive-staging baseline client."""
        from repro.baselines.predictive import (
            MobilityPredictor,
            PredictiveStagingClient,
        )

        self._claim_client()
        predictor = MobilityPredictor(
            list(self.access_points.values()),
            accuracy=accuracy,
            rng=self.streams.stream("mobility-predictor"),
        )
        client = PredictiveStagingClient(
            self.sim,
            self.client_host,
            self.client_endpoint,
            self.controller,
            self.scanner,
            predictor,
            config=self.softstage_config,
            stage_window=stage_window,
        )
        self.scanner.start()
        return client

    def make_endtoend_client(self):
        """Host-based single-stream baseline client."""
        from repro.baselines.endtoend import EndToEndClient

        self._claim_client()
        client = EndToEndClient(
            self.sim,
            self.client_host,
            self.client_endpoint,
            self.controller,
            self.scanner,
            config=self.softstage_config,
        )
        self.scanner.start()
        return client

    # -- content -------------------------------------------------------------------

    def publish_default_content(self, name: str = "payload") -> PublishedContent:
        return self.server.publish(
            name, self.params.file_size, self.params.chunk_size
        )

    def __repr__(self) -> str:
        return (
            f"<TestbedScenario edges={len(self.edges)} seed={self.seed} "
            f"params={self.params}>"
        )
