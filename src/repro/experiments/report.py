"""Text rendering of experiment results (the bench harness output).

Each bench prints the same rows/series the paper reports: a labelled
table with Xftp and SoftStage download times and the gain, plus the
paper's value for side-by-side comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence


@dataclass
class GainRow:
    """One x-axis point of a Fig. 6-style plot."""

    label: str
    xftp_time: float
    softstage_time: float
    paper_gain: Optional[float] = None

    @property
    def gain(self) -> float:
        return self.xftp_time / self.softstage_time if self.softstage_time else 0.0


@dataclass
class GainSeries:
    """A full micro-benchmark series (one figure panel)."""

    title: str
    parameter: str
    rows: list[GainRow] = field(default_factory=list)

    def add(self, label, xftp_time, softstage_time, paper_gain=None) -> GainRow:
        row = GainRow(str(label), xftp_time, softstage_time, paper_gain)
        self.rows.append(row)
        return row

    def render(self) -> str:
        header = (
            f"{self.parameter:>18} | {'Xftp (s)':>9} | {'SoftStage (s)':>13} | "
            f"{'gain':>6} | {'paper':>6}"
        )
        rule = "-" * len(header)
        lines = [self.title, rule, header, rule]
        for row in self.rows:
            paper = f"{row.paper_gain:.2f}x" if row.paper_gain is not None else "-"
            lines.append(
                f"{row.label:>18} | {row.xftp_time:9.1f} | {row.softstage_time:13.1f} | "
                f"{row.gain:5.2f}x | {paper:>6}"
            )
        lines.append(rule)
        return "\n".join(lines)


def render_metrics(
    report: dict[str, object],
    title: str = "Instrumentation metrics",
) -> str:
    """Render a :meth:`MetricsCollector.report` snapshot as a table.

    Rows are sorted by metric name so the rendering is deterministic
    across live and replayed collectors.
    """
    rows = [(name, float(report[name])) for name in sorted(report)]
    return render_table(title, ("metric", "value"), rows)


def render_spans(spans, title: str = "Span summary") -> str:
    """Render a span list as the canonical per-kind summary table.

    Thin wrapper over :func:`repro.obs.spans.render_summary` so
    experiment reports and the CLI share one canonical format (the
    one the live/offline parity tests compare byte-for-byte).
    """
    from repro.obs.spans import render_summary

    return render_summary(spans, title=title)


def render_breakdown(summary, title: str = "Latency breakdown") -> str:
    """Render a :class:`repro.obs.analyze.BreakdownSummary`."""
    rows = [
        ("chunks delivered", summary.chunks),
        ("from edge", summary.edge),
        ("from origin", summary.origin),
        ("origin fallbacks", summary.fallback),
        ("mean stage wait (s)", summary.mean_stage_wait),
        ("mean edge fetch (s)", summary.mean_edge_fetch),
        ("mean origin fetch (s)", summary.mean_origin_fetch),
        ("staging masked by disconnection (s)", summary.masked_total),
    ]
    return render_table(title, ("measure", "value"), rows)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """A generic fixed-width table."""
    columns = len(headers)
    widths = [len(str(h)) for h in headers]
    formatted_rows = []
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} does not match headers {headers!r}")
        cells = [
            f"{cell:.2f}" if isinstance(cell, float) else str(cell) for cell in row
        ]
        widths = [max(w, len(c)) for w, c in zip(widths, cells)]
        formatted_rows.append(cells)
    header_line = " | ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    rule = "-" * len(header_line)
    lines = [title, rule, header_line, rule]
    for cells in formatted_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(cells, widths)))
    lines.append(rule)
    return "\n".join(lines)
