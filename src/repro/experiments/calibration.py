"""Calibration constants: where every hardware stand-in number comes from.

Our substrate is a simulator, so a handful of constants replace
physical equipment.  Each is fitted against a number the paper itself
reports (mostly the Fig. 5 benchmark), and the fit is checked by
``benchmarks/bench_fig5_xia_benchmark.py``:

===========================  =======================================
Constant                     Fitted against
===========================  =======================================
WIRED_SEGMENT_BPS            Fig. 5: Linux TCP reaches 95 Mbps on the
                             wired segment -> a 100 Mbps segment.
WIRELESS_PHY_BPS             802.11n single-stream HT20 (MCS7) PHY.
WIRELESS_FRAME_OVERHEAD_S    Fig. 5: Linux TCP at 28 Mbps over
                             802.11n -> ~150 us of DIFS/preamble/
                             SIFS/ACK per frame.
XIA_STREAM per_packet_cost   Fig. 5: Xstream caps at 66 Mbps on the
                             wired segment (user-level Click daemon)
                             -> 150 us per packet
                             (see repro.transport.config).
XIA_CHUNK verify_rate        Fig. 5: XChunkP at 56 vs Xstream's
                             66 Mbps over 5 x 2 MB chunks -> ~40 ms
                             extra per chunk ~= SHA-1 at 50 MB/s.
MIGRATION_DELAY_S            §IV-C: active session migration is "a
                             fixed overhead of 1 or 2 sec" -> 1.5 s.
ARQ_MAX_RETRIES              802.11 short retry limit region; with
                             the bursty channel this yields the
                             residual loss that makes Fig. 6(d) move.
FADE_MEAN_DURATION_S         Vehicular large-scale fading: obstacle
                             shadowing at urban speeds lasts on the
                             order of a quarter second.
INTERNET_BASE_BPS            Physical rate of the emulated Internet
                             segment; always above the shaped target
                             (Table III: 15-60 Mbps), as on the
                             testbed's GbE NICs.
===========================  =======================================
"""

from repro.util import mbps

#: The wired segment of the paper's testbed (Fig. 5's "wired").
WIRED_SEGMENT_BPS = mbps(100)
WIRED_HOP_DELAY_S = 0.1e-3

#: 802.11n single-stream PHY rate and per-frame MAC overhead.
WIRELESS_PHY_BPS = mbps(65)
WIRELESS_FRAME_OVERHEAD_S = 150e-6
WIRELESS_BASE_DELAY_S = 0.5e-3

#: Link-layer ARQ on the wireless access link (802.11 long retry
#: region).  Calibrated jointly with the fade shape below so that, at
#: the Table III default of 27% channel loss, the transport-visible
#: residual loss lands at the few-tenths-of-a-percent level implied by
#: the paper's moderate Fig. 6(d) gains (1.37x-1.77x) — deep fades that
#: defeat ARQ entirely would produce gains far above anything the
#: paper reports.
ARQ_MAX_RETRIES = 6
ARQ_RETRY_BACKOFF_S = 0.5e-3

#: Bursty-fading channel shape (Gilbert-Elliott bad state): shallow,
#: sub-second fades from moving-obstacle blockage.
FADE_MEAN_DURATION_S = 0.15
FADE_GOOD_LOSS = 0.02
FADE_BAD_LOSS = 0.5

#: XIA active transport-session migration cost (paper: "1 or 2 sec").
MIGRATION_DELAY_S = 1.5

#: Physical rate of the Internet segment before loss shaping.
INTERNET_BASE_BPS = mbps(1000)

#: Router forwarding cost (Click fast path — far below endpoint cost).
ROUTER_FORWARD_COST_S = 5e-6
