"""§IV-D: handoff policy comparison.

Overlapping-coverage scenario (12 s encounters, 3 s overlap between
consecutive networks): SoftStage with the default RSS-greedy policy
versus SoftStage with the content-aware policy.  The paper measures a
21.7% download-time reduction for content-aware handoff.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Sequence

from repro.core.handoff import ChunkAwarePolicy, RssGreedyPolicy
from repro.experiments.params import MicrobenchParams
from repro.experiments.runner import run_download
from repro.mobility.coverage import overlapping_coverage
from repro.util import MB

#: The paper's reported saving.
PAPER_SAVING = 0.217


@dataclass
class HandoffComparison:
    default_time: float
    content_aware_time: float
    default_handoffs: float
    content_aware_handoffs: float

    @property
    def saving(self) -> float:
        """Fractional download-time reduction of content-aware handoff."""
        if self.default_time <= 0:
            return 0.0
        return 1.0 - self.content_aware_time / self.default_time


def run_comparison(
    file_size: int = 64 * MB,
    encounter_time: float = 12.0,
    overlap_time: float = 3.0,
    seeds: Sequence[int] = (0, 1, 2),
    segment_scale: int = 1,
) -> HandoffComparison:
    """Run both policies on the same overlapping-coverage pattern."""
    params = MicrobenchParams(
        file_size=file_size, encounter_time=encounter_time
    )
    default_times, aware_times = [], []
    default_handoffs, aware_handoffs = [], []
    for seed in seeds:
        coverage = overlapping_coverage(
            ["ap-A", "ap-B"],
            encounter_time=encounter_time,
            overlap_time=overlap_time,
            total_time=24 * 3600.0,
        )
        default = run_download(
            "softstage", params=params, seed=seed, coverage=coverage,
            handoff_policy=RssGreedyPolicy(), segment_scale=segment_scale,
        )
        coverage = overlapping_coverage(
            ["ap-A", "ap-B"],
            encounter_time=encounter_time,
            overlap_time=overlap_time,
            total_time=24 * 3600.0,
        )
        aware = run_download(
            "softstage", params=params, seed=seed, coverage=coverage,
            handoff_policy=ChunkAwarePolicy(), segment_scale=segment_scale,
        )
        default_times.append(default.download_time)
        aware_times.append(aware.download_time)
        default_handoffs.append(default.download.handoffs)
        aware_handoffs.append(aware.download.handoffs)
    return HandoffComparison(
        default_time=statistics.mean(default_times),
        content_aware_time=statistics.mean(aware_times),
        default_handoffs=statistics.mean(default_handoffs),
        content_aware_handoffs=statistics.mean(aware_handoffs),
    )
