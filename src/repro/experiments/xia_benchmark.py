"""Fig. 5: the XIA substrate benchmark.

Throughput of a 10 MB transfer for Linux TCP (iPerf analogue), Xstream
and XChunkP (2 MB chunks) over a wired and an 802.11n segment — the
six bars of the paper's Fig. 5.  This bench doubles as the calibration
check for every hardware stand-in constant (see
:mod:`repro.experiments.calibration`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import calibration
from repro.net import Host, Link, Network, WirelessLink
from repro.net.processing import ProcessingModel
from repro.sim import RandomStreams, Simulator
from repro.transport import KERNEL_TCP, XIA_CHUNK, XIA_STREAM, TransportConfig
from repro.transport.chunkfetch import CacheDaemon
from repro.transport.reliable import TransportEndpoint
from repro.transport.xchunkp import XChunkPClient
from repro.transport.xstream import XstreamClient
from repro.util import MB, mbps
from repro.xcache import ContentPublisher, ContentStore
from repro.xia import HID, NID
from repro.xia.router import XIARouter

#: The numbers the paper reports (Mbps), for side-by-side rendering.
PAPER_FIG5 = {
    ("wired", "linux-tcp"): 95.0,
    ("wired", "xstream"): 66.0,
    ("wired", "xchunkp"): 56.0,
    ("wireless", "linux-tcp"): 28.0,
    ("wireless", "xstream"): 22.0,
    ("wireless", "xchunkp"): 19.0,
}


@dataclass
class BenchmarkPoint:
    segment: str
    protocol: str
    throughput_bps: float
    paper_mbps: float


def _build_segment(segment: str, config: TransportConfig, seed: int):
    sim = Simulator()
    net = Network(sim, RandomStreams(seed))
    server = net.add_device(Host(sim, "server", HID("server")))
    router = net.add_device(
        XIARouter(
            sim, "router", HID("router"), NID("bench-net"),
            processing=ProcessingModel(sim, calibration.ROUTER_FORWARD_COST_S),
        )
    )
    client = net.add_device(Host(sim, "client", HID("client")))
    net.connect(
        server, router,
        Link(sim, "server-router", mbps(1000), calibration.WIRED_HOP_DELAY_S),
    )
    if segment == "wired":
        access = Link(
            sim, "router-client",
            calibration.WIRED_SEGMENT_BPS, calibration.WIRED_HOP_DELAY_S,
        )
    else:
        access = WirelessLink(
            sim, "router-client",
            mac_rate_bps=calibration.WIRELESS_PHY_BPS,
            delay=calibration.WIRELESS_BASE_DELAY_S,
            max_retries=calibration.ARQ_MAX_RETRIES,
            retry_backoff=calibration.ARQ_RETRY_BACKOFF_S,
            frame_overhead=calibration.WIRELESS_FRAME_OVERHEAD_S,
        )
    net.connect(router, client, access)
    net.register_network(router.nid, router)
    net.build_static_routes()
    router.engine.set_hid_route(client.hid, net.port_toward(router, client))
    client.port_nids[client.port(0)] = router.nid

    store = ContentStore()
    publisher = ContentPublisher(store, router.nid, server.hid)
    server_endpoint = TransportEndpoint(sim, server, config)
    CacheDaemon(sim, server, store, server_endpoint, nid=router.nid)
    client_endpoint = TransportEndpoint(sim, client, config)
    return sim, publisher, client_endpoint


def run_protocol(
    segment: str,
    protocol: str,
    file_size: int = 10 * MB,
    chunk_size: int = 2 * MB,
    seed: int = 1,
    spans: bool = False,
) -> BenchmarkPoint:
    """One bar of Fig. 5.

    ``spans=True`` attaches a live :class:`~repro.obs.spans.SpanBuilder`
    to the run's bus — used by the instrumentation-overhead bench to
    measure the cost of span derivation on the transport hot path.
    """
    configs = {
        "linux-tcp": KERNEL_TCP,
        "xstream": XIA_STREAM,
        "xchunkp": XIA_CHUNK,
    }
    config = configs[protocol]
    sim, publisher, endpoint = _build_segment(segment, config, seed)
    if spans:
        from repro.obs.spans import SpanBuilder

        SpanBuilder(run_id=f"fig5-{segment}-{protocol}").attach(sim.probe.bus)
    if protocol == "xchunkp":
        content = publisher.publish_synthetic("bench", file_size, chunk_size)
        client = XChunkPClient(sim, endpoint, config)
        process = sim.process(client.download(content))
    else:
        content = publisher.publish_synthetic("bench", file_size, file_size)
        client = XstreamClient(sim, endpoint, config)
        process = sim.process(client.download(content.addresses[0]))
    result = sim.run(until=process)
    return BenchmarkPoint(
        segment=segment,
        protocol=protocol,
        throughput_bps=result.throughput_bps,
        paper_mbps=PAPER_FIG5[(segment, protocol)],
    )


def run_all(seed: int = 1, spans: bool = False) -> list[BenchmarkPoint]:
    """All six bars of Fig. 5."""
    return [
        run_protocol(segment, protocol, seed=seed, spans=spans)
        for segment in ("wired", "wireless")
        for protocol in ("linux-tcp", "xstream", "xchunkp")
    ]
