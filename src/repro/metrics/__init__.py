"""Measurement helpers: collectors and summary statistics."""

from repro.metrics.collector import MetricsCollector
from repro.metrics.stats import (
    confidence_interval_95,
    mean,
    percentile,
    summarize,
)

__all__ = [
    "MetricsCollector",
    "confidence_interval_95",
    "mean",
    "percentile",
    "summarize",
]
