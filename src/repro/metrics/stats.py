"""Summary statistics for experiment results."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    lower, upper = ordered[low], ordered[high]
    if lower == upper:
        # Short-circuit: interpolating equal (e.g. subnormal) values
        # can underflow below both endpoints.
        return lower
    fraction = rank - low
    interpolated = lower * (1 - fraction) + upper * fraction
    # Clamp: floating-point rounding must never escape the bracket.
    return min(max(interpolated, lower), upper)


def confidence_interval_95(values: Sequence[float]) -> float:
    """Half-width of the normal-approximation 95% CI of the mean."""
    if len(values) < 2:
        return 0.0
    m = mean(values)
    variance = sum((v - m) ** 2 for v in values) / (len(values) - 1)
    return 1.96 * math.sqrt(variance / len(values))


@dataclass(frozen=True)
class Summary:
    count: int
    mean: float
    p25: float
    p50: float
    p75: float
    minimum: float
    maximum: float
    ci95: float


def summarize(values: Sequence[float]) -> Summary:
    """The descriptive statistics the paper reports for its traces."""
    if not values:
        raise ValueError("summarize of empty sequence")
    return Summary(
        count=len(values),
        mean=mean(values),
        p25=percentile(values, 25),
        p50=percentile(values, 50),
        p75=percentile(values, 75),
        minimum=min(values),
        maximum=max(values),
        ci95=confidence_interval_95(values),
    )
