"""A per-run metrics collector: named counters, series and samples."""

from __future__ import annotations

from collections import defaultdict
from typing import Optional

from repro.metrics.stats import Summary, summarize
from repro.sim import Monitor, Simulator, TimeSeries


class MetricsCollector:
    """Aggregates counters, sample monitors and time series by name."""

    def __init__(self, sim: Optional[Simulator] = None) -> None:
        self.sim = sim
        self.counters: dict[str, float] = defaultdict(float)
        self._monitors: dict[str, Monitor] = {}
        self._series: dict[str, TimeSeries] = {}
        self._samples: dict[str, list[float]] = defaultdict(list)

    # -- counters -----------------------------------------------------------

    def count(self, name: str, increment: float = 1.0) -> None:
        self.counters[name] += increment

    # -- samples -------------------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        self._samples[name].append(value)
        monitor = self._monitors.get(name)
        if monitor is None:
            monitor = self._monitors[name] = Monitor(name)
        monitor.observe(value)

    def samples(self, name: str) -> list[float]:
        return list(self._samples.get(name, []))

    def monitor(self, name: str) -> Monitor:
        try:
            return self._monitors[name]
        except KeyError:
            raise KeyError(f"no observations named {name!r}") from None

    def summary(self, name: str) -> Summary:
        return summarize(self.samples(name))

    # -- time series ------------------------------------------------------------

    def record(self, name: str, value: float, time: Optional[float] = None) -> None:
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = TimeSeries(name)
        if time is None:
            if self.sim is None:
                raise ValueError("no simulator attached; pass time explicitly")
            time = self.sim.now
        series.record(time, value)

    def series(self, name: str) -> TimeSeries:
        try:
            return self._series[name]
        except KeyError:
            raise KeyError(f"no series named {name!r}") from None

    def report(self) -> dict[str, object]:
        """A flat snapshot for printing or JSON dumping."""
        out: dict[str, object] = dict(self.counters)
        for name, monitor in self._monitors.items():
            if monitor.count:
                out[f"{name}.mean"] = monitor.mean
                out[f"{name}.min"] = monitor.minimum
                out[f"{name}.max"] = monitor.maximum
        return out
