"""A per-run metrics collector: named counters, series and samples.

Beyond the manual ``count``/``observe``/``record`` API, a collector can
subscribe to an instrumentation bus (:meth:`MetricsCollector.attach`)
and aggregate the typed events every layer publishes (see
:mod:`repro.obs`).  The same event-to-metric mapping is used live and
when replaying a JSONL trace (:func:`repro.obs.trace.replay_trace`),
so an offline replay reproduces a live run's :meth:`report` exactly.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional

from repro.metrics.stats import Summary, summarize
from repro.obs import events as ev
from repro.obs.bus import EventBus, Stamped
from repro.sim import Monitor, Simulator, TimeSeries


class MetricsCollector:
    """Aggregates counters, sample monitors and time series by name."""

    def __init__(self, sim: Optional[Simulator] = None) -> None:
        self.sim = sim
        self.counters: dict[str, float] = defaultdict(float)
        self._monitors: dict[str, Monitor] = {}
        self._series: dict[str, TimeSeries] = {}
        self._samples: dict[str, list[float]] = defaultdict(list)
        self._buses: list[EventBus] = []

    # -- counters -----------------------------------------------------------

    def count(self, name: str, increment: float = 1.0) -> None:
        self.counters[name] += increment

    # -- samples -------------------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        self._samples[name].append(value)
        monitor = self._monitors.get(name)
        if monitor is None:
            monitor = self._monitors[name] = Monitor(name)
        monitor.observe(value)

    def samples(self, name: str) -> list[float]:
        return list(self._samples.get(name, []))

    def monitor(self, name: str) -> Monitor:
        try:
            return self._monitors[name]
        except KeyError:
            raise KeyError(f"no observations named {name!r}") from None

    def summary(self, name: str) -> Summary:
        return summarize(self.samples(name))

    # -- time series ------------------------------------------------------------

    def record(self, name: str, value: float, time: Optional[float] = None) -> None:
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = TimeSeries(name)
        if time is None:
            if self.sim is None:
                raise ValueError("no simulator attached; pass time explicitly")
            time = self.sim.now
        series.record(time, value)

    def series(self, name: str) -> TimeSeries:
        try:
            return self._series[name]
        except KeyError:
            raise KeyError(f"no series named {name!r}") from None

    def series_names(self, prefix: str = "") -> list[str]:
        """Recorded series names (optionally filtered by prefix), sorted."""
        return sorted(
            name for name in self._series if name.startswith(prefix)
        )

    def timelines(self, prefix: str = "") -> dict[str, list[tuple[float, float]]]:
        """``{name: [(t, v), ...]}`` for every series under ``prefix``.

        The flight recorder's gauges land here under ``gauge.*`` —
        this is the comparison surface for live-vs-replay parity and
        the payload the run registry persists.
        """
        return {
            name: list(self._series[name])
            for name in self.series_names(prefix)
        }

    def report(self) -> dict[str, object]:
        """A flat snapshot for printing or JSON dumping."""
        out: dict[str, object] = dict(self.counters)
        for name, monitor in self._monitors.items():
            if monitor.count:
                out[f"{name}.mean"] = monitor.mean
                out[f"{name}.min"] = monitor.minimum
                out[f"{name}.max"] = monitor.maximum
        return out

    # -- event-bus subscription ----------------------------------------------

    def attach(self, bus: EventBus) -> "MetricsCollector":
        """Aggregate every event published on ``bus`` (see mapping below)."""
        bus.subscribe_all(self._on_event)
        self._buses.append(bus)
        return self

    def detach(self, bus: Optional[EventBus] = None) -> None:
        """Stop listening (to ``bus``, or to every attached bus).

        Idempotent by contract: calling it twice, or for a bus this
        collector never attached to (including with no prior
        ``attach`` at all), is a no-op — teardown paths need no
        attach/detach bookkeeping of their own.
        """
        buses = [bus] if bus is not None else list(self._buses)
        for b in buses:
            b.unsubscribe_all(self._on_event)
            if b in self._buses:
                self._buses.remove(b)

    def _on_event(self, stamped: Stamped) -> None:
        event = stamped.event
        if type(event) is ev.GaugeSample:
            # Gauges become time series keyed by the stamped sim time,
            # so a replayed trace reproduces the exact timelines.  The
            # run id is part of the series name: a multi-run trace
            # replays each run's gauges into its own (monotonic)
            # series, exactly as the per-run live collectors saw them.
            self.record(
                f"gauge.{stamped.run_id}.{event.gauge}",
                event.value,
                time=stamped.time,
            )
            return
        handler = _EVENT_METRICS.get(type(event))
        if handler is not None:
            handler(self, event)


# -- the event-to-metric mapping ---------------------------------------------
#
# One function per event type; counter names mirror the legacy ad-hoc
# per-module counters so the parity tests can assert equality (e.g.
# ``coordinator.ticks`` == StagingCoordinator.ticks).


def _on_process_failed(c: MetricsCollector, e: ev.ProcessFailed) -> None:
    c.count("sim.process_failures")


def _on_profiler_sample(c: MetricsCollector, e: ev.ProfilerSample) -> None:
    c.count("sim.profiler_samples")
    c.observe("sim.queue_depth", e.depth)


def _on_packet_dropped(c: MetricsCollector, e: ev.PacketDropped) -> None:
    c.count(f"net.drops.{e.reason}", e.count)


def _on_link_state(c: MetricsCollector, e: ev.LinkStateChanged) -> None:
    c.count("net.link_up" if e.up else "net.link_down")


def _on_link_rexmit(c: MetricsCollector, e: ev.LinkRetransmission) -> None:
    c.count("net.arq_retransmissions", e.retries)


def _on_segment_timeout(c: MetricsCollector, e: ev.SegmentTimeout) -> None:
    c.count("transport.timeouts")
    c.observe("transport.rto", e.rto)


def _on_segment_rexmit(c: MetricsCollector, e: ev.SegmentRetransmitted) -> None:
    c.count("transport.retransmissions")


def _on_session_migrated(c: MetricsCollector, e: ev.SessionMigrated) -> None:
    c.count("transport.migrations")


def _on_cache_hit(c: MetricsCollector, e: ev.CacheHit) -> None:
    c.count("cache.hits")


def _on_cache_miss(c: MetricsCollector, e: ev.CacheMiss) -> None:
    c.count("cache.misses")


def _on_cache_stored(c: MetricsCollector, e: ev.CacheStored) -> None:
    c.count("cache.insertions")
    c.count("cache.stored_bytes", e.size_bytes)


def _on_cache_evicted(c: MetricsCollector, e: ev.CacheEvicted) -> None:
    c.count("cache.evictions")
    c.count("cache.evicted_bytes", e.size_bytes)


def _on_coordinator_tick(c: MetricsCollector, e: ev.CoordinatorTick) -> None:
    c.count("coordinator.ticks")
    if e.offline:
        c.count("coordinator.offline_ticks")
    if e.decision:
        c.count("coordinator.decisions")


def _on_staging_signalled(c: MetricsCollector, e: ev.StagingSignalled) -> None:
    c.count("staging.signals")
    c.count("staging.chunks_signalled", e.count)
    if e.label == "re-signal":
        c.count("staging.resignals")


def _on_chunk_staged(c: MetricsCollector, e: ev.ChunkStaged) -> None:
    c.count("staging.responses")
    if e.staging_latency is not None:
        c.observe("staging.latency", e.staging_latency)
    if e.control_rtt is not None:
        c.observe("staging.control_rtt", e.control_rtt)


def _on_stale_response(c: MetricsCollector, e: ev.StaleStagingResponse) -> None:
    c.count("staging.stale_responses")


def _on_stage_request(c: MetricsCollector, e: ev.StageRequestReceived) -> None:
    c.count("vnf.requests")


def _on_vnf_staged(c: MetricsCollector, e: ev.VnfStageCompleted) -> None:
    c.count("vnf.staged")
    c.observe("vnf.staging_latency", e.latency)


def _on_vnf_failed(c: MetricsCollector, e: ev.VnfStageFailed) -> None:
    c.count("vnf.failures")


def _on_chunk_fetched(c: MetricsCollector, e: ev.ChunkFetched) -> None:
    c.count("chunks.fetched")
    c.count("chunks.from_edge" if e.from_edge else "chunks.from_origin")
    if e.fallback:
        c.count("chunks.fallbacks")
    c.observe("fetch.latency", e.latency)


def _on_handoff_started(c: MetricsCollector, e: ev.HandoffStarted) -> None:
    c.count("handoff.executed")


def _on_handoff_completed(c: MetricsCollector, e: ev.HandoffCompleted) -> None:
    c.observe("handoff.duration", e.duration)


def _on_handoff_deferred(c: MetricsCollector, e: ev.HandoffDeferred) -> None:
    c.count("handoff.deferred")


def _on_prestage(c: MetricsCollector, e: ev.PrestageSignalled) -> None:
    c.count("staging.prestage_signals")
    c.count("staging.prestaged_chunks", e.count)


def _on_coverage_gap(c: MetricsCollector, e: ev.CoverageGap) -> None:
    c.count("coverage.gaps")
    c.observe("coverage.gap_duration", e.duration)


def _on_encounter_ended(c: MetricsCollector, e: ev.EncounterEnded) -> None:
    c.count("coverage.encounters")
    c.observe("coverage.encounter_duration", e.duration)


_EVENT_METRICS = {
    ev.ProcessFailed: _on_process_failed,
    ev.ProfilerSample: _on_profiler_sample,
    ev.PacketDropped: _on_packet_dropped,
    ev.LinkStateChanged: _on_link_state,
    ev.LinkRetransmission: _on_link_rexmit,
    ev.SegmentTimeout: _on_segment_timeout,
    ev.SegmentRetransmitted: _on_segment_rexmit,
    ev.SessionMigrated: _on_session_migrated,
    ev.CacheHit: _on_cache_hit,
    ev.CacheMiss: _on_cache_miss,
    ev.CacheStored: _on_cache_stored,
    ev.CacheEvicted: _on_cache_evicted,
    ev.CoordinatorTick: _on_coordinator_tick,
    ev.StagingSignalled: _on_staging_signalled,
    ev.ChunkStaged: _on_chunk_staged,
    ev.StaleStagingResponse: _on_stale_response,
    ev.StageRequestReceived: _on_stage_request,
    ev.VnfStageCompleted: _on_vnf_staged,
    ev.VnfStageFailed: _on_vnf_failed,
    ev.ChunkFetched: _on_chunk_fetched,
    ev.HandoffStarted: _on_handoff_started,
    ev.HandoffCompleted: _on_handoff_completed,
    ev.HandoffDeferred: _on_handoff_deferred,
    ev.PrestageSignalled: _on_prestage,
    ev.CoverageGap: _on_coverage_gap,
    ev.EncounterEnded: _on_encounter_ended,
}
