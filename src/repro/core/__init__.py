"""SoftStage: the paper's core contribution.

A client-directed, network-layer content staging function.  The
control plane lives on the client as the **Staging Manager** —
decomposed, exactly as in the paper's Fig. 3, into

- :class:`~repro.core.profile.ChunkProfile` (Table I state),
- :class:`~repro.core.chunk_manager.ChunkManager` (the
  ``XfetchChunk*`` delegation API),
- :class:`~repro.core.network_sensor.NetworkSensor` (second-radio
  scanning + VNF discovery),
- :class:`~repro.core.handoff.HandoffManager` (default-RSS and
  chunk-aware policies),
- :class:`~repro.core.coordinator.StagingCoordinator` (the reactive
  "Just-in-Time" staging algorithm, Eq. 1),
- :class:`~repro.core.tracker.StagingTracker` (signalling to the VNF)

— while the data plane's **Staging VNF**
(:class:`~repro.core.vnf.StagingVNF`) is a stateless service embedded
in the edge network's XCache.  :class:`~repro.core.client.SoftStageClient`
assembles the whole thing behind a one-call download API.
"""

from repro.core.config import SoftStageConfig
from repro.core.states import FetchState, StagingState
from repro.core.profile import ChunkProfile, ChunkRecord
from repro.core.policy import (
    ActionKind,
    MobilityAwarePolicy,
    ReactiveEq1Policy,
    RichPrefetchPolicy,
    StagingAction,
    StagingObservation,
    StagingPolicy,
    available_policies,
    make_policy,
)
from repro.core.coordinator import StagingCoordinator
from repro.core.tracker import StagingTracker
from repro.core.network_sensor import NetworkSensor
from repro.core.handoff import ChunkAwarePolicy, HandoffManager, RssGreedyPolicy
from repro.core.chunk_manager import ChunkManager
from repro.core.manager import StagingManager
from repro.core.vnf import StagingVNF, vnf_address
from repro.core.client import SoftStageClient

__all__ = [
    "ActionKind",
    "ChunkAwarePolicy",
    "ChunkManager",
    "ChunkProfile",
    "ChunkRecord",
    "FetchState",
    "HandoffManager",
    "MobilityAwarePolicy",
    "NetworkSensor",
    "ReactiveEq1Policy",
    "RichPrefetchPolicy",
    "RssGreedyPolicy",
    "SoftStageClient",
    "SoftStageConfig",
    "StagingAction",
    "StagingCoordinator",
    "StagingManager",
    "StagingObservation",
    "StagingPolicy",
    "StagingTracker",
    "StagingVNF",
    "available_policies",
    "make_policy",
    "vnf_address",
]
