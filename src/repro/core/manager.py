"""The Staging Manager: composition root of the client control plane.

Wires the six Fig. 3 modules together around one client host:
Chunk Profile <- {Chunk Manager, Staging Tracker} <- Staging
Coordinator <- Network Sensor, plus the Handoff Manager, and exposes
the small surface the application (SoftStageClient) drives.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.chunk_manager import ChunkManager
from repro.core.config import SoftStageConfig
from repro.core.coordinator import StagingCoordinator
from repro.core.handoff import ChunkAwarePolicy, HandoffManager, HandoffPolicy
from repro.core.network_sensor import NetworkSensor
from repro.core.policy import StagingPolicy
from repro.core.profile import ChunkProfile
from repro.core.tracker import StagingTracker
from repro.mobility.association import AssociationController
from repro.mobility.scanner import Scanner, VisibleNetwork
from repro.obs.events import PrestageSignalled
from repro.sim import Simulator
from repro.transport.reliable import TransportEndpoint

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.nodes import Host
    from repro.xcache.publisher import PublishedContent


class StagingManager:
    """Everything SoftStage runs on the client side."""

    def __init__(
        self,
        sim: Simulator,
        host: "Host",
        endpoint: TransportEndpoint,
        controller: AssociationController,
        scanner: Scanner,
        config: Optional[SoftStageConfig] = None,
        handoff_policy: Optional[HandoffPolicy] = None,
        staging_policy: Optional[StagingPolicy] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.config = config or SoftStageConfig()
        self.profile = ChunkProfile(ewma_alpha=self.config.ewma_alpha)
        self.tracker = StagingTracker(sim, host, self.profile)
        self.sensor = NetworkSensor(sim, scanner, controller)
        self.coordinator = StagingCoordinator(
            sim, self.profile, self.tracker, self.sensor, self.config,
            policy=staging_policy,
        )
        self.handoff_manager = HandoffManager(
            sim,
            controller,
            scanner,
            policy=handoff_policy or ChunkAwarePolicy(),
            config=self.config,
            prestage=self._prestage_into,
        )
        self.chunk_manager = ChunkManager(
            sim,
            host,
            endpoint,
            self.profile,
            controller,
            config=self.config,
            handoff_manager=self.handoff_manager,
            chunk_delivered=self.coordinator.notify_chunk_delivered,
        )
        self.prestage_signals = 0

    # -- content registration (step 3 of Fig. 2) --------------------------------

    def register_content(self, content: "PublishedContent") -> None:
        self.profile.register_content(content)

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        self.coordinator.start()

    def stop(self) -> None:
        self.coordinator.stop()

    # -- chunk-aware handoff pre-staging (step 4 of Fig. 1) ------------------------

    def _prestage_into(self, target: VisibleNetwork) -> None:
        """Stage upcoming chunks into the *target* network's VNF via the
        current network, before the handoff happens."""
        vnf = self.sensor.vnf_address_of(target)
        if vnf is None:
            return
        count = self.coordinator.prestage_count()
        records = self.profile.next_to_stage(count)
        if records:
            self.prestage_signals += 1
            probe = self.sim.probe
            if probe.active:
                probe.emit(
                    PrestageSignalled(target=target.name, count=len(records))
                )
            self.tracker.signal(records, vnf, label=f"prestage:{target.name}")

    def __repr__(self) -> str:
        return f"<StagingManager {self.profile!r}>"
