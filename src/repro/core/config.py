"""SoftStage client configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SoftStageConfig:
    """Knobs of the Staging Manager.

    Defaults follow the paper where it is explicit and otherwise pick
    values the sensitivity tests in ``tests/core`` justify.
    """

    #: How often the Staging Coordinator re-evaluates Eq. 1, seconds.
    coordinator_poll_interval: float = 0.25
    #: Chunks to stage before any latency estimates exist ("initial
    #: chunks are retrieved directly from the server, while the client
    #: contacts the edge VNF to stage future chunks", §III-A).
    initial_stage_count: int = 2
    #: Upper bound on chunks staged ahead (edge cache budget); Eq. 1
    #: decides *when*, this bounds *how far*.
    max_stage_ahead: int = 64
    #: Re-send a staging signal if unconfirmed for this long, seconds
    #: (control packets can die on the wireless segment).
    staging_signal_timeout: float = 3.0
    #: Working assumption for the next coverage gap's length before any
    #: gap has been observed, seconds.  The coordinator signals enough
    #: chunks ahead that the VNF can keep staging through a gap of this
    #: length; once real gaps are observed their EWMA replaces it
    #: (reactive adaptation — no mobility prediction).
    initial_gap_estimate: float = 16.0
    #: Fallback values for Eq. 1 before any estimates exist.
    default_staging_latency: float = 1.0
    default_fetch_latency: float = 1.0
    default_rtt: float = 0.02
    #: EWMA smoothing for the Table I latency estimators.
    ewma_alpha: float = 0.25
    #: RSS hysteresis for the default handoff policy, dB.
    handoff_hysteresis_db: float = 3.0
    #: Per-chunk control-plane cost of the delegation API: the extra
    #: client<->Staging-Manager IPC round trips of one XfetchChunk*
    #: call (profile poll, state updates, staging signalling).  The
    #: paper's Fig. 6(a): "the control plane messages introduce more
    #: overhead with smaller chunks".
    xfetch_control_overhead: float = 0.06
    #: Do not re-stage a chunk into the *current* network if it is
    #: already READY somewhere else unless the estimated fetch saving
    #: exceeds this factor (cross-network fetch is usually fine).
    restage_saving_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.coordinator_poll_interval <= 0:
            raise ConfigurationError("coordinator_poll_interval must be > 0")
        if self.initial_stage_count < 1:
            raise ConfigurationError("initial_stage_count must be >= 1")
        if self.max_stage_ahead < 1:
            raise ConfigurationError("max_stage_ahead must be >= 1")
        if self.staging_signal_timeout <= 0:
            raise ConfigurationError("staging_signal_timeout must be > 0")
        if self.initial_gap_estimate < 0:
            raise ConfigurationError("initial_gap_estimate must be >= 0")
        if self.default_staging_latency <= 0 or self.default_fetch_latency <= 0:
            raise ConfigurationError("default latencies must be > 0")
