"""The Handoff Manager and its policies.

Two policies from the paper (§IV-D):

- **Default** (:class:`RssGreedyPolicy`): "blindly switches to the
  network with a stronger received signal strength";
- **Content-aware** (:class:`ChunkAwarePolicy`): picks targets the same
  way, but defers the switch until the chunk currently being fetched
  completes — no transmission is wasted on an interrupted chunk or an
  avoidable active-session migration — and announces the target ahead
  of time so SoftStage can pre-stage into the new network *via the
  current one* (step 4 of Fig. 1).
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

from repro.core.config import SoftStageConfig
from repro.mobility.association import Association, AssociationController
from repro.mobility.scanner import Scanner, VisibleNetwork
from repro.obs.events import HandoffCompleted, HandoffDeferred, HandoffStarted
from repro.sim import Simulator


class HandoffPolicy(abc.ABC):
    """Chooses handoff targets and timing."""

    #: Whether switches wait for chunk boundaries.
    content_aware = False

    @abc.abstractmethod
    def select_target(
        self,
        visible: list[VisibleNetwork],
        current: Optional[Association],
        hysteresis_db: float,
    ) -> Optional[VisibleNetwork]:
        """The network to move to, or None to stay."""


class RssGreedyPolicy(HandoffPolicy):
    """Switch whenever somewhere louder exists (the legacy default)."""

    content_aware = False

    def select_target(self, visible, current, hysteresis_db):
        if not visible:
            return None
        strongest = visible[0]
        if current is None:
            return strongest
        if strongest.name == current.ap.name:
            return None
        current_rss = next(
            (v.rss for v in visible if v.name == current.ap.name), None
        )
        if current_rss is None:
            # Current AP no longer audible; take the best we can hear.
            return strongest
        if strongest.rss > current_rss + hysteresis_db:
            return strongest
        return None


class ChunkAwarePolicy(RssGreedyPolicy):
    """Same target selection; execution deferred to chunk boundaries."""

    content_aware = True


class HandoffManager:
    """Executes policy decisions against the association controller."""

    def __init__(
        self,
        sim: Simulator,
        controller: AssociationController,
        scanner: Scanner,
        policy: Optional[HandoffPolicy] = None,
        config: Optional[SoftStageConfig] = None,
        prestage: Optional[Callable[[VisibleNetwork], None]] = None,
    ) -> None:
        self.sim = sim
        self.controller = controller
        self.policy = policy or RssGreedyPolicy()
        self.config = config or SoftStageConfig()
        #: Called once per deferred-handoff target so SoftStage can
        #: pre-stage into the target network before switching.
        self.prestage = prestage
        self.pending_target: Optional[VisibleNetwork] = None
        self.handoffs = 0
        self.deferred_handoffs = 0
        #: Set by the Chunk Manager while a chunk transfer is active.
        self.fetch_active = False
        scanner.subscribe(self.on_scan)

    # -- scan-driven decisions -------------------------------------------------

    _join_inflight: bool = False

    def on_scan(self, visible: list[VisibleNetwork]) -> None:
        if self._join_inflight:
            return  # a join is already in flight; decide on the next scan
        current = self.controller.current
        if current is None:
            # Offline: join the strongest network as soon as one appears.
            self.pending_target = None
            if visible:
                self._execute(visible[0])
            return
        target = self.policy.select_target(
            visible, current, self.config.handoff_hysteresis_db
        )
        if target is None:
            if (
                self.pending_target is not None
                and all(v.name != self.pending_target.name for v in visible)
            ):
                self.pending_target = None  # target faded away; abandon
            return
        if self.policy.content_aware and self.fetch_active:
            if (
                self.pending_target is None
                or self.pending_target.name != target.name
            ):
                self.pending_target = target
                self.deferred_handoffs += 1
                probe = self.sim.probe
                if probe.active:
                    probe.emit(HandoffDeferred(target=target.name))
                if self.prestage is not None:
                    self.prestage(target)
            return
        self._execute(target)

    # -- execution ------------------------------------------------------------

    _executing_target: str = ""
    _executing_since: float = 0.0

    def _execute(self, target: VisibleNetwork) -> None:
        self.pending_target = None
        self.handoffs += 1
        self._join_inflight = True
        self._executing_target = target.name
        self._executing_since = self.sim.now
        probe = self.sim.probe
        if probe.active:
            probe.emit(HandoffStarted(target=target.name))
        join = self.sim.process(self.controller.associate(target.name))
        join.callbacks.append(self._join_finished)

    def _join_finished(self, event) -> None:
        self._join_inflight = False
        probe = self.sim.probe
        if probe.active:
            probe.emit(
                HandoffCompleted(
                    target=self._executing_target,
                    duration=self.sim.now - self._executing_since,
                )
            )

    def on_chunk_boundary(self) -> None:
        """Called by the Chunk Manager when a chunk transfer finishes;
        executes any deferred handoff now (between chunk transfers)."""
        if self.pending_target is not None:
            self._execute(self.pending_target)

    def __repr__(self) -> str:
        return (
            f"<HandoffManager policy={type(self.policy).__name__} "
            f"handoffs={self.handoffs}>"
        )
