"""The Network Sensor: scanning, VNF discovery, gap statistics.

Uses the client's second radio (via the shared
:class:`~repro.mobility.scanner.Scanner`) to keep a fresh view of
reachable networks, their RSS and their NetJoin advertisements (which
carry the staging VNF's SID and the edge XCache's HID).  It also
tracks *observed* disconnection durations — the reactive substitute
for mobility prediction the coordinator uses to size its signal-ahead
window.
"""

from __future__ import annotations

from typing import Optional

from repro.core.profile import EwmaEstimator
from repro.core.vnf import vnf_address
from repro.mobility.association import Association, AssociationController
from repro.mobility.scanner import Scanner, VisibleNetwork
from repro.obs.events import CoverageGap, EncounterEnded
from repro.sim import Simulator
from repro.xia.dag import DagAddress


class NetworkSensor:
    """Client-side view of the surrounding edge networks."""

    def __init__(
        self,
        sim: Simulator,
        scanner: Scanner,
        controller: AssociationController,
        gap_ewma_alpha: float = 0.3,
    ) -> None:
        self.sim = sim
        self.scanner = scanner
        self.controller = controller
        self.last_scan: list[VisibleNetwork] = []
        self.gap_duration = EwmaEstimator(gap_ewma_alpha)
        self.encounter_duration = EwmaEstimator(gap_ewma_alpha)
        self._detached_at: Optional[float] = None
        scanner.subscribe(self._on_scan)
        controller.on_attach(self._on_attach)
        controller.on_detach(self._on_detach)

    # -- scan bookkeeping ---------------------------------------------------

    def _on_scan(self, visible: list[VisibleNetwork]) -> None:
        self.last_scan = visible

    def _on_attach(self, association: Association) -> None:
        if self._detached_at is not None:
            gap = self.sim.now - self._detached_at
            self.gap_duration.observe(gap)
            self._detached_at = None
            probe = self.sim.probe
            if probe.active:
                probe.emit(CoverageGap(duration=gap))

    def _on_detach(self, association: Association) -> None:
        self._detached_at = self.sim.now
        encounter = self.sim.now - association.since
        self.encounter_duration.observe(encounter)
        probe = self.sim.probe
        if probe.active:
            probe.emit(EncounterEnded(duration=encounter))

    # -- queries ---------------------------------------------------------------

    @property
    def is_connected(self) -> bool:
        return self.controller.is_associated

    def vnf_address_of(self, visible_or_info) -> Optional[DagAddress]:
        """Service DAG of an edge network's staging VNF, if advertised."""
        return vnf_address(visible_or_info)

    def current_vnf_address(self) -> Optional[DagAddress]:
        """The staging VNF of the currently-joined network (None when
        offline or when the network has no VNF — the fallback case)."""
        current = self.controller.current
        if current is None:
            return None
        return self.vnf_address_of(current.ap)

    def visible_networks(self) -> list[VisibleNetwork]:
        return list(self.last_scan)

    def strongest_visible(self) -> Optional[VisibleNetwork]:
        return self.last_scan[0] if self.last_scan else None

    def expected_gap(self, default: float) -> float:
        """EWMA of observed disconnection durations (reactive)."""
        return self.gap_duration.value_or(default)
