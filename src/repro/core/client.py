"""SoftStageClient: the application-facing download API.

An FTP-style client application that retrieves a stream of content
objects through SoftStage.  The staging machinery is entirely hidden
behind :meth:`download` — exactly the paper's application-transparency
goal: the app calls the delegation API per chunk and everything else
(staging, handoff, migration, fallback) happens underneath.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.core.config import SoftStageConfig
from repro.core.handoff import HandoffPolicy
from repro.core.manager import StagingManager
from repro.core.policy import StagingPolicy
from repro.mobility.association import AssociationController
from repro.mobility.scanner import Scanner
from repro.sim import Simulator
from repro.transport.chunkfetch import FetchOutcome
from repro.transport.reliable import TransportEndpoint

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.nodes import Host
    from repro.xcache.publisher import PublishedContent


@dataclass
class DownloadResult:
    """What a completed (or deadline-bounded) download reports."""

    content_name: str
    bytes_received: int
    duration: float
    chunks_completed: int
    chunks_total: int
    chunks_from_edge: int
    chunks_from_origin: int
    fallbacks: int
    handoffs: int
    staging_signals: int
    outcomes: list[FetchOutcome] = field(default_factory=list)

    @property
    def throughput_bps(self) -> float:
        return self.bytes_received * 8 / self.duration if self.duration > 0 else 0.0

    @property
    def completed(self) -> bool:
        return self.chunks_completed >= self.chunks_total

    @property
    def edge_fraction(self) -> float:
        if self.chunks_completed == 0:
            return 0.0
        return self.chunks_from_edge / self.chunks_completed


class SoftStageClient:
    """FTP-style client application running over SoftStage."""

    def __init__(
        self,
        sim: Simulator,
        host: "Host",
        endpoint: TransportEndpoint,
        controller: AssociationController,
        scanner: Scanner,
        config: Optional[SoftStageConfig] = None,
        handoff_policy: Optional[HandoffPolicy] = None,
        staging_policy: Optional[StagingPolicy] = None,
    ) -> None:
        self.sim = sim
        self.manager = StagingManager(
            sim,
            host,
            endpoint,
            controller,
            scanner,
            config=config,
            handoff_policy=handoff_policy,
            staging_policy=staging_policy,
        )

    def download(self, content: "PublishedContent", deadline: Optional[float] = None):
        """Process: download every chunk of ``content`` in order.

        Stops early at ``deadline`` (simulated seconds, absolute) —
        used by the trace-driven experiment, which measures how much
        content fits inside a fixed drive.
        """
        manager = self.manager
        manager.register_content(content)
        manager.start()
        started = self.sim.now
        outcomes: list[FetchOutcome] = []
        bytes_received = 0
        try:
            for chunk in content.chunks:
                if deadline is not None and self.sim.now >= deadline:
                    break
                fetch = self.sim.process(
                    manager.chunk_manager.xfetch_chunk_star(chunk.cid)
                )
                if deadline is None:
                    outcome = yield fetch
                else:
                    result = yield self.sim.any_of(
                        [fetch, self.sim.timeout(max(deadline - self.sim.now, 0.0))]
                    )
                    if fetch not in result:
                        break
                    outcome = result[fetch]
                outcomes.append(outcome)
                bytes_received += outcome.bytes_received
        finally:
            manager.stop()
        return DownloadResult(
            content_name=content.name,
            bytes_received=bytes_received,
            duration=self.sim.now - started,
            chunks_completed=len(outcomes),
            chunks_total=len(content.chunks),
            chunks_from_edge=manager.chunk_manager.chunks_from_edge,
            chunks_from_origin=manager.chunk_manager.chunks_from_origin,
            fallbacks=manager.chunk_manager.fallbacks,
            handoffs=manager.handoff_manager.handoffs,
            staging_signals=manager.tracker.signals_sent,
            outcomes=outcomes,
        )
