"""The Chunk Manager: the ``XfetchChunk*`` delegation API.

Client applications call :meth:`ChunkManager.xfetch_chunk_star` with a
CID and get the chunk, never learning where it came from: the manager
polls the Chunk Profile for the freshest address (the staged edge copy
when one is READY, the origin otherwise), honours any deferred
chunk-aware handoff before starting the next transfer, falls back to
the origin DAG when the edge copy cannot be reached, and feeds every
observation (fetch latency, serving location) back into the profile.
It also keeps transport sessions alive across moves by announcing
migrations whenever the client re-attaches.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.core.config import SoftStageConfig
from repro.core.handoff import HandoffManager
from repro.core.profile import ChunkProfile
from repro.core.states import StagingState
from repro.errors import TransportError
from repro.mobility.association import Association, AssociationController
from repro.obs.events import ChunkFetched
from repro.sim import Simulator
from repro.transport.chunkfetch import ChunkFetcher, FetchOutcome
from repro.transport.reliable import TransportEndpoint
from repro.xia.dag import DagAddress
from repro.xia.ids import XID

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.nodes import Host


class ChunkManager:
    """Location-transparent chunk retrieval for client applications."""

    def __init__(
        self,
        sim: Simulator,
        host: "Host",
        endpoint: TransportEndpoint,
        profile: ChunkProfile,
        controller: AssociationController,
        config: Optional[SoftStageConfig] = None,
        handoff_manager: Optional[HandoffManager] = None,
        chunk_delivered: Optional[Callable[[XID], None]] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.endpoint = endpoint
        self.profile = profile
        self.controller = controller
        self.config = config or SoftStageConfig()
        self.handoff_manager = handoff_manager
        #: Notified after every delivered chunk (policy lifecycle hook).
        self.chunk_delivered = chunk_delivered
        self.fetcher = ChunkFetcher(
            sim, endpoint, wait_for_connectivity=controller.wait_attached
        )
        controller.on_attach(self._on_attach)
        self.chunks_from_edge = 0
        self.chunks_from_origin = 0
        self.fallbacks = 0

    # -- mobility plumbing ---------------------------------------------------

    def _on_attach(self, association: Association) -> None:
        """Re-announce every live transport session from the new network."""
        new_dag = DagAddress.host(self.host.hid, association.ap.nid)
        self.endpoint.migrate_receivers(new_dag)

    # -- the delegation API -----------------------------------------------------

    def xfetch_chunk_star(self, cid: XID):
        """Process: fetch one chunk with location transparency."""
        record = self.profile.get(cid)
        handoff = self.handoff_manager

        # A chunk-aware handoff deferred to this boundary happens first.
        if handoff is not None and handoff.pending_target is not None:
            handoff.on_chunk_boundary()
            # Give the association a chance to complete before fetching.
            yield self.sim.timeout(0.0)

        started = self.sim.now
        fell_back = False
        if self.config.xfetch_control_overhead > 0:
            # Delegation-API cost: poll the Chunk Profile, refresh
            # staging state, sync with the Staging Manager (IPC).
            yield self.sim.timeout(self.config.xfetch_control_overhead)
        address = record.best_dag
        if handoff is not None:
            handoff.fetch_active = True
        try:
            outcome = yield self.sim.process(self.fetcher.fetch(address))
        except TransportError:
            if address == record.raw_dag:
                raise
            # The staged copy is unreachable (edge cache gone, stale
            # announcement): fall back to the origin (Table II).
            self.fallbacks += 1
            fell_back = True
            record.staging_state = StagingState.DONE
            record.new_dag = None
            outcome = yield self.sim.process(self.fetcher.fetch(record.raw_dag))
        finally:
            if handoff is not None:
                handoff.fetch_active = False

        self._account(record, outcome, self.sim.now - started, fell_back)
        if handoff is not None:
            handoff.on_chunk_boundary()
        return outcome

    # -- bookkeeping ----------------------------------------------------------------

    def _account(
        self,
        record,
        outcome: FetchOutcome,
        latency: float,
        fell_back: bool = False,
    ) -> None:
        origin_hid = record.raw_dag.fallback_hid
        from_edge = (
            outcome.served_by_hid is not None
            and outcome.served_by_hid != origin_hid
        )
        self.profile.observe_fetch(record, latency, from_edge=from_edge)
        if from_edge:
            self.chunks_from_edge += 1
        else:
            self.chunks_from_origin += 1
            if record.staging_state is StagingState.BLANK:
                # Fetched directly (no VNF available): never stage it.
                record.staging_state = StagingState.DONE
        probe = self.sim.probe
        if probe.active:
            probe.emit(
                ChunkFetched(
                    cid=record.cid.short,
                    latency=latency,
                    from_edge=from_edge,
                    fallback=fell_back,
                )
            )
        if self.chunk_delivered is not None:
            self.chunk_delivered(record.cid)

    def __repr__(self) -> str:
        return (
            f"<ChunkManager edge={self.chunks_from_edge} "
            f"origin={self.chunks_from_origin} fallbacks={self.fallbacks}>"
        )
