"""The pluggable StagingPolicy framework.

The paper's reactive Eq. 1 algorithm is one answer to the question
"which chunks should be staged where, right now?".  This module turns
that question into a protocol so competitors can be expressed without
forking the staging stack:

- a :class:`StagingObservation` is a read-only snapshot of the client's
  world, built by the :class:`~repro.core.coordinator.StagingCoordinator`
  from the same state the flight recorder samples (staged-ahead chunks,
  staging lead bytes, client progress, link queues, connectivity and
  the Table I latency estimators);
- a policy's :meth:`StagingPolicy.decide` maps an observation to a list
  of :class:`StagingAction` requests (stage / re-signal / cancel /
  migrate / pin), which the coordinator executes against the Staging
  Tracker and the edge VNFs;
- lifecycle hooks (:meth:`StagingPolicy.on_attach` /
  :meth:`~StagingPolicy.on_detach` /
  :meth:`~StagingPolicy.on_chunk_delivered`) let event-driven policies
  act between polls.

Shipped policies:

- :class:`ReactiveEq1Policy` — the paper's Just-in-Time algorithm,
  bit-identical to the pre-framework coordinator;
- :class:`RichPrefetchPolicy` — a RICH-style in-order prefetch window
  of W chunks, refilled as chunks are consumed and pre-staged whole
  into the predicted next AP on chunk-aware handoffs;
- :class:`MobilityAwarePolicy` — placement-probability staging that
  splits the Eq. 1 budget between the current network and the
  round-robin next one, weighted by predicted dwell time and handoff
  likelihood (both observed by :mod:`repro.mobility` estimators);
- ``"predictive"`` — the EdgeBuffer-style baseline from
  :mod:`repro.baselines.predictive`, ported onto this protocol.

This observation/action surface is deliberately RL-shaped: an
environment can present :class:`StagingObservation` as its observation
space and :class:`StagingAction` as its action space without another
refactor.
"""

from __future__ import annotations

import abc
import enum
import math
from dataclasses import dataclass, field
from typing import Iterable, Optional, TYPE_CHECKING

from repro.core.config import SoftStageConfig
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.scenario import TestbedScenario
    from repro.xia.ids import XID


# ---------------------------------------------------------------------------
# Observation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StagingObservation:
    """One read-only snapshot of the staging world.

    Built by the coordinator from pure state reads — constructing an
    observation never perturbs the simulation, so fixed-seed runs are
    identical whether zero or many policies look at it.  The fields
    mirror the flight-recorder gauge set plus what Eq. 1 needs.
    """

    #: Simulated time of the snapshot.
    now: float
    #: Whether the client is currently associated to an AP.
    connected: bool
    #: Name of the current network (None while offline).
    current_network: Optional[str]
    #: Seconds since the current association began (0.0 offline).
    time_in_network: float
    #: Whether the current network advertises a staging VNF.
    vnf_available: bool
    #: Every network the client knows about, in stable (join) order.
    known_networks: tuple[str, ...]
    #: The subset of ``known_networks`` that advertises a staging VNF.
    networks_with_vnf: frozenset[str]
    #: Latest scan results as ``(name, rss_dbm)``, strongest first.
    visible_networks: tuple[tuple[str, float], ...]

    # -- staging pipeline gauges (flight-recorder names in comments) --
    #: Registered chunks in this download session.
    total_chunks: int
    #: Chunks fully fetched by the client.
    fetched_chunks: int
    #: READY-but-unfetched chunks (``staging.staged_ahead_chunks``).
    staged_ahead: int
    #: Signalled-but-unconfirmed chunks (``staging.pending_chunks``).
    pending_staging: int
    #: Unfetched chunks never signalled anywhere (BLANK).
    unsignalled_chunks: int
    #: Staging lead in bytes (``staging.lead_bytes``).
    lead_bytes: int
    #: Client progress in bytes (``client.progress_bytes``).
    progress_bytes: int
    #: Bytes queued on the client's access links
    #: (sum of ``link.queue_bytes.*`` over the client's ports).
    link_queue_bytes: int

    # -- Table I estimators (None until the first sample) --
    rtt_to_edge: Optional[float]
    staging_latency: Optional[float]
    edge_fetch_latency: Optional[float]
    #: How many staging-latency samples exist (Eq. 1 falls back to the
    #: configured initial burst while this is zero).
    staging_latency_samples: int

    # -- reactive mobility statistics (EWMAs over observed events) --
    #: Observed disconnection-gap duration (None before the first gap).
    observed_gap: Optional[float]
    #: Observed encounter duration (None before the first encounter end).
    observed_encounter: Optional[float]

    #: PENDING chunks whose confirmation is overdue, in profile order.
    stale_cids: tuple["XID", ...] = ()
    #: All currently PENDING chunks.
    in_flight_cids: frozenset = frozenset()

    @property
    def remaining_chunks(self) -> int:
        return self.total_chunks - self.fetched_chunks

    @property
    def outstanding(self) -> int:
        """Chunks signalled ahead (READY or PENDING, unfetched)."""
        return self.staged_ahead + self.pending_staging

    def next_network(self) -> Optional[str]:
        """The round-robin successor of the current network.

        The Fig. 6 coverage pattern visits APs cyclically, which is
        also what the EdgeBuffer-style predictor assumes — policies
        that want real prediction should use
        :class:`repro.baselines.predictive.MobilityPredictor`.
        """
        names = self.known_networks
        if not names:
            return None
        if self.current_network not in names:
            return names[0]
        index = names.index(self.current_network)
        return names[(index + 1) % len(names)]


# ---------------------------------------------------------------------------
# Actions
# ---------------------------------------------------------------------------


class ActionKind(enum.Enum):
    """What a :class:`StagingAction` asks the executor to do."""

    #: Signal the next ``count`` in-order unsignalled chunks to the
    #: target network's VNF.
    STAGE = "stage"
    #: Re-send staging signals for still-PENDING chunks (lost replies).
    RESIGNAL = "resignal"
    #: Forget PENDING requests (state back to BLANK, no packets sent).
    CANCEL = "cancel"
    #: Re-stage READY chunks into the target network's VNF while the
    #: old staged copy stays addressable until the new one confirms.
    MIGRATE = "migrate"
    #: Ask the VNF currently holding READY chunks to keep them pinned.
    PIN = "pin"


@dataclass(frozen=True)
class StagingAction:
    """One request from a policy to the staging executor.

    ``target`` names a network (``None`` = the current one); the
    executor resolves it to that network's staging-VNF DAG and drops
    the action silently when the network has no VNF — the same
    fault-tolerance a policy-free coordinator has.
    """

    kind: ActionKind
    #: STAGE: how many next-in-order chunks to signal.
    count: int = 0
    #: Network name the action applies to (None = current network).
    target: Optional[str] = None
    #: Chunk CIDs for RESIGNAL / CANCEL / MIGRATE / PIN.
    cids: tuple = ()
    #: Label stamped on the staging signal (shows up in traces).
    label: str = ""

    # -- constructors ------------------------------------------------------

    @classmethod
    def stage(
        cls, count: int, target: Optional[str] = None, label: str = "stage"
    ) -> "StagingAction":
        return cls(ActionKind.STAGE, count=count, target=target, label=label)

    @classmethod
    def resignal(
        cls, cids: Iterable, target: Optional[str] = None,
        label: str = "re-signal",
    ) -> "StagingAction":
        return cls(
            ActionKind.RESIGNAL, target=target, cids=tuple(cids), label=label
        )

    @classmethod
    def cancel(cls, cids: Iterable) -> "StagingAction":
        return cls(ActionKind.CANCEL, cids=tuple(cids))

    @classmethod
    def migrate(
        cls, cids: Iterable, target: str, label: str = "migrate"
    ) -> "StagingAction":
        return cls(
            ActionKind.MIGRATE, target=target, cids=tuple(cids), label=label
        )

    @classmethod
    def pin(cls, cids: Iterable, label: str = "pin") -> "StagingAction":
        return cls(ActionKind.PIN, cids=tuple(cids), label=label)


# ---------------------------------------------------------------------------
# The protocol
# ---------------------------------------------------------------------------


class StagingPolicy(abc.ABC):
    """Decides which chunks are staged where.

    Stateless policies only implement :meth:`decide`; event-driven ones
    also override the lifecycle hooks, each of which may return more
    actions to execute immediately (the hooks of the default policy
    return nothing, so attaching them costs a fixed-seed run nothing).
    """

    #: Registry name (CLI ``--policy`` value, RunRecord field).
    name: str = "policy"

    @abc.abstractmethod
    def decide(self, obs: StagingObservation) -> list[StagingAction]:
        """Actions for one coordination round."""

    # -- lifecycle hooks ---------------------------------------------------

    def on_attach(
        self, obs: StagingObservation, network: str
    ) -> list[StagingAction]:
        """Called when the client associates to ``network``."""
        return []

    def on_detach(
        self, obs: StagingObservation, network: str
    ) -> list[StagingAction]:
        """Called when the client loses ``network``."""
        return []

    def on_chunk_delivered(
        self, obs: StagingObservation, cid: "XID"
    ) -> list[StagingAction]:
        """Called after each chunk reaches the client."""
        return []

    # -- chunk-aware handoff support --------------------------------------

    def prestage_count(self, obs: StagingObservation) -> int:
        """Chunks to pre-stage into an announced handoff target."""
        return 2

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"


# ---------------------------------------------------------------------------
# The paper's policy (Eq. 1)
# ---------------------------------------------------------------------------


class ReactiveEq1Policy(StagingPolicy):
    """The paper's reactive Just-in-Time algorithm, Eq. 1.

    Keeps the staged-ahead count N at the break-even point where
    draining the staged buffer takes exactly as long as staging one
    more chunk::

        stage immediately while   N < (RTT_C,Edge + L_S->Edge) / L_Edge->C

    plus a *gap allowance* — enough extra chunks that the staging
    pipeline keeps running through a coverage gap of the length the
    client has actually observed (EWMA, reactive adaptation — never
    mobility prediction).  This is the pre-framework coordinator's
    exact decision sequence: fixed-seed runs are bit-identical.
    """

    name = "reactive"

    def __init__(self, config: Optional[SoftStageConfig] = None) -> None:
        self.config = config or SoftStageConfig()

    # -- the staging algorithm ---------------------------------------------

    def eq1_threshold(self, obs: StagingObservation) -> float:
        """The paper's Eq. 1 right-hand side from current estimates."""
        config = self.config
        rtt = obs.rtt_to_edge if obs.rtt_to_edge is not None else config.default_rtt
        stage_latency = (
            obs.staging_latency
            if obs.staging_latency is not None
            else config.default_staging_latency
        )
        fetch_latency = (
            obs.edge_fetch_latency
            if obs.edge_fetch_latency is not None
            else config.default_fetch_latency
        )
        return (rtt + stage_latency) / max(fetch_latency, 1e-6)

    def gap_allowance(self, obs: StagingObservation) -> int:
        """Extra chunks signalled so staging survives a coverage gap."""
        config = self.config
        gap = (
            obs.observed_gap
            if obs.observed_gap is not None
            else config.initial_gap_estimate
        )
        stage_latency = (
            obs.staging_latency
            if obs.staging_latency is not None
            else config.default_staging_latency
        )
        return math.ceil(gap / max(stage_latency, 1e-3))

    def target_signalled(self, obs: StagingObservation) -> int:
        """How many unfetched chunks should be READY or PENDING."""
        if obs.staging_latency_samples == 0:
            # Nothing confirmed yet: open with the configured burst.
            base = self.config.initial_stage_count
        else:
            base = math.ceil(self.eq1_threshold(obs))
        return min(base + self.gap_allowance(obs), self.config.max_stage_ahead)

    # -- protocol ----------------------------------------------------------

    def decide(self, obs: StagingObservation) -> list[StagingAction]:
        actions: list[StagingAction] = []
        # Re-signal staging requests whose confirmations never arrived
        # (lost on the wireless segment or sent while we were away).
        if obs.stale_cids:
            actions.append(StagingAction.resignal(obs.stale_cids))
        deficit = self.target_signalled(obs) - obs.outstanding
        if deficit > 0:
            actions.append(StagingAction.stage(deficit, label="eq1"))
        return actions

    def prestage_count(self, obs: StagingObservation) -> int:
        return max(
            math.ceil(self.eq1_threshold(obs)),
            self.config.initial_stage_count,
        )


# ---------------------------------------------------------------------------
# Competitors
# ---------------------------------------------------------------------------


class RichPrefetchPolicy(StagingPolicy):
    """RICH-style in-order prefetch window (PAPERS.md: *The RICH
    Prefetching in Edge Caches*).

    The edge cache serving the client always holds the next ``window``
    chunks of the object, in order, never skipping ahead: the window is
    refilled whenever a chunk is delivered and rebuilt at the new edge
    on every attach.  On a chunk-aware handoff the whole window is
    pre-staged into the predicted next AP (the handoff target), which
    is RICH's "prefetch where the consumer goes next" behaviour riding
    the existing prestage path.  Unlike Eq. 1 the window never adapts
    to network conditions — that contrast is the point.
    """

    name = "rich"

    def __init__(self, window: int = 8) -> None:
        if window < 1:
            raise ConfigurationError("rich prefetch window must be >= 1")
        self.window = window

    def _refill(self, obs: StagingObservation) -> list[StagingAction]:
        actions: list[StagingAction] = []
        if obs.stale_cids:
            actions.append(StagingAction.resignal(obs.stale_cids))
        deficit = min(
            self.window - obs.outstanding,
            obs.remaining_chunks - obs.outstanding,
        )
        if deficit > 0:
            actions.append(StagingAction.stage(deficit, label="rich"))
        return actions

    def decide(self, obs: StagingObservation) -> list[StagingAction]:
        return self._refill(obs)

    def on_attach(
        self, obs: StagingObservation, network: str
    ) -> list[StagingAction]:
        # Rebuild the window at the new edge immediately instead of
        # waiting for the next poll.
        return self._refill(obs)

    def on_chunk_delivered(
        self, obs: StagingObservation, cid: "XID"
    ) -> list[StagingAction]:
        # In-order advance: one consumed, one more enters the window.
        return self._refill(obs)

    def prestage_count(self, obs: StagingObservation) -> int:
        return self.window


class MobilityAwarePolicy(StagingPolicy):
    """Placement-probability staging (PAPERS.md: *A Mobility-Aware
    Vehicular Caching Scheme in Content Centric Networks*).

    Splits the Eq. 1 staging budget between the current network and the
    round-robin next one according to a placement probability: the
    longer the client has dwelled relative to the expected encounter
    duration (the :mod:`repro.mobility` EWMA the Network Sensor
    maintains), the likelier an imminent handoff, and the larger the
    share of new chunks placed at the next AP ahead of the move.
    """

    name = "mobility"

    def __init__(self, config: Optional[SoftStageConfig] = None) -> None:
        self.config = config or SoftStageConfig()
        # Reuse the paper's break-even budget; only *placement* differs.
        self._budget = ReactiveEq1Policy(self.config)

    def handoff_likelihood(self, obs: StagingObservation) -> float:
        """P(handoff before the next coordination round), crudely: the
        fraction of the expected dwell already used up."""
        if not obs.connected:
            return 1.0
        expected = (
            obs.observed_encounter
            if obs.observed_encounter is not None
            else self.config.initial_gap_estimate
        )
        if expected <= 0:
            return 1.0
        return min(obs.time_in_network / expected, 1.0)

    def decide(self, obs: StagingObservation) -> list[StagingAction]:
        actions: list[StagingAction] = []
        if obs.stale_cids:
            actions.append(StagingAction.resignal(obs.stale_cids))
        deficit = self._budget.target_signalled(obs) - obs.outstanding
        if deficit <= 0:
            return actions
        likelihood = self.handoff_likelihood(obs)
        next_ap = obs.next_network()
        place_next = 0
        if next_ap is not None and next_ap in obs.networks_with_vnf:
            place_next = int(round(deficit * likelihood))
        place_here = deficit - place_next
        # In-order split: the executor consumes unsignalled chunks in
        # order, so the near chunks land here and the far ones ahead.
        if place_here > 0:
            actions.append(
                StagingAction.stage(place_here, label="mobility:stay")
            )
        if place_next > 0:
            actions.append(
                StagingAction.stage(
                    place_next, target=next_ap, label=f"mobility:{next_ap}"
                )
            )
        return actions

    def on_detach(
        self, obs: StagingObservation, network: str
    ) -> list[StagingAction]:
        # Entering a gap: anything still PENDING toward the lost
        # network would wait out the signal timeout; keep the pipeline
        # description accurate by cancelling so the next attach
        # re-places those chunks by the fresh probabilities.
        if obs.stale_cids:
            return [StagingAction.cancel(obs.stale_cids)]
        return []

    def prestage_count(self, obs: StagingObservation) -> int:
        return self._budget.prestage_count(obs)


# ---------------------------------------------------------------------------
# Policy registry
# ---------------------------------------------------------------------------


def _make_reactive(config, scenario):
    return ReactiveEq1Policy(config)


def _make_rich(config, scenario):
    return RichPrefetchPolicy()


def _make_mobility(config, scenario):
    return MobilityAwarePolicy(config)


def _make_predictive(config, scenario):
    from repro.baselines.predictive import (
        DEFAULT_PREDICTOR_ACCURACY,
        MobilityPredictor,
        PredictiveStagingPolicy,
    )

    if scenario is None:
        raise ConfigurationError(
            "the 'predictive' policy needs a scenario (its mobility "
            "predictor is built from the scenario's AP list and RNG); "
            "construct PredictiveStagingPolicy directly instead"
        )
    predictor = MobilityPredictor(
        list(scenario.access_points.values()),
        accuracy=DEFAULT_PREDICTOR_ACCURACY,
        rng=scenario.streams.stream("mobility-predictor"),
    )
    return PredictiveStagingPolicy(predictor)


#: name -> factory(config, scenario).  Factories may ignore either
#: argument; ``scenario`` is None outside a testbed context.
POLICIES = {
    "reactive": _make_reactive,
    "rich": _make_rich,
    "mobility": _make_mobility,
    "predictive": _make_predictive,
}


def available_policies() -> tuple[str, ...]:
    return tuple(POLICIES)


def make_policy(
    name: str,
    config: Optional[SoftStageConfig] = None,
    scenario: Optional["TestbedScenario"] = None,
) -> StagingPolicy:
    """Build a shipped policy by registry name.

    Raises :class:`~repro.errors.ConfigurationError` naming every
    available policy when ``name`` is unknown.
    """
    factory = POLICIES.get(name)
    if factory is None:
        options = ", ".join(sorted(POLICIES))
        raise ConfigurationError(
            f"unknown staging policy {name!r} (available: {options})"
        )
    return factory(config or SoftStageConfig(), scenario)


def policy_name(policy) -> str:
    """The registry/record name of a policy instance (or name string)."""
    if policy is None:
        return ""
    if isinstance(policy, str):
        return policy
    return getattr(policy, "name", type(policy).__name__)
