"""The Chunk Profile: the Staging Manager's state database (Table I).

One :class:`ChunkRecord` per registered chunk, indexed by CID, holding
the raw (origin) DAG, the new (staged) DAG, fetch/staging states, the
staged location, and the three latency estimates the staging algorithm
consumes: ``RTT_C,EdgeNet``, ``L_EdgeNet->C`` and ``L_S->EdgeNet``.
Per-chunk observations also feed EWMA estimators so the coordinator
sees smoothed network conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.states import FetchState, StagingState
from repro.errors import ConfigurationError
from repro.util.validation import check_fraction
from repro.xia.dag import DagAddress
from repro.xia.ids import XID


class EwmaEstimator:
    """Exponentially weighted moving average with a defined empty state."""

    def __init__(self, alpha: float = 0.25, initial: Optional[float] = None) -> None:
        check_fraction("alpha", alpha)
        self.alpha = alpha
        self._value = initial
        self.samples = 0

    def observe(self, sample: float) -> None:
        self.samples += 1
        if self._value is None:
            self._value = sample
        else:
            self._value = (1 - self.alpha) * self._value + self.alpha * sample

    @property
    def value(self) -> Optional[float]:
        return self._value

    def value_or(self, default: float) -> float:
        return self._value if self._value is not None else default

    def __repr__(self) -> str:
        return f"<EWMA {self._value} n={self.samples}>"


@dataclass
class ChunkRecord:
    """Table I, one row."""

    cid: XID
    index: int
    size_bytes: int
    #: Dest. address with the origin server's NID:HID fallback.
    raw_dag: DagAddress
    #: Dest. address with the staging edge network's NID:HID fallback.
    new_dag: Optional[DagAddress] = None
    fetch_state: FetchState = FetchState.BLANK
    staging_state: StagingState = StagingState.BLANK
    #: (NID, HID) of the edge cache holding the staged chunk.
    location: Optional[tuple[XID, XID]] = None
    #: Round-trip time between client and that edge network, seconds.
    fetch_rtt: Optional[float] = None
    #: Time to fetch one staged chunk from the edge to the client.
    fetch_latency: Optional[float] = None
    #: Time to stage one chunk from the origin into the edge.
    staging_latency: Optional[float] = None
    #: Bookkeeping for re-signalling lost staging requests.
    staging_requested_at: Optional[float] = None
    staged_via: Optional[str] = None

    @property
    def best_dag(self) -> DagAddress:
        """The address ``XfetchChunk*`` should use right now."""
        if self.staging_state is StagingState.READY and self.new_dag is not None:
            return self.new_dag
        return self.raw_dag

    def mark_staged(
        self,
        new_dag: DagAddress,
        nid: XID,
        hid: XID,
        staging_latency: Optional[float],
        fetch_rtt: Optional[float],
    ) -> None:
        self.new_dag = new_dag
        self.location = (nid, hid)
        self.staging_state = StagingState.READY
        if staging_latency is not None:
            self.staging_latency = staging_latency
        if fetch_rtt is not None:
            self.fetch_rtt = fetch_rtt


class ChunkProfile:
    """All chunk records for one content download session."""

    def __init__(self, ewma_alpha: float = 0.25) -> None:
        self._records: dict[XID, ChunkRecord] = {}
        self._order: list[XID] = []
        #: Smoothed network-condition estimates feeding Eq. 1.
        self.rtt_to_edge = EwmaEstimator(ewma_alpha)
        self.edge_fetch_latency = EwmaEstimator(ewma_alpha)
        self.staging_latency = EwmaEstimator(ewma_alpha)
        self.origin_fetch_latency = EwmaEstimator(ewma_alpha)

    # -- registration (step 3 in Fig. 2) ----------------------------------

    def register(self, cid: XID, index: int, size_bytes: int, raw_dag: DagAddress) -> ChunkRecord:
        if cid in self._records:
            raise ConfigurationError(f"chunk {cid.short} already registered")
        record = ChunkRecord(cid=cid, index=index, size_bytes=size_bytes, raw_dag=raw_dag)
        self._records[cid] = record
        self._order.append(cid)
        return record

    def register_content(self, content) -> list[ChunkRecord]:
        """Register every chunk of a PublishedContent manifest."""
        return [
            self.register(chunk.cid, chunk.index, chunk.size_bytes, address)
            for chunk, address in zip(content.chunks, content.addresses)
        ]

    # -- access ------------------------------------------------------------

    def __contains__(self, cid: XID) -> bool:
        return cid in self._records

    def __len__(self) -> int:
        return len(self._records)

    def get(self, cid: XID) -> ChunkRecord:
        try:
            return self._records[cid]
        except KeyError:
            raise KeyError(f"chunk {cid.short} not registered") from None

    def records(self) -> Iterable[ChunkRecord]:
        return (self._records[cid] for cid in self._order)

    def record_at(self, index: int) -> ChunkRecord:
        return self._records[self._order[index]]

    # -- queries used by the staging algorithm --------------------------------

    def first_unfetched_index(self) -> Optional[int]:
        for position, cid in enumerate(self._order):
            if self._records[cid].fetch_state is not FetchState.DONE:
                return position
        return None

    def staged_ahead(self) -> int:
        """N in Eq. 1: chunks staged (READY) but not yet fetched."""
        return sum(
            1
            for record in self._records.values()
            if record.fetch_state is not FetchState.DONE
            and record.staging_state is StagingState.READY
        )

    def pending_staging(self) -> int:
        return sum(
            1
            for record in self._records.values()
            if record.staging_state is StagingState.PENDING
        )

    def staged_ahead_bytes(self) -> int:
        """The Eq. 1 staging *lead* in bytes: READY but not yet fetched.

        This is the quantity the coordinator keeps just-in-time — the
        flight recorder samples it as ``staging.lead_bytes``.
        """
        return sum(
            record.size_bytes
            for record in self._records.values()
            if record.fetch_state is not FetchState.DONE
            and record.staging_state is StagingState.READY
        )

    def fetched_bytes(self) -> int:
        """Client progress in bytes (flight-recorder gauge)."""
        return sum(
            record.size_bytes
            for record in self._records.values()
            if record.fetch_state is FetchState.DONE
        )

    def next_to_stage(self, count: int) -> list[ChunkRecord]:
        """The next ``count`` un-signalled, un-fetched chunks in order."""
        result: list[ChunkRecord] = []
        if count <= 0:
            return result
        for cid in self._order:
            record = self._records[cid]
            if (
                record.fetch_state is not FetchState.DONE
                and record.staging_state is StagingState.BLANK
            ):
                result.append(record)
                if len(result) >= count:
                    break
        return result

    def stale_pending(self, now: float, timeout: float) -> list[ChunkRecord]:
        """PENDING entries whose confirmation is overdue (lost signal)."""
        return [
            record
            for record in self._records.values()
            if record.staging_state is StagingState.PENDING
            and record.staging_requested_at is not None
            and now - record.staging_requested_at >= timeout
        ]

    def all_fetched(self) -> bool:
        return all(
            record.fetch_state is FetchState.DONE
            for record in self._records.values()
        )

    # -- observations ------------------------------------------------------------

    def observe_fetch(self, record: ChunkRecord, latency: float, from_edge: bool) -> None:
        record.fetch_state = FetchState.DONE
        record.fetch_latency = latency
        if from_edge:
            self.edge_fetch_latency.observe(latency)
        else:
            self.origin_fetch_latency.observe(latency)

    def observe_staging(self, latency: Optional[float], rtt: Optional[float]) -> None:
        if latency is not None:
            self.staging_latency.observe(latency)
        if rtt is not None:
            self.rtt_to_edge.observe(rtt)

    def __repr__(self) -> str:
        done = sum(
            1 for r in self._records.values() if r.fetch_state is FetchState.DONE
        )
        return f"<ChunkProfile {done}/{len(self._records)} fetched, staged_ahead={self.staged_ahead()}>"
