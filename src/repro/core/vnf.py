"""The Staging Virtual Network Function (data plane, edge side).

"A very lightweight virtual network function embedded inside XCache
that is application-agnostic" (§III-C): on a Staging Manager's
request it prefetches the named chunks from their origin servers into
the local XCache and answers with the staged address (the edge
network's NID and HID) plus the measured staging latency, which the
client's staging algorithm consumes.

The VNF keeps only transient state (fetches in flight); everything
durable lives in the client's Chunk Profile — the paper's
distributed-state-management split.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.errors import TransportError
from repro.obs.events import (
    StageRequestReceived,
    VnfStageCompleted,
    VnfStageFailed,
)
from repro.sim import Simulator
from repro.transport.chunkfetch import ChunkFetcher
from repro.transport.reliable import TransportEndpoint
from repro.xia.dag import DagAddress
from repro.xia.ids import XID
from repro.xia.packet import Packet, PacketType

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Port
    from repro.xcache.store import ContentStore
    from repro.xia.router import XIARouter


def vnf_address(info) -> Optional[DagAddress]:
    """Service DAG of an edge network's staging VNF, if advertised.

    Accepts an :class:`~repro.mobility.association.AccessPointInfo`, a
    scan-result wrapper carrying one as ``.ap``, or ``None``; returns
    ``None`` when the network advertises no VNF (the fault-tolerance
    path).  The one place NetJoin payload fields become a service DAG —
    used by the Network Sensor, the staging-action executor and the
    baselines alike.
    """
    info = getattr(info, "ap", info)
    if info is None or info.vnf_sid is None or info.cache_hid is None:
        return None
    return DagAddress.service(info.vnf_sid, info.nid, info.cache_hid)


class StagingVNF:
    """Edge-network staging executor, registered as an XIA service."""

    def __init__(
        self,
        sim: Simulator,
        router: "XIARouter",
        store: "ContentStore",
        endpoint: TransportEndpoint,
        sid: XID,
    ) -> None:
        self.sim = sim
        self.router = router
        self.store = store
        self.endpoint = endpoint
        self.sid = sid
        self.fetcher = ChunkFetcher(sim, endpoint)
        router.register_service(sid, self.handle_packet)

        #: CID -> recorded staging latency for re-announcements.
        self._staged_latency: dict[XID, float] = {}
        self._in_flight: dict[XID, list[DagAddress]] = {}
        self.requests_received = 0
        self.chunks_staged = 0
        self.stage_failures = 0

    # -- control plane ----------------------------------------------------

    def handle_packet(self, packet: Packet, port: "Port") -> None:
        if packet.ptype is not PacketType.STAGE_REQUEST:
            return
        self.requests_received += 1
        chunks = packet.payload.get("chunks", ())
        probe = self.sim.probe
        if probe.active:
            probe.emit(
                StageRequestReceived(
                    vnf=self.router.name,
                    chunks=len(chunks),
                    cids=",".join(e["cid"].short for e in chunks),
                )
            )
        reply_to = packet.src
        for entry in chunks:
            self._handle_one(entry["cid"], entry["raw_dag"], reply_to)

    def _handle_one(self, cid: XID, raw_dag: DagAddress, reply_to: DagAddress) -> None:
        if self.store.has(cid):
            # Already staged (possibly for another client, or a re-sent
            # signal after the first answer was lost): answer at once,
            # refreshing the pin so eviction spares it (PIN actions).
            self.store.pin(cid)
            self._announce(cid, reply_to, self._staged_latency.get(cid, 0.0))
            return
        waiters = self._in_flight.get(cid)
        if waiters is not None:
            if reply_to not in waiters:
                waiters.append(reply_to)
            return
        self._in_flight[cid] = [reply_to]
        self.sim.process(self._stage_one(cid, raw_dag))

    # -- data plane -----------------------------------------------------------

    def _stage_one(self, cid: XID, raw_dag: DagAddress):
        started = self.sim.now
        probe = self.sim.probe
        try:
            outcome = yield self.sim.process(self.fetcher.fetch(raw_dag))
        except TransportError:
            self.stage_failures += 1
            if probe.active:
                probe.emit(VnfStageFailed(vnf=self.router.name, cid=cid.short))
            self._in_flight.pop(cid, None)
            return
        latency = self.sim.now - started
        if outcome.chunk is not None:
            self.store.put(outcome.chunk, pin=True)
        self._staged_latency[cid] = latency
        self.chunks_staged += 1
        if probe.active:
            probe.emit(
                VnfStageCompleted(
                    vnf=self.router.name, cid=cid.short, latency=latency
                )
            )
        waiters = self._in_flight.pop(cid, [])
        for reply_to in waiters:
            self._announce(cid, reply_to, latency)

    def _announce(self, cid: XID, reply_to: DagAddress, latency: float) -> None:
        response = Packet(
            PacketType.STAGE_RESPONSE,
            dst=reply_to,
            src=DagAddress.host(self.router.hid, self.router.nid),
            payload={
                "cid": cid,
                "nid": self.router.nid,
                "hid": self.router.hid,
                "staging_latency": latency,
            },
            size_bytes=160,
            created_at=self.sim.now,
        )
        self.router.send(response)

    def __repr__(self) -> str:
        return (
            f"<StagingVNF at {self.router.name}: staged={self.chunks_staged} "
            f"in_flight={len(self._in_flight)}>"
        )
