"""The Staging Coordinator: observation builder + policy driver.

Historically this class *was* the reactive "Just-in-Time" algorithm
(the paper's Eq. 1).  That algorithm now lives in
:class:`~repro.core.policy.ReactiveEq1Policy`; the coordinator's job is
the mechanical half of every staging strategy:

- build a :class:`~repro.core.policy.StagingObservation` from the
  Chunk Profile, the Network Sensor and the client host (the same
  state the flight recorder samples);
- ask the configured :class:`~repro.core.policy.StagingPolicy` to
  :meth:`~repro.core.policy.StagingPolicy.decide` once per poll, and
  relay attach / detach / chunk-delivered events to the policy's
  lifecycle hooks;
- execute the returned :class:`~repro.core.policy.StagingAction`
  requests against the Staging Tracker (stage / re-signal / cancel /
  migrate / pin), resolving network names to staging-VNF DAGs and
  dropping actions aimed at networks without one — the same
  fault-tolerance path a policy-free client has.

With the default policy the decision sequence, signal labels and
packet timeline are bit-identical to the pre-framework coordinator:
fixed-seed runs reproduce exactly.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.config import SoftStageConfig
from repro.core.network_sensor import NetworkSensor
from repro.core.policy import (
    ActionKind,
    ReactiveEq1Policy,
    StagingAction,
    StagingObservation,
    StagingPolicy,
)
from repro.core.profile import ChunkProfile
from repro.core.states import FetchState, StagingState
from repro.core.tracker import StagingTracker
from repro.core.vnf import vnf_address
from repro.obs.events import CoordinatorTick
from repro.sim import Simulator
from repro.xia.dag import DagAddress

if TYPE_CHECKING:  # pragma: no cover
    from repro.xia.ids import XID


class StagingCoordinator:
    """Polls the profile and drives a StagingPolicy's decisions."""

    def __init__(
        self,
        sim: Simulator,
        profile: ChunkProfile,
        tracker: StagingTracker,
        sensor: NetworkSensor,
        config: Optional[SoftStageConfig] = None,
        policy: Optional[StagingPolicy] = None,
    ) -> None:
        self.sim = sim
        self.profile = profile
        self.tracker = tracker
        self.sensor = sensor
        self.config = config or SoftStageConfig()
        self.policy = policy or ReactiveEq1Policy(self.config)
        #: Reference Eq. 1 arithmetic, kept available whatever policy
        #: runs (the legacy query methods below delegate to it).
        self._eq1 = (
            self.policy
            if isinstance(self.policy, ReactiveEq1Policy)
            else ReactiveEq1Policy(self.config)
        )
        self.ticks = 0
        self.decisions = 0
        self._running = False
        # Relay association events to the policy's lifecycle hooks.
        # Policies whose hooks return nothing cost the run nothing.
        controller = getattr(self.sensor, "controller", None)
        if controller is not None:
            controller.on_attach(self._on_attach)
            controller.on_detach(self._on_detach)

    # -- observation building -------------------------------------------------

    def observe(self) -> StagingObservation:
        """Snapshot the staging world for one policy decision.

        Pure state reads — building an observation never perturbs the
        simulation, so fixed-seed runs are identical no matter how
        often (or from which policy) this is called.
        """
        profile = self.profile
        now = self.sim.now

        controller = getattr(self.sensor, "controller", None)
        current = controller.current if controller is not None else None
        if current is not None:
            connected = True
            current_network = current.ap.name
            time_in_network = now - current.since
        else:
            # Test doubles without a controller: infer connectivity
            # from VNF reachability, which is all Eq. 1 needs.
            connected = (
                controller is None
                and self.sensor.current_vnf_address() is not None
            )
            current_network = None
            time_in_network = 0.0

        if controller is not None:
            infos = controller.access_points
            known = tuple(infos)
            with_vnf = frozenset(
                name for name, info in infos.items()
                if vnf_address(info) is not None
            )
        else:
            known = ()
            with_vnf = frozenset()

        visible = tuple(
            (v.name, v.rss)
            for v in getattr(self.sensor, "last_scan", ())
        )

        total = len(profile)
        fetched = 0
        unsignalled = 0
        in_flight = []
        for record in profile.records():
            if record.fetch_state is FetchState.DONE:
                fetched += 1
            elif record.staging_state is StagingState.BLANK:
                unsignalled += 1
            if record.staging_state is StagingState.PENDING:
                in_flight.append(record.cid)

        stale = profile.stale_pending(now, self.config.staging_signal_timeout)

        host = getattr(self.tracker, "host", None)
        queue_bytes = 0
        for port in getattr(host, "ports", ()):
            link = port.link
            if link is not None:
                queue_bytes += link.forward.queued_bytes
                queue_bytes += link.backward.queued_bytes

        return StagingObservation(
            now=now,
            connected=connected,
            current_network=current_network,
            time_in_network=time_in_network,
            vnf_available=self.sensor.current_vnf_address() is not None,
            known_networks=known,
            networks_with_vnf=with_vnf,
            visible_networks=visible,
            total_chunks=total,
            fetched_chunks=fetched,
            staged_ahead=profile.staged_ahead(),
            pending_staging=profile.pending_staging(),
            unsignalled_chunks=unsignalled,
            lead_bytes=profile.staged_ahead_bytes(),
            progress_bytes=profile.fetched_bytes(),
            link_queue_bytes=queue_bytes,
            rtt_to_edge=profile.rtt_to_edge.value,
            staging_latency=profile.staging_latency.value,
            edge_fetch_latency=profile.edge_fetch_latency.value,
            staging_latency_samples=profile.staging_latency.samples,
            observed_gap=self.sensor.expected_gap(None),
            observed_encounter=self._observed_encounter(),
            stale_cids=tuple(record.cid for record in stale),
            in_flight_cids=frozenset(in_flight),
        )

    def _observed_encounter(self) -> Optional[float]:
        estimator = getattr(self.sensor, "encounter_duration", None)
        return estimator.value if estimator is not None else None

    # -- legacy staging-algorithm queries --------------------------------------
    # The Eq. 1 arithmetic, exposed where callers and tests historically
    # found it.  Always the *reference* reactive math (same config), even
    # when a different policy is driving decisions.

    def eq1_threshold(self) -> float:
        """The paper's Eq. 1 right-hand side from current estimates."""
        return self._eq1.eq1_threshold(self.observe())

    def gap_allowance(self) -> int:
        """Extra chunks signalled so staging survives a coverage gap."""
        return self._eq1.gap_allowance(self.observe())

    def target_signalled(self) -> int:
        """How many unfetched chunks should be READY or PENDING."""
        return self._eq1.target_signalled(self.observe())

    def prestage_count(self) -> int:
        """How many chunks the *active* policy pre-stages on handoff."""
        return self.policy.prestage_count(self.observe())

    # -- poll loop ------------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.process(self._loop())

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        while self._running and not self.profile.all_fetched():
            self.tick()
            yield self.sim.timeout(self.config.coordinator_poll_interval)

    def tick(self) -> int:
        """One coordination round; returns chunks newly signalled."""
        self.ticks += 1
        probe = self.sim.probe
        if self.sensor.current_vnf_address() is None:
            if probe.active:
                probe.emit(
                    CoordinatorTick(signalled=0, decision=False, offline=True)
                )
            return 0  # offline, or no VNF here (fault-tolerance path)

        observation = self.observe()
        actions = self.policy.decide(observation)
        signalled, decided = self._execute(actions)
        if decided:
            self.decisions += 1
        if probe.active:
            probe.emit(
                CoordinatorTick(
                    signalled=signalled, decision=decided, offline=False
                )
            )
        return signalled

    # -- lifecycle hook relays --------------------------------------------------

    def _on_attach(self, association) -> None:
        self._run_hook(
            self.policy.on_attach(self.observe(), association.ap.name)
        )

    def _on_detach(self, association) -> None:
        self._run_hook(
            self.policy.on_detach(self.observe(), association.ap.name)
        )

    def notify_chunk_delivered(self, cid: "XID") -> None:
        """Called by the Chunk Manager after each chunk reaches the app."""
        self._run_hook(self.policy.on_chunk_delivered(self.observe(), cid))

    def _run_hook(self, actions: list[StagingAction]) -> None:
        if not actions:
            return
        _, decided = self._execute(actions)
        if decided:
            self.decisions += 1

    # -- action execution -------------------------------------------------------

    def _resolve_target(self, target: Optional[str]) -> Optional[DagAddress]:
        """Staging-VNF DAG for a network name (None = current network)."""
        if target is None:
            return self.sensor.current_vnf_address()
        controller = getattr(self.sensor, "controller", None)
        if controller is None:
            return None
        return vnf_address(controller.access_points.get(target))

    def _execute(self, actions: list[StagingAction]) -> tuple[int, bool]:
        """Run a policy's action list; returns (signalled, decided)."""
        signalled = 0
        decided = False
        for action in actions:
            if action.kind is ActionKind.STAGE:
                vnf = self._resolve_target(action.target)
                if vnf is None:
                    continue
                records = self.profile.next_to_stage(action.count)
                if records:
                    decided = True
                    signalled += self.tracker.signal(
                        records, vnf, label=action.label or "stage"
                    )
            elif action.kind is ActionKind.RESIGNAL:
                vnf = self._resolve_target(action.target)
                if vnf is None:
                    continue
                records = self._pending_records(action.cids)
                if records:
                    signalled += self.tracker.signal(
                        records, vnf, label=action.label or "re-signal"
                    )
            elif action.kind is ActionKind.CANCEL:
                for record in self._pending_records(action.cids):
                    record.staging_state = StagingState.BLANK
                    record.staging_requested_at = None
            elif action.kind is ActionKind.MIGRATE:
                vnf = self._resolve_target(action.target)
                if vnf is None:
                    continue
                records = [
                    record
                    for record in self._records_for(action.cids)
                    if record.staging_state is StagingState.READY
                ]
                if records:
                    decided = True
                    signalled += self.tracker.signal(
                        records,
                        vnf,
                        label=action.label or "migrate",
                        restage=True,
                    )
            elif action.kind is ActionKind.PIN:
                signalled += self._pin(action)
        return signalled, decided

    def _pin(self, action: StagingAction) -> int:
        """Re-signal READY chunks to the VNF holding them, so the edge
        cache refreshes (and keeps) their pinned entries."""
        controller = getattr(self.sensor, "controller", None)
        if controller is None:
            return 0
        by_nid = {
            info.nid: info for info in controller.access_points.values()
        }
        signalled = 0
        for record in self._records_for(action.cids):
            if record.staging_state is not StagingState.READY:
                continue
            if record.location is None:
                continue
            vnf = vnf_address(by_nid.get(record.location[0]))
            if vnf is None:
                continue
            signalled += self.tracker.signal(
                [record], vnf, label=action.label or "pin", restage=True
            )
        return signalled

    def _records_for(self, cids) -> list:
        return [self.profile.get(cid) for cid in cids if cid in self.profile]

    def _pending_records(self, cids) -> list:
        return [
            record
            for record in self._records_for(cids)
            if record.staging_state is StagingState.PENDING
        ]

    def __repr__(self) -> str:
        return (
            f"<StagingCoordinator policy={self.policy.name} "
            f"ticks={self.ticks} decisions={self.decisions}>"
        )
