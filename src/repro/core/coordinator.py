"""The Staging Coordinator: the reactive "Just-in-Time" algorithm.

The paper's Eq. 1 keeps the staged-ahead count N at the break-even
point where draining the staged buffer takes exactly as long as
staging one more chunk:

    stage immediately while   N < (RTT_C,Edge + L_S->Edge) / L_Edge->C

On top of that minimum the coordinator signals a *gap allowance*:
enough additional chunks that the VNF's staging pipeline keeps running
through a coverage gap of the length the client has actually been
observing (an EWMA over measured disconnections — reactive adaptation,
never mobility prediction).  Slow Internet inflates ``L_S->Edge`` and
therefore both terms, which is exactly the paper's "aggressively stage
more chunks when the Internet bandwidth is detected slow" behaviour.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.core.config import SoftStageConfig
from repro.core.network_sensor import NetworkSensor
from repro.core.profile import ChunkProfile
from repro.core.states import StagingState
from repro.core.tracker import StagingTracker
from repro.obs.events import CoordinatorTick
from repro.sim import Simulator


class StagingCoordinator:
    """Polls the profile and decides how many chunks to signal."""

    def __init__(
        self,
        sim: Simulator,
        profile: ChunkProfile,
        tracker: StagingTracker,
        sensor: NetworkSensor,
        config: Optional[SoftStageConfig] = None,
    ) -> None:
        self.sim = sim
        self.profile = profile
        self.tracker = tracker
        self.sensor = sensor
        self.config = config or SoftStageConfig()
        self.ticks = 0
        self.decisions = 0
        self._running = False

    # -- the staging algorithm ------------------------------------------------

    def eq1_threshold(self) -> float:
        """The paper's Eq. 1 right-hand side from current estimates."""
        config = self.config
        rtt = self.profile.rtt_to_edge.value_or(config.default_rtt)
        stage_latency = self.profile.staging_latency.value_or(
            config.default_staging_latency
        )
        fetch_latency = self.profile.edge_fetch_latency.value_or(
            config.default_fetch_latency
        )
        return (rtt + stage_latency) / max(fetch_latency, 1e-6)

    def gap_allowance(self) -> int:
        """Extra chunks signalled so staging survives a coverage gap."""
        config = self.config
        gap = self.sensor.expected_gap(config.initial_gap_estimate)
        stage_latency = self.profile.staging_latency.value_or(
            config.default_staging_latency
        )
        return math.ceil(gap / max(stage_latency, 1e-3))

    def target_signalled(self) -> int:
        """How many unfetched chunks should be READY or PENDING."""
        if self.profile.staging_latency.samples == 0:
            # Nothing confirmed yet: open with the configured burst.
            base = self.config.initial_stage_count
        else:
            base = math.ceil(self.eq1_threshold())
        return min(base + self.gap_allowance(), self.config.max_stage_ahead)

    # -- poll loop ------------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.process(self._loop())

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        while self._running and not self.profile.all_fetched():
            self.tick()
            yield self.sim.timeout(self.config.coordinator_poll_interval)

    def tick(self) -> int:
        """One coordination round; returns chunks newly signalled."""
        self.ticks += 1
        probe = self.sim.probe
        vnf = self.sensor.current_vnf_address()
        if vnf is None:
            if probe.active:
                probe.emit(
                    CoordinatorTick(signalled=0, decision=False, offline=True)
                )
            return 0  # offline, or no VNF here (fault-tolerance path)

        signalled = 0
        decided = False
        # Re-signal staging requests whose confirmations never arrived
        # (lost on the wireless segment or sent while we were away).
        stale = self.profile.stale_pending(
            self.sim.now, self.config.staging_signal_timeout
        )
        if stale:
            signalled += self.tracker.signal(stale, vnf, label="re-signal")

        outstanding = self.profile.staged_ahead() + self.profile.pending_staging()
        deficit = self.target_signalled() - outstanding
        if deficit > 0:
            fresh = self.profile.next_to_stage(deficit)
            if fresh:
                self.decisions += 1
                decided = True
                signalled += self.tracker.signal(fresh, vnf, label="eq1")
        if probe.active:
            probe.emit(
                CoordinatorTick(
                    signalled=signalled, decision=decided, offline=False
                )
            )
        return signalled

    def __repr__(self) -> str:
        return f"<StagingCoordinator ticks={self.ticks} decisions={self.decisions}>"
