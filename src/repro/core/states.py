"""Chunk lifecycle states (paper Table I)."""

from __future__ import annotations

import enum


class FetchState(enum.Enum):
    """Whether the client application has the chunk yet."""

    BLANK = "blank"
    DONE = "done"


class StagingState(enum.Enum):
    """Where the chunk stands in the staging pipeline.

    ``BLANK``: not signalled; ``PENDING``: requested from a Staging
    VNF, not yet confirmed; ``READY``: staged in an edge cache and
    announced back; ``DONE``: staging intentionally skipped (fetched
    directly from the origin — the fault-tolerance path sets this "to
    avoid duplicated staging", §III-C).
    """

    BLANK = "blank"
    PENDING = "pending"
    READY = "ready"
    DONE = "done"
