"""The Staging Tracker: signalling chunks to Staging VNFs.

Told by the coordinator *how many* chunks to stage, the tracker looks
up their addresses in the Chunk Profile, forwards them to the chosen
Staging VNF (step 4 in Fig. 2) and flips their state to PENDING.  When
the "chunk staged" message comes back (step 6) it rewrites the chunk's
address with the edge network's NID/HID, marks it READY and records
the staging latency and control RTT.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.profile import ChunkProfile, ChunkRecord
from repro.core.states import StagingState
from repro.obs.events import ChunkStaged, StagingSignalled, StaleStagingResponse
from repro.sim import Simulator
from repro.xia.dag import DagAddress
from repro.xia.ids import XID
from repro.xia.packet import Packet, PacketType

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Port
    from repro.net.nodes import Host


class StagingTracker:
    """Client-side staging signal sender / response handler."""

    def __init__(self, sim: Simulator, host: "Host", profile: ChunkProfile) -> None:
        self.sim = sim
        self.host = host
        self.profile = profile
        self.signals_sent = 0
        self.responses_received = 0
        self.stale_responses = 0
        self._request_sent_at: dict[XID, float] = {}
        #: READY chunks being re-staged elsewhere (MIGRATE/PIN actions):
        #: their next confirmation is a location update, not a stale
        #: duplicate, and the old staged copy stays addressable
        #: until the new one confirms.
        self._migrating: set[XID] = set()
        host.register_handler(PacketType.STAGE_RESPONSE, self.on_response)

    # -- outgoing signals -------------------------------------------------

    def signal(
        self,
        records: list[ChunkRecord],
        vnf_address: DagAddress,
        label: str = "",
        restage: bool = False,
    ) -> int:
        """Ask the VNF at ``vnf_address`` to stage ``records``.

        Returns the number of chunks signalled.  Safe to call for
        already-PENDING records (re-signal after a lost response).
        With ``restage=True``, READY records keep their state and
        current address while the new staging request is in flight.
        """
        if not records:
            return 0
        now = self.sim.now
        chunk_entries = []
        for record in records:
            chunk_entries.append(
                {"cid": record.cid, "raw_dag": record.raw_dag, "size": record.size_bytes}
            )
            if restage and record.staging_state is StagingState.READY:
                self._migrating.add(record.cid)
            else:
                record.staging_state = StagingState.PENDING
            record.staging_requested_at = now
            record.staged_via = label
            self._request_sent_at.setdefault(record.cid, now)
        request = Packet(
            PacketType.STAGE_REQUEST,
            dst=vnf_address,
            src=self._local_dag(),
            payload={"chunks": chunk_entries},
            size_bytes=120 + 64 * len(chunk_entries),
            created_at=now,
        )
        self.host.send(request)
        self.signals_sent += 1
        probe = self.sim.probe
        if probe.active:
            probe.emit(
                StagingSignalled(
                    count=len(chunk_entries),
                    label=label,
                    cids=",".join(r.cid.short for r in records),
                )
            )
        return len(chunk_entries)

    def _local_dag(self) -> DagAddress:
        nid = getattr(self.host, "current_nid", None)
        return DagAddress.host(self.host.hid, nid)

    # -- incoming confirmations --------------------------------------------------

    def on_response(self, packet: Packet, port: "Port") -> None:
        payload = packet.payload
        cid: XID = payload["cid"]
        probe = self.sim.probe
        if cid not in self.profile:
            self.stale_responses += 1
            if probe.active:
                probe.emit(StaleStagingResponse(cid=cid.short))
            return
        record = self.profile.get(cid)
        if record.staging_state is StagingState.READY:
            if cid in self._migrating:
                # Expected confirmation of a MIGRATE/PIN re-stage:
                # accept it as a location update.
                self._migrating.discard(cid)
            else:
                # Duplicate announcement (re-signalled chunk): ignore.
                self.stale_responses += 1
                if probe.active:
                    probe.emit(StaleStagingResponse(cid=cid.short))
                return
        self.responses_received += 1
        nid, hid = payload["nid"], payload["hid"]
        staging_latency: Optional[float] = payload.get("staging_latency")
        control_rtt = self._control_rtt(cid, staging_latency)
        record.mark_staged(
            new_dag=record.raw_dag.replace_fallback(nid, hid),
            nid=nid,
            hid=hid,
            staging_latency=staging_latency,
            fetch_rtt=control_rtt,
        )
        self.profile.observe_staging(staging_latency, control_rtt)
        if probe.active:
            probe.emit(
                ChunkStaged(
                    cid=cid.short,
                    staging_latency=staging_latency,
                    control_rtt=control_rtt,
                )
            )

    def _control_rtt(self, cid: XID, staging_latency: Optional[float]) -> Optional[float]:
        sent_at = self._request_sent_at.pop(cid, None)
        if sent_at is None:
            return None
        elapsed = self.sim.now - sent_at
        if staging_latency:
            elapsed -= staging_latency
        return max(elapsed, 1e-4)

    def __repr__(self) -> str:
        return (
            f"<StagingTracker signals={self.signals_sent} "
            f"responses={self.responses_received}>"
        )
