"""Command-line front door: ``python -m repro <command>``.

Commands:

- ``demo``      — the quickstart comparison (SoftStage vs Xftp);
- ``fig5``      — the XIA substrate benchmark table;
- ``sweep``     — one Fig. 6 panel (``--panel a..f``);
- ``handoff``   — the §IV-D handoff-policy comparison;
- ``traces``    — the Fig. 7 trace-driven experiment.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import microbench
from repro.experiments.handoff import PAPER_SAVING, run_comparison
from repro.experiments.microbench import BenchProfile
from repro.experiments.params import MicrobenchParams
from repro.experiments.report import render_table
from repro.experiments.runner import run_download
from repro.experiments.tracedriven import run_all as run_traces
from repro.experiments.xia_benchmark import run_all as run_fig5
from repro.util import MB


def cmd_demo(args) -> None:
    params = MicrobenchParams(file_size=int(args.file_mb * MB))
    xftp = run_download("xftp", params=params, seed=args.seed)
    softstage = run_download("softstage", params=params, seed=args.seed)
    print(render_table(
        f"{args.file_mb:g} MB download, Table III defaults",
        ("system", "time (s)", "Mbps", "edge chunks"),
        [
            ("Xftp", xftp.download_time,
             xftp.download.throughput_bps / 1e6, 0),
            ("SoftStage", softstage.download_time,
             softstage.download.throughput_bps / 1e6,
             softstage.download.chunks_from_edge),
        ],
    ))
    print(f"gain: {xftp.download_time / softstage.download_time:.2f}x "
          f"(paper: ~1.77x)")


def cmd_fig5(args) -> None:
    points = run_fig5(seed=args.seed)
    print(render_table(
        "Fig. 5: 10 MB transfer throughput",
        ("segment", "protocol", "measured (Mbps)", "paper (Mbps)"),
        [(p.segment, p.protocol, p.throughput_bps / 1e6, p.paper_mbps)
         for p in points],
    ))


def cmd_sweep(args) -> None:
    sweeps = {
        "a": microbench.sweep_chunk_size,
        "b": microbench.sweep_encounter_time,
        "c": microbench.sweep_disconnection_time,
        "d": microbench.sweep_packet_loss,
        "e": microbench.sweep_internet_bandwidth,
        "f": microbench.sweep_internet_latency,
    }
    profile = BenchProfile(
        file_size=int(args.file_mb * MB),
        seeds=tuple(range(args.seeds)),
        segment_scale=args.scale,
    )
    series = sweeps[args.panel](profile)
    print(series.render())


def cmd_handoff(args) -> None:
    comparison = run_comparison(
        file_size=int(args.file_mb * MB),
        seeds=tuple(range(args.seeds)),
        segment_scale=args.scale,
    )
    print(f"default: {comparison.default_time:.1f}s   "
          f"content-aware: {comparison.content_aware_time:.1f}s   "
          f"saving: {comparison.saving:.1%} (paper: {PAPER_SAVING:.1%})")


def cmd_traces(args) -> None:
    results = run_traces(
        seeds=tuple(range(args.seeds)),
        duration=args.duration,
        segment_scale=args.scale,
    )
    print(render_table(
        "Fig. 7(b): objects downloaded within the trace",
        ("trace", "coverage", "Xftp", "SoftStage", "ratio"),
        [(r.trace_name, f"{r.coverage_fraction:.0%}", r.xftp_chunks,
          r.softstage_chunks, r.object_ratio) for r in results],
    ))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="SoftStage vs Xftp quick comparison")
    demo.add_argument("--file-mb", type=float, default=32.0)
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(fn=cmd_demo)

    fig5 = sub.add_parser("fig5", help="XIA substrate benchmark")
    fig5.add_argument("--seed", type=int, default=1)
    fig5.set_defaults(fn=cmd_fig5)

    sweep = sub.add_parser("sweep", help="one Fig. 6 panel")
    sweep.add_argument("--panel", choices=list("abcdef"), required=True)
    sweep.add_argument("--file-mb", type=float, default=32.0)
    sweep.add_argument("--seeds", type=int, default=1)
    sweep.add_argument("--scale", type=int, default=1)
    sweep.set_defaults(fn=cmd_sweep)

    handoff = sub.add_parser("handoff", help="handoff-policy comparison")
    handoff.add_argument("--file-mb", type=float, default=48.0)
    handoff.add_argument("--seeds", type=int, default=1)
    handoff.add_argument("--scale", type=int, default=2)
    handoff.set_defaults(fn=cmd_handoff)

    traces = sub.add_parser("traces", help="trace-driven experiment")
    traces.add_argument("--duration", type=float, default=300.0)
    traces.add_argument("--seeds", type=int, default=1)
    traces.add_argument("--scale", type=int, default=2)
    traces.set_defaults(fn=cmd_traces)

    args = parser.parse_args(argv)
    args.fn(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
