"""Command-line front door: ``python -m repro <command>``.

Commands:

- ``demo``      — the quickstart comparison (SoftStage vs Xftp);
- ``fig5``      — the XIA substrate benchmark table;
- ``sweep``     — one Fig. 6 panel (``--panel a..f``);
- ``handoff``   — the §IV-D handoff-policy comparison;
- ``traces``    — the Fig. 7 trace-driven experiment;
- ``profile``   — one profiled download (kernel hot-path table);
- ``trace``     — JSONL trace analysis (``summary`` / ``spans`` /
  ``chrome`` / ``diff`` / ``wide``);
- ``runs``      — the persistent run registry (``list`` / ``show`` /
  ``diff`` / ``gauges``, with ``--json`` on list/diff);
- ``serve``     — the telemetry HTTP service over the registry
  (``/runs``, ``/diff``, ``/live`` SSE);
- ``watch``     — the live terminal dashboard against a ``serve``
  process's ``/live`` stream.

``demo`` and ``sweep`` take ``--trace PATH`` to record every run into
one multi-run JSONL trace that the ``trace`` subcommands consume.
``demo --gauges`` installs the flight recorder (sampled state gauges)
and appends each run — gauge timelines included — to the run registry
(``.repro_runs/``, override with ``REPRO_RUNS_DIR`` or
``--registry-dir``); ``--audit`` runs the invariant auditor alongside.
``demo --emit-wide [PATH]`` writes one wide event per chunk lifecycle
/ encounter / gap / handoff (``repro trace wide`` derives the same
bytes from a recorded trace); ``demo --live`` repaints the terminal
dashboard from an in-process telemetry hub while the demo runs.
``demo --policy NAME`` and ``sweep --policy NAME`` select the staging
policy for the SoftStage runs (``reactive``, ``rich``, ``mobility``,
``predictive``; see :mod:`repro.core.policy`).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments import microbench
from repro.experiments.handoff import PAPER_SAVING, run_comparison
from repro.experiments.microbench import BenchProfile
from repro.experiments.params import MicrobenchParams
from repro.experiments.report import render_breakdown, render_spans, render_table
from repro.experiments.runner import run_download
from repro.experiments.tracedriven import run_all as run_traces
from repro.experiments.xia_benchmark import run_all as run_fig5
from repro.util import MB


def _policy_arg(name):
    """Validate a ``--policy`` value before any simulation runs."""
    if name is None:
        return None
    from repro.core.policy import available_policies

    if name not in available_policies():
        options = ", ".join(sorted(available_policies()))
        raise SystemExit(
            f"unknown staging policy {name!r} (available: {options})"
        )
    return name


def _demo_pair(
    file_mb, seed, policy,
    trace=None, spans=False, gauges=False, audit=False,
    hub=None, wide=None, sketches=False,
):
    """Run the demo's Xftp + SoftStage pair with shared telemetry sinks.

    ``trace`` (a path) and ``wide`` (an open
    :class:`~repro.obs.wide.WideEventWriter`) are shared across both
    runs, producing one multi-run file each; ``hub`` receives both
    runs' live telemetry.  Used by ``demo`` (foreground and --live)
    and ``serve --demo``.
    """
    params = MicrobenchParams(file_size=int(file_mb * MB))
    trace_fh = open(trace, "w", encoding="utf-8") if trace else None
    try:
        xftp = run_download(
            "xftp", params=params, seed=seed,
            trace_path=trace_fh, spans=spans,
            gauges=gauges, audit=audit, hub=hub, wide=wide,
            sketches=sketches,
        )
        softstage = run_download(
            "softstage", params=params, seed=seed,
            trace_path=trace_fh, spans=spans,
            gauges=gauges, audit=audit, hub=hub, wide=wide,
            policy=policy, sketches=sketches,
        )
    finally:
        if trace_fh is not None:
            trace_fh.close()
    return xftp, softstage


def _demo_wide_writer(args, policy):
    """The demo's wide-event writer (or None).

    ``--emit-wide`` with no PATH lands in the registry's wide-event
    directory (``<registry>/wide/demo[-policy]-seed<N>.jsonl``) —
    exactly where ``repro serve`` looks for ``/runs/<id>/wide``.
    """
    import os

    from repro.obs.registry import RunRegistry
    from repro.obs.wide import WideEventWriter

    if args.emit_wide is None:
        return None
    path = args.emit_wide
    if path == "":
        wide_dir = os.path.join(
            RunRegistry(args.registry_dir).directory, "wide"
        )
        os.makedirs(wide_dir, exist_ok=True)
        name = (f"demo-{policy}-seed{args.seed}" if policy
                else f"demo-seed{args.seed}")
        path = os.path.join(wide_dir, f"{name}.jsonl")
    return WideEventWriter(path)


def cmd_demo(args) -> None:
    policy = _policy_arg(args.policy)
    wide_writer = _demo_wide_writer(args, policy)
    gauges = args.gauges or args.live
    try:
        if args.live:
            import threading

            from repro.obs.dashboard import run_from_subscription
            from repro.obs.stream import TelemetryHub

            hub = TelemetryHub()
            sub = hub.subscribe()
            outcome: dict = {}

            def _work() -> None:
                try:
                    outcome["runs"] = _demo_pair(
                        args.file_mb, args.seed, policy,
                        trace=args.trace, spans=args.spans,
                        gauges=gauges, audit=args.audit,
                        hub=hub, wide=wide_writer,
                        sketches=args.gauges,
                    )
                except BaseException as exc:  # repaint loop must end
                    outcome["error"] = exc
                finally:
                    hub.close()

            worker = threading.Thread(
                target=_work, name="repro-demo", daemon=True
            )
            worker.start()
            run_from_subscription(sub, clear=sys.stdout.isatty())
            worker.join()
            print()
            if "error" in outcome:
                raise outcome["error"]
            xftp, softstage = outcome["runs"]
        else:
            xftp, softstage = _demo_pair(
                args.file_mb, args.seed, policy,
                trace=args.trace, spans=args.spans,
                gauges=gauges, audit=args.audit,
                wide=wide_writer, sketches=args.gauges,
            )
    finally:
        if wide_writer is not None:
            wide_writer.close()
    softstage_label = f"SoftStage[{policy}]" if policy else "SoftStage"
    print(render_table(
        f"{args.file_mb:g} MB download, Table III defaults",
        ("system", "time (s)", "Mbps", "edge chunks"),
        [
            ("Xftp", xftp.download_time,
             xftp.download.throughput_bps / 1e6, 0),
            (softstage_label, softstage.download_time,
             softstage.download.throughput_bps / 1e6,
             softstage.download.chunks_from_edge),
        ],
    ))
    print(f"gain: {xftp.download_time / softstage.download_time:.2f}x "
          f"(paper: ~1.77x)")
    if args.audit:
        for result in (xftp, softstage):
            print(f"[{result.run_id}] {result.auditor.render()}")
    if args.spans:
        for result in (xftp, softstage):
            print()
            print(render_spans(
                result.spans, title=f"Spans [{result.run_id}]"
            ))
    if args.trace:
        print(f"\ntrace written to {args.trace} "
              f"(runs: {xftp.run_id}, {softstage.run_id})")
    if wide_writer is not None:
        print(f"\n{wide_writer.records_written} wide events written to "
              f"{wide_writer.path}")
    if args.gauges:
        from repro.obs.registry import (
            RunRegistry,
            record_from_result,
            sketches_from_result,
        )

        registry = RunRegistry(args.registry_dir)
        meta = {"file_mb": args.file_mb, "seed": args.seed}
        for result in (xftp, softstage):
            run_id, metrics, gauge_tl = record_from_result(result)
            registry.append(
                run_id, "demo", metrics, gauge_tl, meta,
                policy=result.policy,
                sketches=sketches_from_result(result),
            )
        gain_id = (f"demo-{policy}-seed{args.seed}" if policy
                   else f"demo-seed{args.seed}")
        gain_record = registry.append(
            gain_id, "demo",
            {"gain": xftp.download_time / softstage.download_time,
             "xftp_time": xftp.download_time,
             "softstage_time": softstage.download_time},
            meta=meta,
            policy=softstage.policy,
        )
        print(f"\nregistry: 3 records appended to {registry.path} "
              f"(latest {gain_record.rec_id})")


def cmd_fig5(args) -> None:
    points = run_fig5(seed=args.seed)
    print(render_table(
        "Fig. 5: 10 MB transfer throughput",
        ("segment", "protocol", "measured (Mbps)", "paper (Mbps)"),
        [(p.segment, p.protocol, p.throughput_bps / 1e6, p.paper_mbps)
         for p in points],
    ))


def cmd_sweep(args) -> None:
    policy = _policy_arg(args.policy)
    sweeps = {
        "a": microbench.sweep_chunk_size,
        "b": microbench.sweep_encounter_time,
        "c": microbench.sweep_disconnection_time,
        "d": microbench.sweep_packet_loss,
        "e": microbench.sweep_internet_bandwidth,
        "f": microbench.sweep_internet_latency,
    }
    trace_fh = open(args.trace, "w", encoding="utf-8") if args.trace else None
    try:
        if args.trace and args.jobs > 1:
            print("note: --trace forces sequential execution "
                  "(one shared trace sink)", file=sys.stderr)
        profile = BenchProfile(
            file_size=int(args.file_mb * MB),
            seeds=tuple(range(args.seeds)),
            segment_scale=args.scale,
            trace_sink=trace_fh,
            jobs=args.jobs,
            policy=policy or "",
        )
        series = sweeps[args.panel](profile)
    finally:
        if trace_fh is not None:
            trace_fh.close()
    print(series.render())
    if args.trace:
        print(f"\ntrace written to {args.trace}")
    if args.registry:
        from repro.obs.registry import RunRegistry

        registry = RunRegistry(args.registry_dir)
        metrics = {}
        for row in series.rows:
            key = row.label.replace(" ", "")
            metrics[f"gain.{key}"] = row.gain
            metrics[f"xftp_time.{key}"] = row.xftp_time
            metrics[f"softstage_time.{key}"] = row.softstage_time
        sweep_id = (f"sweep-{args.panel}-{policy}" if policy
                    else f"sweep-{args.panel}")
        record = registry.append(
            sweep_id, "sweep", metrics,
            meta={"panel": args.panel, "file_mb": args.file_mb,
                  "seeds": args.seeds, "scale": args.scale},
            policy=policy or "",
        )
        print(f"registry: {record.rec_id} appended to {registry.path}")


def cmd_profile(args) -> None:
    params = MicrobenchParams(file_size=int(args.file_mb * MB))
    result = run_download(
        args.system, params=params, seed=args.seed, profile=True,
    )
    print(f"{args.system}: {result.download_time:.1f}s simulated "
          f"({result.throughput_bps / 1e6:.1f} Mbps)")
    print()
    print(result.profile.render(
        title=f"Simulator profile [{result.run_id}]", top=args.top,
    ))


def cmd_handoff(args) -> None:
    comparison = run_comparison(
        file_size=int(args.file_mb * MB),
        seeds=tuple(range(args.seeds)),
        segment_scale=args.scale,
    )
    print(f"default: {comparison.default_time:.1f}s   "
          f"content-aware: {comparison.content_aware_time:.1f}s   "
          f"saving: {comparison.saving:.1%} (paper: {PAPER_SAVING:.1%})")


# -- trace analysis ----------------------------------------------------------


def _load_runs(path: str):
    from repro.obs.analyze import load_runs

    runs = load_runs(path)
    if not runs:
        raise SystemExit(f"{path}: trace contains no events")
    return runs


def _select_runs(runs, run_id):
    if run_id is not None:
        from repro.obs.analyze import pick_run

        return [pick_run(runs, run_id)]
    return list(runs.values())


def cmd_trace_summary(args) -> None:
    from repro.obs.analyze import latency_breakdown, summarize_breakdown

    runs = _load_runs(args.file)
    for run in _select_runs(runs, args.run):
        top = run.event_counts.most_common(8)
        counts = ", ".join(f"{name}={n}" for name, n in top)
        print(f"run {run.run_id}: {run.events_total} events over "
              f"[{run.first_time:.3f}s, {run.last_time:.3f}s]")
        print(f"  top events: {counts}")
        print()
        print(render_spans(run.spans, title=f"Spans [{run.run_id}]"))
        breakdown = latency_breakdown(run.spans)
        if breakdown:
            print()
            print(render_breakdown(
                summarize_breakdown(breakdown),
                title=f"Latency breakdown [{run.run_id}]",
            ))
        print()


def cmd_trace_spans(args) -> None:
    runs = _load_runs(args.file)
    for run in _select_runs(runs, args.run):
        spans = run.spans
        if args.kind:
            spans = [s for s in spans if s.kind == args.kind]
        rows = []
        for span in spans[: args.limit]:
            rows.append((
                span.span_id,
                span.kind,
                span.key,
                f"{span.start:.3f}",
                f"{span.end:.3f}" if span.end is not None else "-",
                f"{span.duration:.3f}" if span.duration is not None else "-",
                span.status,
                span.parent_id if span.parent_id is not None else "-",
                ",".join(name for name, _ in span.phases),
            ))
        print(render_table(
            f"Spans [{run.run_id}] ({len(spans)} total, "
            f"showing {min(len(spans), args.limit)})",
            ("id", "kind", "key", "start", "end", "dur (s)",
             "status", "parent", "phases"),
            rows,
        ))
        if args.critical:
            from repro.obs.analyze import critical_path

            segments = critical_path(run.spans)
            print()
            print(render_table(
                f"Critical path [{run.run_id}]",
                ("chunk", "from (s)", "to (s)", "blocked (s)", "phase"),
                [(s.cid, f"{s.start:.3f}", f"{s.end:.3f}",
                  f"{s.duration:.3f}", s.phase) for s in segments],
            ))
        print()


def cmd_trace_chrome(args) -> None:
    from repro.obs.analyze import chrome_trace

    runs = _load_runs(args.file)
    if args.run is not None:
        selected = _select_runs(runs, args.run)
        runs = {run.run_id: run for run in selected}
    payload = chrome_trace(runs)
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    print(f"wrote {len(payload['traceEvents'])} trace events for "
          f"{len(runs)} run(s) to {args.output} "
          f"(open in Perfetto or chrome://tracing)")


def cmd_trace_diff(args) -> None:
    from repro.obs.analyze import diff_spans, pick_run

    runs_a = _load_runs(args.file_a)
    if args.file_b:
        runs_b = _load_runs(args.file_b)
        run_a = pick_run(runs_a, args.run_a)
        run_b = pick_run(runs_b, args.run_b)
    else:
        # Single multi-run file: diff two runs inside it.
        ids = list(runs_a)
        if args.run_a is None and args.run_b is None and len(ids) < 2:
            raise SystemExit(
                f"{args.file_a} holds a single run ({ids[0]}); "
                f"pass a second file or --run-a/--run-b"
            )
        run_a = pick_run(runs_a, args.run_a or ids[0])
        run_b = pick_run(runs_a, args.run_b or ids[1 if len(ids) > 1 else 0])
    deltas = diff_spans(run_a.spans, run_b.spans)
    rows = []
    for d in deltas:
        ratio = f"{d.ratio:.2f}x" if d.ratio is not None else "-"
        rows.append((
            d.kind, d.count_a, d.count_b,
            f"{d.mean_a:.4f}", f"{d.mean_b:.4f}",
            f"{d.delta:+.4f}", ratio,
        ))
    print(render_table(
        f"Span diff: A={run_a.run_id}  B={run_b.run_id}",
        ("kind", "count A", "count B", "mean A (s)", "mean B (s)",
         "Δ mean (s)", "B/A"),
        rows,
    ))


def cmd_trace_wide(args) -> None:
    from repro.obs.trace import read_trace
    from repro.obs.wide import derive_wide, wide_json

    if args.output:
        from repro.obs.wide import WideEventWriter

        with WideEventWriter(args.output) as writer:
            records = derive_wide(
                read_trace(args.file), sinks=[writer.write],
                run_id=args.run,
            )
        print(f"wrote {len(records)} wide events to {args.output} "
              f"(byte-identical to a live --emit-wide run)")
    else:
        records = derive_wide(read_trace(args.file), run_id=args.run)
        for record in records:
            print(wide_json(record))


# -- telemetry service and live dashboard ------------------------------------


def _handle_sigterm() -> None:
    """Route SIGTERM through KeyboardInterrupt for one clean shutdown
    path (no-op off the main thread, where tests drive these
    commands)."""
    import signal

    def _graceful(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _graceful)
    except ValueError:  # not the main thread
        pass


def cmd_serve(args) -> None:
    from repro.obs.registry import RunRegistry
    from repro.obs.server import make_server

    _handle_sigterm()
    hub = None
    if args.demo:
        from repro.obs.stream import TelemetryHub

        hub = TelemetryHub()
    registry = RunRegistry(args.registry_dir)
    server = make_server(
        args.host, args.port, registry, hub=hub, wide_dir=args.wide_dir,
    )
    print(f"serving registry {registry.path} on {server.url}")
    print("endpoints: /runs /runs/<key> /runs/<key>/gauges "
          "/runs/<key>/wide /runs/<key>/explain?base= /diff?a=&b= "
          "/slo /live /healthz")
    evaluator = None
    if args.demo:
        import threading

        from repro.obs.slo import DEFAULT_SLOS, AlertLog, LiveSLOEvaluator

        policy = _policy_arg(args.policy)
        evaluator = LiveSLOEvaluator(DEFAULT_SLOS).start(
            hub, AlertLog(registry.directory)
        )

        def _demo() -> None:
            try:
                _demo_pair(
                    args.file_mb, args.seed, policy,
                    gauges=True, hub=hub,
                )
            finally:
                hub.close()

        threading.Thread(
            target=_demo, name="repro-serve-demo", daemon=True
        ).start()
        print(f"live demo started ({args.file_mb:g} MB, seed {args.seed}) "
              f"— stream it from {server.url}/live "
              f"({len(DEFAULT_SLOS)} live SLOs attached)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        # Close the hub first so every /live subscriber gets the SSE
        # terminal frame before the listening socket goes away, and
        # wait for them to detach — handler threads are daemons, so
        # exiting now would kill them mid-frame.
        if hub is not None:
            hub.close()
            hub.wait_closed(timeout=3.0)
        if evaluator is not None:
            evaluator.join(timeout=2.0)
        server.server_close()
    print("\nshut down cleanly")


def cmd_watch(args) -> None:
    from urllib.request import urlopen

    from repro.obs.dashboard import run_from_sse

    _handle_sigterm()
    url = args.url.rstrip("/")
    if not url.endswith("/live"):
        url += "/live"
    response = urlopen(url)
    try:
        dash = run_from_sse(
            response,
            clear=sys.stdout.isatty(),
            max_events=args.max_events,
        )
    except KeyboardInterrupt:
        print()
        print("watch interrupted; stream closed cleanly")
        return
    finally:
        response.close()
    print()
    print(f"stream ended: {dash.items_seen} items, "
          f"{dash.wide_seen} wide events")


# -- run registry ------------------------------------------------------------


def _registry(args):
    from repro.obs.registry import RunRegistry

    return RunRegistry(args.registry_dir)


def _find_record(registry, key: str):
    try:
        return registry.find(key)
    except KeyError as exc:
        raise SystemExit(str(exc)) from None


def _headline(metrics: dict) -> str:
    gains = {
        name: value for name, value in metrics.items()
        if "gain" in name and isinstance(value, (int, float))
    }
    if gains:
        values = list(gains.values())
        if len(values) == 1:
            return f"gain={values[0]:.2f}x"
        return (f"gains={min(values):.2f}x..{max(values):.2f}x "
                f"({len(values)} points)")
    time_s = metrics.get("download_time")
    if isinstance(time_s, (int, float)):
        return f"time={time_s:.1f}s"
    return f"{len(metrics)} metrics"


def cmd_runs_list(args) -> None:
    registry = _registry(args)
    if args.json:
        from repro.obs.registry import list_payload

        print(json.dumps(list_payload(registry), indent=2, sort_keys=True))
        return
    records = registry.records()
    if not records:
        print(f"no records in {registry.path}")
        return
    print(render_table(
        f"Run registry ({registry.path})",
        ("rec", "kind", "run", "recorded", "sha", "gauges", "headline"),
        [(r.rec_id, r.kind, r.run_id, r.recorded_at, r.git_sha[:8],
          len(r.gauges), _headline(r.metrics)) for r in records],
    ))


def cmd_runs_show(args) -> None:
    registry = _registry(args)
    record = _find_record(registry, args.run)
    print(f"record   {record.rec_id} (kind={record.kind})")
    print(f"run      {record.run_id}")
    print(f"recorded {record.recorded_at}  sha {record.git_sha[:12]}")
    print(f"machine  {record.machine}")
    if record.meta:
        print(f"meta     {json.dumps(record.meta, sort_keys=True)}")
    print()
    print(render_table(
        "Metrics", ("metric", "value"),
        [(name, record.metrics[name]) for name in sorted(record.metrics)],
    ))
    if record.gauges:
        print()
        print(render_table(
            "Gauge timelines", ("gauge", "samples", "last"),
            [(name, len(series["t"]),
              series["v"][-1] if series["v"] else "-")
             for name, series in sorted(record.gauges.items())],
        ))


def cmd_runs_diff(args) -> None:
    from repro.obs.registry import diff_records, regressions

    registry = _registry(args)
    record_a = _find_record(registry, args.run_a)
    record_b = _find_record(registry, args.run_b)
    deltas = diff_records(record_a, record_b)
    if args.json:
        from repro.obs.registry import diff_payload

        payload = diff_payload(record_a, record_b, deltas)
        print(json.dumps(payload, indent=2, sort_keys=True))
        if payload["regressions"] and args.fail_on_regression:
            raise SystemExit(1)
        return
    if not deltas:
        print(f"records {record_a.rec_id} and {record_b.rec_id} share "
              f"no numeric metrics")
        return
    rows = []
    for d in deltas:
        ratio = f"{d.ratio:.3f}" if d.ratio is not None else "-"
        flag = "REGRESSION" if d.regression else ""
        rows.append((d.name, f"{d.value_a:.4g}", f"{d.value_b:.4g}",
                     ratio, flag))
    print(render_table(
        f"Registry diff: A={record_a.rec_id}  B={record_b.rec_id}",
        ("metric", "A", "B", "B/A", ""),
        rows,
    ))
    flagged = regressions(deltas)
    if flagged:
        print(f"\n{len(flagged)} gain regression(s) past the "
              f"paper-shape threshold:")
        for d in flagged:
            print(f"  {d.name}: {d.value_a:.3f} -> {d.value_b:.3f} "
                  f"({d.ratio:.0%} of A)")
        if args.fail_on_regression:
            raise SystemExit(1)
    else:
        print("\nno gain regressions")


def cmd_runs_gauges(args) -> None:
    from repro.obs.dashboard import sparkline as _sparkline

    registry = _registry(args)
    record = _find_record(registry, args.run)
    series = (record.gauge_series(args.metric) if args.metric
              else record.gauges)
    if not series:
        have = ", ".join(sorted(record.gauges)) or "none"
        raise SystemExit(
            f"record {record.rec_id} has no gauge matching "
            f"{args.metric!r} (recorded: {have})"
        )
    if args.csv:
        print("gauge,t,value")
        for name in sorted(series):
            for t, v in zip(series[name]["t"], series[name]["v"]):
                print(f"{name},{t:g},{v:g}")
        return
    print(f"gauge timelines [{record.rec_id}]")
    width = max(len(name) for name in series)
    for name in sorted(series):
        values = series[name]["v"]
        times = series[name]["t"]
        if not values:
            print(f"  {name:<{width}}  (empty)")
            continue
        print(f"  {name:<{width}}  {_sparkline(values)}  "
              f"[{min(values):g}, {max(values):g}] over "
              f"t=[{times[0]:g}, {times[-1]:g}]s ({len(values)} samples)")


def cmd_runs_why(args) -> None:
    from repro.obs.explain import (
        explain_registry_pair,
        render_why,
        why_payload,
    )

    registry = _registry(args)
    try:
        explanation = explain_registry_pair(
            registry, args.run_a, args.run_b, wide_dir=args.wide_dir,
        )
    except (KeyError, ValueError) as exc:
        raise SystemExit(str(exc).strip("'")) from None
    if args.json:
        print(json.dumps(why_payload(explanation), indent=2,
                         sort_keys=True))
    else:
        print(render_why(explanation))


# -- SLOs ---------------------------------------------------------------------


def cmd_slo_check(args) -> None:
    import os

    from repro.obs.explain import load_wide_for_run
    from repro.obs.registry import RunRegistry
    from repro.obs.slo import (
        DEFAULT_SLOS,
        AlertLog,
        AlertRecord,
        check_payload,
        evaluate_record,
        parse_slos,
        render_check,
        violations,
    )

    registry = RunRegistry(args.registry_dir)
    slos = parse_slos(args.slo) if args.slo else DEFAULT_SLOS
    if args.run:
        records = [_find_record(registry, key) for key in args.run]
    else:
        records = registry.records()
    if not records:
        raise SystemExit(f"no records to check in {registry.path}")
    wide_dir = os.path.join(registry.directory, "wide")
    per_record = []
    failed = []
    for record in records:
        wide_records = load_wide_for_run(wide_dir, record.run_id) or None
        results = evaluate_record(slos, record, wide_records=wide_records)
        per_record.append((record.rec_id, results))
        failed.extend(
            (record, result) for result in violations(results)
        )
    if failed and not args.no_alerts:
        log = AlertLog(registry.directory)
        for record, result in failed:
            log.append(AlertRecord(
                slo=result.slo.spec(), run=record.rec_id,
                value=result.value, threshold=result.slo.threshold,
            ))
    if args.json:
        print(json.dumps(check_payload(per_record), indent=2,
                         sort_keys=True))
    else:
        print(render_check(per_record))
        if failed and not args.no_alerts:
            print(f"{len(failed)} alert(s) appended to "
                  f"{AlertLog(registry.directory).path}")
    if failed:
        raise SystemExit(1)


def cmd_slo_alerts(args) -> None:
    from repro.obs.slo import AlertLog

    log = AlertLog(args.registry_dir)
    alerts = log.read()
    if args.json:
        print(json.dumps([a.to_json() for a in alerts], indent=2,
                         sort_keys=True))
        return
    if not alerts:
        print(f"no alerts in {log.path}")
        return
    for alert in alerts:
        print(alert.describe())


def cmd_traces(args) -> None:
    results = run_traces(
        seeds=tuple(range(args.seeds)),
        duration=args.duration,
        segment_scale=args.scale,
    )
    print(render_table(
        "Fig. 7(b): objects downloaded within the trace",
        ("trace", "coverage", "Xftp", "SoftStage", "ratio"),
        [(r.trace_name, f"{r.coverage_fraction:.0%}", r.xftp_chunks,
          r.softstage_chunks, r.object_ratio) for r in results],
    ))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="SoftStage vs Xftp quick comparison")
    demo.add_argument("--file-mb", type=float, default=32.0)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--trace", metavar="PATH",
                      help="record both runs into one JSONL trace")
    demo.add_argument("--spans", action="store_true",
                      help="derive and print causal span summaries")
    demo.add_argument("--gauges", action="store_true",
                      help="install the flight recorder and append both "
                           "runs (with gauge timelines) to the run registry")
    demo.add_argument("--audit", action="store_true",
                      help="run the invariant auditor over both runs")
    demo.add_argument("--registry-dir", metavar="DIR",
                      help="registry directory (default .repro_runs, or "
                           "REPRO_RUNS_DIR)")
    demo.add_argument("--policy", metavar="NAME",
                      help="staging policy for the SoftStage run "
                           "(reactive, rich, mobility, predictive; "
                           "default: reactive Eq. 1)")
    demo.add_argument("--emit-wide", metavar="PATH", nargs="?", const="",
                      help="write wide events (one record per chunk "
                           "lifecycle/encounter/gap/handoff) as JSONL; "
                           "no PATH = <registry>/wide/<run>.jsonl, where "
                           "`repro serve` finds them")
    demo.add_argument("--live", action="store_true",
                      help="repaint the live terminal dashboard from an "
                           "in-process telemetry hub (implies gauge "
                           "sampling; metrics stay bit-identical)")
    demo.set_defaults(fn=cmd_demo)

    fig5 = sub.add_parser("fig5", help="XIA substrate benchmark")
    fig5.add_argument("--seed", type=int, default=1)
    fig5.set_defaults(fn=cmd_fig5)

    sweep = sub.add_parser("sweep", help="one Fig. 6 panel")
    sweep.add_argument("--panel", choices=list("abcdef"), required=True)
    sweep.add_argument("--file-mb", type=float, default=32.0)
    sweep.add_argument("--seeds", type=int, default=1)
    sweep.add_argument("--scale", type=int, default=1)
    sweep.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (results stay byte-identical "
                            "to --jobs 1)")
    sweep.add_argument("--trace", metavar="PATH",
                       help="record every run into one JSONL trace")
    sweep.add_argument("--registry", action="store_true",
                       help="append the sweep's per-point gains to the "
                            "run registry")
    sweep.add_argument("--registry-dir", metavar="DIR",
                       help="registry directory (default .repro_runs, or "
                            "REPRO_RUNS_DIR)")
    sweep.add_argument("--policy", metavar="NAME",
                       help="staging policy for the SoftStage runs "
                            "(reactive, rich, mobility, predictive)")
    sweep.set_defaults(fn=cmd_sweep)

    prof = sub.add_parser("profile", help="one profiled download")
    prof.add_argument("--system", choices=("softstage", "xftp"),
                      default="softstage")
    prof.add_argument("--file-mb", type=float, default=8.0)
    prof.add_argument("--seed", type=int, default=0)
    prof.add_argument("--top", type=int, default=15)
    prof.set_defaults(fn=cmd_profile)

    trace = sub.add_parser("trace", help="JSONL trace analysis")
    tsub = trace.add_subparsers(dest="trace_command", required=True)

    tsummary = tsub.add_parser("summary", help="events + span statistics")
    tsummary.add_argument("file")
    tsummary.add_argument("--run", help="restrict to one run id")
    tsummary.set_defaults(fn=cmd_trace_summary)

    tspans = tsub.add_parser("spans", help="list derived spans")
    tspans.add_argument("file")
    tspans.add_argument("--run", help="restrict to one run id")
    tspans.add_argument("--kind", choices=("chunk", "encounter", "gap", "handoff"))
    tspans.add_argument("--limit", type=int, default=30)
    tspans.add_argument("--critical", action="store_true",
                        help="also print the per-download critical path")
    tspans.set_defaults(fn=cmd_trace_spans)

    tchrome = tsub.add_parser(
        "chrome", help="export Chrome trace-event JSON (Perfetto)"
    )
    tchrome.add_argument("file")
    tchrome.add_argument("-o", "--output", required=True)
    tchrome.add_argument("--run", help="restrict to one run id")
    tchrome.set_defaults(fn=cmd_trace_chrome)

    tdiff = tsub.add_parser("diff", help="per-span-kind latency deltas")
    tdiff.add_argument("file_a")
    tdiff.add_argument("file_b", nargs="?",
                       help="second trace (omit to diff runs inside file_a)")
    tdiff.add_argument("--run-a", help="run id in the first trace")
    tdiff.add_argument("--run-b", help="run id in the second trace")
    tdiff.set_defaults(fn=cmd_trace_diff)

    twide = tsub.add_parser(
        "wide", help="derive wide events from a trace (byte-identical "
                     "to a live --emit-wide run)"
    )
    twide.add_argument("file")
    twide.add_argument("-o", "--output", metavar="PATH",
                       help="write JSONL here instead of stdout")
    twide.add_argument("--run", help="restrict to one run id")
    twide.set_defaults(fn=cmd_trace_wide)

    runs = sub.add_parser("runs", help="the persistent run registry")
    runs.add_argument("--registry-dir", metavar="DIR",
                      help="registry directory (default .repro_runs, or "
                           "REPRO_RUNS_DIR)")
    rsub = runs.add_subparsers(dest="runs_command", required=True)

    rlist = rsub.add_parser("list", help="all registry records")
    rlist.add_argument("--json", action="store_true",
                       help="emit the registry listing as JSON (the same "
                            "serialization the HTTP /runs endpoint uses)")
    rlist.set_defaults(fn=cmd_runs_list)

    rshow = rsub.add_parser("show", help="one record in full")
    rshow.add_argument("run", help="rec id or run id (substring; latest wins)")
    rshow.set_defaults(fn=cmd_runs_show)

    rdiff = rsub.add_parser(
        "diff", help="compare two records, flagging gain regressions"
    )
    rdiff.add_argument("run_a")
    rdiff.add_argument("run_b")
    rdiff.add_argument("--fail-on-regression", action="store_true",
                       help="exit 1 when a gain metric regresses past the "
                            "paper-shape threshold")
    rdiff.add_argument("--json", action="store_true",
                       help="emit the diff as JSON (the same serialization "
                            "the HTTP /diff endpoint uses)")
    rdiff.set_defaults(fn=cmd_runs_diff)

    rwhy = rsub.add_parser(
        "why", help="attribute run B's movement from run A to pipeline "
                    "phases (needs both runs' wide events)"
    )
    rwhy.add_argument("run_a", help="baseline rec id or run id")
    rwhy.add_argument("run_b", help="regressed rec id or run id")
    rwhy.add_argument("--wide-dir", metavar="DIR",
                      help="wide-event JSONL directory "
                           "(default <registry>/wide)")
    rwhy.add_argument("--json", action="store_true",
                      help="emit the attribution as JSON (the same "
                           "serialization the HTTP explain endpoint uses)")
    rwhy.set_defaults(fn=cmd_runs_why)

    rgauges = rsub.add_parser("gauges", help="render a record's gauge timelines")
    rgauges.add_argument("run", help="rec id or run id")
    rgauges.add_argument("--metric", metavar="NAME",
                         help="substring filter, e.g. cache_occupancy or "
                              "staging.lead")
    rgauges.add_argument("--csv", action="store_true",
                         help="emit gauge,t,value CSV instead of sparklines")
    rgauges.set_defaults(fn=cmd_runs_gauges)

    slo = sub.add_parser("slo", help="service-level objectives over runs")
    slo.add_argument("--registry-dir", metavar="DIR",
                     help="registry directory (default .repro_runs, or "
                          "REPRO_RUNS_DIR)")
    ssub = slo.add_subparsers(dest="slo_command", required=True)

    scheck = ssub.add_parser(
        "check", help="judge registry records against the SLO set "
                      "(exit 1 on any violation)"
    )
    scheck.add_argument("run", nargs="*",
                        help="rec/run ids to check (default: every record)")
    scheck.add_argument("--slo", action="append", metavar="SPEC",
                        help="SLO spec like 'gain >= 1.2' or "
                             "'p95(stage_latency) <= 2.0' (repeatable; "
                             "default: the paper-shape set)")
    scheck.add_argument("--json", action="store_true",
                        help="emit results as JSON (the same serialization "
                             "the HTTP /slo endpoint uses)")
    scheck.add_argument("--no-alerts", action="store_true",
                        help="don't append violations to alerts.jsonl")
    scheck.set_defaults(fn=cmd_slo_check)

    salerts = ssub.add_parser("alerts", help="list the alert log")
    salerts.add_argument("--json", action="store_true")
    salerts.set_defaults(fn=cmd_slo_alerts)

    serve = sub.add_parser(
        "serve", help="HTTP telemetry service over the run registry"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8008)
    serve.add_argument("--registry-dir", metavar="DIR",
                       help="registry directory (default .repro_runs, or "
                            "REPRO_RUNS_DIR)")
    serve.add_argument("--wide-dir", metavar="DIR",
                       help="wide-event JSONL directory served at "
                            "/runs/<key>/wide (default <registry>/wide)")
    serve.add_argument("--demo", action="store_true",
                       help="also run one live demo on a background thread "
                            "so /live has traffic to stream")
    serve.add_argument("--file-mb", type=float, default=32.0,
                       help="--demo download size")
    serve.add_argument("--seed", type=int, default=0, help="--demo seed")
    serve.add_argument("--policy", metavar="NAME",
                       help="--demo staging policy")
    serve.set_defaults(fn=cmd_serve)

    watch = sub.add_parser(
        "watch", help="live dashboard over a serve process's /live stream"
    )
    watch.add_argument("url", help="server base URL (or /live URL) from "
                                   "`python -m repro serve`")
    watch.add_argument("--max-events", type=int, metavar="N",
                       help="stop after N SSE events (default: stream "
                            "until the run ends)")
    watch.set_defaults(fn=cmd_watch)

    handoff = sub.add_parser("handoff", help="handoff-policy comparison")
    handoff.add_argument("--file-mb", type=float, default=48.0)
    handoff.add_argument("--seeds", type=int, default=1)
    handoff.add_argument("--scale", type=int, default=2)
    handoff.set_defaults(fn=cmd_handoff)

    traces = sub.add_parser("traces", help="trace-driven experiment")
    traces.add_argument("--duration", type=float, default=300.0)
    traces.add_argument("--seeds", type=int, default=1)
    traces.add_argument("--scale", type=int, default=2)
    traces.set_defaults(fn=cmd_traces)

    args = parser.parse_args(argv)
    args.fn(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
