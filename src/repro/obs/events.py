"""The typed instrumentation event taxonomy.

Every observable happening in the stack is a small frozen dataclass
whose fields are JSON primitives (str/int/float/bool/None) so a trace
can round-trip through JSONL losslessly.  Layers construct these only
when at least one subscriber is attached (see
:class:`repro.obs.probe.Probe`), so an uninstrumented run pays nothing
beyond one attribute check per emit site.

The taxonomy, by emitting layer:

========== ==========================================================
Layer      Events
========== ==========================================================
sim        :class:`ProcessFailed`, :class:`ProfilerSample`
obs        :class:`GaugeSample` (the flight recorder's sampled gauges)
net        :class:`PacketDropped`, :class:`LinkStateChanged`,
           :class:`LinkRetransmission`
transport  :class:`SegmentTimeout`, :class:`SegmentRetransmitted`,
           :class:`SessionMigrated`
xcache     :class:`CacheHit`, :class:`CacheMiss`, :class:`CacheStored`,
           :class:`CacheEvicted`
core       :class:`CoordinatorTick`, :class:`StagingSignalled`,
           :class:`ChunkStaged`, :class:`StaleStagingResponse`,
           :class:`StageRequestReceived`, :class:`VnfStageCompleted`,
           :class:`VnfStageFailed`, :class:`ChunkFetched`,
           :class:`HandoffStarted`, :class:`HandoffCompleted`,
           :class:`HandoffDeferred`, :class:`PrestageSignalled`,
           :class:`CoverageGap`, :class:`EncounterEnded`
========== ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True, slots=True)
class ObsEvent:
    """Marker base class for all instrumentation events."""


# -- sim ------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ProcessFailed(ObsEvent):
    """A simulation process terminated with an exception."""

    process: str
    error: str


# -- net ------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class PacketDropped(ObsEvent):
    """A link direction dropped ``count`` packets for one reason.

    ``reason`` is one of ``"loss"`` (channel loss, including wireless
    residual loss after ARQ), ``"queue"`` (tail drop) or ``"down"``
    (link taken down with the packet queued or in flight).

    ``count`` batches same-reason drops that happen at one instant
    (e.g. a link going down flushing its whole queue) into a single
    event instead of one per packet.  Traces written before the field
    existed carry implicit single-packet drops — the default keeps
    them loading unchanged.
    """

    link: str
    reason: str
    count: int = 1


@dataclass(frozen=True, slots=True)
class LinkStateChanged(ObsEvent):
    """A link went up or down (e.g. a wireless radio (dis)association)."""

    link: str
    up: bool


@dataclass(frozen=True, slots=True)
class LinkRetransmission(ObsEvent):
    """Link-layer ARQ retried a frame ``retries`` times (wireless)."""

    link: str
    retries: int


# -- transport -------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SegmentTimeout(ObsEvent):
    """A sender session's retransmission timer fired."""

    session: int
    seq: int
    rto: float


@dataclass(frozen=True, slots=True)
class SegmentRetransmitted(ObsEvent):
    """A DATA segment was retransmitted (fast retransmit or RTO)."""

    session: int
    seq: int


@dataclass(frozen=True, slots=True)
class SessionMigrated(ObsEvent):
    """A sender accepted a MIGRATE and resumed toward a new address."""

    session: int


# -- xcache ----------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class CacheHit(ObsEvent):
    store: str
    cid: str


@dataclass(frozen=True, slots=True)
class CacheMiss(ObsEvent):
    store: str
    cid: str


@dataclass(frozen=True, slots=True)
class CacheStored(ObsEvent):
    store: str
    cid: str
    size_bytes: int
    pinned: bool


@dataclass(frozen=True, slots=True)
class CacheEvicted(ObsEvent):
    store: str
    cid: str
    size_bytes: int


# -- core ------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class CoordinatorTick(ObsEvent):
    """One staging-coordinator round.

    ``offline`` marks rounds skipped for lack of a reachable VNF;
    ``decision`` marks rounds that signalled fresh (non-re-signal)
    chunks; ``signalled`` is the total chunks signalled this round.
    """

    signalled: int
    decision: bool
    offline: bool


@dataclass(frozen=True, slots=True)
class StagingSignalled(ObsEvent):
    """The tracker sent one STAGE_REQUEST batch to a VNF.

    ``cids`` is a comma-joined list of the short chunk ids in the
    batch (kept as one string so every field stays a JSON primitive);
    the span layer splits it to open one lifecycle span per chunk.
    """

    count: int
    label: str
    cids: str = ""


@dataclass(frozen=True, slots=True)
class ChunkStaged(ObsEvent):
    """The client learned a chunk is READY at the edge (step 6)."""

    cid: str
    staging_latency: Optional[float]
    control_rtt: Optional[float]


@dataclass(frozen=True, slots=True)
class StaleStagingResponse(ObsEvent):
    """A staging confirmation arrived for an unknown/already-READY chunk."""

    cid: str


@dataclass(frozen=True, slots=True)
class StageRequestReceived(ObsEvent):
    """A VNF received one STAGE_REQUEST batch.

    ``cids`` mirrors :class:`StagingSignalled` (comma-joined short
    chunk ids) so per-chunk spans can mark request arrival.
    """

    vnf: str
    chunks: int
    cids: str = ""


@dataclass(frozen=True, slots=True)
class VnfStageCompleted(ObsEvent):
    """A VNF finished prefetching one chunk into its XCache."""

    vnf: str
    cid: str
    latency: float


@dataclass(frozen=True, slots=True)
class VnfStageFailed(ObsEvent):
    """A VNF's prefetch of one chunk failed within the retry budget."""

    vnf: str
    cid: str


@dataclass(frozen=True, slots=True)
class ChunkFetched(ObsEvent):
    """The client completed one ``XfetchChunk*`` delegation call."""

    cid: str
    latency: float
    from_edge: bool
    fallback: bool


@dataclass(frozen=True, slots=True)
class HandoffStarted(ObsEvent):
    target: str


@dataclass(frozen=True, slots=True)
class HandoffCompleted(ObsEvent):
    target: str
    duration: float


@dataclass(frozen=True, slots=True)
class HandoffDeferred(ObsEvent):
    """A chunk-aware policy deferred a switch to the chunk boundary."""

    target: str


@dataclass(frozen=True, slots=True)
class PrestageSignalled(ObsEvent):
    """Chunks were pre-staged into a handoff target's VNF."""

    target: str
    count: int


@dataclass(frozen=True, slots=True)
class CoverageGap(ObsEvent):
    """The client re-attached after ``duration`` seconds offline."""

    duration: float


@dataclass(frozen=True, slots=True)
class EncounterEnded(ObsEvent):
    """The client left a network after ``duration`` seconds attached."""

    duration: float


# -- flight recorder --------------------------------------------------------


@dataclass(frozen=True, slots=True)
class GaugeSample(ObsEvent):
    """One sampled state-gauge reading (flight recorder).

    Emitted by :class:`repro.obs.flight.GaugeSampler` on its sim-time
    sampling period, one event per registered gauge per tick.  Values
    are pure functions of simulation state (never wall clock), so a
    trace replays into gauge timelines identical to the live run's.

    ``gauge`` names the quantity with dotted components, coarse to
    fine — ``cache.occupancy_bytes.xcache-A``,
    ``staging.lead_bytes``, ``link.queue_bytes.internet.fwd`` — so
    consumers can select families by prefix.
    """

    gauge: str
    value: float


# -- profiler ---------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ProfilerSample(ObsEvent):
    """Periodic simulator health sample (every N kernel steps).

    Emitted by :class:`repro.sim.profiler.SimProfiler` when sampling
    is enabled.  Fields are deterministic (no wall-clock values) so a
    profiled run's trace stays replay-exact.
    """

    depth: int
    steps: int


#: Name -> class registry used by the JSONL trace replayer.
EVENT_TYPES: dict[str, type[ObsEvent]] = {
    cls.__name__: cls
    for cls in (
        ProcessFailed,
        PacketDropped,
        LinkStateChanged,
        LinkRetransmission,
        SegmentTimeout,
        SegmentRetransmitted,
        SessionMigrated,
        CacheHit,
        CacheMiss,
        CacheStored,
        CacheEvicted,
        CoordinatorTick,
        StagingSignalled,
        ChunkStaged,
        StaleStagingResponse,
        StageRequestReceived,
        VnfStageCompleted,
        VnfStageFailed,
        ChunkFetched,
        HandoffStarted,
        HandoffCompleted,
        HandoffDeferred,
        PrestageSignalled,
        CoverageGap,
        EncounterEnded,
        GaugeSample,
        ProfilerSample,
    )
}
