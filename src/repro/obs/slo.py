"""The SLO engine: declarative objectives, continuously judged.

The observability stack below this module *records*; this module
*judges*.  An :class:`SLO` is one declarative objective over the
reproduction's telemetry — the paper's headline shape (``gain >= 1.2``),
a staging-pipeline latency bound (``p95(stage_latency) <= 2.0``), a
staging-effectiveness floor (``ready_before_fetch_ratio >= 0.6``) —
written as a one-line spec and evaluated two ways:

**offline** (:func:`evaluate_record`, ``python -m repro slo check``,
``GET /slo``)
    against :class:`~repro.obs.registry.RunRecord` metrics, the
    record's serialized :mod:`~repro.obs.sketch` set, and/or a run's
    wide-event records;

**live** (:class:`LiveSLOEvaluator`)
    as a :class:`~repro.obs.stream.TelemetryHub` subscriber folding
    gauge samples and wide events into per-SLO sliding windows (sim
    time) and computing **burn rates** — the fraction of the window's
    observations in violation.  When an SLO transitions into
    violation an :class:`AlertRecord` is appended to the registry
    directory's ``alerts.jsonl`` (:class:`AlertLog`) and published on
    the hub under the ``alert`` topic, where the dashboard's alerts
    pane picks it up.

The live evaluator is *only* a hub subscriber: it shares the hub's
never-block contract, so a fixed-seed run produces bit-identical
results with or without it attached (asserted under the strict
invariant auditor by the tests).

Spec grammar::

    [agg(]metric[)] (<=|>=) threshold [@ window_s]

    gain >= 1.2
    p95(stage_latency) <= 2.0
    mean(fetch_latency) <= 10 @ 60
    ready_before_fetch_ratio >= 0.6

``agg`` ∈ p50 / p90 / p95 / p99 / mean / max / min; a bare metric is
the latest/recorded value.  ``@ window`` sets the live sliding window
in simulated seconds (default ``DEFAULT_WINDOW_S``); offline
evaluation ignores it (the whole run is the window).
"""

from __future__ import annotations

import json
import math
import os
import re
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

try:  # advisory append locking, as in repro.obs.registry
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

from repro.obs.sketch import QuantileSketch, sketches_from_wide

#: Default live sliding window, in simulated seconds.
DEFAULT_WINDOW_S = 30.0

#: Alert JSONL file name inside the registry directory.
ALERTS_FILE = "alerts.jsonl"

#: Samples kept per live window regardless of time span (safety cap so
#: a pathological gauge cannot grow a window unboundedly).
MAX_WINDOW_SAMPLES = 4096

_AGGS = ("p50", "p90", "p95", "p99", "mean", "max", "min")

_SPEC_RE = re.compile(
    r"^\s*(?:(?P<agg>p50|p90|p95|p99|mean|max|min)\s*\(\s*(?P<inner>[^)]+?)"
    r"\s*\)|(?P<bare>[A-Za-z0-9_.\-]+))\s*(?P<op><=|>=)\s*"
    r"(?P<threshold>[-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)"
    r"\s*(?:@\s*(?P<window>[0-9]*\.?[0-9]+)\s*s?)?\s*$"
)


@dataclass(frozen=True)
class SLO:
    """One declarative objective over a metric stream."""

    #: The quantity being judged — a registry metric name (``gain``),
    #: a wide-event chunk field (``fetch_latency``, ``stage_wait_s``),
    #: a gauge name (``staging.lead_bytes``) or the derived
    #: ``ready_before_fetch_ratio``.
    metric: str
    #: How the window/run collapses to one value: ``value`` (latest /
    #: as-recorded) or one of p50/p90/p95/p99/mean/max/min.
    agg: str
    #: ``">="`` (floor) or ``"<="`` (ceiling).
    op: str
    threshold: float
    #: Live sliding window, simulated seconds.
    window_s: float = DEFAULT_WINDOW_S
    name: str = ""

    def __post_init__(self) -> None:
        if self.op not in (">=", "<="):
            raise ValueError(f"SLO op must be >= or <=, got {self.op!r}")
        if self.agg != "value" and self.agg not in _AGGS:
            raise ValueError(f"unknown SLO aggregation {self.agg!r}")
        if not self.name:
            object.__setattr__(self, "name", self.spec())

    def spec(self) -> str:
        """The canonical one-line form (parses back to an equal SLO)."""
        metric = (
            self.metric if self.agg == "value"
            else f"{self.agg}({self.metric})"
        )
        suffix = (
            "" if self.window_s == DEFAULT_WINDOW_S
            else f" @ {self.window_s:g}"
        )
        return f"{metric} {self.op} {self.threshold:g}{suffix}"

    def ok(self, value: float) -> bool:
        return value >= self.threshold if self.op == ">=" \
            else value <= self.threshold


def parse_slo(spec: str, window_s: Optional[float] = None) -> SLO:
    """Parse one spec line (see the module docstring for the grammar)."""
    match = _SPEC_RE.match(spec)
    if match is None:
        raise ValueError(
            f"unparseable SLO spec {spec!r} (expected e.g. 'gain >= 1.2' "
            f"or 'p95(stage_latency) <= 2.0 [@ 30]')"
        )
    agg = match.group("agg") or "value"
    metric = match.group("inner") or match.group("bare")
    window = match.group("window")
    return SLO(
        metric=metric,
        agg=agg,
        op=match.group("op"),
        threshold=float(match.group("threshold")),
        window_s=(
            float(window) if window is not None
            else window_s if window_s is not None
            else DEFAULT_WINDOW_S
        ),
    )


def parse_slos(specs: Iterable[str]) -> tuple[SLO, ...]:
    return tuple(parse_slo(spec) for spec in specs)


#: The paper-shape objective set for the Fig. 6 demo family (thresholds
#: calibrated against the healthy fixed-seed 16 MB demo; see
#: EXPERIMENTS.md "Paper-shape SLOs").  ``gain`` is the headline
#: latency objective; the staging-pipeline bounds encode the
#: freshness/latency trade-off framing from the related ICVN work.
DEFAULT_SLOS: tuple[SLO, ...] = parse_slos((
    "gain >= 1.2",
    "p95(stage_latency) <= 2.0",
    "p95(fetch_latency) <= 30.0",
    "ready_before_fetch_ratio >= 0.6",
))


# ---------------------------------------------------------------------------
# Offline evaluation: registry records and wide-event files
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SLOResult:
    """One SLO judged against one data source."""

    slo: SLO
    #: The observed value (``None`` = the source had no data for it).
    value: Optional[float]
    #: True/False verdict; ``None`` when there was no data to judge.
    ok: Optional[bool]
    #: Where the value came from: ``metrics`` / ``sketch`` / ``wide``.
    source: str = ""

    @property
    def status(self) -> str:
        if self.ok is None:
            return "no-data"
        return "pass" if self.ok else "FAIL"

    def to_json(self) -> dict:
        return {
            "slo": self.slo.spec(),
            "metric": self.slo.metric,
            "agg": self.slo.agg,
            "threshold": self.slo.threshold,
            "value": self.value,
            "status": self.status,
        }


def _agg_sketch(sketch, agg: str) -> Optional[float]:
    """Collapse one sketch to one value under ``agg`` (None = can't)."""
    if getattr(sketch, "count", 0) == 0:
        return None
    if agg in ("value", "mean"):
        return sketch.mean
    if agg == "max":
        return getattr(sketch, "maximum", None)
    if agg == "min":
        return getattr(sketch, "minimum", None)
    if isinstance(sketch, QuantileSketch) and agg.startswith("p"):
        return sketch.quantile(int(agg[1:]) / 100.0)
    return None


def _sketch_lookup(sketches: dict, metric: str):
    """Resolve a metric name to a sketch, trying the recorder's
    namespaces: bare, ``wide.<metric>``, ``gauge.<metric>`` and the
    gauge quantile twin ``gauge.<metric>.q``."""
    for name in (metric, f"wide.{metric}", f"gauge.{metric}",
                 f"gauge.{metric}.q"):
        sketch = sketches.get(name)
        if sketch is not None:
            return sketch
    return None


def resolve_value(
    slo: SLO,
    metrics: Optional[dict] = None,
    sketches: Optional[dict] = None,
) -> tuple[Optional[float], str]:
    """``(value, source)`` for one SLO against metrics + sketches.

    ``ready_before_fetch_ratio`` is the one derived metric: the mean
    of the ``wide.ready_before_fetch`` indicator sketch the
    :class:`~repro.obs.sketch.SketchRecorder` folds per chunk.
    """
    metrics = metrics or {}
    sketches = sketches or {}
    if slo.metric == "ready_before_fetch_ratio":
        sketch = sketches.get("wide.ready_before_fetch")
        if sketch is not None and sketch.count:
            return sketch.mean, "sketch"
        return None, ""
    if slo.agg == "value":
        value = metrics.get(slo.metric)
        if isinstance(value, (int, float)):
            return float(value), "metrics"
    sketch = _sketch_lookup(sketches, slo.metric)
    if sketch is not None:
        # A bare gauge/phase metric without an aggregation judges the
        # quantile sketch's p50 when the metric isn't a plain number.
        agg = "p50" if (
            slo.agg == "value" and isinstance(sketch, QuantileSketch)
        ) else slo.agg
        value = _agg_sketch(sketch, agg)
        if value is not None:
            return value, "sketch"
    return None, ""


def evaluate_slos(
    slos: Sequence[SLO],
    metrics: Optional[dict] = None,
    sketches: Optional[dict] = None,
    wide_records: Optional[Iterable[dict]] = None,
) -> list[SLOResult]:
    """Judge every SLO against the given sources.

    ``wide_records`` (if given) are folded into sketches on the fly
    and take precedence over same-named serialized sketches — the
    ``repro slo check`` path over ``--emit-wide`` files.
    """
    merged = dict(sketches or {})
    if wide_records is not None:
        merged.update(sketches_from_wide(wide_records))
    results = []
    for slo in slos:
        value, source = resolve_value(slo, metrics, merged)
        results.append(SLOResult(
            slo=slo,
            value=value,
            ok=slo.ok(value) if value is not None else None,
            source=source,
        ))
    return results


def evaluate_record(
    slos: Sequence[SLO],
    record,
    wide_records: Optional[Iterable[dict]] = None,
) -> list[SLOResult]:
    """Judge ``slos`` against one :class:`~repro.obs.registry.RunRecord`."""
    from repro.obs.sketch import load_sketches

    return evaluate_slos(
        slos,
        metrics=record.metrics,
        sketches=load_sketches(getattr(record, "sketches", {}) or {}),
        wide_records=wide_records,
    )


def violations(results: Iterable[SLOResult]) -> list[SLOResult]:
    return [r for r in results if r.ok is False]


# ---------------------------------------------------------------------------
# Alerts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AlertRecord:
    """One SLO violation, ready for the alert log and the hub."""

    slo: str              #: canonical spec string
    run: str              #: run id (or rec id) being judged
    value: float
    threshold: float
    #: Simulated time of the judgment (0.0 for whole-run offline checks).
    t: float = 0.0
    #: ``burn`` (live sliding window) or ``violation`` (offline).
    kind: str = "violation"
    #: Fraction of the window's observations in violation (live only).
    burn_rate: float = 1.0
    window_s: float = 0.0
    source: str = "offline"

    def to_json(self) -> dict:
        return {
            "slo": self.slo, "run": self.run, "value": self.value,
            "threshold": self.threshold, "t": self.t, "kind": self.kind,
            "burn_rate": self.burn_rate, "window_s": self.window_s,
            "source": self.source,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "AlertRecord":
        known = {f: payload[f] for f in (
            "slo", "run", "value", "threshold", "t", "kind",
            "burn_rate", "window_s", "source",
        ) if f in payload}
        return cls(**known)

    def describe(self) -> str:
        head = f"[{self.kind}] {self.run}: {self.slo}"
        detail = f"observed {self.value:g}"
        if self.kind == "burn":
            detail += (f", burn {self.burn_rate:.0%} over "
                       f"{self.window_s:g}s @ t={self.t:g}s")
        return f"{head} ({detail})"


class AlertLog:
    """Append-only ``alerts.jsonl`` beside the run registry."""

    def __init__(self, directory: Optional[str] = None) -> None:
        from repro.obs.registry import DEFAULT_DIR

        self.directory = (
            directory or os.environ.get("REPRO_RUNS_DIR") or DEFAULT_DIR
        )
        self.path = os.path.join(self.directory, ALERTS_FILE)

    def append(self, alert: AlertRecord) -> None:
        os.makedirs(self.directory, exist_ok=True)
        line = json.dumps(alert.to_json(), separators=(",", ":")) + "\n"
        with open(self.path, "a", encoding="utf-8") as fh:
            if fcntl is not None:
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                fh.write(line)
                fh.flush()
            finally:
                if fcntl is not None:
                    fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    def read(self) -> list[AlertRecord]:
        try:
            with open(self.path, encoding="utf-8") as fh:
                return [
                    AlertRecord.from_json(json.loads(line))
                    for line in fh if line.strip()
                ]
        except FileNotFoundError:
            return []


# ---------------------------------------------------------------------------
# Live evaluation: a telemetry-hub subscriber with sliding windows
# ---------------------------------------------------------------------------


class LiveSLOEvaluator:
    """Judges SLOs continuously over live hub traffic.

    A pure fold like the dashboard: :meth:`feed` consumes one
    ``(topic, payload)`` hub item, updates the matching SLOs' sliding
    windows (keyed by *simulated* time, so replayed traffic judges
    identically), and fires an :class:`AlertRecord` on every
    ok→violating transition.  Alerts go to ``sinks`` — typically the
    :class:`AlertLog` and a hub ``alert`` publish, wired up by
    :meth:`start`.

    Window sample sources, per SLO metric:

    - **gauge items** whose ``gauge`` name equals the metric;
    - **wide chunk records** carrying the metric as a numeric field
      (``fetch_latency``, ``stage_wait_s``, ...), stamped at
      ``t_fetched``; the derived ``ready_before_fetch_ratio`` folds
      the staged-before-fetch indicator;
    - **run-finished items** carrying the metric directly
      (``download_time``, ``gain`` when a driver publishes it) —
      judged immediately, no window.

    The evaluator never touches the simulation: it observes the hub's
    bounded queues only, so attaching it cannot perturb a fixed-seed
    run (asserted under the strict invariant auditor).
    """

    def __init__(
        self,
        slos: Sequence[SLO] = DEFAULT_SLOS,
        sinks: Optional[list[Callable[[AlertRecord], None]]] = None,
    ) -> None:
        self.slos = tuple(slos)
        self.sinks = list(sinks or [])
        self.alerts: list[AlertRecord] = []
        self.items_seen = 0
        self._windows: dict[str, deque] = {
            slo.name: deque(maxlen=MAX_WINDOW_SAMPLES) for slo in self.slos
        }
        self._violating: dict[str, bool] = {}
        self._run = ""
        self._subscription = None
        self._thread = None

    # -- judging -------------------------------------------------------------

    def _fire(self, slo: SLO, t: float, value: float,
              burn_rate: float) -> None:
        alert = AlertRecord(
            slo=slo.spec(), run=self._run, value=value,
            threshold=slo.threshold, t=t, kind="burn",
            burn_rate=burn_rate, window_s=slo.window_s, source="live",
        )
        self.alerts.append(alert)
        for sink in self.sinks:
            sink(alert)

    def _observe(self, slo: SLO, t: float, value: float) -> None:
        window = self._windows[slo.name]
        window.append((t, value))
        while window and window[0][0] < t - slo.window_s:
            window.popleft()
        values = [v for _t, v in window]
        current = _window_agg(values, slo.agg)
        if current is None:
            return
        bad = sum(1 for v in values if not slo.ok(v))
        burn_rate = bad / len(values)
        violating = not slo.ok(current)
        was = self._violating.get(slo.name, False)
        self._violating[slo.name] = violating
        if violating and not was:
            self._fire(slo, t, current, burn_rate)

    def feed(self, topic: str, payload: dict) -> None:
        self.items_seen += 1
        run = payload.get("run")
        if run:
            if run != self._run:
                # New run: fresh windows and states, like the wide
                # builder's per-run books.
                self._run = run
                for window in self._windows.values():
                    window.clear()
                self._violating.clear()
        if topic == "gauge":
            name = payload.get("gauge")
            t = payload.get("t", 0.0)
            value = payload.get("v")
            if not isinstance(value, (int, float)):
                return
            for slo in self.slos:
                if slo.metric == name:
                    self._observe(slo, t, float(value))
        elif topic == "wide":
            if payload.get("kind") != "chunk":
                return
            t = payload.get("t_fetched", 0.0)
            for slo in self.slos:
                if slo.metric == "ready_before_fetch_ratio":
                    ready_wait = payload.get("ready_wait_s")
                    staged = (
                        isinstance(ready_wait, (int, float))
                        and ready_wait >= 0.0
                    )
                    self._observe(slo, t, 1.0 if staged else 0.0)
                    continue
                value = payload.get(slo.metric)
                if isinstance(value, (int, float)):
                    self._observe(slo, t, float(value))
        elif topic == "run" and payload.get("state") == "finished":
            for slo in self.slos:
                value = payload.get(slo.metric)
                if isinstance(value, (int, float)) and not slo.ok(value):
                    self._fire(
                        slo, payload.get("download_time", 0.0),
                        float(value), 1.0,
                    )

    # -- hub wiring ----------------------------------------------------------

    def start(self, hub, alert_log: Optional[AlertLog] = None):
        """Subscribe to ``hub`` and judge on a daemon thread.

        Alerts are appended to ``alert_log`` (when given) and
        published back onto the hub under the ``alert`` topic (the
        evaluator's own subscription filters it out, so it never
        consumes its own alerts).  Returns ``self``.
        """
        import threading

        if alert_log is not None:
            self.sinks.append(alert_log.append)
        self.sinks.append(
            lambda alert: hub.publish("alert", alert.to_json())
        )
        self._subscription = hub.subscribe(
            topics={"gauge", "wide", "run"}
        )
        def _pump() -> None:
            try:
                for topic, payload in self._subscription:
                    self.feed(topic, payload)
            finally:
                # Detach so shutdown's hub.wait_closed() sees an
                # empty subscriber list once the pump drains.
                self._subscription.close()

        self._thread = threading.Thread(
            target=_pump, name="repro-slo-live", daemon=True,
        )
        self._thread.start()
        return self

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for the pump thread to drain a closed hub."""
        if self._thread is not None:
            self._thread.join(timeout)

    def stop(self) -> None:
        """Detach from the hub (idempotent)."""
        if self._subscription is not None:
            self._subscription.close()


def _window_agg(values: list, agg: str) -> Optional[float]:
    """Exact aggregation over a (bounded) live window."""
    if not values:
        return None
    if agg in ("value",):
        return values[-1]
    if agg == "mean":
        return sum(values) / len(values)
    if agg == "max":
        return max(values)
    if agg == "min":
        return min(values)
    if agg.startswith("p"):
        q = int(agg[1:]) / 100.0
        ordered = sorted(values)
        # Nearest rank, matching the sketch's convention.
        index = max(0, min(len(ordered) - 1,
                           math.ceil(q * len(ordered)) - 1))
        return ordered[index]
    return None


# ---------------------------------------------------------------------------
# Reporting (CLI + HTTP share these payload shapes)
# ---------------------------------------------------------------------------


def check_payload(per_record: list[tuple[str, list[SLOResult]]]) -> dict:
    """``repro slo check --json`` / ``GET /slo`` serialization."""
    records = []
    failing = []
    for rec_id, results in per_record:
        records.append({
            "rec_id": rec_id,
            "results": [r.to_json() for r in results],
        })
        failing.extend(
            f"{rec_id}: {r.slo.spec()}" for r in violations(results)
        )
    return {"records": records, "violations": failing}


def render_check(per_record: list[tuple[str, list[SLOResult]]]) -> str:
    """Deterministic plain-text report for ``repro slo check``."""
    from repro.experiments.report import render_table

    rows = []
    for rec_id, results in per_record:
        for result in results:
            rows.append((
                rec_id,
                result.slo.spec(),
                "-" if result.value is None else f"{result.value:.4g}",
                result.status,
            ))
    table = render_table(
        "SLO check", ("record", "slo", "observed", "status"), rows,
    )
    failed = sum(
        1 for _rec, results in per_record for r in violations(results)
    )
    verdict = (
        "all SLOs pass" if failed == 0
        else f"{failed} SLO violation(s)"
    )
    return f"{table}\n{verdict}"
