"""Fixed-memory, mergeable, deterministic metric sketches.

Every metric the observability stack has grown so far is *exact* and
therefore unbounded: a :class:`~repro.sim.monitor.TimeSeries` holds one
``(t, v)`` pair per sample, a wide-event file holds one record per
chunk.  That is fine for one vehicle and fatal for the ROADMAP's
fleet scenarios — thousands of vehicles × per-chunk latencies ×
per-gauge samples is O(samples) memory per run and O(runs × samples)
in the registry.

This module provides the bounded alternative: **sketches** — small,
fixed-size summaries that

- fold a stream of values one at a time (``add``),
- **merge** associatively across parallel-sweep workers and across
  runs (``merge``), and
- serialize into compact JSON for :class:`~repro.obs.registry.RunRecord`
  storage (``to_json`` / the module-level :func:`load_sketch`).

Three sketch kinds cover the SLO engine's needs:

:class:`StatSketch`
    count / sum / min / max (and mean) — exact, O(1).
:class:`QuantileSketch`
    a deterministic merging digest (t-digest family): values collapse
    into at most ``compression`` weighted centroids, kept sorted by
    mean.  Quantile queries interpolate between centroid midpoints, so
    rank error is bounded by half the largest centroid weight —
    ≈ ``count / (2 · compression)``, i.e. well under 1 % rank error at
    the default compression of 256 (asserted by a hypothesis test).
    Unlike the classical randomized t-digest, compression here is a
    pure function of the sorted centroid list, so identical input
    streams produce identical sketches (the determinism the registry
    and the ``runs why`` report depend on).
:class:`ExpHistogram`
    exponential (geometric) buckets over a fixed range — O(buckets)
    memory, bucket-wise mergeable, good for latency heat maps where
    relative error per decade matters more than exact quantiles.

:class:`SketchRecorder` is the pipeline glue: attach it to a run's
event bus and it folds every flight-recorder gauge sample into
per-gauge sketches; hand its :meth:`~SketchRecorder.feed_wide` to a
:class:`~repro.obs.wide.WideEventBuilder` sink and it folds every
chunk lifecycle's phase latencies into per-phase sketches.  The
recorder is a pure fold over streams that are themselves deterministic,
so fixed-seed runs produce byte-identical serialized sketches.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from repro.obs.bus import EventBus, Stamped
from repro.obs.events import GaugeSample

#: Default centroid budget for :class:`QuantileSketch`.  Rank error is
#: ≈ 1/(2·compression) ≤ 0.2 %, comfortably inside the 1 % contract.
DEFAULT_COMPRESSION = 256

#: Chunk-record fields :class:`SketchRecorder` folds into per-phase
#: quantile sketches (``wide.<field>`` names).
WIDE_PHASE_FIELDS = (
    "fetch_latency",
    "stage_latency",
    "staging_latency",
    "control_rtt",
    "stage_wait_s",
    "ready_wait_s",
    "masked_s",
)


class StatSketch:
    """Exact count / sum / min / max in O(1) memory."""

    kind = "stat"

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def add_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def merge(self, other: "StatSketch") -> "StatSketch":
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    def to_json(self) -> dict:
        payload = {"kind": self.kind, "count": self.count, "sum": self.total}
        if self.count:
            payload["min"] = self.minimum
            payload["max"] = self.maximum
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "StatSketch":
        sketch = cls()
        sketch.count = int(payload.get("count", 0))
        sketch.total = float(payload.get("sum", 0.0))
        if sketch.count:
            sketch.minimum = float(payload["min"])
            sketch.maximum = float(payload["max"])
        return sketch

    def __repr__(self) -> str:
        if not self.count:
            return "<StatSketch empty>"
        return (
            f"<StatSketch n={self.count} mean={self.mean:.4g} "
            f"min={self.minimum:.4g} max={self.maximum:.4g}>"
        )


class QuantileSketch:
    """A deterministic merging quantile digest with bounded memory.

    State is a sorted list of ``(mean, weight)`` centroids, at most
    ``compression`` of them after a compression pass, plus an insert
    buffer of the same size (so ``add`` is amortized O(1) between
    compressions).  Compression sorts centroids by mean and greedily
    merges neighbours while the merged weight stays within the uniform
    cap ``ceil(count / compression)`` — no randomness, no insertion
    ordering effects beyond the stream order itself, which is exactly
    the determinism contract the rest of the pipeline keeps.

    The true ``min``/``max`` are tracked exactly, so the extreme
    quantiles (q→0, q→1) are exact.  Interior quantiles answer with
    the mean of the centroid covering the target rank (nearest rank
    over centroids): while every centroid is a singleton — i.e. until
    the stream outgrows ``compression`` — that is *exact* nearest-rank
    selection, and with merged centroids the rank error is bounded by
    the per-centroid weight cap ``ceil(count / compression)``, so
    relative rank error stays ≈ ``1 / compression``.  After greedy
    packing the centroid list holds at most ``2 · compression``
    entries (a pack that can't fit splits, never grows a third time).
    """

    kind = "quantile"

    __slots__ = ("compression", "count", "total", "minimum", "maximum",
                 "_centroids", "_buffer")

    def __init__(self, compression: int = DEFAULT_COMPRESSION) -> None:
        if compression < 8:
            raise ValueError(f"compression {compression} too small (min 8)")
        self.compression = int(compression)
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._centroids: list[tuple[float, float]] = []
        self._buffer: list[float] = []

    # -- folding -------------------------------------------------------------

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self._buffer.append(value)
        if len(self._buffer) >= self.compression:
            self._compress()

    def add_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch (associative up to rank error)."""
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        self._buffer.extend(other._buffer)
        self._centroids.extend(other._centroids)
        self._compress()
        return self

    def _compress(self) -> None:
        pending = self._centroids + [(v, 1.0) for v in self._buffer]
        self._buffer = []
        if not pending:
            return
        pending.sort()
        total = sum(w for _m, w in pending)
        cap = math.ceil(total / self.compression)
        merged: list[tuple[float, float]] = []
        mean, weight = pending[0]
        for m, w in pending[1:]:
            if weight + w <= cap:
                weight += w
                mean += (m - mean) * (w / weight)
            else:
                merged.append((mean, weight))
                mean, weight = m, w
        merged.append((mean, weight))
        self._centroids = merged

    # -- queries -------------------------------------------------------------

    @property
    def centroids(self) -> list[tuple[float, float]]:
        """The compressed ``(mean, weight)`` list (flushes the buffer)."""
        if self._buffer:
            self._compress()
        return list(self._centroids)

    @property
    def mean(self) -> Optional[float]:
        """Exact stream mean (the sum is tracked alongside)."""
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """The value at rank ``q`` ∈ [0, 1]; ``None`` on an empty sketch."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if not self.count:
            return None
        if q <= 0.0:
            return self.minimum
        if q >= 1.0:
            return self.maximum
        # Nearest rank over centroids: the first centroid whose
        # cumulative weight reaches the target rank answers with its
        # mean.  Singleton centroids (the n ≤ compression regime) make
        # this *exact* nearest-rank; weighted centroids bound the rank
        # error by the centroid cap — see the class docstring.
        target = q * self.count
        cum = 0.0
        for mean, weight in self.centroids:
            cum += weight
            if cum >= target:
                return mean
        return self.maximum

    # -- serialization -------------------------------------------------------

    def to_json(self) -> dict:
        payload = {
            "kind": self.kind,
            "compression": self.compression,
            "count": self.count,
        }
        if self.count:
            payload["sum"] = self.total
            payload["min"] = self.minimum
            payload["max"] = self.maximum
            payload["c"] = [[m, w] for m, w in self.centroids]
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "QuantileSketch":
        sketch = cls(int(payload.get("compression", DEFAULT_COMPRESSION)))
        sketch.count = int(payload.get("count", 0))
        if sketch.count:
            sketch.total = float(payload.get("sum", 0.0))
            sketch.minimum = float(payload["min"])
            sketch.maximum = float(payload["max"])
            sketch._centroids = [
                (float(m), float(w)) for m, w in payload.get("c", [])
            ]
        return sketch

    def __repr__(self) -> str:
        if not self.count:
            return "<QuantileSketch empty>"
        return (
            f"<QuantileSketch n={self.count} "
            f"p50={self.quantile(0.5):.4g} p95={self.quantile(0.95):.4g} "
            f"centroids={len(self._centroids)}>"
        )


class ExpHistogram:
    """Exponential-bucket histogram: fixed buckets, bucket-wise merge.

    Bucket ``i`` (1-based) covers ``[lo · growth^(i-1), lo · growth^i)``;
    bucket 0 catches everything ``< lo`` (including zero and negative
    values) and the last bucket everything at or beyond the top bound.
    Two histograms merge iff their shape (``lo``, ``growth``,
    ``buckets``) matches.
    """

    kind = "hist"

    __slots__ = ("lo", "growth", "buckets", "counts", "count")

    def __init__(
        self, lo: float = 1e-3, growth: float = 2.0, buckets: int = 32
    ) -> None:
        if lo <= 0 or growth <= 1.0 or buckets < 2:
            raise ValueError(
                f"bad histogram shape lo={lo} growth={growth} buckets={buckets}"
            )
        self.lo = float(lo)
        self.growth = float(growth)
        self.buckets = int(buckets)
        self.counts = [0] * (self.buckets + 2)  # + under/overflow
        self.count = 0

    def _index(self, value: float) -> int:
        if value < self.lo:
            return 0
        i = int(math.log(value / self.lo) / math.log(self.growth)) + 1
        return min(i, self.buckets + 1)

    def add(self, value: float) -> None:
        self.counts[self._index(value)] += 1
        self.count += 1

    def add_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def bounds(self, index: int) -> tuple[float, float]:
        """``[low, high)`` bounds of bucket ``index``."""
        if index == 0:
            return (-math.inf, self.lo)
        if index > self.buckets:
            return (self.lo * self.growth ** self.buckets, math.inf)
        return (
            self.lo * self.growth ** (index - 1),
            self.lo * self.growth ** index,
        )

    def merge(self, other: "ExpHistogram") -> "ExpHistogram":
        if (other.lo, other.growth, other.buckets) != (
            self.lo, self.growth, self.buckets
        ):
            raise ValueError(
                "cannot merge histograms with different bucket shapes"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        return self

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "lo": self.lo,
            "growth": self.growth,
            "buckets": self.buckets,
            "counts": list(self.counts),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ExpHistogram":
        hist = cls(
            lo=float(payload.get("lo", 1e-3)),
            growth=float(payload.get("growth", 2.0)),
            buckets=int(payload.get("buckets", 32)),
        )
        counts = [int(c) for c in payload.get("counts", [])]
        if len(counts) == len(hist.counts):
            hist.counts = counts
            hist.count = sum(counts)
        return hist

    def __repr__(self) -> str:
        return f"<ExpHistogram n={self.count} buckets={self.buckets}>"


# ---------------------------------------------------------------------------
# Sketch sets: serialize / load / merge by name
# ---------------------------------------------------------------------------

_KINDS = {
    StatSketch.kind: StatSketch,
    QuantileSketch.kind: QuantileSketch,
    ExpHistogram.kind: ExpHistogram,
}


def load_sketch(payload: dict):
    """One serialized sketch back to its live type (KeyError on unknown)."""
    kind = payload.get("kind")
    if kind not in _KINDS:
        raise KeyError(f"unknown sketch kind {kind!r}")
    return _KINDS[kind].from_json(payload)


def serialize_sketches(sketches: dict) -> dict:
    """``{name: sketch}`` → ``{name: payload}`` (registry storage shape)."""
    return {name: sketches[name].to_json() for name in sorted(sketches)}


def load_sketches(payload: dict) -> dict:
    """Inverse of :func:`serialize_sketches`; unknown kinds are skipped
    (the registry's forward-compat rule: never explode on newer data)."""
    sketches = {}
    for name, body in payload.items():
        try:
            sketches[name] = load_sketch(body)
        except (KeyError, TypeError, ValueError):
            continue
    return sketches


def merge_sketch_sets(target: dict, other: dict) -> dict:
    """Merge ``other``'s sketches into ``target`` (name-wise, in place).

    Names only present in ``other`` are copied in via a fresh
    serialize/load round trip, so ``target`` never aliases ``other``'s
    live state.  Mismatched kinds under one name raise ``ValueError``.
    """
    for name in sorted(other):
        sketch = other[name]
        mine = target.get(name)
        if mine is None:
            target[name] = load_sketch(sketch.to_json())
        elif mine.kind != sketch.kind:
            raise ValueError(
                f"sketch {name!r}: cannot merge kind {sketch.kind!r} "
                f"into {mine.kind!r}"
            )
        else:
            mine.merge(sketch)
    return target


# ---------------------------------------------------------------------------
# The pipeline glue: bus gauges + wide-event phases → sketch set
# ---------------------------------------------------------------------------


class SketchRecorder:
    """Folds a run's telemetry into a bounded sketch set.

    Two inputs, both optional:

    - :meth:`attach` subscribes to the event bus and folds every
      :class:`~repro.obs.events.GaugeSample` into ``gauge.<name>``
      stat + quantile sketches;
    - :meth:`feed_wide` (hand it to a wide-event builder's ``sinks``)
      folds every chunk record's phase latencies into
      ``wide.<field>`` quantile sketches, the fetch latency into a
      ``wide.fetch_latency.hist`` exponential histogram, and the
      staged-before-fetch indicator into ``wide.ready_before_fetch``
      (whose mean is the SLO engine's ``ready_before_fetch_ratio``).

    Memory is O(gauges + phases), never O(samples): the fleet-scale
    prerequisite.  Both folds are pure functions of deterministic
    streams, so fixed-seed runs serialize identically.
    """

    def __init__(self, compression: int = DEFAULT_COMPRESSION) -> None:
        self.compression = compression
        self.sketches: dict = {}
        self.gauge_samples = 0
        self.wide_records = 0
        self._bus: Optional[EventBus] = None

    # -- wiring --------------------------------------------------------------

    def attach(self, bus: EventBus) -> "SketchRecorder":
        self._bus = bus
        bus.subscribe(GaugeSample, self._on_gauge)
        return self

    def detach(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(GaugeSample, self._on_gauge)
            self._bus = None

    # -- folds ---------------------------------------------------------------

    def _stat(self, name: str) -> StatSketch:
        sketch = self.sketches.get(name)
        if sketch is None:
            sketch = self.sketches[name] = StatSketch()
        return sketch

    def _quantile(self, name: str) -> QuantileSketch:
        sketch = self.sketches.get(name)
        if sketch is None:
            sketch = self.sketches[name] = QuantileSketch(self.compression)
        return sketch

    def _on_gauge(self, stamped: Stamped) -> None:
        event = stamped.event
        self.gauge_samples += 1
        name = f"gauge.{event.gauge}"
        self._stat(name).add(event.value)
        self._quantile(f"{name}.q").add(event.value)

    def feed_wide(self, record: dict) -> None:
        """Fold one wide-event record (chunk records carry the phases)."""
        self.wide_records += 1
        if record.get("kind") != "chunk":
            return
        for field in WIDE_PHASE_FIELDS:
            value = record.get(field)
            if isinstance(value, (int, float)):
                self._quantile(f"wide.{field}").add(float(value))
        fetch = record.get("fetch_latency")
        if isinstance(fetch, (int, float)):
            hist = self.sketches.get("wide.fetch_latency.hist")
            if hist is None:
                hist = self.sketches["wide.fetch_latency.hist"] = (
                    ExpHistogram()
                )
            hist.add(float(fetch))
        ready_wait = record.get("ready_wait_s")
        staged_ahead = (
            isinstance(ready_wait, (int, float)) and ready_wait >= 0.0
        )
        self._stat("wide.ready_before_fetch").add(1.0 if staged_ahead else 0.0)
        source = record.get("source")
        if source:
            self._stat(f"wide.source.{source}").add(
                record.get("fetch_latency") or 0.0
            )

    def to_json(self) -> dict:
        """The registry-storable sketch set."""
        return serialize_sketches(self.sketches)


def sketches_from_wide(records: Iterable[dict],
                       compression: int = DEFAULT_COMPRESSION) -> dict:
    """Offline fold: wide-event records → live sketch set.

    The same fold as a live :class:`SketchRecorder` wide sink, so
    sketches computed from a replayed wide file equal the live run's
    (the ``runs why`` determinism contract).
    """
    recorder = SketchRecorder(compression)
    for record in records:
        recorder.feed_wide(record)
    return recorder.sketches
