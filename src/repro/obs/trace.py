"""JSONL trace export and offline replay.

A :class:`TraceExporter` subscribes to a bus and appends one JSON
object per event::

    {"t": 12.5, "run": "seed0", "type": "ChunkFetched", "cid": "…", ...}

Because event fields are JSON primitives and Python's ``json`` module
round-trips floats exactly, replaying a trace through a fresh
:class:`~repro.metrics.collector.MetricsCollector` reproduces the live
collector's ``report()`` bit-for-bit (events are replayed in recorded
order, so streaming statistics accumulate identically).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import IO, Iterator, Optional, Union

from repro.obs.bus import EventBus, Stamped
from repro.obs.events import EVENT_TYPES


class TraceExporter:
    """Writes every bus event to a JSONL file (or file-like object)."""

    def __init__(self, path_or_file: Union[str, IO[str]]) -> None:
        if hasattr(path_or_file, "write"):
            self._fh: IO[str] = path_or_file
            self._owns_fh = False
            self.path: Optional[str] = None
        else:
            self._fh = open(path_or_file, "w", encoding="utf-8")
            self._owns_fh = True
            self.path = str(path_or_file)
        self._bus: Optional[EventBus] = None
        self.events_written = 0

    def attach(self, bus: EventBus) -> "TraceExporter":
        self._bus = bus
        bus.subscribe_all(self._on_event)
        return self

    def _on_event(self, stamped: Stamped) -> None:
        record = {
            "t": stamped.time,
            "run": stamped.run_id,
            "type": type(stamped.event).__name__,
        }
        record.update(asdict(stamped.event))
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.events_written += 1

    def close(self) -> None:
        """Detach from the bus and close the file (if we opened it)."""
        if self._bus is not None:
            self._bus.unsubscribe_all(self._on_event)
            self._bus = None
        if getattr(self._fh, "closed", False):
            return
        self._fh.flush()
        if self._owns_fh:
            self._fh.close()

    def __enter__(self) -> "TraceExporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_trace(path_or_file: Union[str, IO[str]]) -> Iterator[Stamped]:
    """Yield :class:`Stamped` events from a JSONL trace, in file order."""
    if hasattr(path_or_file, "read"):
        lines = path_or_file
        close = False
    else:
        lines = open(path_or_file, encoding="utf-8")
        close = True
    try:
        for line in lines:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            cls = EVENT_TYPES[record.pop("type")]
            time = record.pop("t")
            run_id = record.pop("run")
            yield Stamped(time, run_id, cls(**record))
    finally:
        if close:
            lines.close()


def replay_trace(path_or_file: Union[str, IO[str]], collector=None):
    """Replay a JSONL trace into a :class:`MetricsCollector`.

    Returns the collector; its ``report()`` equals the one a live
    collector attached during the traced run would have produced.
    """
    if collector is None:
        from repro.metrics.collector import MetricsCollector

        collector = MetricsCollector()
    bus = EventBus()
    collector.attach(bus)
    for stamped in read_trace(path_or_file):
        bus.publish(stamped)
    return collector
