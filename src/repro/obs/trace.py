"""JSONL trace export and offline replay.

A :class:`TraceExporter` subscribes to a bus and appends one JSON
object per event::

    {"t": 12.5, "run": "seed0", "type": "ChunkFetched", "cid": "…", ...}

Because event fields are JSON primitives and Python's ``json`` module
round-trips floats exactly, replaying a trace through a fresh
:class:`~repro.metrics.collector.MetricsCollector` reproduces the live
collector's ``report()`` bit-for-bit (events are replayed in recorded
order, so streaming statistics accumulate identically).
"""

from __future__ import annotations

import json
import warnings
from dataclasses import asdict, fields
from typing import IO, Iterator, Optional, Union

from repro.obs.bus import EventBus, Stamped
from repro.obs.events import EVENT_TYPES


class TraceExporter:
    """Writes every bus event to a JSONL file (or file-like object)."""

    def __init__(self, path_or_file: Union[str, IO[str]]) -> None:
        if hasattr(path_or_file, "write"):
            self._fh: IO[str] = path_or_file
            self._owns_fh = False
            self.path: Optional[str] = None
        else:
            self._fh = open(path_or_file, "w", encoding="utf-8")
            self._owns_fh = True
            self.path = str(path_or_file)
        self._bus: Optional[EventBus] = None
        self.events_written = 0

    def attach(self, bus: EventBus) -> "TraceExporter":
        self._bus = bus
        bus.subscribe_all(self._on_event)
        return self

    def _on_event(self, stamped: Stamped) -> None:
        record = {
            "t": stamped.time,
            "run": stamped.run_id,
            "type": type(stamped.event).__name__,
        }
        record.update(asdict(stamped.event))
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.events_written += 1

    def close(self) -> None:
        """Detach from the bus and close the file (if we opened it)."""
        if self._bus is not None:
            self._bus.unsubscribe_all(self._on_event)
            self._bus = None
        if getattr(self._fh, "closed", False):
            return
        self._fh.flush()
        if self._owns_fh:
            self._fh.close()

    def __enter__(self) -> "TraceExporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_trace(
    path_or_file: Union[str, IO[str]],
    strict: bool = False,
    unknown_counts: Optional[dict[str, int]] = None,
) -> Iterator[Stamped]:
    """Yield :class:`Stamped` events from a JSONL trace, in file order.

    Traces written by a *newer* code version may contain event types
    (or event fields) this version does not know.  By default those
    records are skipped (unknown fields: dropped) with one
    :func:`warnings.warn` per unknown name, so old code can still
    replay the rest of the trace; pass ``strict=True`` to raise
    instead.  ``unknown_counts``, if given, is a dict the reader
    fills with ``{type_name: skipped_record_count}``.
    """
    if hasattr(path_or_file, "read"):
        lines = path_or_file
        close = False
    else:
        lines = open(path_or_file, encoding="utf-8")
        close = True
    warned: set[str] = set()
    try:
        for line in lines:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            type_name = record.pop("type")
            cls = EVENT_TYPES.get(type_name)
            if cls is None:
                if strict:
                    raise KeyError(f"unknown event type {type_name!r} in trace")
                if unknown_counts is not None:
                    unknown_counts[type_name] = unknown_counts.get(type_name, 0) + 1
                if type_name not in warned:
                    warned.add(type_name)
                    warnings.warn(
                        f"skipping unknown event type {type_name!r} "
                        f"(trace written by a newer version?)",
                        stacklevel=2,
                    )
                continue
            time = record.pop("t")
            run_id = record.pop("run")
            try:
                event = cls(**record)
            except TypeError:
                if strict:
                    raise
                known = {f.name for f in fields(cls)}
                extra = sorted(set(record) - known)
                key = f"{type_name}.{','.join(extra)}"
                if key not in warned:
                    warned.add(key)
                    warnings.warn(
                        f"dropping unknown field(s) {extra} on {type_name} "
                        f"(trace written by a newer version?)",
                        stacklevel=2,
                    )
                try:
                    event = cls(**{k: v for k, v in record.items() if k in known})
                except TypeError:
                    # Also missing required fields: unreadable, skip it.
                    if unknown_counts is not None:
                        unknown_counts[type_name] = (
                            unknown_counts.get(type_name, 0) + 1
                        )
                    continue
            yield Stamped(time, run_id, event)
    finally:
        if close:
            lines.close()


def replay_trace(path_or_file: Union[str, IO[str]], collector=None):
    """Replay a JSONL trace into a :class:`MetricsCollector`.

    Returns the collector; its ``report()`` equals the one a live
    collector attached during the traced run would have produced.
    """
    if collector is None:
        from repro.metrics.collector import MetricsCollector

        collector = MetricsCollector()
    bus = EventBus()
    collector.attach(bus)
    for stamped in read_trace(path_or_file):
        bus.publish(stamped)
    return collector
