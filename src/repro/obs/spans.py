"""Causal spans: folding the flat event stream into lifecycles.

A JSONL trace (or a live bus subscription) is a flat, time-ordered
stream of typed events.  This module derives *spans* from it — typed
intervals with a begin, an end, a lifecycle phase timeline and parent
links — so per-chunk questions ("how long did this chunk wait between
being signalled and being staged?  was it fetched from the edge or
did it fall back to the origin?") become first-class queries instead
of ad-hoc stream scans.

Span kinds:

``chunk``
    One chunk's staging-and-delivery lifecycle.  Opens at the first
    :class:`~repro.obs.events.StagingSignalled` naming the chunk (or,
    for never-signalled chunks, retroactively at fetch start) and
    closes at :class:`~repro.obs.events.ChunkFetched`.  The phase
    timeline records ``signalled → stage_request → staged → ready →
    cached → fetched`` (plus ``re-signalled``, ``stage_failed`` and
    ``stale_response`` marks).  ``status`` ends as ``edge``,
    ``origin`` or ``fallback``; spans still open at stream end keep
    ``status="open"``.
``encounter``
    One attachment period, derived retroactively from
    :class:`~repro.obs.events.EncounterEnded` (interval
    ``[t - duration, t]``).
``gap``
    One disconnection period, from
    :class:`~repro.obs.events.CoverageGap` the same way.
``handoff``
    :class:`~repro.obs.events.HandoffStarted` →
    :class:`~repro.obs.events.HandoffCompleted` (``status=
    "completed"``), or an instantaneous ``status="deferred"`` span
    for :class:`~repro.obs.events.HandoffDeferred`.

Parent links: after the stream ends (:meth:`SpanBuilder.finish`) each
closed chunk span is nested under the ``encounter`` span whose
interval contains its fetch-completion time — "the encounter the
chunk was delivered in".  Chunks fetched during the final (never-
ended) encounter keep ``parent_id=None``.

The builder is a pure, deterministic function of the stamped event
sequence: attaching it live to a bus and feeding it a recorded trace
of the same run produce byte-identical summaries (the parity tests
assert exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.obs import events as ev
from repro.obs.bus import EventBus, Stamped

#: Span kinds (also the Chrome-trace lanes, see ``repro.obs.analyze``).
CHUNK = "chunk"
ENCOUNTER = "encounter"
GAP = "gap"
HANDOFF = "handoff"


@dataclass
class Span:
    """One derived interval: kind + key + phase timeline + parentage."""

    span_id: int
    kind: str
    key: str
    run_id: str
    start: float
    end: Optional[float] = None
    status: str = "open"
    parent_id: Optional[int] = None
    #: Ordered ``(phase_name, time)`` lifecycle marks.
    phases: list[tuple[str, float]] = field(default_factory=list)
    #: JSON-primitive annotations (fetch latency, VNF name, ...).
    attrs: dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def phase_time(self, name: str) -> Optional[float]:
        """Time of the first occurrence of phase ``name``, if any."""
        for phase, time in self.phases:
            if phase == name:
                return time
        return None

    def mark(self, name: str, time: float) -> None:
        self.phases.append((name, time))

    def to_dict(self) -> dict[str, object]:
        """A JSON-serialisable snapshot (deterministic key order)."""
        return {
            "span_id": self.span_id,
            "kind": self.kind,
            "key": self.key,
            "run": self.run_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "parent_id": self.parent_id,
            "phases": [list(p) for p in self.phases],
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
        }

    def __repr__(self) -> str:
        dur = f"{self.duration:.3f}s" if self.end is not None else "open"
        return f"<Span #{self.span_id} {self.kind}:{self.key} {dur} {self.status}>"


class SpanBuilder:
    """Folds a stamped event stream into :class:`Span` objects.

    Works identically live (``builder.attach(sim.probe.bus)``) and
    offline (``for s in read_trace(path): builder.feed(s)``).  Call
    :meth:`finish` once the stream ends to close bookkeeping and
    resolve parent links; it returns the full span list, ordered by
    creation (= first-event) order.
    """

    def __init__(self, run_id: Optional[str] = None) -> None:
        #: Only events stamped with this run id are folded; ``None``
        #: adopts the first run id seen (events from other runs are
        #: counted in :attr:`skipped_other_runs`, never mixed in).
        self.run_id = run_id
        self.spans: list[Span] = []
        self.events_seen = 0
        self.skipped_other_runs = 0
        #: Events naming a chunk with no open span to annotate.
        self.orphan_events = 0
        self._open_chunks: dict[str, Span] = {}
        self._open_handoffs: dict[str, Span] = {}
        self._encounters = 0
        self._gaps = 0
        self._buses: list[EventBus] = []
        self._finished = False

    # -- wiring ------------------------------------------------------------

    def attach(self, bus: EventBus) -> "SpanBuilder":
        """Subscribe to every event published on ``bus``."""
        bus.subscribe_all(self.feed)
        self._buses.append(bus)
        return self

    def detach(self, bus: Optional[EventBus] = None) -> None:
        buses = [bus] if bus is not None else list(self._buses)
        for b in buses:
            b.unsubscribe_all(self.feed)
            if b in self._buses:
                self._buses.remove(b)

    # -- the fold ----------------------------------------------------------

    def feed(self, stamped: Stamped) -> None:
        """Fold one stamped event into the span state machine."""
        if self.run_id is None:
            self.run_id = stamped.run_id
        elif stamped.run_id != self.run_id:
            self.skipped_other_runs += 1
            return
        self.events_seen += 1
        handler = _HANDLERS.get(type(stamped.event))
        if handler is not None:
            handler(self, stamped.time, stamped.event)

    def finish(self) -> list[Span]:
        """Close bookkeeping, resolve parents, return every span."""
        if not self._finished:
            self._finished = True
            self.detach()
            self._assign_parents()
        return self.spans

    # -- span plumbing -----------------------------------------------------

    def _new_span(self, kind: str, key: str, start: float) -> Span:
        span = Span(
            span_id=len(self.spans) + 1,
            kind=kind,
            key=key,
            run_id=self.run_id or "",
            start=start,
        )
        self.spans.append(span)
        return span

    def _chunk_span(self, cid: str, time: float) -> Span:
        span = self._open_chunks.get(cid)
        if span is None:
            span = self._new_span(CHUNK, cid, time)
            self._open_chunks[cid] = span
        return span

    def _annotate_chunk(self, cid: str) -> Optional[Span]:
        """The open span for ``cid``, or None (orphan) — never opens."""
        span = self._open_chunks.get(cid)
        if span is None:
            self.orphan_events += 1
        return span

    def _assign_parents(self) -> None:
        encounters = [s for s in self.spans if s.kind == ENCOUNTER]
        if not encounters:
            return
        for span in self.spans:
            if span.kind != CHUNK or span.end is None:
                continue
            for enc in encounters:
                if enc.start <= span.end <= enc.end:
                    span.parent_id = enc.span_id
                    break


# -- per-event fold functions ------------------------------------------------


def _split_cids(cids: str) -> list[str]:
    return [c for c in cids.split(",") if c] if cids else []


def _on_staging_signalled(b: SpanBuilder, t: float, e: ev.StagingSignalled) -> None:
    for cid in _split_cids(e.cids):
        span = b._open_chunks.get(cid)
        if span is None:
            span = b._chunk_span(cid, t)
            span.status = "staging"
            span.attrs["signal_label"] = e.label
            span.mark("signalled", t)
        else:
            span.mark("re-signalled", t)
            span.attrs["re_signals"] = int(span.attrs.get("re_signals", 0)) + 1


def _on_stage_request(b: SpanBuilder, t: float, e: ev.StageRequestReceived) -> None:
    for cid in _split_cids(e.cids):
        span = b._annotate_chunk(cid)
        if span is not None and span.phase_time("stage_request") is None:
            span.mark("stage_request", t)
            span.attrs["vnf"] = e.vnf


def _on_vnf_staged(b: SpanBuilder, t: float, e: ev.VnfStageCompleted) -> None:
    span = b._annotate_chunk(e.cid)
    if span is not None:
        span.mark("staged", t)
        span.attrs["stage_latency"] = e.latency
        span.attrs["vnf"] = e.vnf


def _on_vnf_failed(b: SpanBuilder, t: float, e: ev.VnfStageFailed) -> None:
    span = b._annotate_chunk(e.cid)
    if span is not None:
        span.mark("stage_failed", t)
        span.attrs["stage_failures"] = int(span.attrs.get("stage_failures", 0)) + 1


def _on_chunk_staged(b: SpanBuilder, t: float, e: ev.ChunkStaged) -> None:
    span = b._annotate_chunk(e.cid)
    if span is not None:
        span.mark("ready", t)
        if e.staging_latency is not None:
            span.attrs["staging_latency"] = e.staging_latency
        if e.control_rtt is not None:
            span.attrs["control_rtt"] = e.control_rtt


def _on_stale_response(b: SpanBuilder, t: float, e: ev.StaleStagingResponse) -> None:
    span = b._open_chunks.get(e.cid)
    if span is not None:
        span.mark("stale_response", t)
        span.attrs["stale_responses"] = int(span.attrs.get("stale_responses", 0)) + 1


def _on_cache_stored(b: SpanBuilder, t: float, e: ev.CacheStored) -> None:
    # Only annotates an open chunk span (edge staging); origin-side
    # publishes at t=0 must not open lifecycle spans.
    span = b._open_chunks.get(e.cid)
    if span is not None:
        span.mark("cached", t)
        span.attrs["cache_store"] = e.store


def _on_chunk_fetched(b: SpanBuilder, t: float, e: ev.ChunkFetched) -> None:
    span = b._open_chunks.pop(e.cid, None)
    if span is None:
        # Never signalled (e.g. direct fetch, no VNF): the span is the
        # fetch itself, opened retroactively at fetch start.
        span = b._new_span(CHUNK, e.cid, t - e.latency)
    span.end = t
    span.mark("fetched", t)
    span.attrs["fetch_latency"] = e.latency
    span.attrs["fetch_start"] = t - e.latency
    span.status = "edge" if e.from_edge else ("fallback" if e.fallback else "origin")


def _on_handoff_started(b: SpanBuilder, t: float, e: ev.HandoffStarted) -> None:
    span = b._new_span(HANDOFF, e.target, t)
    span.status = "joining"
    span.mark("started", t)
    b._open_handoffs[e.target] = span


def _on_handoff_completed(b: SpanBuilder, t: float, e: ev.HandoffCompleted) -> None:
    span = b._open_handoffs.pop(e.target, None)
    if span is None:
        span = b._new_span(HANDOFF, e.target, t - e.duration)
    span.end = t
    span.status = "completed"
    span.mark("completed", t)
    span.attrs["join_duration"] = e.duration


def _on_handoff_deferred(b: SpanBuilder, t: float, e: ev.HandoffDeferred) -> None:
    span = b._new_span(HANDOFF, e.target, t)
    span.end = t
    span.status = "deferred"
    span.mark("deferred", t)


def _on_encounter_ended(b: SpanBuilder, t: float, e: ev.EncounterEnded) -> None:
    b._encounters += 1
    span = b._new_span(ENCOUNTER, f"enc{b._encounters}", t - e.duration)
    span.end = t
    span.status = "ended"


def _on_coverage_gap(b: SpanBuilder, t: float, e: ev.CoverageGap) -> None:
    b._gaps += 1
    span = b._new_span(GAP, f"gap{b._gaps}", t - e.duration)
    span.end = t
    span.status = "offline"


_HANDLERS = {
    ev.StagingSignalled: _on_staging_signalled,
    ev.StageRequestReceived: _on_stage_request,
    ev.VnfStageCompleted: _on_vnf_staged,
    ev.VnfStageFailed: _on_vnf_failed,
    ev.ChunkStaged: _on_chunk_staged,
    ev.StaleStagingResponse: _on_stale_response,
    ev.CacheStored: _on_cache_stored,
    ev.ChunkFetched: _on_chunk_fetched,
    ev.HandoffStarted: _on_handoff_started,
    ev.HandoffCompleted: _on_handoff_completed,
    ev.HandoffDeferred: _on_handoff_deferred,
    ev.EncounterEnded: _on_encounter_ended,
    ev.CoverageGap: _on_coverage_gap,
}


def build_spans(stampeds: Iterable[Stamped], run_id: Optional[str] = None) -> list[Span]:
    """Derive spans offline from any stamped-event iterable."""
    builder = SpanBuilder(run_id=run_id)
    for stamped in stampeds:
        builder.feed(stamped)
    return builder.finish()


# -- summaries ---------------------------------------------------------------


@dataclass(frozen=True)
class KindSummary:
    """Aggregate duration statistics for one span kind."""

    kind: str
    count: int
    closed: int
    total: float
    mean: float
    minimum: float
    maximum: float


def summarize_spans(spans: Iterable[Span]) -> list[KindSummary]:
    """Per-kind count/duration statistics, sorted by kind name."""
    by_kind: dict[str, list[Span]] = {}
    for span in spans:
        by_kind.setdefault(span.kind, []).append(span)
    out = []
    for kind in sorted(by_kind):
        group = by_kind[kind]
        durations = [s.duration for s in group if s.duration is not None]
        out.append(
            KindSummary(
                kind=kind,
                count=len(group),
                closed=len(durations),
                total=sum(durations),
                mean=sum(durations) / len(durations) if durations else 0.0,
                minimum=min(durations) if durations else 0.0,
                maximum=max(durations) if durations else 0.0,
            )
        )
    return out


def render_summary(spans: Iterable[Span], title: str = "Span summary") -> str:
    """A fixed-format span-summary table.

    Byte-deterministic for a given span list: the live/offline parity
    tests compare these strings for equality.
    """
    spans = list(spans)
    statuses: dict[str, dict[str, int]] = {}
    for span in spans:
        kind_statuses = statuses.setdefault(span.kind, {})
        kind_statuses[span.status] = kind_statuses.get(span.status, 0) + 1
    lines = [title]
    header = (
        f"{'kind':>10} | {'count':>6} | {'closed':>6} | {'total (s)':>10} | "
        f"{'mean (s)':>10} | {'min (s)':>10} | {'max (s)':>10}"
    )
    rule = "-" * len(header)
    lines += [rule, header, rule]
    for s in summarize_spans(spans):
        lines.append(
            f"{s.kind:>10} | {s.count:>6} | {s.closed:>6} | {s.total:>10.4f} | "
            f"{s.mean:>10.4f} | {s.minimum:>10.4f} | {s.maximum:>10.4f}"
        )
    lines.append(rule)
    for kind in sorted(statuses):
        breakdown = ", ".join(
            f"{status}={n}" for status, n in sorted(statuses[kind].items())
        )
        lines.append(f"{kind:>10}: {breakdown}")
    return "\n".join(lines)
