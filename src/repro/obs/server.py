"""A stdlib-only HTTP service over the run registry and telemetry hub.

``python -m repro serve`` turns the batch observability workflow into a
long-running service: the ``.repro_runs`` registry becomes a queryable
database, ``repro runs diff`` becomes a regression *endpoint* CI can
curl, and an in-progress run's hub traffic streams out live over
Server-Sent Events.

Endpoints (all GET, all JSON unless noted):

``/``
    Service index: endpoint list + record count.
``/runs``
    Registry listing (:func:`repro.obs.registry.list_payload` — the
    same serialization as ``repro runs list --json``).
``/runs/<key>``
    One full record (``rec_id`` exact match or run-id substring,
    latest wins — the CLI's resolution rules).
``/runs/<key>/gauges[?metric=<filter>]``
    The record's gauge timelines (``metric`` filters by substring with
    ``.``/``_`` folding, like ``repro runs gauges --metric``).
``/runs/<key>/wide``
    The run's wide-event records, read from the registry's wide-event
    directory (``<registry>/wide/*.jsonl`` — where ``repro demo
    --emit-wide`` writes by default).
``/runs/<key>/explain?base=<key>``
    Root-cause attribution of this run's movement from ``base``
    (:func:`repro.obs.explain.why_payload` — the same serialization
    as ``repro runs why --json``).  Needs both runs' wide events in
    the wide-event directory.
``/diff?a=<key>&b=<key>[&threshold=<frac>]``
    Metric diff between two records
    (:func:`repro.obs.registry.diff_payload`).  Responds **409** when
    a gain-family metric regressed past the paper-shape threshold, so
    ``curl -f`` (and therefore CI) fails exactly when the paper shape
    broke; 200 otherwise.
``/slo[?run=<key>&...][&slo=<spec>&...]``
    SLO check over registry records (:mod:`repro.obs.slo` — the same
    serialization as ``repro slo check --json``).  ``run`` keys
    restrict the set (default: every record); ``slo`` specs override
    the paper-shape default set.  Responds **409** when any SLO is
    violated, mirroring the ``repro slo check`` exit code.

Malformed input (missing/blank keys, unparseable numbers or SLO
specs) always yields a **400** with a JSON ``{"error": ...}`` body,
and unexpected handler failures a JSON **500** — never an HTML
traceback page.
``/live``
    ``text/event-stream`` of hub traffic (SSE).  Each hub item becomes
    one ``event: <topic>`` / ``data: <json>`` frame; idle periods emit
    ``: keep-alive`` comments; hub close sends ``event: end`` and
    closes the stream.  503 when the server has no hub (nothing live
    to stream).

The server is :class:`~http.server.ThreadingHTTPServer`-based — each
request gets a thread, so a slow ``/live`` consumer never blocks
``/runs`` queries, and a hub-fed simulation is never blocked by either
(the hub drops to slow subscribers instead; see
:mod:`repro.obs.stream`).
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from repro.obs.explain import (
    explain,
    load_wide_for_run,
    why_payload,
)
from repro.obs.registry import (
    GAIN_REGRESSION_THRESHOLD,
    RunRegistry,
    diff_payload,
    diff_records,
    list_payload,
)
from repro.obs.slo import (
    DEFAULT_SLOS,
    check_payload,
    evaluate_record,
    parse_slos,
    violations,
)
from repro.obs.stream import TelemetryHub

#: Seconds a ``/live`` stream waits for traffic before emitting a
#: keep-alive comment frame.
SSE_KEEPALIVE = 1.0


def sse_format(topic: str, payload: dict) -> bytes:
    """One SSE frame: ``event: <topic>`` + canonical-JSON ``data``."""
    data = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return f"event: {topic}\ndata: {data}\n\n".encode("utf-8")


class TelemetryServer(ThreadingHTTPServer):
    """The HTTP service: registry + optional hub + wide-event directory."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        registry: RunRegistry,
        hub: Optional[TelemetryHub] = None,
        wide_dir: Optional[str] = None,
    ) -> None:
        super().__init__(address, TelemetryRequestHandler)
        self.registry = registry
        self.hub = hub
        #: Where ``/runs/<key>/wide`` looks for wide-event JSONL files.
        self.wide_dir = wide_dir or os.path.join(registry.directory, "wide")

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_background(self) -> threading.Thread:
        """Serve on a daemon thread; returns the (started) thread."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        thread.start()
        return thread


class TelemetryRequestHandler(BaseHTTPRequestHandler):
    """Routes requests against the owning :class:`TelemetryServer`."""

    server: TelemetryServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep the service quiet; tests and CI read stdout

    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload, separators=(",", ":"), sort_keys=True)
        body = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _find(self, key: str):
        try:
            return self.server.registry.find(key)
        except KeyError:
            return None

    # -- routing -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        try:
            url = urlparse(self.path)
            # keep_blank_values: "?metric=" must reach the blank-input
            # validation (400), not silently vanish from the query.
            query = parse_qs(url.query, keep_blank_values=True)
            parts = [p for p in url.path.split("/") if p]
            if not parts:
                self._index()
            elif parts == ["healthz"]:
                self._send_json({"ok": True})
            elif parts == ["runs"]:
                self._send_json(list_payload(self.server.registry))
            elif parts[0] == "runs" and len(parts) == 2:
                self._run(parts[1])
            elif parts[0] == "runs" and len(parts) == 3:
                self._run_sub(parts[1], parts[2], query)
            elif parts == ["diff"]:
                self._diff(query)
            elif parts == ["slo"]:
                self._slo(query)
            elif parts == ["live"]:
                self._live()
            else:
                self._error(404, f"no route for {url.path!r}")
        except (BrokenPipeError, ConnectionResetError):
            pass
        except Exception as exc:  # noqa: BLE001 - JSON, not a traceback page
            try:
                self._error(500, f"{type(exc).__name__}: {exc}")
            except (BrokenPipeError, ConnectionResetError):
                pass

    # -- endpoints -----------------------------------------------------------

    def _index(self) -> None:
        self._send_json({
            "service": "repro-telemetry",
            "endpoints": [
                "/runs", "/runs/<key>", "/runs/<key>/gauges",
                "/runs/<key>/wide", "/runs/<key>/explain?base=<key>",
                "/diff?a=<key>&b=<key>", "/slo", "/live", "/healthz",
            ],
            "records": len(self.server.registry.records()),
            "live": self.server.hub is not None,
        })

    def _run(self, key: str) -> None:
        record = self._find(key)
        if record is None:
            self._error(404, f"no registry record matches {key!r}")
            return
        self._send_json(record.to_json())

    def _run_sub(self, key: str, sub: str, query: dict) -> None:
        record = self._find(key)
        if record is None:
            self._error(404, f"no registry record matches {key!r}")
            return
        if sub == "gauges":
            metric = query.get("metric", [None])[0]
            if metric is not None and not metric.strip():
                self._error(400, "metric filter must be non-empty")
                return
            series = (
                record.gauge_series(metric) if metric else record.gauges
            )
            if metric and not series:
                have = ", ".join(sorted(record.gauges)) or "none"
                self._error(
                    400,
                    f"no gauge matches {metric!r} (recorded: {have})",
                )
                return
            self._send_json({"rec_id": record.rec_id, "gauges": series})
        elif sub == "wide":
            records = self._wide_records(record.run_id)
            self._send_json({
                "run": record.run_id,
                "wide_dir": self.server.wide_dir,
                "records": records,
            })
        elif sub == "explain":
            self._explain(record, query)
        else:
            self._error(404, f"no route for /runs/<key>/{sub}")

    def _wide_records(self, run_id: str) -> list[dict]:
        return load_wide_for_run(self.server.wide_dir, run_id)

    def _explain(self, record, query: dict) -> None:
        base_key = query.get("base", [None])[0]
        if not base_key:
            self._error(400, "explain needs ?base=<key> (the baseline run)")
            return
        base = self._find(base_key)
        if base is None:
            self._error(404, f"no registry record matches {base_key!r}")
            return
        records_base = self._wide_records(base.run_id)
        records_b = self._wide_records(record.run_id)
        for rec, wide in ((base, records_base), (record, records_b)):
            if not wide:
                self._error(
                    404,
                    f"no wide events for {rec.run_id!r} under "
                    f"{self.server.wide_dir}",
                )
                return
        self._send_json(why_payload(explain(
            records_base, records_b,
            metrics_a=base.metrics, metrics_b=record.metrics,
            label_a=base.rec_id, label_b=record.rec_id,
        )))

    def _diff(self, query: dict) -> None:
        key_a = query.get("a", [None])[0]
        key_b = query.get("b", [None])[0]
        if not key_a or not key_b:
            self._error(400, "diff needs ?a=<key>&b=<key>")
            return
        record_a = self._find(key_a)
        record_b = self._find(key_b)
        if record_a is None or record_b is None:
            missing = key_a if record_a is None else key_b
            self._error(404, f"no registry record matches {missing!r}")
            return
        try:
            threshold = float(
                query.get("threshold", [GAIN_REGRESSION_THRESHOLD])[0]
            )
        except ValueError:
            self._error(400, "threshold must be a number")
            return
        deltas = diff_records(record_a, record_b, gain_threshold=threshold)
        payload = diff_payload(record_a, record_b, deltas)
        # Non-2xx on paper-shape regression: `curl -f $URL/diff?...`
        # is the whole CI gate.
        status = 409 if payload["regressions"] else 200
        self._send_json(payload, status=status)

    def _slo(self, query: dict) -> None:
        specs = [s for s in query.get("slo", []) if s.strip()]
        try:
            slos = parse_slos(specs) if specs else DEFAULT_SLOS
        except ValueError as exc:
            self._error(400, str(exc))
            return
        keys = [k for k in query.get("run", []) if k.strip()]
        if keys:
            records = []
            for key in keys:
                record = self._find(key)
                if record is None:
                    self._error(404, f"no registry record matches {key!r}")
                    return
                records.append(record)
        else:
            records = self.server.registry.records()
        per_record = []
        failing = False
        for record in records:
            wide = self._wide_records(record.run_id) or None
            results = evaluate_record(slos, record, wide_records=wide)
            per_record.append((record.rec_id, results))
            failing = failing or bool(violations(results))
        payload = check_payload(per_record)
        payload["slos"] = [slo.spec() for slo in slos]
        # Mirror `repro slo check`'s exit code: `curl -f $URL/slo` is
        # the CI gate.
        self._send_json(payload, status=409 if failing else 200)

    def _live(self) -> None:
        hub = self.server.hub
        if hub is None:
            self._error(503, "no live run attached (serve without a hub)")
            return
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        sub = hub.subscribe()
        try:
            self.wfile.write(sse_format("hello", {"live": True}))
            self.wfile.flush()
            while True:
                item = sub.get(timeout=SSE_KEEPALIVE)
                if item is not None:
                    topic, payload = item
                    self.wfile.write(sse_format(topic, payload))
                elif sub.closed:
                    self.wfile.write(sse_format("end", hub.stats()))
                    self.wfile.flush()
                    return
                else:
                    self.wfile.write(b": keep-alive\n\n")
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; the hub keeps running
        finally:
            sub.close()


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    registry: Optional[RunRegistry] = None,
    hub: Optional[TelemetryHub] = None,
    wide_dir: Optional[str] = None,
) -> TelemetryServer:
    """Bind a :class:`TelemetryServer` (``port=0`` picks a free port)."""
    return TelemetryServer(
        (host, port),
        registry if registry is not None else RunRegistry(),
        hub=hub,
        wide_dir=wide_dir,
    )
