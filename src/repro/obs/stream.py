"""The telemetry hub: thread-safe fan-out of live run telemetry.

A simulation run is single-threaded and synchronous; live consumers
(the terminal dashboard, the ``/live`` SSE endpoint) run on other
threads and must never slow it down or perturb it.  The
:class:`TelemetryHub` decouples them: producers call
:meth:`~TelemetryHub.publish` (a lock-free-on-the-hot-path append into
each subscriber's bounded queue, **never blocking**), and each
:class:`TelemetrySubscription` drains its own queue at its own pace.
A subscriber that falls behind loses items — explicitly, with a
per-subscription ``dropped`` counter surfaced through
:meth:`TelemetryHub.stats` — rather than ever applying backpressure to
the simulation.  A fixed-seed run therefore produces bit-identical
metrics with or without subscribers attached (asserted by the parity
tests).

Items are ``(topic, payload)`` pairs where ``payload`` is a
JSON-serialisable dict.  The conventional topics:

``gauge``
    One flight-recorder sample, forwarded off the event bus by
    :class:`GaugeFeed`: ``{"run", "t", "gauge", "v"}``.
``wide``
    One wide-event record (see :mod:`repro.obs.wide`), forwarded by
    the builder's hub sink.
``run``
    Run lifecycle: ``{"run", "state": "started"|"finished", ...}``
    published by the experiment runner and the parallel sweep driver.

Attach/detach is safe mid-run: subscription changes take a lock, but
``publish`` reads a snapshot, so a subscriber appearing or vanishing
between two events never corrupts delivery.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Iterator, Optional

from repro.obs.bus import EventBus, Stamped
from repro.obs.events import GaugeSample

#: Default bound on a subscription's queue.  Generous enough for a
#: dashboard refreshing a few times a second against a demo run, small
#: enough that a stuck consumer cannot hold a run's whole event volume.
DEFAULT_QUEUE_SIZE = 1024

#: Sentinel delivered to every subscriber when the hub closes.
_CLOSE = object()


class TelemetrySubscription:
    """One consumer's bounded view of the hub's traffic."""

    def __init__(
        self,
        hub: "TelemetryHub",
        maxsize: int = DEFAULT_QUEUE_SIZE,
        topics: Optional[set[str]] = None,
    ) -> None:
        self._hub = hub
        self._queue: queue.Queue = queue.Queue(maxsize=maxsize)
        #: Restrict delivery to these topics (``None`` = everything).
        self.topics = set(topics) if topics is not None else None
        #: Items delivered into the queue.
        self.received = 0
        #: Items the hub discarded because this queue was full.
        self.dropped = 0
        #: True once the hub's close sentinel has been consumed.
        self.closed = False
        #: Set by the hub's close(): the sentinel itself can be lost
        #: to a full queue, but this flag cannot — the consumer
        #: notices it as soon as the backlog drains.
        self._close_flagged = False

    # -- producer side (hub only) ------------------------------------------

    def _offer(self, item) -> None:
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            self.dropped += 1
        else:
            if item is not _CLOSE:
                self.received += 1

    # -- consumer side ------------------------------------------------------

    def get(self, timeout: Optional[float] = None):
        """Next ``(topic, payload)``; ``None`` on timeout or close."""
        if self.closed:
            return None
        try:
            item = self._queue.get(timeout=timeout) if timeout is not None \
                else self._queue.get_nowait()
        except queue.Empty:
            if self._close_flagged:
                self.closed = True
            return None
        if item is _CLOSE:
            self.closed = True
            return None
        return item

    def drain(self) -> list:
        """Every currently-queued ``(topic, payload)``, oldest first."""
        items = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                if self._close_flagged:
                    self.closed = True
                return items
            if item is _CLOSE:
                self.closed = True
                return items
            items.append(item)

    def __iter__(self) -> Iterator:
        """Blocking iteration until the hub closes."""
        while True:
            item = self.get(timeout=0.5)
            if item is not None:
                yield item
            elif self.closed:
                return

    def close(self) -> None:
        """Detach from the hub (idempotent)."""
        self._hub.unsubscribe(self)


class TelemetryHub:
    """Thread-safe, never-blocking fan-out of telemetry items."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._subs: tuple[TelemetrySubscription, ...] = ()
        self.published = 0
        self.closed = False

    # -- subscription management --------------------------------------------

    def subscribe(
        self,
        maxsize: int = DEFAULT_QUEUE_SIZE,
        topics: Optional[set[str]] = None,
    ) -> TelemetrySubscription:
        """Attach a new bounded subscriber (safe mid-run)."""
        sub = TelemetrySubscription(self, maxsize=maxsize, topics=topics)
        with self._lock:
            if self.closed:
                sub._offer(_CLOSE)
            self._subs = self._subs + (sub,)
        return sub

    def unsubscribe(self, sub: TelemetrySubscription) -> None:
        with self._lock:
            self._subs = tuple(s for s in self._subs if s is not sub)

    @property
    def subscriber_count(self) -> int:
        return len(self._subs)

    # -- traffic -------------------------------------------------------------

    def publish(self, topic: str, payload: dict) -> None:
        """Offer ``(topic, payload)`` to every subscriber; never blocks."""
        subs = self._subs  # snapshot: publish never takes the lock
        if not subs:
            return
        self.published += 1
        item = (topic, payload)
        for sub in subs:
            if sub.topics is None or topic in sub.topics:
                sub._offer(item)

    def close(self) -> None:
        """Deliver the close sentinel to every subscriber.

        The sentinel wakes a blocked consumer immediately; if a
        subscriber's queue is full the sentinel is lost like any other
        item, so a flag is set first — the consumer notices it the
        moment its backlog drains, guaranteeing closure is never
        missed.
        """
        with self._lock:
            self.closed = True
            subs = self._subs
        for sub in subs:
            sub._close_flagged = True
            sub._offer(_CLOSE)

    def wait_closed(self, timeout: float = 3.0) -> bool:
        """Block until every subscriber detached (True) or ``timeout``.

        :meth:`close` only *signals*; consumers on other threads still
        need a beat to write their terminal frames (the SSE ``end``
        event) and unsubscribe.  Shutdown paths call this before
        letting the process exit so daemon consumer threads aren't
        killed mid-frame.
        """
        deadline = time.monotonic() + timeout
        while self._subs and time.monotonic() < deadline:
            time.sleep(0.01)
        return not self._subs

    def stats(self) -> dict:
        """Publish/drop accounting, per subscriber."""
        subs = self._subs
        return {
            "published": self.published,
            "subscribers": len(subs),
            "dropped": sum(s.dropped for s in subs),
            "queues": [
                {"received": s.received, "dropped": s.dropped,
                 "depth": s._queue.qsize()}
                for s in subs
            ],
        }

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (
            f"<TelemetryHub {state} subs={len(self._subs)} "
            f"published={self.published}>"
        )


class GaugeFeed:
    """Bus → hub bridge for flight-recorder gauge samples.

    Subscribes to :class:`~repro.obs.events.GaugeSample` only, so runs
    without the flight recorder pay nothing extra, and forwards each
    sample as a ``gauge`` item.  Forwarding is an in-memory queue
    append — it cannot block or reorder the simulation.
    """

    def __init__(self, hub: TelemetryHub) -> None:
        self.hub = hub
        self.forwarded = 0
        self._bus: Optional[EventBus] = None

    def attach(self, bus: EventBus) -> "GaugeFeed":
        self._bus = bus
        bus.subscribe(GaugeSample, self._on_sample)
        return self

    def detach(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(GaugeSample, self._on_sample)
            self._bus = None

    def _on_sample(self, stamped: Stamped) -> None:
        event = stamped.event
        self.forwarded += 1
        self.hub.publish("gauge", {
            "run": stamped.run_id,
            "t": stamped.time,
            "gauge": event.gauge,
            "v": event.value,
        })
